"""Unit tests for the decoupled-frontend timing model."""

import pytest

from repro.branch.direction import PerfectDirectionPredictor
from repro.branch.types import BranchKind
from repro.btb.baseline import BaselineBTB
from repro.btb.ittage import ITTagePredictor
from repro.core.config import PDedeMode, paper_config
from repro.core.pdede import PDedeBTB
from repro.frontend.params import ICELAKE
from repro.frontend.simulator import FrontendSimulator

from conftest import make_trace


def run_trace(trace, btb=None, **kwargs):
    simulator = FrontendSimulator(btb or BaselineBTB(entries=256, ways=4), **kwargs)
    return simulator.run(trace, warmup_fraction=0.0)


def test_instruction_accounting(loop_trace):
    stats = run_trace(loop_trace)
    assert stats.instructions == loop_trace.instruction_count
    assert stats.branches == len(loop_trace)


def test_perfect_frontend_reaches_commit_width_bound(loop_trace):
    """With everything warm and predicted, IPC approaches commit width."""
    stats = run_trace(loop_trace, direction=PerfectDirectionPredictor())
    assert stats.ipc > 0.8 * ICELAKE.commit_width


def test_btb_misses_cost_cycles(loop_trace):
    trained = run_trace(loop_trace)
    # An adversarial BTB: 1-entry, always evicted by the next branch.
    cold = run_trace(loop_trace, btb=BaselineBTB(entries=2, ways=1))
    assert cold.btb_misses > trained.btb_misses
    assert cold.ipc < trained.ipc
    assert cold.btb_resteer_cycles > trained.btb_resteer_cycles


def test_returns_served_by_ras(loop_trace):
    stats = run_trace(loop_trace)
    assert stats.ras_mispredicts == 0


def test_returns_in_btb_mode(loop_trace):
    stats = run_trace(loop_trace, returns_use_ras=False)
    # Returns now consume BTB lookups; the single call site's return is
    # learnable, so misses stay low but nonzero on the cold pass.
    assert stats.btb_misses >= 1


def test_direction_mispredicts_charged_at_execute():
    pc = 0x1000
    events = []
    # A random-looking pattern a bimodal can't learn perfectly.
    for index in range(200):
        taken = index % 3 == 0
        target = 0x2000 if taken else pc + 4
        events.append((pc, BranchKind.COND_DIRECT, taken, target, 4))
    trace = make_trace(events)
    stats = run_trace(trace)
    assert stats.direction_mispredicts > 0
    assert stats.bad_speculation_cycles > 0


def test_perfect_direction_eliminates_direction_mispredicts():
    pc = 0x1000
    events = []
    for index in range(200):
        taken = index % 3 == 0
        target = 0x2000 if taken else pc + 4
        events.append((pc, BranchKind.COND_DIRECT, taken, target, 4))
    trace = make_trace(events)
    stats = run_trace(trace, direction=PerfectDirectionPredictor())
    assert stats.direction_mispredicts == 0


def test_pdede_bubble_mostly_hidden_by_fetch_queue():
    """Different-page PDede hits cost a bubble, absorbed by slack."""
    pc, target = 0x7F00_0000_1000, 0x7F11_0000_0400
    # Blocks large enough that the 6-wide-fetch / 5-wide-commit surplus
    # (gap/5 - gap/6 cycles per block) can bank the 1-cycle bubble.
    events = [(pc, BranchKind.UNCOND_DIRECT, True, target, 35)] * 300
    trace = make_trace(events)
    pdede = PDedeBTB(paper_config(PDedeMode.DEFAULT))
    stats = run_trace(trace, btb=pdede)
    assert stats.extra_latency_lookups > 200  # pointer path exercised
    # The decoupled frontend hides nearly all of the bubbles.
    assert stats.btb_bubble_cycles < stats.extra_latency_lookups * 0.2


def test_ittage_handles_indirects():
    pc = 0x5000
    events = [(pc, BranchKind.CALL_INDIRECT, True, 0x9000, 4)] * 100
    trace = make_trace(events)
    btb = BaselineBTB(entries=64, ways=4, allocate_indirect=False)
    stats = run_trace(trace, btb=btb, ittage=ITTagePredictor())
    # After the first few, ITTAGE locks on; the BTB never sees them.
    assert stats.indirect_mispredicts <= 3
    assert btb.occupancy() == 0


def test_warmup_excludes_prefix():
    pc = 0x1000
    events = [(pc, BranchKind.UNCOND_DIRECT, True, 0x2000, 4)] * 100
    trace = make_trace(events)
    simulator = FrontendSimulator(BaselineBTB(entries=64, ways=4))
    stats = simulator.run(trace, warmup_fraction=0.5)
    assert stats.branches == 50
    assert stats.btb_misses == 0  # the only cold miss fell in the warmup


def test_warmup_validation(loop_trace):
    simulator = FrontendSimulator(BaselineBTB(entries=64, ways=4))
    with pytest.raises(ValueError):
        simulator.run(loop_trace, warmup_fraction=1.0)


def test_deterministic_repeat(loop_trace):
    a = run_trace(loop_trace)
    b = run_trace(loop_trace)
    assert a.cycles == b.cycles
    assert a.btb_misses == b.btb_misses
