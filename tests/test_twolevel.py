"""Unit tests for the two-level BTB hierarchy."""

from repro.btb.baseline import BaselineBTB
from repro.btb.twolevel import TwoLevelBTB

from conftest import make_event, synthetic_branch_set


def build() -> TwoLevelBTB:
    return TwoLevelBTB(BaselineBTB(entries=64, ways=4), BaselineBTB(entries=1024, ways=8))


def test_update_fills_both_levels():
    hierarchy = build()
    event = make_event()
    hierarchy.update(event)
    assert hierarchy.level0.lookup(event.pc).hit
    assert hierarchy.level1.lookup(event.pc).hit


def test_l0_hit_is_fast():
    hierarchy = build()
    event = make_event()
    hierarchy.update(event)
    lookup = hierarchy.lookup(event.pc)
    assert lookup.hit
    assert lookup.latency == 1
    assert lookup.provider.startswith("l0")


def test_l1_hit_costs_extra_latency():
    hierarchy = build()
    # Fill beyond L0 capacity so some branches only survive in L1.
    pairs = synthetic_branch_set(300, seed=2)
    for pc, target in pairs:
        hierarchy.update(make_event(pc=pc, target=target))
    l1_latencies = []
    for pc, target in pairs:
        lookup = hierarchy.lookup(pc)
        if lookup.hit and lookup.provider.startswith("l1"):
            l1_latencies.append(lookup.latency)
    assert l1_latencies, "expected some L1-only hits"
    assert all(latency == 2 for latency in l1_latencies)


def test_miss_when_both_levels_miss():
    hierarchy = build()
    lookup = hierarchy.lookup(0xDEAD_0000)
    assert not lookup.hit
    assert lookup.target is None


def test_storage_is_sum_of_levels():
    hierarchy = build()
    expected = hierarchy.level0.storage_bits() + hierarchy.level1.storage_bits()
    assert hierarchy.storage_bits() == expected


def test_hierarchy_beats_l0_alone_on_large_working_set():
    small = BaselineBTB(entries=64, ways=4)
    hierarchy = build()
    pairs = synthetic_branch_set(400, seed=11)
    stream = pairs * 4
    for pc, target in stream:
        small.observe(make_event(pc=pc, target=target))
        hierarchy.observe(make_event(pc=pc, target=target))
    assert hierarchy.stats.miss_rate < small.stats.miss_rate
