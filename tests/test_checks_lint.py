"""The determinism linter: every rule catches its seeded violation,
clean code passes, noqa suppresses, and the repo itself lints clean."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.checks.lint import lint_source, run_lint
from repro.checks.rules import ALL_RULES


def _codes(source: str) -> set[str]:
    return {finding.code for finding in lint_source(textwrap.dedent(source))}


# -- one seeded violation per rule ------------------------------------------


def test_rep001_unseeded_random_module_call():
    assert "REP001" in _codes(
        """
        import random

        def pick(ways):
            return random.randrange(ways)
        """
    )


def test_rep001_unseeded_random_from_import():
    assert "REP001" in _codes(
        """
        from random import shuffle

        def scramble(items):
            shuffle(items)
        """
    )


def test_rep002_set_iteration():
    assert "REP002" in _codes(
        """
        def sweep(entries):
            for entry in set(entries):
                print(entry)
        """
    )


def test_rep002_set_returning_method():
    assert "REP002" in _codes(
        """
        def dump(table):
            return [v for v in table.unique_values()]
        """
    )


def test_rep003_float_equality():
    assert "REP003" in _codes(
        """
        def saturated(ipc):
            return ipc == 1.0
        """
    )


def test_rep004_time_in_hot_path():
    assert "REP004" in _codes(
        """
        import time

        class BTB:
            def lookup(self, pc):
                return time.perf_counter()
        """
    )


def test_rep004_ignores_cold_paths():
    assert "REP004" not in _codes(
        """
        import time

        def benchmark():
            return time.perf_counter()
        """
    )


def test_rep005_env_in_hot_path():
    assert "REP005" in _codes(
        """
        import os

        class BTB:
            def update(self, event):
                return os.getenv("REPRO_SCALE")
        """
    )


def test_rep005_environ_subscript_in_hot_path():
    assert "REP005" in _codes(
        """
        import os

        class Table:
            def allocate(self, value):
                return os.environ["REPRO_SCALE"]
        """
    )


def test_rep006_shift_past_model_width():
    assert "REP006" in _codes(
        """
        def region_of(pc):
            return pc >> 99
        """
    )


def test_rep006_folds_declared_widths():
    # ADDRESS_BITS (57) + 10 = 67 > the 64-bit model ceiling.
    assert "REP006" in _codes(
        """
        from repro.branch.address import ADDRESS_BITS

        def broken(pc):
            return pc >> (ADDRESS_BITS + 10)
        """
    )


def test_rep006_allows_mask_construction():
    # ``1 << n`` builds a mask (2**n) and is legal at any width --
    # branch history registers span hundreds of bits.
    assert "REP006" not in _codes(
        """
        HISTORY_MASK = (1 << 192) - 1
        """
    )


def test_rep007_unguarded_len_division():
    assert "REP007" in _codes(
        """
        def mean(values):
            return sum(values) / len(values)
        """
    )


def test_rep007_guard_suppresses():
    assert "REP007" not in _codes(
        """
        def mean(values):
            if not values:
                return 0.0
            return sum(values) / len(values)
        """
    )


def test_rep008_unsorted_listdir():
    assert "REP008" in _codes(
        """
        import os

        def traces(root):
            return [name for name in os.listdir(root)]
        """
    )


def test_rep008_sorted_listing_passes():
    assert "REP008" not in _codes(
        """
        import os

        def traces(root):
            return sorted(os.listdir(root))
        """
    )


def test_rep009_builtin_hash():
    assert "REP009" in _codes(
        """
        def index_of(name, sets):
            return hash(name) % sets
        """
    )


def test_rep010_identity_ordering():
    assert "REP010" in _codes(
        """
        def stable_key(obj):
            return id(obj)
        """
    )


def _hot_codes(source: str, path: str = "src/repro/frontend/engine.py") -> set[str]:
    return {
        finding.code
        for finding in lint_source(textwrap.dedent(source), path=path)
    }


def test_rep012_loop_over_numpy_producer():
    source = """
    import numpy as np

    def replay(mask):
        for index in np.flatnonzero(mask):
            consume(index)
    """
    assert "REP012" in _hot_codes(source)
    # Same loop in a cold module: not a hot path, not flagged.
    assert "REP012" not in _hot_codes(source, path="src/repro/serve/service.py")


def test_rep012_comprehension_and_wrappers():
    source = """
    def weights(counts, mask):
        totals = [int(value) for value in counts.cumsum()]
        for lane, keep in enumerate(mask.astype(bool)):
            consume(lane, keep)
    """
    assert "REP012" in _hot_codes(source, path="src/repro/workloads/decoded.py")


def test_rep012_tolist_escape_passes():
    source = """
    import numpy as np

    def replay(mask):
        for index in np.flatnonzero(mask).tolist():
            consume(index)
        for a, b in zip(xs.tolist(), ys):
            consume(a, b)
    """
    assert "REP012" not in _hot_codes(source)


def test_rep012_noqa_suppresses():
    source = (
        "import numpy as np\n"
        "def replay(mask):\n"
        "    for i in np.flatnonzero(mask):  # noqa: REP012 - tiny array\n"
        "        consume(i)\n"
    )
    codes = {
        f.code
        for f in lint_source(source, path="src/repro/frontend/engine.py")
    }
    assert "REP012" not in codes


# -- engine behaviour --------------------------------------------------------


def test_noqa_bare_suppresses_all_but_is_itself_flagged():
    source = "import random\nx = random.random()  # noqa\n"
    # The blanket comment silences REP001 -- and REP011 flags the
    # blanket comment (a noqa cannot excuse itself).
    assert {f.code for f in lint_source(source)} == {"REP011"}


def test_noqa_with_code_suppresses_that_code_only():
    source = "import random\nx = random.random()  # noqa: REP001 - seeded upstream\n"
    assert lint_source(source) == []
    wrong_code = "import random\nx = random.random()  # noqa: REP009 - wrong rule\n"
    assert {f.code for f in lint_source(wrong_code)} == {"REP001"}


def test_noqa_code_list_parses_spaces_and_case():
    source = (
        "import random\n"
        "x = hash(random.random())  # NOQA: rep001 , REP009 - both known\n"
    )
    assert lint_source(source) == []


def test_noqa_on_continuation_line_suppresses_multiline_statement():
    # The finding anchors at the statement's first line; the comment
    # sits where a formatter left it, on the closing line.
    source = (
        "import random\n"
        "x = random.randrange(\n"
        "    64,\n"
        ")  # noqa: REP001 - demo fixture\n"
    )
    assert lint_source(source) == []


def test_noqa_on_unrelated_line_does_not_suppress():
    source = (
        "import random\n"
        "y = 1  # noqa: REP001 - unrelated line\n"
        "x = random.randrange(64)\n"
    )
    assert {f.code for f in lint_source(source)} == {"REP001"}


def test_syntax_error_reports_rep000():
    findings = lint_source("def broken(:\n")
    assert [f.code for f in findings] == ["REP000"]


# -- REP011: noqa justification ---------------------------------------------


def test_rep011_blanket_noqa_flagged():
    findings = lint_source("x = 1  # noqa\n")
    assert [f.code for f in findings] == ["REP011"]


def test_rep011_rep_code_without_justification():
    findings = lint_source("x = 1  # noqa: REP004\n")
    assert [f.code for f in findings] == ["REP011"]


def test_rep011_justified_rep_suppression_passes():
    assert lint_source("x = 1  # noqa: REP004 - CLI entry, not hot path\n") == []


def test_rep011_non_rep_codes_exempt():
    assert lint_source("f = lambda: 0  # noqa: E731\n") == []


def test_rep011_cannot_be_self_suppressed():
    # The meta-rule bypasses the suppression machinery by design.
    findings = lint_source("x = 1  # noqa\n")
    assert [f.code for f in findings] == ["REP011"]


def test_rep011_ignores_noqa_inside_strings():
    assert lint_source("DOC = 'use # noqa sparingly'\n") == []


def test_clean_source_has_no_findings():
    assert (
        _codes(
            """
            import random

            def pick(seed, ways):
                rng = random.Random(seed)
                return rng.randrange(ways)
            """
        )
        == set()
    )


def test_findings_sorted_and_formatted():
    source = "x = hash('a')\ny = id(x)\n"
    findings = lint_source(source, path="demo.py")
    assert [f.code for f in findings] == ["REP009", "REP010"]
    assert findings[0].format().startswith("demo.py:1:")


def test_rule_catalogue_is_large_enough():
    # ISSUE acceptance: at least 8 distinct rules, each with code + docs.
    assert len(ALL_RULES) >= 8
    codes = [rule.code for rule in ALL_RULES]
    assert len(set(codes)) == len(codes)
    for rule in ALL_RULES:
        assert rule.code.startswith("REP")
        assert rule.summary


def test_repo_source_lints_clean():
    # ISSUE acceptance: the linter exits 0 on the repo's own source.
    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    assert src.is_dir()
    findings = run_lint([src])
    assert findings == [], "\n".join(f.format() for f in findings)
