"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random

import pytest

# Tests must not read or pollute the developer's persistent cache; the
# disk-cache tests opt back in against a tmp_path root.
os.environ.setdefault("REPRO_DISK_CACHE", "0")

from repro.branch.types import BranchEvent, BranchKind
from repro.workloads.trace import Trace


#: Environment prefixes that change simulation scheduling, caching, or
#: serving behaviour.  Any of these leaking in from the developer's (or
#: CI job's) shell would make a test depend on ambient state.
#: ``REPRO_REDIS`` covers ``REPRO_REDIS_URL``: the store contract suite
#: captures it at import time (before this fixture runs) so the opt-in
#: Redis backend still works, but no other test sees the variable.
_HERMETIC_PREFIXES = ("REPRO_SCHED_", "REPRO_DISK_CACHE", "REPRO_SERVE_", "REPRO_REDIS")


@pytest.fixture(autouse=True)
def _hermetic_env(tmp_path, monkeypatch):
    """Make every test hermetic against ambient ``REPRO_*`` knobs.

    Clears ``REPRO_SCHED_*``, ``REPRO_DISK_CACHE*`` and ``REPRO_SERVE_*``
    before each test, then re-pins the disk cache off (the env default
    is *on*) and roots it at a per-test tmpdir so tests that opt back in
    (or scheduler tests that resume from it) never read or pollute a
    developer's real ``~/.cache/repro-pdede``.  Tests that manage their
    own knobs simply ``monkeypatch.setenv`` over this.

    CI jobs that intentionally run the suite under ambient knobs (the
    parallel-suite job exports ``REPRO_SCHED_WORKERS``/``_SHARDS``) list
    them in ``REPRO_TEST_KEEP_ENV`` (comma-separated) to exempt them.
    """
    keep = {
        name.strip()
        for name in os.environ.get("REPRO_TEST_KEEP_ENV", "").split(",")
        if name.strip()
    }
    for name in list(os.environ):
        if name.startswith(_HERMETIC_PREFIXES) and name not in keep:
            monkeypatch.delenv(name)
    if "REPRO_DISK_CACHE" not in keep:
        monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    if "REPRO_DISK_CACHE_DIR" not in keep:
        monkeypatch.setenv("REPRO_DISK_CACHE_DIR", str(tmp_path / "disk-cache"))
    yield
    # The serving layer installs its shared result store process-wide
    # (and fake:// URLs register in a process-global registry); neither
    # may leak into the next test.
    from repro.experiments import resultstore

    resultstore.set_active_store(None)
    resultstore.reset_fakes()


def make_event(
    pc: int = 0x7F00_0040_1000,
    kind: BranchKind = BranchKind.COND_DIRECT,
    taken: bool = True,
    target: int = 0x7F00_0040_1400,
    gap: int = 4,
) -> BranchEvent:
    """Build a branch event with sensible defaults."""
    return BranchEvent(pc, kind, taken, target, gap)


def make_trace(events: list[tuple[int, BranchKind, bool, int, int]], name: str = "test") -> Trace:
    """Build a trace from raw tuples."""
    trace = Trace(name=name)
    for pc, kind, taken, target, gap in events:
        trace.append(pc, kind, taken, target, gap)
    return trace


def synthetic_branch_set(
    count: int,
    seed: int = 0,
    base: int = 0x7000_0000_0000,
    same_page_fraction: float = 0.6,
) -> list[tuple[int, int]]:
    """Random (pc, target) pairs with a controlled same-page fraction."""
    rng = random.Random(seed)
    pairs = []
    for _ in range(count):
        pc = base + rng.randrange(0, 1 << 24) * 4
        if rng.random() < same_page_fraction:
            target = (pc & ~0xFFF) | (rng.randrange(0, 1024) * 4)
        else:
            target = base + rng.randrange(0, 1 << 24) * 4
        pairs.append((pc, target))
    return pairs


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def loop_trace() -> Trace:
    """A tight loop plus a call/return pair -- exercises every kind."""
    loop_pc = 0x1000_1000
    loop_target = 0x1000_0F00
    call_pc = 0x1000_1040
    callee = 0x2000_0000
    ret_pc = 0x2000_0020
    events = []
    for _ in range(50):
        for _ in range(3):
            events.append((loop_pc, BranchKind.COND_DIRECT, True, loop_target, 5))
        events.append((loop_pc, BranchKind.COND_DIRECT, False, loop_pc + 4, 5))
        events.append((call_pc, BranchKind.CALL_DIRECT, True, callee, 3))
        events.append((ret_pc, BranchKind.RETURN, True, call_pc + 4, 6))
    return make_trace(events, name="loop")
