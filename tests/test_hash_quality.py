"""Statistical checks on the PC hash (the 'good hashing' assumption).

The paper waves at "a good hashing technique" to keep 12-bit-tag
aliasing resteers negligible; these tests pin down what that means for
the structured addresses our layouts produce.
"""

from repro.branch.address import hash_pc, mix64
from repro.workloads.layout import CodeLayout
from repro.workloads.suite import build_suite


def test_mix64_is_deterministic_and_bounded():
    assert mix64(12345) == mix64(12345)
    assert 0 <= mix64(2**57 - 1) < 2**64


def test_mix64_avalanche():
    """Flipping one input bit should flip ~half the output bits."""
    flips = []
    for bit in range(0, 57, 7):
        a = mix64(0x1234_5678_9ABC)
        b = mix64(0x1234_5678_9ABC ^ (1 << bit))
        flips.append(bin(a ^ b).count("1"))
    average = sum(flips) / len(flips)
    assert 20 <= average <= 44  # ideal 32, generous band


def test_index_tag_joint_collisions_are_rare_on_real_layouts():
    """The failure mode the hash exists to prevent: two live branch PCs
    agreeing on both set index and 12-bit tag."""
    spec = build_suite("tiny")[0]
    layout = CodeLayout(spec)
    pcs = layout.static_branch_pcs()
    keys = {}
    collisions = 0
    for pc in pcs:
        hashed = hash_pc(pc)
        key = (hashed & 511, (hashed >> 40) & 0xFFF)
        if key in keys and keys[key] != pc:
            collisions += 1
        keys[key] = pc
    # With N branches over 512 sets x 4096 tags, expected collisions are
    # ~N^2 / (2 * 512 * 4096); allow 4x slack over the birthday bound.
    expected = len(pcs) ** 2 / (2 * 512 * 4096)
    assert collisions <= max(8, 4 * expected)


def test_index_distribution_is_balanced():
    """No set should receive a pathological share of a layout's PCs."""
    spec = build_suite("tiny")[0]
    layout = CodeLayout(spec)
    pcs = layout.static_branch_pcs()
    sets = 512
    counts = [0] * sets
    for pc in pcs:
        counts[hash_pc(pc) & (sets - 1)] += 1
    mean = len(pcs) / sets
    assert max(counts) < mean * 3
