"""Unit tests for the branch taxonomy and event records."""

import pytest

from repro.branch.types import BranchEvent, BranchKind


def test_kind_classification_matrix():
    assert BranchKind.COND_DIRECT.is_conditional
    assert BranchKind.COND_DIRECT.is_direct
    assert not BranchKind.COND_DIRECT.is_indirect
    assert BranchKind.UNCOND_DIRECT.is_unconditional
    assert BranchKind.UNCOND_DIRECT.is_direct
    assert BranchKind.CALL_DIRECT.is_call
    assert BranchKind.CALL_DIRECT.is_direct
    assert BranchKind.CALL_INDIRECT.is_call
    assert BranchKind.CALL_INDIRECT.is_indirect
    assert BranchKind.UNCOND_INDIRECT.is_indirect
    assert not BranchKind.UNCOND_INDIRECT.is_call
    assert BranchKind.RETURN.is_return
    assert not BranchKind.RETURN.is_direct


def test_only_conditionals_can_fall_through():
    conditional = [k for k in BranchKind if k.is_conditional]
    assert conditional == [BranchKind.COND_DIRECT]


def test_event_rejects_not_taken_unconditional():
    with pytest.raises(ValueError):
        BranchEvent(0x100, BranchKind.UNCOND_DIRECT, False, 0x200, 1)
    with pytest.raises(ValueError):
        BranchEvent(0x100, BranchKind.RETURN, False, 0x200, 1)


def test_event_rejects_negative_gap():
    with pytest.raises(ValueError):
        BranchEvent(0x100, BranchKind.COND_DIRECT, True, 0x200, -1)


def test_event_fall_through():
    event = BranchEvent(0x100, BranchKind.COND_DIRECT, False, 0x104, 0)
    assert event.fall_through == 0x104


def test_not_taken_conditional_is_legal():
    event = BranchEvent(0x100, BranchKind.COND_DIRECT, False, 0x104, 2)
    assert not event.taken
