"""Unit tests for the 57-bit address partitioning helpers."""

import pytest

from repro.branch.address import (
    ADDRESS_BITS,
    ADDRESS_MASK,
    OFFSET_BITS,
    PAGE_BITS,
    PAGE_IN_REGION_BITS,
    REGION_BITS,
    REGION_SPAN_PAGES,
    fold_bits,
    join_target,
    page_base,
    page_distance,
    page_in_region,
    page_number,
    page_offset,
    region_id,
    same_page,
    split_target,
)


def test_field_widths_sum_to_address_width():
    assert OFFSET_BITS + PAGE_IN_REGION_BITS + REGION_BITS == ADDRESS_BITS


def test_region_span_matches_paper_scale():
    # Regions are clusters separated by >65K pages (Section 3.3).
    assert REGION_SPAN_PAGES == 65536


def test_page_offset_extracts_low_bits():
    assert page_offset(0xABC123) == 0x123
    assert page_offset(0xFFF) == 0xFFF
    assert page_offset(0x1000) == 0


def test_page_number_and_base():
    addr = (0x5A << 12) | 0x7B
    assert page_number(addr) == 0x5A
    assert page_base(addr) == 0x5A << 12


def test_page_in_region_wraps_at_region_boundary():
    addr = (REGION_SPAN_PAGES + 3) << OFFSET_BITS
    assert page_in_region(addr) == 3
    assert region_id(addr) == 1


def test_split_and_join_roundtrip():
    addr = 0x1ABCDE_FEDCBA9 & ADDRESS_MASK
    region, page, offset = split_target(addr)
    assert join_target(region, page, offset) == addr


def test_join_target_rejects_oversized_components():
    with pytest.raises(ValueError):
        join_target(1 << REGION_BITS, 0, 0)
    with pytest.raises(ValueError):
        join_target(0, 1 << PAGE_IN_REGION_BITS, 0)
    with pytest.raises(ValueError):
        join_target(0, 0, 1 << OFFSET_BITS)


def test_same_page_boundary_conditions():
    assert same_page(0x1000, 0x1FFF)
    assert not same_page(0x1FFF, 0x2000)
    assert same_page(0, 0xFFF)


def test_page_distance_signs():
    assert page_distance(0x1000, 0x3000) == 2
    assert page_distance(0x3000, 0x1000) == -2
    assert page_distance(0x1000, 0x1FFF) == 0


def test_fold_bits_stays_in_width():
    for width in (1, 4, 12, 16):
        for value in (0, 1, 0xDEADBEEF, (1 << 57) - 1):
            assert 0 <= fold_bits(value, width) < (1 << width)


def test_fold_bits_distinguishes_high_bits():
    # XOR folding must let high address bits influence the result.
    low = fold_bits(0x0000_0000_1234, 12)
    high = fold_bits(0x1000_0000_1234, 12)
    assert low != high


def test_fold_bits_rejects_nonpositive_width():
    with pytest.raises(ValueError):
        fold_bits(5, 0)


def test_page_bits_value():
    assert PAGE_BITS == 45
