"""Tests for the GHRP-style predictive-replacement BTB."""

import pytest

from repro.branch.types import BranchKind
from repro.btb.baseline import BaselineBTB
from repro.btb.ghrp import GhrpBTB

from conftest import make_event


def test_behaves_like_baseline_functionally():
    btb = GhrpBTB(entries=256, ways=4)
    event = make_event()
    btb.update(event)
    lookup = btb.lookup(event.pc)
    assert lookup.hit
    assert lookup.target == event.target


def test_storage_includes_predictor_table():
    plain = BaselineBTB(entries=256, ways=4)
    ghrp = GhrpBTB(entries=256, ways=4, predictor_entries=1024)
    assert ghrp.storage_bits() == plain.storage_bits() + 2 * 1024


def test_dead_counters_train_on_unreferenced_eviction():
    btb = GhrpBTB(entries=8, ways=2, predictor_entries=256)
    # Stream of one-shot branches: inserted, never re-referenced, evicted.
    for index in range(200):
        pc = 0x1000_0000 + index * 0x40
        btb.update(make_event(pc=pc, kind=BranchKind.UNCOND_DIRECT, target=pc + 0x800))
    assert max(btb._dead_counters) > 0


def test_predictive_victims_protect_hot_entries():
    """A hot, re-referenced entry should survive a one-shot stream that
    would evict it under plain SRRIP."""
    ghrp = GhrpBTB(entries=64, ways=4, predictor_entries=4096)
    plain = BaselineBTB(entries=64, ways=4)
    hot = make_event(pc=0x5000_0000, kind=BranchKind.UNCOND_DIRECT, target=0x5000_0800)

    def drive(btb):
        hits = 0
        for round_index in range(120):
            lookup = btb.lookup(hot.pc)
            if lookup.hit:
                hits += 1
            btb.update(hot)
            # A burst of one-shot branches between hot re-references.
            for burst in range(12):
                pc = 0x9000_0000 + (round_index * 12 + burst) * 0x40
                btb.update(make_event(pc=pc, kind=BranchKind.UNCOND_DIRECT,
                                      target=pc + 0x800))
        return hits

    assert drive(ghrp) >= drive(plain)


def test_one_shot_stream_miss_rate_not_worse():
    """GHRP must never be functionally wrong, only differently managed."""
    ghrp = GhrpBTB(entries=64, ways=4)
    for index in range(500):
        pc = 0x1000_0000 + (index % 100) * 0x40
        event = make_event(pc=pc, kind=BranchKind.UNCOND_DIRECT, target=pc + 0x800)
        lookup = ghrp.lookup(event.pc)
        ghrp.stats.record_outcome(event, lookup)
        ghrp.update(event)
    assert ghrp.stats.hits > 0


def test_validation():
    with pytest.raises(ValueError):
        GhrpBTB(entries=64, ways=4, predictor_entries=1000)
