"""Unit tests for the Shotgun-like BTB (Section 5.10 comparator)."""

from repro.branch.types import BranchKind
from repro.btb.shotgun import ShotgunBTB

from conftest import make_event


def test_conditionals_go_to_cbtb():
    shotgun = ShotgunBTB()
    event = make_event(kind=BranchKind.COND_DIRECT)
    shotgun.update(event)
    assert shotgun.c_btb.occupancy() == 1
    assert shotgun.u_btb.occupancy() == 0


def test_not_taken_conditionals_occupy_cbtb():
    """Shotgun's C-BTB tracks not-taken conditionals too -- the property
    that lowers its effective hit rate versus a taken-only BTB."""
    shotgun = ShotgunBTB()
    event = make_event(kind=BranchKind.COND_DIRECT, taken=False)
    shotgun.update(event)
    assert shotgun.c_btb.occupancy() == 1


def test_unconditionals_go_to_ubtb():
    shotgun = ShotgunBTB()
    event = make_event(kind=BranchKind.CALL_DIRECT)
    shotgun.update(event)
    assert shotgun.u_btb.occupancy() == 1
    assert shotgun.c_btb.occupancy() == 0


def test_returns_not_stored():
    shotgun = ShotgunBTB()
    event = make_event(kind=BranchKind.RETURN)
    shotgun.update(event)
    assert shotgun.u_btb.occupancy() == 0
    assert shotgun.c_btb.occupancy() == 0


def test_footprint_prefetch_installs_conditionals():
    shotgun = ShotgunBTB(c_entries=64, c_ways=4)
    call_pc, callee = 0x10_0000, 0x20_0000
    cond_pc = callee + 0x40  # within the footprint window of the target
    cond_target = callee + 0x200
    # Learn the unconditional and the conditional that follows its target.
    shotgun.update(make_event(pc=call_pc, kind=BranchKind.CALL_DIRECT, target=callee))
    shotgun.update(make_event(pc=cond_pc, kind=BranchKind.COND_DIRECT, target=cond_target))
    # Evict the conditional by flooding the C-BTB with same-page conds.
    for index in range(400):
        flood_pc = 0x900_0000 + index * 64
        shotgun.update(
            make_event(pc=flood_pc, kind=BranchKind.COND_DIRECT,
                       target=(flood_pc & ~0xFFF) | 0x800)
        )
    assert not shotgun.c_btb.contains(cond_pc)
    # A U-BTB hit triggers the footprint prefetch, reinstalling it.
    lookup = shotgun.lookup(call_pc)
    assert lookup.hit
    assert shotgun.c_btb.contains(cond_pc)
    assert shotgun.prefetch_installs >= 1


def test_footprint_window_limits_recording():
    shotgun = ShotgunBTB(footprint_window=128)
    call_pc, callee = 0x10_0000, 0x20_0000
    far_cond = callee + 0x4000  # outside the window
    shotgun.update(make_event(pc=call_pc, kind=BranchKind.CALL_DIRECT, target=callee))
    shotgun.update(make_event(pc=far_cond, kind=BranchKind.COND_DIRECT, target=callee))
    assert call_pc not in shotgun._footprints or all(
        pc != far_cond for pc, _ in shotgun._footprints.get(call_pc, [])
    )


def test_storage_accounts_for_footprints():
    shotgun = ShotgunBTB()
    bare = shotgun.u_btb.storage_bits() + shotgun.c_btb.storage_bits()
    assert shotgun.storage_bits() > bare
