"""Unit tests for the Figure 11a ablation designs."""

import pytest

from repro.core.ablations import DedupOnlyBTB, partition_only_config
from repro.core.config import PDedeMode
from repro.core.pdede import PDedeBTB

from conftest import make_event, synthetic_branch_set


def test_dedup_only_roundtrip():
    btb = DedupOnlyBTB(entries=128, ways=4, target_entries=64, target_ways=4)
    event = make_event()
    btb.update(event)
    lookup = btb.lookup(event.pc)
    assert lookup.hit
    assert lookup.target == event.target
    assert lookup.latency == 2  # the indirection always costs a cycle


def test_dedup_only_shares_targets():
    btb = DedupOnlyBTB(entries=128, ways=4, target_entries=64, target_ways=4)
    shared_target = 0x5000_0000
    for index in range(10):
        btb.update(make_event(pc=0x1000_0000 + index * 0x40, target=shared_target))
    assert btb.targets.occupancy() == 1
    assert btb.targets.dedup_hits == 9


def test_dedup_only_storage_below_equivalent_baseline():
    """Full-target dedup must actually save bits vs storing 57b per PC."""
    btb = DedupOnlyBTB()
    per_pc_baseline = btb.entries * 75  # baseline entry is 75 bits
    assert btb.storage_bits() < per_pc_baseline


def test_dedup_only_thrash_on_many_targets():
    """A small target table is the design's weakness (why it only buys
    ~1.6% in the paper): many distinct targets evict each other."""
    btb = DedupOnlyBTB(entries=512, ways=8, target_entries=32, target_ways=4)
    pairs = synthetic_branch_set(400, seed=8, same_page_fraction=0.0)
    for pc, target in pairs:
        btb.update(make_event(pc=pc, target=target))
    assert btb.targets.evictions > 0
    # Re-reading an old branch may now see a stale pointer.
    stale_before = btb.stale_pointer_reads
    for pc, target in pairs[:50]:
        btb.lookup(pc)
    assert btb.stale_pointer_reads >= stale_before


def test_dedup_only_confidence_retrain():
    btb = DedupOnlyBTB(entries=128, ways=4, target_entries=64, target_ways=4)
    pc = 0x7000
    btb.update(make_event(pc=pc, target=0x111000))
    for _ in range(4):
        btb.update(make_event(pc=pc, target=0x222000))
    assert btb.lookup(pc).target == 0x222000


def test_dedup_only_rejects_bad_geometry():
    with pytest.raises(ValueError):
        DedupOnlyBTB(entries=0)
    with pytest.raises(ValueError):
        DedupOnlyBTB(entries=100, ways=8)


def test_partition_only_config_disables_delta():
    config = partition_only_config()
    assert not config.delta_encoding
    assert config.mode is PDedeMode.DEFAULT
    btb = PDedeBTB(config)
    # Same-page branch still consumes page/region entries without delta.
    pc = 0x7F00_0040_1000
    btb.update(make_event(pc=pc, target=(pc & ~0xFFF) | 0x800))
    assert btb.page_btb.occupancy() == 1
    assert btb.delta_entry_count() == 0
