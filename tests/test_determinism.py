"""Determinism regression: the properties the linter enforces statically,
verified dynamically -- two same-seed runs must agree to the last bit."""

from __future__ import annotations

from repro.experiments.designs import baseline_design, pdede_design
from repro.frontend.simulator import FrontendSimulator
from repro.workloads.generator import generate_trace
from repro.workloads.spec import CATEGORY_TEMPLATES


def _fresh_trace():
    # Two *independent* generations from the same seed (not a cached
    # object): covers the generator as well as the simulator.
    spec = CATEGORY_TEMPLATES["Server"].replace(
        name="determinism-probe", seed=0xD5EED
    ).with_events(20_000)
    return generate_trace(spec)


def _run(design, trace):
    btb, kwargs = design.build()
    simulator = FrontendSimulator(btb, **kwargs)
    stats = simulator.run(trace, warmup_fraction=0.3)
    return stats, btb


def test_same_seed_runs_are_byte_identical():
    for maker in (pdede_design, baseline_design):
        design = maker()
        first_stats, first_btb = _run(design, _fresh_trace())
        second_stats, second_btb = _run(design, _fresh_trace())
        assert first_stats.to_dict() == second_stats.to_dict(), design.key
        assert first_btb.metrics() == second_btb.metrics(), design.key


def test_same_seed_traces_are_identical():
    first, second = _fresh_trace(), _fresh_trace()
    assert len(first) == len(second)
    assert list(first.events()) == list(second.events())
