"""The decoded-trace engine is an *optimisation*, not a model change:
for every design it must reproduce the frozen seed engine's
FrontendStats exactly (``to_dict()`` equality -- bit-identical floats,
not approximate), and it must engage exactly when its gate says it can.
"""

from __future__ import annotations

import pytest

from repro.checks.sanitizer import Sanitizer, use_sanitizer
from repro.experiments.designs import (
    pdede_design,
    standard_designs,
    two_level_design,
    with_ittage,
    with_perfect_direction,
    with_returns_in_btb,
)
from repro.frontend.seedref import SeedFrontendSimulator, seed_counterpart
from repro.frontend.simulator import FrontendSimulator
from repro.workloads.suite import get_trace

TRACE_SCALE = "tiny"
TRACE_APP = "server_oltp_00"


def _designs():
    designs = dict(standard_designs())
    pdede = designs["pdede-multi-entry"]
    designs["pdede+perfect-direction"] = with_perfect_direction(pdede)
    designs["pdede+returns-in-btb"] = with_returns_in_btb(pdede)
    designs["twolevel-pdede"] = two_level_design(512, pdede_design())
    return designs


def _run_both(design, trace, engine="auto"):
    btb, kwargs = design.build()
    simulator = FrontendSimulator(btb, engine=engine, **kwargs)
    stats = simulator.run(trace, warmup_fraction=0.3)
    seed_btb, seed_kwargs = design.build()
    reference = SeedFrontendSimulator(seed_counterpart(seed_btb), **seed_kwargs)
    seed_stats = reference.run(trace, warmup_fraction=0.3)
    return simulator, stats, seed_stats


@pytest.mark.parametrize("engine", ["vector", "fast"])
@pytest.mark.parametrize("key", sorted(_designs()))
def test_decoded_engines_match_seed_exactly(key, engine):
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    simulator, stats, seed_stats = _run_both(_designs()[key], trace, engine=engine)
    assert simulator.last_engine == engine
    assert stats.to_dict() == seed_stats.to_dict()


@pytest.mark.parametrize("key", sorted(_designs()))
def test_auto_prefers_vector_engine(key):
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    simulator, stats, seed_stats = _run_both(_designs()[key], trace)
    assert simulator.last_engine == "vector"
    assert stats.to_dict() == seed_stats.to_dict()


def test_ittage_falls_back_to_general_engine_and_still_matches():
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    design = with_ittage(standard_designs()["pdede-default"])
    simulator, stats, seed_stats = _run_both(design, trace)
    assert simulator.last_engine == "general"
    assert stats.to_dict() == seed_stats.to_dict()


def test_warmup_zero_matches_seed():
    # warmup_fraction=0 hits the seed's warm_limit==0 quirk: stats are
    # never reset, so the fast loop must not reset them either.
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    design = standard_designs()["pdede-default"]
    btb, kwargs = design.build()
    simulator = FrontendSimulator(btb, **kwargs)
    stats = simulator.run(trace, warmup_fraction=0.0)
    seed_btb, seed_kwargs = design.build()
    seed_stats = SeedFrontendSimulator(seed_counterpart(seed_btb), **seed_kwargs).run(
        trace, warmup_fraction=0.0
    )
    assert simulator.last_engine == "vector"
    assert stats.to_dict() == seed_stats.to_dict()


def test_second_run_uses_general_engine():
    # A reused simulator carries state from the first run; the fast
    # engine's replay assumptions only hold from a pristine start.
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    btb, kwargs = standard_designs()["baseline"].build()
    simulator = FrontendSimulator(btb, **kwargs)
    simulator.run(trace, warmup_fraction=0.3)
    assert simulator.last_engine == "vector"
    simulator.run(trace, warmup_fraction=0.3)
    assert simulator.last_engine == "general"


def test_armed_sanitizer_forces_general_engine():
    # The fast BTB hooks skip sanitizer_step (they are gated on the
    # sanitizer being off); an armed sanitizer must see the full loop.
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    btb, kwargs = standard_designs()["pdede-default"].build()
    simulator = FrontendSimulator(btb, **kwargs)
    with use_sanitizer(Sanitizer(interval=1 << 20)):
        simulator.run(trace, warmup_fraction=0.3)
    assert simulator.last_engine == "general"


def test_post_run_state_matches_live_objects():
    # The fast engine adopts clones of the shared replay state; the
    # post-run icache/direction must look exactly like a live run's.
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    design = standard_designs()["pdede-default"]
    btb, kwargs = design.build()
    fast = FrontendSimulator(btb, **kwargs)
    fast.run(trace, warmup_fraction=0.3)
    seed_btb, seed_kwargs = design.build()
    general = SeedFrontendSimulator(seed_counterpart(seed_btb), **seed_kwargs)
    general.run(trace, warmup_fraction=0.3)
    assert fast.icache.accesses == general.icache.accesses
    assert fast.icache.misses == general.icache.misses
    assert fast.icache._lines == general.icache._lines
    assert fast.direction._history == general.direction._history
    assert fast.direction._rng_state == general.direction._rng_state


def test_btb_metrics_match_between_engines():
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    for key, design in standard_designs().items():
        btb, kwargs = design.build()
        simulator = FrontendSimulator(btb, **kwargs)
        simulator.run(trace, warmup_fraction=0.3)
        seed_btb, seed_kwargs = design.build()
        reference = SeedFrontendSimulator(seed_counterpart(seed_btb), **seed_kwargs)
        reference.run(trace, warmup_fraction=0.3)
        live = btb.stats
        seed = reference.btb.stats
        assert (live.lookups, live.hits, live.misses, live.updates) == (
            seed.lookups, seed.hits, seed.misses, seed.updates
        ), key
        assert live.misses_by_kind == seed.misses_by_kind, key


# -- differential fuzzing ----------------------------------------------------
#
# The parametrised tests above lock the engines together on the suite's
# traces; the fuzz sweep locks them together on *arbitrary* workloads.
# Every spec is derived from a seed (no global RNG, no nondeterminism),
# so a failure reproduces exactly; on divergence the failing workload is
# shrunk to a short prefix and the spec + prefix land in the assertion
# message, ready to paste into a regression test.

import random

from repro.workloads.generator import generate_trace
from repro.workloads.spec import WorkloadSpec

N_FUZZ_SWEEPS = 8
_FUZZ_WARMUP = 0.25


def _fuzz_spec(seed: int) -> WorkloadSpec:
    rng = random.Random(seed)
    return WorkloadSpec(
        name=f"fuzz_{seed:04d}",
        category="fuzz",
        seed=rng.randrange(1 << 30),
        n_events=rng.randrange(1500, 3500),
        n_functions=rng.choice([150, 400, 900]),
        blocks_per_fn_mean=rng.choice([4.0, 9.0, 14.0]),
        block_instrs_mean=rng.choice([3.0, 5.0, 8.0]),
        n_regions=rng.randrange(3, 6),
        functions_per_page_mean=rng.choice([1.5, 4.5, 8.0]),
        loop_fraction=rng.choice([0.1, 0.25, 0.4]),
        mean_trip_count=rng.choice([2.0, 7.0, 20.0]),
        cond_taken_bias=rng.uniform(0.2, 0.8),
        never_taken_fraction=rng.uniform(0.1, 0.6),
        indirect_fanout=rng.randrange(1, 9),
        n_phases=rng.randrange(1, 7),
        hot_functions_per_phase=rng.randrange(4, 40),
        zipf_s=rng.uniform(0.8, 1.6),
        sweep_fraction=rng.uniform(0.0, 0.3),
        max_call_depth=rng.randrange(4, 20),
    )


def _fuzz_design(seed: int):
    rng = random.Random(seed * 2654435761 % (1 << 31))
    designs = dict(standard_designs())
    designs["twolevel-pdede"] = two_level_design(512, pdede_design())
    designs["pdede+perfect-direction"] = with_perfect_direction(
        designs["pdede-multi-entry"]
    )
    # with_ittage forces the general engine, so the sweep exercises the
    # fast *and* the general path against the seed referee.
    designs["pdede+ittage"] = with_ittage(designs["pdede-default"])
    key = rng.choice(sorted(designs))
    return key, designs[key]


def _diff_fields(design, trace, engine="auto") -> dict:
    """Field-by-field diff of one engine tier vs seed stats ({} if equal)."""
    btb, kwargs = design.build()
    live = FrontendSimulator(btb, engine=engine, **kwargs).run(
        trace, warmup_fraction=_FUZZ_WARMUP
    )
    seed_btb, seed_kwargs = design.build()
    ref = SeedFrontendSimulator(seed_counterpart(seed_btb), **seed_kwargs).run(
        trace, warmup_fraction=_FUZZ_WARMUP
    )
    live_dict, ref_dict = live.to_dict(), ref.to_dict()
    return {
        field: (live_dict[field], ref_dict[field])
        for field in sorted(live_dict.keys() | ref_dict.keys())
        if live_dict.get(field) != ref_dict.get(field)
    }


def _shrink_prefix(design, spec, failing_length: int, engine="auto") -> int:
    """Binary-search a short failing prefix of the workload.

    Divergence is not guaranteed monotone in the prefix length, so this
    finds *a* small failing prefix rather than the minimum -- which is
    all a reproduction snippet needs.
    """
    low, high = 1, failing_length
    while low < high:
        mid = (low + high) // 2
        prefix = generate_trace(spec)
        prefix.truncate(mid)
        if _diff_fields(design, prefix, engine=engine):
            high = mid
        else:
            low = mid + 1
    return low


@pytest.mark.parametrize("fuzz_seed", range(N_FUZZ_SWEEPS))
def test_differential_fuzz_engines_agree(fuzz_seed):
    # "auto" resolves to the best applicable tier (vector for most
    # designs, general for ittage); the explicit "fast" pass keeps the
    # middle tier under differential pressure even though auto now
    # prefers the vector engine.
    spec = _fuzz_spec(fuzz_seed)
    design_key, design = _fuzz_design(fuzz_seed)
    trace = generate_trace(spec)
    for engine in ("auto", "fast"):
        try:
            diff = _diff_fields(design, trace, engine=engine)
        except ValueError:
            continue  # tier not applicable to this design
        if diff:
            shrunk = _shrink_prefix(design, spec, len(trace), engine=engine)
            raise AssertionError(
                f"engines diverge on fuzz seed {fuzz_seed} "
                f"(design {design_key!r}, engine {engine!r}, {len(trace)} "
                f"events; shrunk to first {shrunk} events).\n"
                f"Reproduce with: generate_trace({spec!r}).truncate({shrunk})\n"
                "Differing fields (live vs seed): "
                + ", ".join(f"{k}: {a!r} != {b!r}" for k, (a, b) in diff.items())
            )


def test_fuzz_sweep_is_deterministic():
    # The whole sweep must be derivable from seeds alone: same spec
    # object, same trace bytes, both times.
    spec_a, spec_b = _fuzz_spec(3), _fuzz_spec(3)
    assert spec_a == spec_b
    trace_a, trace_b = generate_trace(spec_a), generate_trace(spec_b)
    assert trace_a.pcs == trace_b.pcs
    assert trace_a.targets == trace_b.targets
    assert _fuzz_design(5)[0] == _fuzz_design(5)[0]


# -- literature families (general engine only) -------------------------------
#
# MicroBTB and ShadowBTB opt out of the decoded-trace tiers
# (supports_fast_path = False, like GhrpBTB): victim-fill/promotion and
# fetch-line exposure are invisible to the fast hooks.  Auto must route
# them to the general engine, forced fast/vector must refuse, and the
# general engine must still match the frozen seed referee exactly.

from repro.experiments.designs import micro_btb_design, shadow_design


def _literature_designs():
    return {
        "micro-btb": micro_btb_design(),
        "shadow-baseline": shadow_design("baseline"),
        "shadow-pdede": shadow_design("pdede"),
    }


@pytest.mark.parametrize("key", sorted(_literature_designs()))
def test_literature_families_fall_back_to_general_and_match_seed(key):
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    design = _literature_designs()[key]
    simulator, stats, seed_stats = _run_both(design, trace)
    assert simulator.last_engine == "general"
    assert stats.to_dict() == seed_stats.to_dict()


@pytest.mark.parametrize("engine", ["vector", "fast"])
@pytest.mark.parametrize("key", sorted(_literature_designs()))
def test_literature_families_refuse_forced_fast_tiers(key, engine):
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    btb, kwargs = _literature_designs()[key].build()
    simulator = FrontendSimulator(btb, engine=engine, **kwargs)
    with pytest.raises(ValueError, match="not applicable"):
        simulator.run(trace, warmup_fraction=0.3)


@pytest.mark.parametrize("fuzz_seed", range(4))
def test_differential_fuzz_literature_families(fuzz_seed):
    """The seedref differential sweep over the opted-out families: the
    general engine vs the referee on randomized workloads."""
    spec = _fuzz_spec(1000 + fuzz_seed)
    designs = _literature_designs()
    key = sorted(designs)[fuzz_seed % len(designs)]
    trace = generate_trace(spec)
    diff = _diff_fields(designs[key], trace)
    if diff:
        shrunk = _shrink_prefix(designs[key], spec, len(trace))
        raise AssertionError(
            f"general engine diverges from seed referee on fuzz seed "
            f"{1000 + fuzz_seed} (design {key!r}, {len(trace)} events; "
            f"shrunk to first {shrunk} events).\n"
            f"Reproduce with: generate_trace({spec!r}).truncate({shrunk})\n"
            f"Diverging fields: {diff}"
        )
