"""The decoded-trace engine is an *optimisation*, not a model change:
for every design it must reproduce the frozen seed engine's
FrontendStats exactly (``to_dict()`` equality -- bit-identical floats,
not approximate), and it must engage exactly when its gate says it can.
"""

from __future__ import annotations

import pytest

from repro.checks.sanitizer import Sanitizer, use_sanitizer
from repro.experiments.designs import (
    pdede_design,
    standard_designs,
    two_level_design,
    with_ittage,
    with_perfect_direction,
    with_returns_in_btb,
)
from repro.frontend.seedref import SeedFrontendSimulator, seed_counterpart
from repro.frontend.simulator import FrontendSimulator
from repro.workloads.suite import get_trace

TRACE_SCALE = "tiny"
TRACE_APP = "server_oltp_00"


def _designs():
    designs = dict(standard_designs())
    pdede = designs["pdede-multi-entry"]
    designs["pdede+perfect-direction"] = with_perfect_direction(pdede)
    designs["pdede+returns-in-btb"] = with_returns_in_btb(pdede)
    designs["twolevel-pdede"] = two_level_design(512, pdede_design())
    return designs


def _run_both(design, trace):
    btb, kwargs = design.build()
    simulator = FrontendSimulator(btb, **kwargs)
    stats = simulator.run(trace, warmup_fraction=0.3)
    seed_btb, seed_kwargs = design.build()
    reference = SeedFrontendSimulator(seed_counterpart(seed_btb), **seed_kwargs)
    seed_stats = reference.run(trace, warmup_fraction=0.3)
    return simulator, stats, seed_stats


@pytest.mark.parametrize("key", sorted(_designs()))
def test_fast_engine_matches_seed_exactly(key):
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    simulator, stats, seed_stats = _run_both(_designs()[key], trace)
    assert simulator.last_engine == "fast"
    assert stats.to_dict() == seed_stats.to_dict()


def test_ittage_falls_back_to_general_engine_and_still_matches():
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    design = with_ittage(standard_designs()["pdede-default"])
    simulator, stats, seed_stats = _run_both(design, trace)
    assert simulator.last_engine == "general"
    assert stats.to_dict() == seed_stats.to_dict()


def test_warmup_zero_matches_seed():
    # warmup_fraction=0 hits the seed's warm_limit==0 quirk: stats are
    # never reset, so the fast loop must not reset them either.
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    design = standard_designs()["pdede-default"]
    btb, kwargs = design.build()
    simulator = FrontendSimulator(btb, **kwargs)
    stats = simulator.run(trace, warmup_fraction=0.0)
    seed_btb, seed_kwargs = design.build()
    seed_stats = SeedFrontendSimulator(seed_counterpart(seed_btb), **seed_kwargs).run(
        trace, warmup_fraction=0.0
    )
    assert simulator.last_engine == "fast"
    assert stats.to_dict() == seed_stats.to_dict()


def test_second_run_uses_general_engine():
    # A reused simulator carries state from the first run; the fast
    # engine's replay assumptions only hold from a pristine start.
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    btb, kwargs = standard_designs()["baseline"].build()
    simulator = FrontendSimulator(btb, **kwargs)
    simulator.run(trace, warmup_fraction=0.3)
    assert simulator.last_engine == "fast"
    simulator.run(trace, warmup_fraction=0.3)
    assert simulator.last_engine == "general"


def test_armed_sanitizer_forces_general_engine():
    # The fast BTB hooks skip sanitizer_step (they are gated on the
    # sanitizer being off); an armed sanitizer must see the full loop.
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    btb, kwargs = standard_designs()["pdede-default"].build()
    simulator = FrontendSimulator(btb, **kwargs)
    with use_sanitizer(Sanitizer(interval=1 << 20)):
        simulator.run(trace, warmup_fraction=0.3)
    assert simulator.last_engine == "general"


def test_post_run_state_matches_live_objects():
    # The fast engine adopts clones of the shared replay state; the
    # post-run icache/direction must look exactly like a live run's.
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    design = standard_designs()["pdede-default"]
    btb, kwargs = design.build()
    fast = FrontendSimulator(btb, **kwargs)
    fast.run(trace, warmup_fraction=0.3)
    seed_btb, seed_kwargs = design.build()
    general = SeedFrontendSimulator(seed_counterpart(seed_btb), **seed_kwargs)
    general.run(trace, warmup_fraction=0.3)
    assert fast.icache.accesses == general.icache.accesses
    assert fast.icache.misses == general.icache.misses
    assert fast.icache._lines == general.icache._lines
    assert fast.direction._history == general.direction._history
    assert fast.direction._rng_state == general.direction._rng_state


def test_btb_metrics_match_between_engines():
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    for key, design in standard_designs().items():
        btb, kwargs = design.build()
        simulator = FrontendSimulator(btb, **kwargs)
        simulator.run(trace, warmup_fraction=0.3)
        seed_btb, seed_kwargs = design.build()
        reference = SeedFrontendSimulator(seed_counterpart(seed_btb), **seed_kwargs)
        reference.run(trace, warmup_fraction=0.3)
        live = btb.stats
        seed = reference.btb.stats
        assert (live.lookups, live.hits, live.misses, live.updates) == (
            seed.lookups, seed.hits, seed.misses, seed.updates
        ), key
        assert live.misses_by_kind == seed.misses_by_kind, key
