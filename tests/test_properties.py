"""Property-based tests (hypothesis) on core data structures and invariants."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.branch.address import (
    ADDRESS_MASK,
    OFFSET_BITS,
    PAGE_IN_REGION_BITS,
    REGION_BITS,
    fold_bits,
    join_target,
    page_distance,
    same_page,
    split_target,
)
from repro.branch.types import BranchEvent, BranchKind
from repro.btb.baseline import BaselineBTB
from repro.btb.ras import ReturnAddressStack
from repro.btb.replacement import make_replacement_policy
from repro.core.config import PDedeConfig
from repro.core.pdede import PDedeBTB
from repro.core.tables import DedupValueTable

addresses = st.integers(min_value=0, max_value=ADDRESS_MASK)
small_addresses = st.integers(min_value=0, max_value=(1 << 40) - 1)


@given(addresses)
def test_split_join_roundtrip(addr):
    region, page, offset = split_target(addr)
    assert join_target(region, page, offset) == addr
    assert 0 <= region < (1 << REGION_BITS)
    assert 0 <= page < (1 << PAGE_IN_REGION_BITS)
    assert 0 <= offset < (1 << OFFSET_BITS)


@given(addresses, addresses)
def test_same_page_iff_zero_distance(a, b):
    assert same_page(a, b) == (page_distance(a, b) == 0)


@given(addresses, st.integers(min_value=1, max_value=32))
def test_fold_bits_width_bound(value, width):
    assert 0 <= fold_bits(value, width) < (1 << width)


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64))
def test_ras_is_bounded_lifo(pushes):
    """The RAS pops the most recent min(len, depth) pushes, in reverse."""
    depth = 8
    ras = ReturnAddressStack(depth=depth)
    for value in pushes:
        ras.push(value)
    expected = list(reversed(pushes[-depth:]))
    popped = [ras.pop() for _ in range(len(expected))]
    assert popped == expected
    assert ras.pop() is None or len(pushes) > depth


@given(
    st.sampled_from(["lru", "fifo", "random", "srrip"]),
    st.integers(min_value=1, max_value=8),
    st.lists(st.integers(min_value=0, max_value=7), max_size=50),
)
def test_replacement_victim_always_legal(policy_name, ways, touches):
    policy = make_replacement_policy(policy_name, ways)
    valid = [False] * ways
    for touch in touches:
        way = touch % ways
        if valid[way]:
            policy.on_hit(way)
        else:
            valid[way] = True
            policy.on_insert(way)
        victim = policy.victim(valid)
        assert 0 <= victim < ways
        # Invalid ways must be preferred while any exist.
        if not all(valid):
            assert not valid[victim]


@given(st.lists(st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=1, max_size=200))
def test_dedup_table_read_returns_last_allocated_value(values):
    table = DedupValueTable(entries=16, ways=4, value_bits=16)
    for value in values:
        pointer, generation = table.allocate(value)
        assert table.read(pointer) == value
        assert not table.is_stale(pointer, generation)


@given(st.lists(st.integers(min_value=0, max_value=(1 << 16) - 1), min_size=1, max_size=100))
def test_dedup_table_never_stores_value_twice(values):
    table = DedupValueTable(entries=64, ways=4, value_bits=16)
    for value in values:
        table.allocate(value)
    stored = []
    for set_index in range(table.sets):
        for way in range(table.ways):
            if table._valid[set_index][way]:
                stored.append(table._values[set_index][way])
    assert len(stored) == len(set(stored))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(small_addresses, small_addresses), min_size=1, max_size=120))
def test_baseline_btb_update_then_lookup_consistent(pairs):
    """Immediately after a taken update, the BTB predicts that target
    (a matching tag must return the just-trained target)."""
    btb = BaselineBTB(entries=64, ways=4)
    for pc, target in pairs:
        event = BranchEvent(pc, BranchKind.UNCOND_DIRECT, True, target, 0)
        btb.update(event)
        lookup = btb.lookup(pc)
        assert lookup.hit
        # Confidence may protect an older target for an aliased PC, but
        # for the *same* PC trained twice the newest prevails eventually.


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.tuples(small_addresses, small_addresses), min_size=1, max_size=120),
    st.sampled_from(["default", "multi_target", "multi_entry"]),
)
def test_pdede_occupancy_and_latency_invariants(pairs, mode_value):
    from repro.core.config import PDedeMode

    config = PDedeConfig(
        btbm_entries=128, btbm_ways=8, page_entries=32, page_ways=4,
        region_entries=4, mode=PDedeMode(mode_value),
    )
    btb = PDedeBTB(config)
    for pc, target in pairs:
        event = BranchEvent(pc, BranchKind.UNCOND_DIRECT, True, target, 0)
        btb.update(event)
        lookup = btb.lookup(pc)
        if lookup.hit:
            assert lookup.latency in (1, 2)
            if same_page(pc, target) and lookup.provider == "btbm-delta":
                assert lookup.latency == 1
    assert btb.occupancy() <= config.btbm_entries
    assert btb.page_btb.occupancy() <= config.page_entries
    assert btb.region_btb.occupancy() <= config.region_entries


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_generator_invariants_hold_for_any_seed(seed):
    from repro.branch.types import BranchKind
    from repro.workloads.generator import generate_trace
    from repro.workloads.spec import WorkloadSpec

    spec = WorkloadSpec(
        name="prop", category="Server", seed=seed, n_events=600,
        n_functions=120, hot_functions_per_phase=30, phase_calls=50,
        n_regions=4,
    )
    trace = generate_trace(spec)
    assert len(trace) == 600
    stack = []
    for pc, kind, taken, target, gap in trace.events():
        kind = BranchKind(kind)
        assert gap >= 0
        if kind.is_unconditional:
            assert taken
        if not taken:
            assert target == pc + 4
        if kind.is_call and taken:
            stack.append(pc + 4)
        if kind.is_return:
            assert stack and stack.pop() == target


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_characterization_kind_mix_is_a_distribution(seed):
    """The profile's kind mix is a probability distribution over taken
    branches: every fraction in [0, 1], summing to exactly 1."""
    from repro.analysis.characterize import characterize
    from repro.workloads.generator import generate_trace
    from repro.workloads.spec import WorkloadSpec

    spec = WorkloadSpec(
        name="prop_mix", category="Server", seed=seed, n_events=600,
        n_functions=120, hot_functions_per_phase=30, phase_calls=50,
        n_regions=4,
    )
    profile = characterize(generate_trace(spec))
    assert all(0.0 <= fraction <= 1.0 for fraction in profile.kind_mix.values())
    assert sum(profile.kind_mix.values()) == pytest.approx(1.0)
    assert sum(profile.distance_buckets.values()) == pytest.approx(1.0)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=1, max_value=599),
)
def test_characterization_footprint_monotone_in_prefix(seed, cut):
    """Watching more of a capture can only grow its footprint: every
    uniqueness count of a prefix is <= the full trace's, and the
    region/page/target counts respect the address hierarchy."""
    from repro.analysis.characterize import characterize
    from repro.workloads.generator import generate_trace
    from repro.workloads.spec import WorkloadSpec

    spec = WorkloadSpec(
        name="prop_footprint", category="Server", seed=seed, n_events=600,
        n_functions=120, hot_functions_per_phase=30, phase_calls=50,
        n_regions=4,
    )
    full_trace = generate_trace(spec)
    full = characterize(full_trace)
    prefix_trace = generate_trace(spec)
    prefix_trace.truncate(cut)
    prefix = characterize(prefix_trace)
    for metric in ("unique_pcs", "unique_targets", "unique_regions",
                   "unique_pages"):
        assert getattr(prefix, metric) <= getattr(full, metric), metric
    for profile in (prefix, full):
        assert profile.unique_regions <= profile.unique_pages
        assert profile.unique_pages <= profile.unique_targets
