"""Round-trip and acceptance tests for the RBT ingestion formats.

Mirrors the differential-fuzz style of ``test_textformat_roundtrip.py``
for *both* RBT framings: seeded random traces sweep the full event
space, each must survive text -> Trace and binary -> Trace bit-exactly
(and text -> binary -> text as a fixed point), with failing seeds
binary-search shrunk to a short reproducing prefix.  Malformed input
must fail with a structured :class:`IngestError` carrying a stable
code, and the committed sample capture must convert through ``repro
convert``, pass the characterization gate, and simulate identically to
the frozen seed engine for both new design families (their documented
engine opt-out).
"""

from __future__ import annotations

import io
import json
import random
from pathlib import Path

import pytest

from repro.branch.types import BranchKind
from repro.workloads.ingest import (
    IngestError,
    detect_format,
    dump_any,
    dump_binary,
    dump_text,
    import_trace,
    load_any,
    load_binary,
    load_text,
)
from repro.workloads.trace import Trace

N_FUZZ_SWEEPS = 16
_KINDS = list(BranchKind)

FIXTURES = Path(__file__).parent / "fixtures"
SAMPLE_TRACE = FIXTURES / "sample_trace.rbt"


def _random_trace(seed: int, n_events: int | None = None) -> Trace:
    """A seeded trace hitting the formats' full value space."""
    rng = random.Random(seed * 2654435761 % (1 << 31))
    trace = Trace(name=f"fuzz-{seed}", category="Fuzz")
    for _ in range(n_events if n_events is not None else rng.randrange(1, 200)):
        kind = rng.choice(_KINDS)
        taken = True if kind.is_unconditional else rng.random() < 0.5
        pc = rng.choice((0, 1, rng.getrandbits(rng.choice((16, 32, 48, 63)))))
        target = rng.choice((0, pc, pc + 4, rng.getrandbits(48)))
        gap = rng.choice((0, 1, rng.randrange(0, 10_000)))
        trace.append(pc, kind, taken, target, gap)
    return trace


def _columns(trace: Trace) -> list[tuple[int, int, bool, int, int]]:
    return list(trace.events())


def _roundtrip_text(trace: Trace) -> Trace:
    buffer = io.StringIO()
    dump_text(trace, buffer)
    buffer.seek(0)
    return load_text(buffer)


def _roundtrip_binary(trace: Trace) -> Trace:
    buffer = io.BytesIO()
    dump_binary(trace, buffer)
    return load_binary(buffer.getvalue())


def _diverges(trace: Trace) -> bool:
    for loaded in (_roundtrip_text(trace), _roundtrip_binary(trace)):
        if (
            _columns(loaded) != _columns(trace)
            or loaded.name != trace.name
            or loaded.category != trace.category
        ):
            return True
    return False


def _shrink_prefix(seed: int, failing_length: int) -> int:
    """Binary-search a short failing prefix (not minimal, just small
    enough to eyeball)."""
    low, high = 1, failing_length
    while low < high:
        mid = (low + high) // 2
        prefix = _random_trace(seed, failing_length)
        prefix.truncate(mid)
        if _diverges(prefix):
            high = mid
        else:
            low = mid + 1
    return low


@pytest.mark.parametrize("fuzz_seed", range(N_FUZZ_SWEEPS))
def test_random_traces_roundtrip_both_framings(fuzz_seed):
    trace = _random_trace(fuzz_seed)
    if _diverges(trace):
        shrunk = _shrink_prefix(fuzz_seed, len(trace))
        repro = _random_trace(fuzz_seed, len(trace))
        repro.truncate(shrunk)
        buffer = io.StringIO()
        dump_text(repro, buffer)
        pytest.fail(
            f"seed {fuzz_seed}: RBT round-trip diverges; {shrunk}-event "
            f"reproduction:\n{buffer.getvalue()}"
        )
    # The second generation is identical, so the property is stable.
    assert _columns(_random_trace(fuzz_seed)) == _columns(trace)


@pytest.mark.parametrize("fuzz_seed", range(N_FUZZ_SWEEPS))
def test_text_binary_text_is_a_fixed_point(fuzz_seed):
    """Cross-framing: text -> binary -> text loses nothing."""
    trace = _random_trace(fuzz_seed)
    first = io.StringIO()
    dump_text(trace, first)
    via_binary = _roundtrip_binary(trace)
    second = io.StringIO()
    dump_text(via_binary, second)
    assert second.getvalue() == first.getvalue()


def test_empty_trace_roundtrips():
    trace = Trace(name="empty", category="Fuzz")
    for loaded in (_roundtrip_text(trace), _roundtrip_binary(trace)):
        assert len(loaded) == 0
        assert loaded.name == "empty"
        assert loaded.category == "Fuzz"


# -- structured errors -------------------------------------------------------


@pytest.mark.parametrize(
    "lines, code",
    [
        (["7 COND T 0 0"], "bad-magic"),                       # no magic line
        (["%RBT"], "bad-magic"),                               # magic, no version
        (["%RBT two"], "bad-magic"),                           # non-numeric version
        (["%RBT 99"], "unsupported-version"),
        ([], "bad-magic"),                                     # empty input
        (["%RBT 1", "0 COND T 0"], "bad-record"),              # 4 fields
        (["%RBT 1", "zz COND T 0 0"], "bad-record"),           # bad hex
        (["%RBT 1", "0 WAT T 0 0"], "bad-kind"),
        (["%RBT 1", "0 COND X 0 0"], "bad-taken"),
        (["%RBT 1", "0 JMP N 0 0"], "bad-taken"),              # impossible combo
        (["%RBT 1", "0 COND T 0 -1"], "bad-gap"),
        (["%RBT 1", "ffffffffffffffff1 COND T 0 0"], "bad-address"),
    ],
)
def test_malformed_text_raises_coded_errors(lines, code):
    with pytest.raises(IngestError) as excinfo:
        load_text(lines)
    assert excinfo.value.code == code
    assert excinfo.value.line is not None


def _binary_bytes(trace: Trace) -> bytearray:
    buffer = io.BytesIO()
    dump_binary(trace, buffer)
    return bytearray(buffer.getvalue())


def test_binary_truncation_is_a_structured_error():
    blob = _binary_bytes(_random_trace(3, 20))
    with pytest.raises(IngestError) as excinfo:
        load_binary(bytes(blob[:-1]))
    assert excinfo.value.code == "truncated"
    assert excinfo.value.offset is not None


def test_binary_trailing_data_is_a_structured_error():
    blob = _binary_bytes(_random_trace(4, 5))
    with pytest.raises(IngestError) as excinfo:
        load_binary(bytes(blob) + b"\x00")
    assert excinfo.value.code == "trailing-data"


def test_binary_bad_magic_and_version():
    blob = _binary_bytes(_random_trace(5, 2))
    with pytest.raises(IngestError) as excinfo:
        load_binary(b"XYZ" + bytes(blob[3:]))
    assert excinfo.value.code == "bad-magic"
    with pytest.raises(IngestError) as excinfo:
        load_binary(bytes(blob[:3]) + b"\x09" + bytes(blob[4:]))
    assert excinfo.value.code == "unsupported-version"


def test_binary_bad_flags_byte():
    trace = Trace(name="t", category="c")
    trace.append(0x1000, BranchKind.COND_DIRECT, True, 0x2000, 1)
    blob = _binary_bytes(trace)
    # The single record's flags byte follows magic + 3 header varints
    # (1-byte name, 1-byte category, count).
    flags_at = 4 + 1 + 1 + 1 + 1 + 1
    blob[flags_at] = 0x7  # kind 7 does not exist
    with pytest.raises(IngestError) as excinfo:
        load_binary(bytes(blob))
    assert excinfo.value.code == "bad-record"
    blob[flags_at] = 0x1  # JMP without the taken bit: impossible
    with pytest.raises(IngestError) as excinfo:
        load_binary(bytes(blob))
    assert excinfo.value.code == "bad-taken"


# -- sniffing and the front door ---------------------------------------------


def test_detect_format_and_load_any(tmp_path):
    from repro.workloads.textformat import dump_trace as dump_legacy

    trace = _random_trace(11)
    paths = {
        "rbt-text": tmp_path / "t.rbt",
        "rbt-binary": tmp_path / "t.rbtb",
        "npz": tmp_path / "t.npz",
        "legacy-text": tmp_path / "t.trace",
    }
    dump_text(trace, paths["rbt-text"])
    dump_binary(trace, paths["rbt-binary"])
    trace.save(paths["npz"])
    dump_legacy(trace, paths["legacy-text"])
    for fmt in sorted(paths):
        assert detect_format(paths[fmt]) == fmt, fmt
        loaded = load_any(paths[fmt])
        assert _columns(loaded) == _columns(trace), fmt


def test_dump_any_infers_framing_from_suffix(tmp_path):
    trace = _random_trace(12)
    assert dump_any(trace, tmp_path / "x.rbtb") == "rbt-binary"
    assert dump_any(trace, tmp_path / "x.weird") == "rbt-text"
    assert dump_any(trace, tmp_path / "x.rbt", fmt="rbt-binary") == "rbt-binary"
    assert detect_format(tmp_path / "x.rbt") == "rbt-binary"
    with pytest.raises(ValueError, match="unknown trace format"):
        dump_any(trace, tmp_path / "x.rbt", fmt="cbor")


# -- the import gate ---------------------------------------------------------


def test_import_trace_gates_out_of_envelope_captures(tmp_path):
    from repro.analysis.characterize import EnvelopeError

    # A degenerate capture: one branch in a tight never-taken loop.
    bad = Trace(name="degenerate", category="Fuzz")
    for _ in range(512):
        bad.append(0x1000, BranchKind.COND_DIRECT, False, 0x1004, 1)
    path = tmp_path / "bad.rbt"
    dump_text(bad, path)
    with pytest.raises(EnvelopeError) as excinfo:
        import_trace(path)
    rendered = str(excinfo.value)
    assert "dynamic_taken_fraction" in rendered
    assert "--no-gate" in rendered
    # gate=False still loads and profiles.
    loaded, profile = import_trace(path, gate=False)
    assert len(loaded) == 512
    assert profile.dynamic_taken_fraction == 0.0


def test_sample_fixture_passes_the_gate():
    trace, profile = import_trace(SAMPLE_TRACE)
    assert trace.name == "sample_capture"
    assert trace.category == "Server"
    assert profile.n_events == len(trace) == 4096
    mix_sum = sum(profile.kind_mix.values())
    assert mix_sum == pytest.approx(1.0)


# -- acceptance: convert CLI + new families over the sample capture ----------


def test_convert_cli_roundtrips_the_sample_trace(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "sample.rbtb"
    profile_out = tmp_path / "profile.json"
    assert main(["convert", str(SAMPLE_TRACE), str(out),
                 "--profile-out", str(profile_out)]) == 0
    stderr = capsys.readouterr().err
    assert "characterization gate passed" in stderr
    assert detect_format(out) == "rbt-binary"
    converted = load_any(out)
    original = load_text(SAMPLE_TRACE)
    assert _columns(converted) == _columns(original)
    profile = json.loads(profile_out.read_text())
    assert profile["name"] == "sample_capture"
    assert profile["n_events"] == 4096


def test_convert_cli_rejects_out_of_envelope_input(tmp_path, capsys):
    from repro.cli import main

    bad = Trace(name="degenerate", category="Fuzz")
    for _ in range(512):
        bad.append(0x1000, BranchKind.COND_DIRECT, False, 0x1004, 1)
    source = tmp_path / "bad.rbt"
    dump_text(bad, source)
    assert main(["convert", str(source), str(tmp_path / "bad.rbtb")]) == 1
    assert "characterization envelope" in capsys.readouterr().err
    # --no-gate converts anyway.
    assert main(["convert", str(source), str(tmp_path / "bad.rbtb"),
                 "--no-gate"]) == 0


@pytest.mark.parametrize("design_key", ["micro-btb", "shadow-baseline",
                                        "shadow-pdede"])
def test_new_families_match_seed_engine_on_the_sample_trace(design_key):
    """The acceptance criterion: the shipped capture simulates
    byte-identically between the auto-selected engine and the frozen
    seed referee for both new families.  Both classes opt out of the
    fast/vector tiers (``supports_fast_path = False``), so auto resolves
    to the general engine -- the documented equivalent of cross-engine
    byte-identity for these designs."""
    from repro.experiments import design_registry
    from repro.frontend.seedref import SeedFrontendSimulator, seed_counterpart
    from repro.frontend.simulator import FrontendSimulator
    from repro.serve.protocol import stats_payload

    trace, _profile = import_trace(SAMPLE_TRACE)
    design = design_registry()[design_key]

    btb, kwargs = design.build()
    assert not getattr(btb, "supports_fast_path", True)
    simulator = FrontendSimulator(btb, **kwargs)
    live = simulator.run(trace, warmup_fraction=0.3)
    assert simulator.last_engine == "general"

    seed_btb, seed_kwargs = design.build()
    seed = SeedFrontendSimulator(seed_counterpart(seed_btb), **seed_kwargs)
    reference = seed.run(trace, warmup_fraction=0.3)

    assert stats_payload(live) == stats_payload(reference)
    assert btb.stats.to_dict() == seed_btb.stats.to_dict()


def test_simulate_cli_runs_an_imported_trace(capsys):
    from repro.cli import main

    assert main(["simulate", "--trace", str(SAMPLE_TRACE), "micro-btb"]) == 0
    out = capsys.readouterr().out
    assert "sample_capture x micro-btb" in out
    assert "BTB MPKI" in out
