"""Tests for the calibration scorecard."""

import pytest

from repro.analysis.validation import (
    CALIBRATION_TARGETS,
    CalibrationTarget,
    measure_calibration_values,
    validate_suite,
    validate_trace,
)
from repro.workloads.suite import build_suite, get_trace


def test_targets_cover_every_section3_statistic():
    keys = {target.key for target in CALIBRATION_TARGETS}
    assert keys == {
        "static_taken", "dynamic_taken", "unique_targets", "unique_regions",
        "unique_pages", "unique_offsets", "targets_per_page",
        "targets_per_region", "same_page",
    }


def test_target_check_bounds():
    target = CalibrationTarget("x", "", 0.5, 0.4, 0.6)
    assert target.check(0.4)
    assert target.check(0.6)
    assert not target.check(0.39)
    assert not target.check(0.61)


def test_measure_values_complete():
    trace = get_trace("server_oltp_00", "tiny")
    values = measure_calibration_values(trace)
    assert set(values) == {target.key for target in CALIBRATION_TARGETS}


def test_validate_trace_renders():
    result = validate_trace(get_trace("server_oltp_00", "tiny"))
    text = result.render()
    assert "calibration scorecard" in text
    assert "same_page" in text


def test_suite_mean_passes_calibration():
    """The shipped suite must stay inside every published band.

    (Suite *means* are what the paper's figures report; individual apps
    may legitimately sit outside a band.)
    """
    traces = [get_trace(spec.name, "smoke") for spec in build_suite("smoke")]
    result = validate_suite(traces)
    assert result.all_passed, result.render()


def test_validate_suite_rejects_empty():
    with pytest.raises(ValueError):
        validate_suite([])
