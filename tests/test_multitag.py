"""Unit tests for the rejected multi-tag partitioned BTB (Section 4.2)."""

import pytest

from repro.core.multitag import MultiTagPartitionedBTB

from conftest import make_event

SAME_PAGE_PC = 0x7F00_0040_1000
SAME_PAGE_TARGET = 0x7F00_0040_1F00
DIFF_PAGE_TARGET = 0x7F11_2233_4450


def small() -> MultiTagPartitionedBTB:
    return MultiTagPartitionedBTB(
        offset_entries=256, offset_ways=8,
        page_entries=32, page_ways=4, page_slots=2,
        region_entries=4, region_slots=8,
    )


def test_roundtrip_same_page():
    btb = small()
    event = make_event(pc=SAME_PAGE_PC, target=SAME_PAGE_TARGET)
    btb.update(event)
    lookup = btb.lookup(event.pc)
    assert lookup.hit
    assert lookup.target == SAME_PAGE_TARGET
    assert lookup.latency == 1


def test_roundtrip_different_page():
    btb = small()
    event = make_event(pc=SAME_PAGE_PC, target=DIFF_PAGE_TARGET)
    btb.update(event)
    lookup = btb.lookup(event.pc)
    assert lookup.hit
    assert lookup.target == DIFF_PAGE_TARGET
    assert lookup.latency == 2


def test_sharing_limit_forces_overflow():
    """The design's weakness: only ``slots`` PCs may share one page."""
    btb = small()
    page = DIFF_PAGE_TARGET & ~0xFFF
    # Map many branches (same offset-table set irrelevant) to one page.
    pcs = [0x7F00_0000_0000 + index * 0x40 for index in range(20)]
    for pc in pcs:
        btb.update(make_event(pc=pc, target=page | 0x10))
    assert btb.sharing_overflows > 0


def test_component_loss_produces_miss_not_wrong_target():
    btb = MultiTagPartitionedBTB(
        offset_entries=256, offset_ways=8,
        page_entries=4, page_ways=4, page_slots=1,
        region_entries=2, region_slots=2,
    )
    first = make_event(pc=0x7F00_0000_1000, target=0x0100_0000_0000)
    btb.update(first)
    # Flood the tiny shared tables with other pages/regions.
    for index in range(1, 30):
        btb.update(
            make_event(pc=0x7F00_0000_1000 + index * 0x40, target=(index + 1) << 41)
        )
    lookup = btb.lookup(first.pc)
    # Either the offset entry survived but its components are gone
    # (component-miss) or everything is consistent; never a wrong target.
    if lookup.provider == "component-miss":
        assert not lookup.hit
    elif lookup.hit:
        assert lookup.target == first.target


def test_tag_overhead_visible_in_storage():
    cheap = MultiTagPartitionedBTB(page_slots=2)
    expensive = MultiTagPartitionedBTB(page_slots=8)
    assert expensive.storage_bits() > cheap.storage_bits()


def test_not_taken_ignored():
    btb = small()
    btb.update(make_event(taken=False))
    assert not btb.lookup(make_event().pc).hit


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        MultiTagPartitionedBTB(offset_entries=100, offset_ways=8)
