"""Unit tests for core parameters and pipeline scaling."""

import pytest

from repro.frontend.params import CoreParams, ICELAKE


def test_icelake_defaults_sane():
    assert ICELAKE.fetch_width >= ICELAKE.commit_width
    assert ICELAKE.execute_resteer_cycles > ICELAKE.decode_resteer_cycles
    assert ICELAKE.fetch_queue_entries == 64


def test_scaled_pipeline_widens_and_deepens():
    scaled = ICELAKE.scaled_pipeline(2.0)
    assert scaled.fetch_width == ICELAKE.fetch_width * 2
    assert scaled.commit_width == ICELAKE.commit_width * 2
    assert scaled.fetch_queue_entries == ICELAKE.fetch_queue_entries * 2
    assert scaled.decode_resteer_cycles == ICELAKE.decode_resteer_cycles * 2
    assert scaled.execute_resteer_cycles == ICELAKE.execute_resteer_cycles * 2


def test_scaled_pipeline_identity():
    assert ICELAKE.scaled_pipeline(1.0) == ICELAKE


def test_with_fetch_queue():
    sized = ICELAKE.with_fetch_queue(128)
    assert sized.fetch_queue_entries == 128
    assert sized.fetch_width == ICELAKE.fetch_width


def test_max_slack():
    params = CoreParams(fetch_width=6, commit_width=5, fetch_queue_entries=50)
    assert params.max_slack_cycles == 10


def test_validation():
    with pytest.raises(ValueError):
        CoreParams(fetch_width=0)
    with pytest.raises(ValueError):
        CoreParams(fetch_width=4, commit_width=5)
    with pytest.raises(ValueError):
        CoreParams(fetch_queue_entries=0)


def test_params_hashable_for_result_caching():
    assert hash(ICELAKE) == hash(CoreParams())
