"""Contract tests for the pluggable shared result store.

One parametrized suite runs the full :class:`ResultStore` protocol --
result round-trips, lease CAS exclusivity under real thread races, TTL
expiry + orphan takeover, corrupt-value quarantine -- against every
backend: :class:`FakeStore` and :class:`DiskStore` always, and
:class:`RedisStore` when ``REPRO_REDIS_URL`` points at a live server
(the CI ``store-suite`` job runs a Redis service container; locally the
parameter skips).  The :func:`fetch_or_compute` single-flight state
machine is then unit-tested over the fake's injectable clock and fault
schedules.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments import resultstore
from repro.experiments.resultstore import (
    DiskStore,
    FakeStore,
    RedisStore,
    StoreError,
    decode_result,
    encode_result,
    fetch_or_compute,
    store_from_url,
)
from repro.frontend.stats import FrontendStats
from repro.obs import events as obs_events
from repro.obs.metrics import MetricsRegistry, use_registry

# Captured at import time, before the autouse hermetic fixture strips
# REPRO_REDIS_* from the environment: opting in to the Redis backend is
# a property of the test *invocation*, not of any single test's env.
_REDIS_URL = os.environ.get("REPRO_REDIS_URL")


class _MiniRedis(threading.Thread):
    """A stdlib RESP2 server speaking the command subset RedisStore
    uses (GET/SET NX PX/DEL/EXISTS/PEXPIRE/RENAME/PING/AUTH/SELECT), so
    the wire protocol is contract-tested on every machine -- a real
    Redis (``REPRO_REDIS_URL``) is an extra backend, not a requirement.
    """

    def __init__(self) -> None:
        super().__init__(name="mini-redis", daemon=True)
        import socket as socketlib

        self._listener = socketlib.create_server(("127.0.0.1", 0))
        self.port = self._listener.getsockname()[1]
        self._lock = threading.Lock()
        #: key -> (value bytes, expiry monotonic deadline or None)
        self._data: dict[bytes, tuple[bytes, float | None]] = {}
        self._closing = False

    def close(self) -> None:
        self._closing = True
        self._listener.close()

    def run(self) -> None:
        while not self._closing:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    def _live(self, key: bytes):
        entry = self._data.get(key)
        if entry is None:
            return None
        value, deadline = entry
        if deadline is not None and deadline <= time.monotonic():
            del self._data[key]
            return None
        return value, deadline

    def _serve(self, conn) -> None:
        file = conn.makefile("rb")
        try:
            while True:
                header = file.readline()
                if not header:
                    return
                count = int(header[1:].strip())
                args = []
                for _ in range(count):
                    length = int(file.readline()[1:].strip())
                    args.append(file.read(length + 2)[:-2])
                conn.sendall(self._execute(args))
        except (OSError, ValueError):
            pass
        finally:
            conn.close()

    def _execute(self, args: list[bytes]) -> bytes:
        command = args[0].upper()
        with self._lock:
            if command in (b"PING", b"AUTH", b"SELECT"):
                return b"+PONG\r\n" if command == b"PING" else b"+OK\r\n"
            if command == b"GET":
                entry = self._live(args[1])
                if entry is None:
                    return b"$-1\r\n"
                value = entry[0]
                return b"$" + str(len(value)).encode() + b"\r\n" + value + b"\r\n"
            if command == b"SET":
                options = [a.upper() for a in args[3:]]
                if b"NX" in options and self._live(args[1]) is not None:
                    return b"$-1\r\n"
                deadline = None
                if b"PX" in options:
                    ms = int(args[3 + options.index(b"PX") + 1])
                    deadline = time.monotonic() + ms / 1000.0
                self._data[args[1]] = (args[2], deadline)
                return b"+OK\r\n"
            if command == b"DEL":
                existed = self._live(args[1]) is not None
                self._data.pop(args[1], None)
                return b":1\r\n" if existed else b":0\r\n"
            if command == b"EXISTS":
                return b":1\r\n" if self._live(args[1]) is not None else b":0\r\n"
            if command == b"PEXPIRE":
                entry = self._live(args[1])
                if entry is None:
                    return b":0\r\n"
                deadline = time.monotonic() + int(args[2]) / 1000.0
                self._data[args[1]] = (entry[0], deadline)
                return b":1\r\n"
            if command == b"RENAME":
                entry = self._live(args[1])
                if entry is None:
                    return b"-ERR no such key\r\n"
                del self._data[args[1]]
                self._data[args[2]] = entry
                return b"+OK\r\n"
        return b"-ERR unknown command " + command + b"\r\n"

_KEYS = itertools.count()


def _key() -> str:
    """A store key no other test (or prior run) has touched."""
    return f"contract-{os.getpid()}-{next(_KEYS)}"


def _stats(instructions: int = 1000) -> FrontendStats:
    return FrontendStats(instructions=instructions, branches=instructions // 5)


BACKENDS = ["fake", "disk", "resp"] + (["redis"] if _REDIS_URL else [])


@pytest.fixture(scope="module")
def _mini_redis():
    server = _MiniRedis()
    server.start()
    yield server
    server.close()


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path, _mini_redis):
    """``(store, corrupt)`` for each backend: the store under test plus
    a function that replaces a stored value with garbage bytes."""
    if request.param == "fake":
        store = FakeStore()
        yield store, store.corrupt
    elif request.param == "disk":
        store = DiskStore(root=tmp_path / "store")

        def corrupt(key: str, data: bytes = b"{not json") -> None:
            (tmp_path / "store" / "results" / f"{key}.json").write_bytes(data)

        yield store, corrupt
    else:
        if request.param == "resp":
            store = RedisStore(host="127.0.0.1", port=_mini_redis.port)
        else:
            store = RedisStore.from_url(_REDIS_URL, timeout=5.0)
            if not store.ping():
                pytest.skip(f"no redis at {_REDIS_URL}")
        # Unique namespace per test so runs never see each other's keys.
        store.prefix = f"repro-test-{os.getpid()}-{next(_KEYS)}"

        def corrupt(key: str, data: bytes = b"{not json") -> None:
            store.command("SET", store._result_key(key), data)

        yield store, corrupt
        store.close()


# -- result round-trips ------------------------------------------------------


def test_result_round_trip(backend):
    store, _ = backend
    key = _key()
    assert store.get_result(key) is None
    assert not store.has_result(key)
    stats = _stats()
    store.put_result(key, stats)
    assert store.has_result(key)
    loaded = store.get_result(key)
    assert loaded is not None
    assert loaded.to_dict(derived=False) == stats.to_dict(derived=False)


def test_republish_is_idempotent(backend):
    # Values are content-addressed: racing publishers write identical
    # bytes, so last-write-wins can never lose information.
    store, _ = backend
    key = _key()
    stats = _stats()
    store.put_result(key, stats)
    store.put_result(key, stats)
    assert store.get_result(key).to_dict(derived=False) == stats.to_dict(derived=False)


def test_corrupt_value_is_quarantined_not_served(backend):
    store, corrupt = backend
    key = _key()
    store.put_result(key, _stats())
    for garbage in (b"{not json", b'{"result_version": -1, "stats": {}}'):
        corrupt(key, garbage)
        # A poisoned slot reads as a miss -- never a crash, never a
        # wrong answer -- and the slot is usable again afterwards.
        assert store.get_result(key) is None
        stats = _stats(2000)
        store.put_result(key, stats)
        loaded = store.get_result(key)
        assert loaded is not None
        assert loaded.instructions == 2000


# -- leases ------------------------------------------------------------------


def test_lease_is_exclusive_and_owner_checked(backend):
    store, _ = backend
    key = _key()
    assert store.lease_owner(key) is None
    assert store.acquire_lease(key, "alice", ttl=30.0)
    assert store.lease_owner(key) == "alice"
    assert not store.acquire_lease(key, "bob", ttl=30.0)
    # Non-owners can neither renew nor release.
    assert not store.renew_lease(key, "bob", ttl=30.0)
    store.release_lease(key, "bob")
    assert store.lease_owner(key) == "alice"
    assert store.renew_lease(key, "alice", ttl=30.0)
    store.release_lease(key, "alice")
    assert store.lease_owner(key) is None
    assert store.acquire_lease(key, "bob", ttl=30.0)


def test_lease_race_has_exactly_one_winner(backend):
    store, _ = backend
    key = _key()
    barrier = threading.Barrier(8)

    def contend(owner: str) -> bool:
        barrier.wait(timeout=10)
        return store.acquire_lease(key, owner, ttl=30.0)

    with ThreadPoolExecutor(max_workers=8) as pool:
        wins = list(pool.map(contend, [f"owner-{i}" for i in range(8)]))
    assert sum(wins) == 1
    assert store.lease_owner(key) is not None


def test_expired_lease_is_taken_over(backend):
    store, _ = backend
    key = _key()
    assert store.acquire_lease(key, "crashed", ttl=0.15)
    assert not store.acquire_lease(key, "taker", ttl=30.0)
    time.sleep(0.25)
    # The orphan's claim has lapsed: it reads as unclaimed, a new
    # acquire succeeds (acquire *is* takeover), and the dead claimant
    # can no longer renew.
    assert store.lease_owner(key) is None
    assert store.acquire_lease(key, "taker", ttl=30.0)
    assert store.lease_owner(key) == "taker"
    assert not store.renew_lease(key, "crashed", ttl=30.0)


def test_heartbeat_renewal_outlives_the_ttl(backend):
    store, _ = backend
    key = _key()
    assert store.acquire_lease(key, "worker", ttl=0.2)
    for _ in range(4):
        time.sleep(0.1)
        assert store.renew_lease(key, "worker", ttl=0.2)
    # 0.4s past the original expiry, the renewed lease still holds.
    assert store.lease_owner(key) == "worker"
    assert not store.acquire_lease(key, "thief", ttl=30.0)


def test_expired_lease_takeover_race_has_one_winner(backend):
    store, _ = backend
    key = _key()
    assert store.acquire_lease(key, "crashed", ttl=0.1)
    time.sleep(0.2)
    barrier = threading.Barrier(6)

    def takeover(owner: str) -> bool:
        barrier.wait(timeout=10)
        return store.acquire_lease(key, owner, ttl=30.0)

    with ThreadPoolExecutor(max_workers=6) as pool:
        wins = list(pool.map(takeover, [f"taker-{i}" for i in range(6)]))
    assert sum(wins) == 1


def test_ping_and_describe(backend):
    store, _ = backend
    assert store.ping() is True
    info = store.describe()
    assert info["kind"] == store.kind


# -- value encoding ----------------------------------------------------------


def test_encode_decode_round_trip():
    stats = _stats(4242)
    loaded = decode_result(encode_result(stats))
    assert loaded is not None
    assert loaded.to_dict(derived=False) == stats.to_dict(derived=False)


def test_decode_rejects_garbage_and_version_skew():
    assert decode_result(b"") is None
    assert decode_result(b"{not json") is None
    assert decode_result(b'{"stats": {}}') is None
    payload = json.loads(encode_result(_stats()))
    payload["result_version"] = -1
    assert decode_result(json.dumps(payload).encode()) is None


# -- URL resolution ----------------------------------------------------------


def test_store_from_url_schemes(tmp_path):
    assert store_from_url(None) is None
    assert store_from_url("") is None
    assert store_from_url("none") is None
    disk = store_from_url(f"disk://{tmp_path}/shared")
    assert isinstance(disk, DiskStore)
    assert str(disk.root) == f"{tmp_path}/shared"
    redis = store_from_url("redis://:hunter2@cache.internal:7000/3")
    assert isinstance(redis, RedisStore)
    assert (redis.host, redis.port, redis.db) == ("cache.internal", 7000, 3)
    assert redis.password == "hunter2"
    with pytest.raises(StoreError):
        store_from_url("s3://bucket/prefix")
    with pytest.raises(StoreError):
        store_from_url("redis://host:6379/not-a-db")


def test_fake_url_registry_shares_one_store_per_name():
    # Two replicas configured with the same fake:// URL must land on
    # the same in-memory store -- that is the whole point of the scheme.
    a = store_from_url("fake://cluster")
    b = store_from_url("fake://cluster")
    other = store_from_url("fake://other")
    assert a is b
    assert a is not other
    resultstore.reset_fakes()
    assert store_from_url("fake://cluster") is not a


def test_disk_store_interoperates_with_the_disk_cache(tmp_path, monkeypatch):
    """A DiskStore at the disk-cache root and the diskcache module are
    one result space: either side's write is the other side's hit."""
    from repro.experiments import diskcache

    monkeypatch.setenv("REPRO_DISK_CACHE", "1")
    monkeypatch.setenv("REPRO_DISK_CACHE_DIR", str(tmp_path / "cache"))
    store = DiskStore()
    stats = _stats(777)
    store.put_result("interop", stats)
    via_cache = diskcache.load_result("interop")
    assert via_cache is not None
    assert via_cache.instructions == 777
    diskcache.store_result("other-way", _stats(778))
    loaded = store.get_result("other-way")
    assert loaded is not None
    assert loaded.instructions == 778


# -- FakeStore fault schedules -----------------------------------------------


def test_fake_clock_controls_ttl():
    clock = [100.0]
    store = FakeStore(clock=lambda: clock[0])
    assert store.acquire_lease("k", "a", ttl=5.0)
    clock[0] += 4.9
    assert store.lease_owner("k") == "a"
    clock[0] += 0.2
    assert store.lease_owner("k") is None
    assert store.acquire_lease("k", "b", ttl=5.0)


def test_fake_fail_next_budget_and_op_filter():
    store = FakeStore()
    store.fail_next(2)
    with pytest.raises(StoreError):
        store.has_result("k")
    with pytest.raises(StoreError):
        store.ping()
    assert store.ping() is True  # budget spent
    store.fail_next(1, ops=("put_result",))
    assert store.get_result("k") is None  # unlisted ops unaffected
    with pytest.raises(StoreError):
        store.put_result("k", _stats())
    store.put_result("k", _stats())


def test_fake_partition_heal_and_latency():
    store = FakeStore()
    store.partition()
    with pytest.raises(StoreError):
        store.get_result("k")
    store.heal()
    store.put_result("k", _stats())
    store.add_latency(0.05, count=1)
    started = time.monotonic()
    assert store.get_result("k") is not None
    assert time.monotonic() - started >= 0.05
    assert store.calls["get_result"] >= 2


# -- RedisStore protocol details ---------------------------------------------


def test_redis_store_reconnects_after_connection_loss(_mini_redis):
    store = RedisStore(host="127.0.0.1", port=_mini_redis.port)
    assert store.ping()
    store.close()  # drop the socket; the next command must reconnect
    store.put_result("reconnect", _stats(55))
    assert store.get_result("reconnect").instructions == 55
    store.close()


def test_redis_store_auth_and_select_ride_the_url(_mini_redis):
    store = store_from_url(f"redis://:sekrit@127.0.0.1:{_mini_redis.port}/2")
    assert isinstance(store, RedisStore)
    assert (store.password, store.db) == ("sekrit", 2)
    assert store.ping()  # the AUTH/SELECT handshake succeeded
    store.close()


def test_redis_store_error_reply_raises_store_error(_mini_redis):
    store = RedisStore(host="127.0.0.1", port=_mini_redis.port)
    with pytest.raises(StoreError):
        store.command("BOGUS")
    assert store.ping()  # the connection survives an -ERR reply
    store.close()


def test_redis_store_unreachable_server_is_store_error():
    store = RedisStore(host="127.0.0.1", port=1, timeout=0.5)
    with pytest.raises(StoreError):
        store.command("PING")
    assert store.ping() is False
    assert store.describe()["connected"] is False


# -- fetch_or_compute: the single-flight state machine -----------------------


def _computer(stats: FrontendStats | None = None, delay: float = 0.0):
    """A counting compute callable (thread-safe)."""
    stats = stats or _stats()
    lock = threading.Lock()
    calls = [0]

    def compute() -> FrontendStats:
        with lock:
            calls[0] += 1
        if delay:
            time.sleep(delay)
        return stats

    return compute, calls


def test_fetch_or_compute_fresh_then_store():
    store = FakeStore()
    compute, calls = _computer()
    stats, outcome = fetch_or_compute(store, "k", compute)
    assert outcome == "fresh"
    assert calls == [1]
    assert store.lease_owner("k") is None  # released after publish
    stats2, outcome2 = fetch_or_compute(store, "k", compute)
    assert outcome2 == "store"
    assert calls == [1]
    assert stats2.to_dict(derived=False) == stats.to_dict(derived=False)


def test_fetch_or_compute_single_flight_across_threads():
    store = FakeStore()
    compute, calls = _computer(delay=0.2)
    barrier = threading.Barrier(4)

    def race(i: int):
        barrier.wait(timeout=10)
        return fetch_or_compute(
            store, "k", compute, owner=f"replica-{i}", poll_interval=0.02
        )

    with ThreadPoolExecutor(max_workers=4) as pool:
        results = list(pool.map(race, range(4)))
    outcomes = [outcome for _, outcome in results]
    assert calls == [1], "duplicate storm must collapse to one compute"
    assert outcomes.count("fresh") == 1
    assert outcomes.count("store") == 3
    reference = results[0][0].to_dict(derived=False)
    for stats, _ in results:
        assert stats.to_dict(derived=False) == reference


def test_fetch_or_compute_heartbeat_keeps_slow_compute_claimed():
    """Compute outlives the lease TTL several times over; the heartbeat
    renews it, so a racing replica waits instead of double-computing."""
    store = FakeStore()
    compute, calls = _computer(delay=0.4)
    started = threading.Barrier(2)

    def winner():
        started.wait(timeout=10)
        return fetch_or_compute(store, "k", compute, owner="w", ttl=0.1)

    def contender():
        started.wait(timeout=10)
        time.sleep(0.15)  # past the nominal TTL
        return fetch_or_compute(
            store, "k", compute, owner="c", ttl=0.1, poll_interval=0.02
        )

    with ThreadPoolExecutor(max_workers=2) as pool:
        a = pool.submit(winner)
        b = pool.submit(contender)
        _, outcome_w = a.result(timeout=10)
        _, outcome_c = b.result(timeout=10)
    assert outcome_w == "fresh"
    assert outcome_c == "store"
    assert calls == [1]
    assert store.calls.get("renew_lease", 0) >= 1


def test_fetch_or_compute_takes_over_an_orphaned_lease():
    store = FakeStore()
    # A claimant died holding the lease, having published nothing.
    assert store.acquire_lease("k", "dead-replica", ttl=0.15)
    compute, calls = _computer()
    started = time.monotonic()
    stats, outcome = fetch_or_compute(store, "k", compute, poll_interval=0.02)
    assert outcome == "fresh"
    assert calls == [1]
    assert time.monotonic() - started >= 0.1  # had to outwait the orphan
    assert stats is not None


def test_fetch_or_compute_compute_error_releases_the_lease():
    store = FakeStore()

    def explode() -> FrontendStats:
        raise ValueError("simulation failed")

    with pytest.raises(ValueError):
        fetch_or_compute(store, "k", explode, owner="a")
    # The claim is gone: the next caller proceeds immediately.
    assert store.lease_owner("k") is None
    compute, calls = _computer()
    _, outcome = fetch_or_compute(store, "k", compute, owner="b")
    assert outcome == "fresh"
    assert calls == [1]


def _observed():
    """(registry, log) capturing degradation telemetry for one test."""
    return MetricsRegistry(), obs_events.EventLog(capacity=256)


def test_fetch_or_compute_degrades_local_when_backend_down():
    registry, log = _observed()
    store = FakeStore()
    store.partition()
    compute, calls = _computer()
    with use_registry(registry), obs_events.use_event_log(log):
        stats, outcome = fetch_or_compute(store, "k", compute)
    assert outcome == "local"
    assert calls == [1]
    assert stats is not None
    assert registry.get("serve_store_errors_total").value(op="get_result") == 1
    events = log.recent(event="store_degraded")
    assert events and events[-1]["op"] == "get_result"


def test_fetch_or_compute_publish_failure_still_answers():
    registry, log = _observed()
    store = FakeStore()
    store.fail_next(1, ops=("put_result",))
    compute, calls = _computer()
    with use_registry(registry), obs_events.use_event_log(log):
        stats, outcome = fetch_or_compute(store, "k", compute)
    # The simulation is correct and returned; only the dedup was lost.
    assert outcome == "fresh"
    assert calls == [1]
    assert stats is not None
    assert registry.get("serve_store_errors_total").value(op="put_result") == 1
    assert not store.has_result("k")


def test_result_store_base_contract():
    from repro.experiments.resultstore import ResultStore

    base = ResultStore()
    for call in (
        lambda: base.get_result("k"),
        lambda: base.put_result("k", _stats()),
        lambda: base.has_result("k"),
        lambda: base.acquire_lease("k", "o", 1.0),
        lambda: base.renew_lease("k", "o", 1.0),
        lambda: base.release_lease("k", "o"),
        lambda: base.lease_owner("k"),
    ):
        with pytest.raises(NotImplementedError):
            call()
    # Optional surface has safe defaults.
    assert base.get_trace_bytes("k") is None
    assert base.put_trace_bytes("k", b"x") is None
    assert base.ping() is True
    assert base.describe() == {"kind": "abstract"}
    assert base.close() is None


def test_configure_from_env_installs_the_active_store(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_STORE", "fake://from-env")
    store = resultstore.configure_from_env()
    assert isinstance(store, FakeStore)
    assert resultstore.get_active_store() is store
    monkeypatch.delenv("REPRO_SERVE_STORE")
    assert resultstore.configure_from_env() is None
    assert resultstore.get_active_store() is None


def test_fetch_or_compute_survives_a_lost_heartbeat():
    """Renewals failing mid-compute must not kill the computation: the
    value is content-addressed, so finishing and publishing anyway is
    always safe -- at worst another replica duplicates the work."""
    registry, log = _observed()
    store = FakeStore()
    store.fail_next(100, ops=("renew_lease",))
    compute, calls = _computer(delay=0.15)
    with use_registry(registry), obs_events.use_event_log(log):
        stats, outcome = fetch_or_compute(store, "k", compute, ttl=0.06)
    assert outcome == "fresh"
    assert calls == [1]
    assert stats is not None
    assert store.has_result("k")
    assert registry.get("serve_store_errors_total").value(op="renew_lease") >= 1


def test_fetch_or_compute_lease_acquire_failure_degrades_local():
    registry, log = _observed()
    store = FakeStore()
    store.fail_next(1, ops=("acquire_lease",))
    compute, calls = _computer()
    with use_registry(registry), obs_events.use_event_log(log):
        stats, outcome = fetch_or_compute(store, "k", compute)
    assert outcome == "local"
    assert calls == [1]
    assert registry.get("serve_store_errors_total").value(op="acquire_lease") == 1


def test_fetch_or_compute_poll_read_failure_degrades_local():
    registry, log = _observed()

    class SecondGetFails(FakeStore):
        def get_result(self, key):
            if self.calls.get("get_result", 0) >= 1:
                self._enter("get_result")
                raise StoreError("flaky read")
            return super().get_result(key)

    store = SecondGetFails()
    assert store.acquire_lease("k", "other-replica", ttl=60.0)
    compute, calls = _computer()
    with use_registry(registry), obs_events.use_event_log(log):
        stats, outcome = fetch_or_compute(store, "k", compute, poll_interval=0.02)
    assert outcome == "local"
    assert calls == [1]
    assert registry.get("serve_store_errors_total").value(op="get_result") == 1


def test_fetch_or_compute_wait_timeout_protects_the_request():
    registry, log = _observed()
    store = FakeStore()
    # A live (renewing) claimant that never publishes: the waiter must
    # eventually protect its own request over the dedup.
    assert store.acquire_lease("k", "wedged", ttl=60.0)
    compute, calls = _computer()
    with use_registry(registry), obs_events.use_event_log(log):
        stats, outcome = fetch_or_compute(
            store, "k", compute, wait_timeout=0.2, poll_interval=0.02
        )
    assert outcome == "local"
    assert calls == [1]
    assert stats is not None
    assert registry.get("serve_store_errors_total").value(op="wait_timeout") == 1
