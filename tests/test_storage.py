"""Unit tests for storage accounting and the CACTI-fit latency model."""

import pytest

from repro.btb.baseline import BaselineBTB
from repro.core.config import PDedeMode, paper_config
from repro.storage.bits import (
    baseline_storage_row,
    pdede_storage_row,
    storage_table,
    verify_design_storage,
)
from repro.storage.cacti import access_cycles, access_time_ns, serial_access_time_ns


def test_baseline_row_matches_figure2_fields():
    row = baseline_storage_row()
    assert row.total_bits == 4096 * 75
    assert row.total_kib == 37.5
    assert set(row.components) == {"pid", "tags", "targets", "srrip", "confidence"}


def test_pdede_row_components():
    row = pdede_storage_row(paper_config(PDedeMode.DEFAULT))
    assert set(row.components) == {"btbm", "page-btb", "region-btb"}
    assert row.total_bits == paper_config(PDedeMode.DEFAULT).storage_bits()


def test_storage_table_has_all_designs():
    rows = storage_table()
    names = [row.name for row in rows]
    assert names[0] == "Baseline BTB"
    assert len(rows) == 4


def test_verify_design_storage_consistency():
    assert verify_design_storage(BaselineBTB()) == 4096 * 75


# -- CACTI fit -----------------------------------------------------------------

_BASELINE_BITS = 4096 * 75


def test_fit_reproduces_table4_baseline_point():
    # Paper: 0.24 ns at 1 port, 0.72 ns at 6 ports.
    assert access_time_ns(_BASELINE_BITS, 1) == pytest.approx(0.24, abs=0.02)
    assert access_time_ns(_BASELINE_BITS, 6) == pytest.approx(0.72, abs=0.08)


def test_fit_reproduces_table4_page_btb_point():
    page_bits = paper_config(PDedeMode.DEFAULT).page_btb_bits()
    assert access_time_ns(page_bits, 1) == pytest.approx(0.09, abs=0.02)
    assert access_time_ns(page_bits, 6) == pytest.approx(0.16, abs=0.04)


def test_latency_monotonic_in_capacity_and_ports():
    small = access_time_ns(8 * 8192, 1)
    large = access_time_ns(64 * 8192, 1)
    assert large > small
    assert access_time_ns(_BASELINE_BITS, 6) > access_time_ns(_BASELINE_BITS, 1)


def test_pdede_serial_chain_is_one_extra_cycle_class():
    """Table 4's conclusion: the chain costs ~1 extra cycle at 3.9 GHz."""
    config = paper_config(PDedeMode.DEFAULT)
    baseline_cycles = access_cycles(_BASELINE_BITS, 1)
    chain_ns = serial_access_time_ns([config.btbm_bits(), config.page_btb_bits()], 1)
    chain_cycles = max(1, -(-int(chain_ns * 3.9 * 1000) // 1000))
    assert chain_cycles <= baseline_cycles + 1


def test_btbm_alone_is_not_slower_than_baseline():
    """Paper: the BTBM (smaller than the baseline BTB) reads faster, so
    delta-path lookups carry no latency penalty."""
    config = paper_config(PDedeMode.DEFAULT)
    assert access_time_ns(config.btbm_bits(), 1) <= access_time_ns(_BASELINE_BITS, 1)
    assert access_time_ns(config.btbm_bits(), 6) <= access_time_ns(_BASELINE_BITS, 6)


def test_validation():
    with pytest.raises(ValueError):
        access_time_ns(0)
    with pytest.raises(ValueError):
        access_time_ns(100, 0)
