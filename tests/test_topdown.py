"""Unit tests for the Top-Down report module (Figure 1 machinery)."""

from repro.analysis.topdown import TopDownReport, TopDownRow, topdown_report, topdown_row
from repro.frontend.stats import FrontendStats
from repro.workloads.suite import get_trace


def test_topdown_row_from_stats():
    stats = FrontendStats(
        instructions=1000,
        cycles=2000.0,
        base_cycles=1000.0,
        icache_stall_cycles=300.0,
        btb_resteer_cycles=500.0,
        bad_speculation_cycles=200.0,
    )
    trace = get_trace("server_oltp_00", "tiny")
    row = topdown_row(trace, stats)
    assert row.name == "server_oltp_00"
    assert row.category == "Server"
    assert row.retiring_fraction == 0.5
    assert row.frontend_bound_fraction == 0.4
    assert row.bad_speculation_fraction == 0.1
    assert abs(row.btb_resteer_share_of_frontend - 500.0 / 800.0) < 1e-9


def test_topdown_report_aggregates():
    traces = [get_trace("server_oltp_00", "tiny")]
    report = topdown_report(traces, warmup_fraction=0.2)
    assert len(report.rows) == 1
    assert 0.0 < report.mean_frontend_bound < 1.0
    assert 0.0 <= report.mean_btb_resteer_share <= 1.0


def test_empty_report_guards():
    report = TopDownReport()
    assert report.mean_frontend_bound == 0.0
    assert report.mean_btb_resteer_share == 0.0
