"""Unit tests for the PDede BTB micro-architecture."""

import pytest

from repro.branch.address import join_target, page_base, page_offset, same_page
from repro.branch.types import BranchKind
from repro.core.config import PDedeConfig, PDedeMode, paper_config
from repro.core.pdede import PDedeBTB

from conftest import make_event, synthetic_branch_set

SAME_PAGE_PC = 0x7F00_0040_1000
SAME_PAGE_TARGET = 0x7F00_0040_1F00  # same 4 KiB page as the PC
DIFF_PAGE_TARGET = 0x7F11_2233_4450


def small_config(**overrides) -> PDedeConfig:
    base = dict(btbm_entries=256, btbm_ways=8, page_entries=64, page_ways=4,
                region_entries=4)
    base.update(overrides)
    return PDedeConfig(**base)


def test_same_page_branch_uses_delta_path():
    btb = PDedeBTB(small_config())
    event = make_event(pc=SAME_PAGE_PC, target=SAME_PAGE_TARGET)
    btb.update(event)
    lookup = btb.lookup(event.pc)
    assert lookup.hit
    assert lookup.target == SAME_PAGE_TARGET
    assert lookup.latency == 1  # delta bypasses the pointer chase
    assert lookup.provider == "btbm-delta"
    # No Page-/Region-BTB entries were consumed.
    assert btb.page_btb.occupancy() == 0
    assert btb.region_btb.occupancy() == 0


def test_different_page_branch_chases_pointers():
    btb = PDedeBTB(small_config())
    event = make_event(pc=SAME_PAGE_PC, target=DIFF_PAGE_TARGET)
    btb.update(event)
    lookup = btb.lookup(event.pc)
    assert lookup.hit
    assert lookup.target == DIFF_PAGE_TARGET
    assert lookup.latency == 2  # BTBM then Page-/Region-BTB
    assert lookup.provider == "btbm-ptr"
    assert btb.page_btb.occupancy() == 1
    assert btb.region_btb.occupancy() == 1


def test_region_and_page_are_deduplicated():
    btb = PDedeBTB(small_config())
    # Many branches targeting the same page.
    page = DIFF_PAGE_TARGET & ~0xFFF
    for index in range(10):
        pc = 0x7F00_0000_0000 + index * 0x40
        btb.update(make_event(pc=pc, target=page | (index * 8)))
    assert btb.page_btb.occupancy() == 1
    assert btb.region_btb.occupancy() == 1
    assert btb.page_btb.dedup_hits == 9


def test_delta_disabled_config_stores_pointers_for_same_page():
    btb = PDedeBTB(small_config(delta_encoding=False))
    event = make_event(pc=SAME_PAGE_PC, target=SAME_PAGE_TARGET)
    btb.update(event)
    lookup = btb.lookup(event.pc)
    assert lookup.target == SAME_PAGE_TARGET
    assert lookup.latency == 2
    assert btb.page_btb.occupancy() == 1


def test_always_two_cycle_mode():
    btb = PDedeBTB(small_config(always_two_cycle=True))
    event = make_event(pc=SAME_PAGE_PC, target=SAME_PAGE_TARGET)
    btb.update(event)
    assert btb.lookup(event.pc).latency == 2


def test_not_taken_branches_do_not_allocate():
    btb = PDedeBTB(small_config())
    btb.update(make_event(taken=False))
    assert btb.occupancy() == 0


def test_wrong_target_retrains_after_confidence_drains():
    btb = PDedeBTB(small_config())
    pc = SAME_PAGE_PC
    first = make_event(pc=pc, target=SAME_PAGE_TARGET)
    second = make_event(pc=pc, target=DIFF_PAGE_TARGET)
    for _ in range(3):
        btb.update(first)
    btb.update(second)  # confidence shields the old target
    assert btb.lookup(pc).target == SAME_PAGE_TARGET
    for _ in range(4):
        btb.update(second)
    assert btb.lookup(pc).target == DIFF_PAGE_TARGET


def test_indirect_gating():
    btb = PDedeBTB(small_config(allocate_indirect=False))
    btb.update(make_event(kind=BranchKind.CALL_INDIRECT, target=DIFF_PAGE_TARGET))
    assert btb.occupancy() == 0


def test_stale_pointer_detection():
    """Region-BTB thrash leaves dangling pointers; reads are counted."""
    config = small_config(region_entries=2)
    btb = PDedeBTB(config)
    # Six different regions force region-table evictions.
    victim_pc = 0x7F00_0000_1000
    btb.update(make_event(pc=victim_pc, target=0x0100_0000_0000))
    for index in range(1, 6):
        pc = victim_pc + index * 0x40
        btb.update(make_event(pc=pc, target=(index + 1) << 40))
    before = btb.stale_pointer_reads
    lookup = btb.lookup(victim_pc)
    assert btb.stale_pointer_reads == before + 1
    assert lookup.target != 0x0100_0000_0000  # the wrong (stale) value


def test_invalidate_stale_pointers_mode():
    config = small_config(region_entries=2, invalidate_stale_pointers=True)
    btb = PDedeBTB(config)
    victim_pc = 0x7F00_0000_1000
    btb.update(make_event(pc=victim_pc, target=0x0100_0000_0000))
    for index in range(1, 6):
        pc = victim_pc + index * 0x40
        btb.update(make_event(pc=pc, target=(index + 1) << 40))
    lookup = btb.lookup(victim_pc)
    # The entry was eagerly invalidated rather than serving a stale read.
    assert not lookup.hit
    assert btb.stale_pointer_reads == 0


# -- multi-target ----------------------------------------------------------------


def test_multi_target_provides_next_target_on_miss():
    btb = PDedeBTB(small_config(mode=PDedeMode.MULTI_TARGET))
    first_pc = SAME_PAGE_PC
    first_target = SAME_PAGE_TARGET
    second_pc = first_target + 0x20  # next taken branch after the first
    second_target = (second_pc & ~0xFFF) | 0x800
    # Train the chain: first branch, then the next taken same-page branch.
    btb.update(make_event(pc=first_pc, target=first_target))
    btb.update(make_event(pc=second_pc, target=second_target))
    # Reading the first entry stages the Next Target Offset register.
    lookup_first = btb.lookup(first_pc)
    assert lookup_first.hit
    # Evict/clear nothing -- but simulate the second PC missing by using
    # a fresh BTB whose BTBM never saw second_pc.
    fresh = PDedeBTB(small_config(mode=PDedeMode.MULTI_TARGET))
    fresh.update(make_event(pc=first_pc, target=first_target))
    fresh.update(make_event(pc=second_pc, target=second_target))
    # Forcefully invalidate second_pc's entry to model a capacity miss.
    set_index = fresh._index(second_pc)
    way = fresh._find_way(set_index, fresh._tag(second_pc))
    slot = set_index * fresh._ways + way
    fresh._valid[slot] = False
    fresh._tags[slot] = -1  # flat storage: invalid slots hold the tag sentinel
    staged = fresh.lookup(first_pc)
    assert staged.hit
    provided = fresh.lookup(second_pc)
    assert not provided.hit
    assert provided.provider == "next-target"
    assert provided.target == second_target
    assert fresh.next_target_provisions == 1


def test_multi_target_register_cleared_on_hit():
    btb = PDedeBTB(small_config(mode=PDedeMode.MULTI_TARGET))
    first_pc, first_target = SAME_PAGE_PC, SAME_PAGE_TARGET
    second_pc = first_target + 0x20
    second_target = (second_pc & ~0xFFF) | 0x800
    btb.update(make_event(pc=first_pc, target=first_target))
    btb.update(make_event(pc=second_pc, target=second_target))
    btb.lookup(first_pc)  # stages the register
    btb.lookup(second_pc)  # hits normally; register is consumed/cleared
    third = btb.lookup(0x7F77_0000_0000)
    assert third.provider == "miss"  # no ghost next-target provision


def test_multi_target_requires_same_page_pair():
    btb = PDedeBTB(small_config(mode=PDedeMode.MULTI_TARGET))
    first_pc = SAME_PAGE_PC
    btb.update(make_event(pc=first_pc, target=SAME_PAGE_TARGET))
    # Next taken branch is a *different-page* branch: chain must not form.
    btb.update(make_event(pc=SAME_PAGE_TARGET + 0x20, target=DIFF_PAGE_TARGET))
    btb.lookup(first_pc)
    assert btb._pending_next_offset is None


# -- multi-entry ------------------------------------------------------------------


def test_multi_entry_reserves_short_ways_for_same_page():
    config = small_config(mode=PDedeMode.MULTI_ENTRY)
    btb = PDedeBTB(config)
    # Fill one set with different-page branches only: they may only use
    # the long half of the ways.
    target_set = None
    filled = 0
    pc = 0x7F00_0000_0000
    while filled < 40:
        candidate = pc + filled * 0x2000 * 2
        if target_set is None:
            target_set = btb._index(candidate)
        if btb._index(candidate) == target_set:
            btb.update(make_event(pc=candidate, target=DIFF_PAGE_TARGET + filled * 8))
        filled += 1
    base = target_set * btb._ways
    long_valid = [btb._valid[base + w] for w in btb._long_ways]
    short_valid = [btb._valid[base + w] for w in btb._short_ways]
    assert any(long_valid)
    assert not any(short_valid)


def test_multi_entry_same_page_can_fill_everything():
    config = small_config(mode=PDedeMode.MULTI_ENTRY)
    btb = PDedeBTB(config)
    pairs = synthetic_branch_set(2000, seed=4, same_page_fraction=1.0)
    for pc, target in pairs:
        btb.update(make_event(pc=pc, target=target))
    assert btb.occupancy() > config.btbm_entries // 2


def test_multi_entry_short_way_rewrite_to_different_page_invalidates():
    config = small_config(mode=PDedeMode.MULTI_ENTRY, conf_bits=1)
    btb = PDedeBTB(config)
    pc = SAME_PAGE_PC
    same = make_event(pc=pc, target=SAME_PAGE_TARGET)
    btb.update(same)
    set_index = btb._index(pc)
    way = btb._find_way(set_index, btb._tag(pc))
    if way not in btb._short_ways:
        pytest.skip("allocation landed in a long way; rewrite is legal there")
    different = make_event(pc=pc, target=DIFF_PAGE_TARGET)
    for _ in range(4):
        btb.update(different)
    # The short entry cannot hold pointers: it must have been dropped or
    # re-allocated into a long way, never serving a bogus target.
    lookup = btb.lookup(pc)
    if lookup.hit:
        assert lookup.target == DIFF_PAGE_TARGET


def test_reconstruction_matches_join_target():
    btb = PDedeBTB(small_config())
    pairs = synthetic_branch_set(300, seed=6, same_page_fraction=0.5)
    for pc, target in pairs:
        btb.update(make_event(pc=pc, target=target))
        lookup = btb.lookup(pc)
        assert lookup.hit
        # Unless a dedup-table eviction intervened (impossible here with
        # few distinct pages? -- allow stale), the target must roundtrip.
        if not btb.stale_pointer_reads:
            assert lookup.target == target


def test_storage_matches_config():
    config = paper_config(PDedeMode.MULTI_ENTRY)
    assert PDedeBTB(config).storage_bits() == config.storage_bits()


def test_name_includes_mode():
    assert "multi_entry" in PDedeBTB(paper_config(PDedeMode.MULTI_ENTRY)).name
