"""Integration tests: every experiment runner works end-to-end (tiny scale)."""

import pytest

from repro.experiments import (
    clear_cache,
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig10,
    run_fig11a,
    run_fig11b,
    run_fig11c,
    run_fig12a,
    run_fig12b,
    run_fig12c,
    run_future_pipelines,
    run_ittage,
    run_perfect_direction,
    run_replacement_ablation,
    run_returns_in_btb,
    run_stale_pointer_ablation,
    run_table2,
    run_table4,
)

SCALE = "tiny"


@pytest.fixture(autouse=True, scope="module")
def _fresh_cache():
    clear_cache()
    yield
    clear_cache()


def test_fig1_topdown():
    result = run_fig1(scale=SCALE)
    assert len(result.report.rows) == 4
    assert 0.0 < result.report.mean_frontend_bound < 1.0
    assert "Figure 1" in result.render()


def test_fig3_taken_fractions():
    result = run_fig3(scale=SCALE)
    # Paper: branches are taken more than 50% of the time.
    assert result.mean_dynamic > 0.5
    assert result.mean_static > 0.5


def test_fig4_mix_covers_all_types():
    result = run_fig4(scale=SCALE)
    means = result.mean_fractions()
    assert abs(sum(means.values()) - 1.0) < 1e-6
    assert "COND_DIRECT" in means
    assert "CALL_DIRECT" in means


def test_fig5_runtime_series():
    result = run_fig5(app="server_oltp_00", scale=SCALE)
    assert result.series.distinct_regions() >= 2
    assert result.series.distinct_pages() > result.series.distinct_regions()


def test_fig6_density():
    result = run_fig6(scale=SCALE)
    assert result.mean_targets_per_page > 1.0
    assert result.mean_targets_per_region > result.mean_targets_per_page


def test_fig7_uniqueness_ordering():
    result = run_fig7(scale=SCALE)
    means = result.means()
    # The paper's ordering: regions << pages < offsets < targets <= 1.
    assert means["regions"] < means["pages"] < means["targets"] <= 1.0
    assert means["targets"] < 1.0  # some dedup must exist


def test_fig8_distance():
    result = run_fig8(scale=SCALE)
    assert 0.3 < result.mean_same_page < 1.0
    assert abs(sum(result.mean_buckets().values()) - 1.0) < 1e-6


def test_fig10_matrix():
    result = run_fig10(scale=SCALE, include_larger_baseline=False)
    speedups = result.mean_speedups()
    assert set(speedups) == {"pdede-default", "pdede-multi-target", "pdede-multi-entry"}
    curve = result.per_app_gain_curve()
    assert len(curve) == 4
    assert "Figure 10" in result.render()


def test_fig11a_ladder_structure():
    result = run_fig11a(scale=SCALE)
    ladder = result.ladder()
    assert [key for key, _ in ladder] == [
        "dedup-only",
        "partition-only",
        "pdede-default",
        "pdede-multi-target",
        "pdede-multi-entry",
    ]


def test_fig11b_latency_study():
    result = run_fig11b(scale=SCALE, fetch_queue_sizes=(32, 128))
    assert set(result.fetch_queue_gains) == {32, 128}
    assert "2-cycle" in result.render()


def test_fig11c_two_level():
    result = run_fig11c(scale=SCALE, l0_sizes=(256,))
    assert set(result.gains_by_l0) == {256}


def test_fig12a_shotgun():
    result = run_fig12a(scale=SCALE)
    assert result.storages_kib["shotgun-iso"] < result.storages_kib["shotgun-45k"]
    assert "Shotgun" in result.render()


def test_fig12b_sizes():
    result = run_fig12b(scale=SCALE, baseline_sizes=(4096, 8192))
    assert set(result.gains_by_size) == {4096, 8192}
    for entries, (base_kib, pdede_kib) in result.storages_kib.items():
        assert pdede_kib <= base_kib * 1.05  # iso-storage discipline


def test_fig12c_iso_mpki_search():
    result = run_fig12c(scale=SCALE)
    assert result.baseline_mpki > 0
    assert result.chosen
    # Candidates must be reported smallest-first with their storage.
    sizes = [kib for _, kib, _ in result.candidates]
    assert sizes == sorted(sizes)
    assert "iso-MPKI" in result.render()
    # The storage-saving claim itself is asserted at benchmark scale
    # (tiny 8K-event traces cannot discriminate the candidates).


def test_sensitivity_runners():
    perfect = run_perfect_direction(scale=SCALE)
    assert set(perfect.gains) == {"default predictor", "perfect predictor"}
    ittage = run_ittage(scale=SCALE)
    assert set(ittage.gains) == {"no ITTAGE", "with ITTAGE"}
    returns = run_returns_in_btb(scale=SCALE)
    assert set(returns.gains) == {"returns via RAS", "returns in BTB"}
    future = run_future_pipelines(scale=SCALE, factors=(1.0, 2.0))
    assert set(future.gains) == {"1.0x pipeline", "2.0x pipeline"}


def test_ablation_runners():
    replacement = run_replacement_ablation(scale=SCALE)
    assert set(replacement.gains) == {"srrip", "lru", "random", "fifo"}
    stale = run_stale_pointer_ablation(scale=SCALE)
    assert len(stale.gains) == 2


def test_table2():
    result = run_table2()
    assert len(result.rows) == 4
    assert "Table 2" in result.render()


def test_table4_matches_paper_shape():
    result = run_table4()
    entries = result.entries
    # BTBM alone is faster than the baseline BTB; the serial chain is
    # slower -- exactly the paper's Table 4 structure.
    assert entries["BTBM"][1] < entries["Baseline BTB"][1]
    assert entries["PDede (BTBM+PBTB)"][1] > entries["Baseline BTB"][1]
    assert entries["Page-BTB (PBTB)"][6] < entries["BTBM"][6]
