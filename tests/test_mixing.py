"""Tests for multiprogrammed trace mixing."""

import pytest

from repro.btb.baseline import BaselineBTB
from repro.workloads.mixing import interleave_traces, working_set_overlap
from repro.workloads.suite import get_trace

from conftest import make_trace
from repro.branch.types import BranchKind


def small_trace(base, count, name):
    events = [
        (base + index * 0x40, BranchKind.UNCOND_DIRECT, True, base + 0x10_000 + index * 0x40, 2)
        for index in range(count)
    ]
    return make_trace(events, name=name)


def test_every_event_appears_exactly_once():
    first = small_trace(0x100_0000, 250, "a")
    second = small_trace(0x900_0000, 130, "b")
    merged = interleave_traces([first, second], quantum_events=100)
    assert len(merged) == 380
    assert sorted(merged.pcs) == sorted(first.pcs + second.pcs)


def test_round_robin_quantum_order():
    first = small_trace(0x100_0000, 4, "a")
    second = small_trace(0x900_0000, 4, "b")
    merged = interleave_traces([first, second], quantum_events=2)
    # a0 a1 | b0 b1 | a2 a3 | b2 b3
    assert merged.pcs[:2] == first.pcs[:2]
    assert merged.pcs[2:4] == second.pcs[:2]
    assert merged.pcs[4:6] == first.pcs[2:4]


def test_uneven_lengths_drain_gracefully():
    first = small_trace(0x100_0000, 10, "a")
    second = small_trace(0x900_0000, 3, "b")
    merged = interleave_traces([first, second], quantum_events=4)
    assert len(merged) == 13


def test_merged_name_and_category():
    merged = interleave_traces(
        [small_trace(0x10, 1, "a"), small_trace(0x20, 1, "b")], quantum_events=1
    )
    assert merged.name == "mix(a+b)"
    assert merged.category == "Mixed"


def test_validation():
    with pytest.raises(ValueError):
        interleave_traces([])
    with pytest.raises(ValueError):
        interleave_traces([small_trace(0x10, 1, "a")], quantum_events=0)


def test_suite_address_spaces_are_disjoint():
    first = get_trace("server_oltp_00", "tiny")
    second = get_trace("browser_js_static_analyzer", "tiny")
    assert working_set_overlap(first, second) < 0.01


def test_mixing_raises_btb_pressure():
    """The consolidation effect: the union working set misses more."""
    first = get_trace("server_oltp_00", "tiny")
    second = get_trace("browser_js_static_analyzer", "tiny")
    merged = interleave_traces([first, second], quantum_events=1000)

    def miss_rate(trace):
        btb = BaselineBTB(entries=1024, ways=8)
        for event in trace.branch_events():
            if event.kind.is_return:
                continue
            btb.stats.record_outcome(event, btb.lookup(event.pc))
            btb.update(event)
        return btb.stats.miss_rate

    solo = max(miss_rate(first), miss_rate(second))
    assert miss_rate(merged) > solo
