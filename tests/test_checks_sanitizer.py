"""The microarchitectural sanitizer: each invariant catches its seeded
corruption, disabled mode is a true no-op, and the interval machinery
sweeps when (and only when) it should."""

from __future__ import annotations

import pytest

from repro.btb.baseline import BaselineBTB
from repro.btb.ras import ReturnAddressStack
from repro.btb.twolevel import TwoLevelBTB
from repro.checks.sanitizer import (
    InvariantViolation,
    NullSanitizer,
    Sanitizer,
    check_dedup_table,
    check_pdede,
    check_ras,
    get_sanitizer,
    sanitizer_enabled,
    use_sanitizer,
)
from repro.core.config import PDedeConfig
from repro.core.pdede import PDedeBTB
from repro.core.tables import DedupValueTable

from conftest import make_event

DIFF_PAGE_TARGET = 0x7F11_2233_4450


def small_config(**overrides) -> PDedeConfig:
    base = dict(btbm_entries=256, btbm_ways=8, page_entries=64, page_ways=4,
                region_entries=4)
    base.update(overrides)
    return PDedeConfig(**base)


def flat(btb, set_index: int, way: int) -> int:
    """Flat storage index of (set, way) -- mirrors the BTB layout."""
    return set_index * btb._ways + way


def populated_pdede(**overrides) -> tuple[PDedeBTB, tuple[int, int]]:
    """A small PDede holding pointer and delta entries, plus the slot
    coordinates of one pointer-carrying (different-page) entry."""
    btb = PDedeBTB(small_config(**overrides))
    for index in range(8):
        pc = 0x7F00_0000_1000 + index * 0x40
        btb.update(make_event(pc=pc, target=DIFF_PAGE_TARGET + index * 8))
        btb.update(make_event(pc=pc + 0x20, target=(pc + 0x20) + 0x100))
    for slot in range(btb._sets * btb._ways):
        if btb._valid[slot] and not btb._delta[slot]:
            return btb, divmod(slot, btb._ways)
    raise AssertionError("no pointer-carrying entry allocated")


def expect_violation(invariant: str, structure) -> InvariantViolation:
    with pytest.raises(InvariantViolation) as excinfo:
        Sanitizer().check(structure)
    violation = excinfo.value
    assert violation.invariant == invariant
    return violation


# -- seeded corruptions, one per invariant ----------------------------------


def test_clean_structures_pass():
    btb, _ = populated_pdede()
    Sanitizer().check(btb)  # must not raise


def test_pointer_liveness_out_of_range():
    btb, (s, w) = populated_pdede()
    btb._page_ptr[flat(btb, s, w)] = btb.page_btb.entries + 7
    violation = expect_violation("pointer-liveness", btb)
    assert violation.set_index == s and violation.way == w
    assert violation.snapshot["page_ptr"] == btb.page_btb.entries + 7


def test_pointer_liveness_dangling_slot():
    btb, (s, w) = populated_pdede()
    pointer = btb._page_ptr[flat(btb, s, w)]
    t_set, t_way = divmod(pointer, btb.page_btb.ways)
    btb.page_btb._valid[t_set][t_way] = False
    expect_violation("pointer-liveness", btb)


def test_generation_coherence_future_generation():
    btb, (s, w) = populated_pdede()
    btb._region_gen[flat(btb, s, w)] += 99
    violation = expect_violation("generation-coherence", btb)
    assert "generation" in str(violation)


def test_generation_coherence_stale_in_invalidating_mode():
    btb, (s, w) = populated_pdede(invalidate_stale_pointers=True)
    # Pretend the table slot moved on while the entry kept its pointer.
    pointer = btb._page_ptr[flat(btb, s, w)]
    t_set, t_way = divmod(pointer, btb.page_btb.ways)
    btb.page_btb._generations[t_set][t_way] += 1
    expect_violation("generation-coherence", btb)


def test_link_balance_missing_from_user_map():
    btb, (s, w) = populated_pdede(invalidate_stale_pointers=True)
    pointer = btb._page_ptr[flat(btb, s, w)]
    btb._page_ptr_users[pointer].discard((s, w))
    expect_violation("link-balance", btb)


def test_link_balance_ghost_in_user_map():
    btb, (s, w) = populated_pdede(invalidate_stale_pointers=True)
    pointer = btb._page_ptr[flat(btb, s, w)]
    btb._valid[flat(btb, s, w)] = False  # invalidated without unlinking
    btb._tags[flat(btb, s, w)] = -1  # tag cleared properly; only the unlink missed
    assert (s, w) in btb._page_ptr_users[pointer]
    expect_violation("link-balance", btb)


def test_delta_legality_pointer_entry_marked_delta():
    btb, (s, w) = populated_pdede()
    btb._delta[flat(btb, s, w)] = True  # still carries live pointers
    expect_violation("delta-legality", btb)


def test_field_width_corrupt_offset():
    btb, (s, w) = populated_pdede()
    btb._offsets[flat(btb, s, w)] = 1 << 13  # past the 12-bit page offset
    expect_violation("field-width", btb)


def test_field_width_corrupt_tag():
    btb, (s, w) = populated_pdede()
    btb._tags[flat(btb, s, w)] = 1 << (btb.config.tag_bits + 2)
    expect_violation("field-width", btb)


def test_field_width_stale_tag_in_invalid_slot():
    """Flat tag matching relies on invalid slots holding the -1 sentinel;
    a stale real tag there would false-hit ``list.index``."""
    btb, (s, w) = populated_pdede()
    btb._valid[flat(btb, s, w)] = False
    btb._tags[flat(btb, s, w)] = 0x3F  # plausible tag left behind
    # Clear the user-map registration so link-balance doesn't fire first.
    for users in (btb._page_ptr_users, btb._region_ptr_users):
        for slots in users.values():
            slots.discard((s, w))
    expect_violation("field-width", btb)


def test_replacement_state_corrupt_rrpv():
    btb, (s, w) = populated_pdede()
    policies = btb._policies if btb._policies is not None else btb._long_policies
    policy = policies[s]
    policy.rrpv[w] = (1 << policy._m) + 5
    expect_violation("replacement-state", btb)


def test_replacement_state_corrupt_lru_order():
    table = DedupValueTable(entries=8, ways=4, value_bits=16, replacement="lru")
    table.allocate(0x12)
    table._policies[0]._order[0] = table._policies[0]._order[1]  # not a permutation
    expect_violation("replacement-state", table)


def test_dedup_uniqueness_duplicated_value():
    table = DedupValueTable(entries=8, ways=8, value_bits=16)
    pointer, _ = table.allocate(0x55)
    _, way = divmod(pointer, table.ways)
    other = (way + 1) % table.ways
    table._valid[0][other] = True
    table._values[0][other] = 0x55
    violation = expect_violation("dedup-uniqueness", table)
    assert violation.snapshot["value"] == 0x55


def test_storage_accounting_table_drift():
    btb, _ = populated_pdede()
    btb.page_btb.value_bits += 1  # table geometry no longer matches config
    expect_violation("storage-accounting", btb)


def test_ras_state_corrupt_size():
    ras = ReturnAddressStack(depth=4)
    ras.push(0x1000)
    ras._size = ras.depth + 3
    expect_violation("ras-state", ras)


def test_baseline_field_width():
    btb = BaselineBTB(entries=64, ways=4)
    btb.update(make_event())
    for slot in range(btb.sets * btb.ways):
        if btb._valid[slot]:
            btb._targets[slot] = 1 << (btb.target_bits + 1)
            expect_violation("field-width", btb)
            return
    raise AssertionError("no valid baseline entry allocated")


def test_twolevel_recurses_into_levels():
    two = TwoLevelBTB(BaselineBTB(entries=64, ways=4), BaselineBTB(entries=128, ways=4))
    two.update(make_event())
    level1 = two.level1
    for slot in range(level1.sets * level1.ways):
        if level1._valid[slot]:
            level1._conf[slot] = 1 << (level1.conf_bits + 1)
            expect_violation("field-width", two)
            return
    raise AssertionError("no valid L1 entry allocated")


# -- regression: eager invalidation must unlink both pointer maps -----------


def test_invalidation_unlinks_both_pointer_maps():
    """A page eviction invalidates its user entries; their *region*
    registrations must be unlinked too, or a later region eviction kills
    whatever unrelated branch re-allocates the slot."""
    config = small_config(page_entries=4, page_ways=2, region_entries=2,
                          invalidate_stale_pointers=True)
    btb = PDedeBTB(config)
    # Pages spread over few slots force page-table thrash (and therefore
    # eager invalidations) while regions churn independently.
    for index in range(64):
        pc = 0x7F00_0000_1000 + index * 0x40
        target = ((index % 5) << 40) | ((index << 12) + 0x10) & ((1 << 40) - 1)
        btb.update(make_event(pc=pc, target=target))
    Sanitizer().check(btb)  # link-balance must hold after the churn
    for users in (btb._page_ptr_users, btb._region_ptr_users):
        for slots in users.values():
            for s, w in slots:
                assert btb._valid[flat(btb, s, w)], "user map references an invalid slot"


# -- disabled mode and interval machinery -----------------------------------


def test_disabled_mode_is_true_noop():
    assert not sanitizer_enabled()
    assert isinstance(get_sanitizer(), NullSanitizer)
    assert get_sanitizer().snapshot() == {}
    # A corrupted structure sails through when the sanitizer is off.
    btb, (s, w) = populated_pdede()
    btb._page_ptr[flat(btb, s, w)] = btb.page_btb.entries + 7
    btb.update(make_event(pc=0x7F00_0999_0000, target=0x7F00_0999_0100))


def test_step_interval_semantics():
    ras = ReturnAddressStack(depth=8)
    sanitizer = Sanitizer(interval=3)
    with use_sanitizer(sanitizer):
        ras.push(0x100)  # step 1
        ras.push(0x200)  # step 2
        assert sanitizer.checks_run == 0
        ras.push(0x300)  # step 3 -> sweep
        assert sanitizer.checks_run == 1
    assert sanitizer.steps == 3
    assert not sanitizer_enabled()


def test_armed_hook_catches_corruption_mid_run():
    btb, (s, w) = populated_pdede()
    btb._offsets[flat(btb, s, w)] = 1 << 14
    with use_sanitizer(Sanitizer(interval=1)):
        with pytest.raises(InvariantViolation):
            btb.update(make_event(pc=0x7F00_0999_0000, target=0x7F00_0999_0100))


def test_use_sanitizer_restores_previous():
    outer = Sanitizer(interval=7)
    with use_sanitizer(outer):
        with use_sanitizer(Sanitizer(interval=2)) as inner:
            assert get_sanitizer() is inner
        assert get_sanitizer() is outer
    assert not sanitizer_enabled()


def test_violation_carries_structured_context():
    btb, (s, w) = populated_pdede()
    btb._page_ptr[flat(btb, s, w)] = -5
    with pytest.raises(InvariantViolation) as excinfo:
        check_pdede(btb)
    violation = excinfo.value
    assert violation.invariant == "pointer-liveness"
    assert violation.structure == "btbm"
    assert (violation.set_index, violation.way) == (s, w)
    assert set(violation.snapshot) >= {"valid", "tag", "delta", "page_ptr"}
    assert f"set {s}" in str(violation)


def test_direct_checkers_accept_clean_structures():
    table = DedupValueTable(entries=8, ways=4, value_bits=16)
    table.allocate(0x1)
    check_dedup_table(table)
    ras = ReturnAddressStack(depth=4)
    ras.push(0x10)
    check_ras(ras)


def test_sanitizer_snapshot_counts():
    btb, _ = populated_pdede()
    with use_sanitizer(Sanitizer(interval=2)) as sanitizer:
        for index in range(6):
            pc = 0x7F00_0777_0000 + index * 0x40
            btb.update(make_event(pc=pc, target=pc + 0x100))
        snap = sanitizer.snapshot()
    assert snap["sanitizer_steps_total"] == 6
    assert snap["sanitizer_checks_total"] == 3
    assert snap["sanitizer_structures"] == 1
    assert snap["sanitizer_interval"] == 2
