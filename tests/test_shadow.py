"""Unit tests for decode-assisted shadow-branch fill (ShadowBTB)."""

import pytest

from repro.branch.types import BranchKind
from repro.btb.baseline import BaselineBTB
from repro.btb.shadow import ShadowBTB

from conftest import make_event


def _shadow(**overrides):
    config = dict(shadow_entries=64, shadow_ways=4, line_map_entries=64)
    config.update(overrides)
    return ShadowBTB(BaselineBTB(entries=256, ways=4), **config)


LINE = 0x7F00_0000_1000  # 64-byte aligned fetch line


def test_inner_hits_pass_through_untouched():
    btb = _shadow()
    event = make_event(pc=LINE, target=LINE + 0x100)
    btb.update(event)
    lookup = btb.lookup(event.pc)
    assert lookup.hit
    assert lookup.provider != "shadow"
    assert lookup.target == event.target
    # The inner BTB got the update; the wrapper never duplicated it.
    assert btb.inner.lookup(event.pc).hit


def test_shadow_branch_is_exposed_by_a_same_line_neighbour():
    btb = _shadow()
    shadow_pc = LINE + 0x20
    neighbour_pc = LINE + 0x8
    # The shadow branch executes once (so the line map remembers it) on
    # an inner BTB too small to retain it for the test's purposes -- we
    # model "forgotten by the main BTB" with a fresh wrapper sharing the
    # line map via replay.
    btb.update(make_event(pc=shadow_pc, target=shadow_pc + 0x400))
    # Evict it from the inner predictor by rebuilding only the inner.
    btb.inner = BaselineBTB(entries=256, ways=4)
    assert not btb.inner.lookup(shadow_pc).hit
    # A neighbour in the same fetch line resolves: exposing the line
    # installs the remembered shadow branch.
    btb.update(make_event(pc=neighbour_pc, target=neighbour_pc + 0x40))
    assert btb.exposures >= 1
    assert btb.shadow_fills >= 1
    lookup = btb.lookup(shadow_pc)
    assert lookup.hit
    assert lookup.provider == "shadow"
    assert lookup.target == shadow_pc + 0x400
    assert btb.shadow_hits == 1


def test_decode_ahead_exposes_sequential_lines():
    btb = _shadow(decode_lines=2)
    next_line_pc = LINE + 64 + 0x10
    btb.update(make_event(pc=next_line_pc, target=next_line_pc + 0x80))
    btb.inner = BaselineBTB(entries=256, ways=4)
    # A branch in the *previous* line exposes the next line too.
    btb.update(make_event(pc=LINE, target=LINE + 0x30))
    assert btb.lookup(next_line_pc).provider == "shadow"


def test_decode_lines_one_sees_only_its_own_line():
    btb = _shadow(decode_lines=1)
    next_line_pc = LINE + 64 + 0x10
    btb.update(make_event(pc=next_line_pc, target=next_line_pc + 0x80))
    btb.inner = BaselineBTB(entries=256, ways=4)
    btb.update(make_event(pc=LINE, target=LINE + 0x30))
    assert not btb.lookup(next_line_pc).hit


def test_indirect_and_not_taken_branches_are_not_remembered():
    btb = _shadow()
    btb.update(make_event(pc=LINE + 0x20, kind=BranchKind.CALL_INDIRECT,
                          target=LINE + 0x900))
    btb.update(make_event(pc=LINE + 0x28, taken=False))
    assert btb._line_map == {}
    btb.update(make_event(pc=LINE + 0x30))  # direct taken: remembered
    assert len(btb._line_map) == 1


def test_line_map_is_bounded_and_forgets_oldest_first():
    btb = _shadow(line_map_entries=4)
    pcs = [LINE + i * 64 for i in range(6)]  # six distinct lines
    for pc in pcs:
        btb.update(make_event(pc=pc, target=pc + 0x10))
    assert btb._line_map_size <= 4
    lines = sorted(btb._line_map)
    # The two oldest lines were forgotten.
    assert lines == [pc >> 6 for pc in pcs[2:]]


def test_shadow_refresh_keeps_copies_coherent():
    btb = _shadow()
    shadow_pc = LINE + 0x20
    btb.update(make_event(pc=shadow_pc, target=shadow_pc + 0x400))
    btb.inner = BaselineBTB(entries=256, ways=4)
    btb.update(make_event(pc=LINE, target=LINE + 0x30))  # exposes it
    assert btb.lookup(shadow_pc).target == shadow_pc + 0x400
    # The branch resolves again with a new target: the shadow copy must
    # follow, not serve the stale address once the inner forgets again.
    btb.update(make_event(pc=shadow_pc, target=shadow_pc + 0x800))
    btb.inner = BaselineBTB(entries=256, ways=4)
    refreshed = btb.lookup(shadow_pc)
    assert refreshed.provider == "shadow"
    assert refreshed.target == shadow_pc + 0x800


def test_storage_charges_shadow_table_but_not_line_map():
    inner = BaselineBTB(entries=256, ways=4)
    btb = ShadowBTB(inner, shadow_entries=64, shadow_ways=4, tag_bits=10,
                    srrip_bits=3)
    # 64 x (10 tag + 57 target + 3 srrip) on top of the inner.
    assert btb.storage_bits() == inner.storage_bits() + 64 * 70
    assert btb.name == f"Shadow({inner.name})"


def test_metrics_expose_shadow_counters():
    btb = _shadow()
    shadow_pc = LINE + 0x20
    btb.update(make_event(pc=shadow_pc, target=shadow_pc + 0x400))
    btb.inner = BaselineBTB(entries=256, ways=4)
    btb.update(make_event(pc=LINE, target=LINE + 0x30))
    btb.lookup(shadow_pc)
    data = btb.metrics()
    assert data["btb_shadow_hits_total"] == 1
    assert data["btb_shadow_fills_total"] >= 1
    assert data["btb_shadow_exposures_total"] >= 1
    assert data["btb_shadow_entries"] == 64


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(shadow_entries=0), "shadow_entries"),
        (dict(shadow_entries=10, shadow_ways=4), "divisible"),
        (dict(line_bytes=48), "power of two"),
        (dict(decode_lines=0), "decode_lines"),
        (dict(line_map_entries=0), "line_map_entries"),
    ],
)
def test_bad_geometry_is_rejected(kwargs, match):
    with pytest.raises(ValueError, match=match):
        ShadowBTB(BaselineBTB(entries=64, ways=4), **kwargs)


def test_opts_out_of_fast_engines():
    assert ShadowBTB.supports_fast_path is False
