"""Tests for the observability layer (repro.obs) and its integration."""

import json

import pytest

from repro.obs.metrics import (
    SERVE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    percentile_from_buckets,
    use_registry,
)
from repro.obs.tracing import (
    NullTracer,
    Tracer,
    get_tracer,
    read_jsonl,
    tracing_enabled,
    use_tracer,
)


# -- metrics: instruments ----------------------------------------------------


def test_counter_inc_and_value():
    counter = Counter("requests_total")
    counter.inc()
    counter.inc(4)
    assert counter.value() == 5
    assert counter.total() == 5


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("c").inc(-1)


def test_counter_labels_are_distinct_series():
    counter = Counter("resteers_total")
    counter.inc(3, stage="decode")
    counter.inc(7, stage="execute")
    counter.inc(1, stage="decode", cause="btb")
    assert counter.value(stage="decode") == 3
    assert counter.value(stage="execute") == 7
    assert counter.value(stage="decode", cause="btb") == 1
    assert counter.total() == 11
    # Label order must not matter.
    counter.inc(1, cause="btb", stage="decode")
    assert counter.value(stage="decode", cause="btb") == 2


def test_gauge_set_overwrites():
    gauge = Gauge("occupancy")
    gauge.set(10, table="page")
    gauge.set(12, table="page")
    gauge.add(3, table="page")
    assert gauge.value(table="page") == 15
    assert gauge.value(table="region") == 0


def test_histogram_tracks_distribution():
    hist = Histogram("seconds", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 5.0, 50.0):
        hist.observe(value)
    assert hist.count() == 4
    assert hist.sum() == pytest.approx(55.55)
    assert hist.mean() == pytest.approx(55.55 / 4)
    (series,) = hist.to_dict()["series"]
    assert series["min"] == 0.05
    assert series["max"] == 50.0
    assert series["bucket_counts"] == [1, 1, 1, 1]  # one in the overflow


def test_histogram_labels():
    hist = Histogram("worker_seconds")
    hist.observe(1.0, worker=1)
    hist.observe(2.0, worker=2)
    assert hist.count(worker=1) == 1
    assert hist.count(worker=2) == 1
    assert hist.count() == 0


# -- metrics: percentile estimation ------------------------------------------


def test_percentile_from_buckets_interpolates_within_bucket():
    buckets = (1.0, 2.0, 4.0)
    counts = [2, 2, 0, 0]  # four observations, none past 2.0
    # rank 2 lands exactly at the end of the first bucket (lower bound 0).
    assert percentile_from_buckets(buckets, counts, 50) == pytest.approx(1.0)
    # rank 3 is halfway through the second bucket: 1.0 + 0.5 * (2.0 - 1.0).
    assert percentile_from_buckets(buckets, counts, 75) == pytest.approx(1.5)


def test_percentile_from_buckets_overflow_and_clamping():
    # Everything in the unbounded overflow bucket: report the observed
    # max when known, else the last finite bound.
    assert percentile_from_buckets((1.0,), [0, 3], 99, maximum=7.5) == 7.5
    assert percentile_from_buckets((1.0,), [0, 3], 99) == 1.0
    # The uniform-within-bucket assumption can undershoot the observed
    # minimum on tiny samples; the clamp repairs that.
    assert percentile_from_buckets((10.0,), [4, 0], 10, minimum=2.0) == 2.0
    # Degenerate inputs.
    assert percentile_from_buckets((1.0,), [0, 0], 50) == 0.0
    with pytest.raises(ValueError):
        percentile_from_buckets((1.0,), [1, 0], 101)


def test_histogram_percentile_per_series_and_merged():
    hist = Histogram("seconds", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value, design="a")
    hist.observe(50.0, design="b")
    # Series "a": rank 1.5 of 3 is halfway through the (0.1, 1.0] bucket.
    assert hist.percentile(50, design="a") == pytest.approx(0.55)
    # No labels with several series recorded: cross-series merge. The
    # p99 rank lands in the overflow bucket, so it reports the max hull.
    assert hist.percentile(99) == pytest.approx(50.0)
    # Unknown label set estimates 0, not a crash.
    assert hist.percentile(50, design="nope") == 0.0
    quantiles = hist.percentiles(design="a")
    assert set(quantiles) == {"p50", "p95", "p99"}
    # Snapshot series carry the percentile estimates for reports.
    series = {
        tuple(sorted(entry["labels"].items())): entry
        for entry in hist.to_dict()["series"]
    }
    assert series[(("design", "a"),)]["p50"] == pytest.approx(0.55)


def test_registry_histogram_bucket_override_semantics():
    registry = MetricsRegistry()
    hist = registry.histogram("lat_seconds", buckets=(1.0, 2.0))
    # Same buckets: plain idempotent get.
    assert registry.histogram("lat_seconds", buckets=(1.0, 2.0)) is hist
    # Different buckets before any observation: adopted in place.
    assert registry.histogram("lat_seconds", buckets=SERVE_BUCKETS) is hist
    assert hist.buckets == tuple(sorted(SERVE_BUCKETS))
    hist.observe(0.01)
    # Different buckets after data: counts can't be redistributed.
    with pytest.raises(ValueError):
        registry.histogram("lat_seconds", buckets=(5.0,))
    # Omitting buckets never re-buckets.
    assert registry.histogram("lat_seconds") is hist


def test_registry_prometheus_text_exposition():
    registry = MetricsRegistry()
    registry.counter("requests_total", help="All requests").inc(3, design="a")
    registry.gauge("inflight").set(2)
    hist = registry.histogram("wait_seconds", buckets=(0.1, 1.0))
    hist.observe(0.05, design="a")
    hist.observe(5.0, design="a")
    text = registry.to_prometheus_text()
    assert "# HELP requests_total All requests" in text
    assert "# TYPE requests_total counter" in text
    assert 'requests_total{design="a"} 3' in text
    assert "# TYPE inflight gauge" in text
    assert "inflight 2" in text
    # Histogram buckets are cumulative and end with +Inf/_sum/_count.
    assert 'wait_seconds_bucket{design="a",le="0.1"} 1' in text
    assert 'wait_seconds_bucket{design="a",le="1"} 1' in text
    assert 'wait_seconds_bucket{design="a",le="+Inf"} 2' in text
    assert 'wait_seconds_sum{design="a"} 5.05' in text
    assert 'wait_seconds_count{design="a"} 2' in text
    assert text.endswith("\n")
    assert NullRegistry().to_prometheus_text() == ""


# -- metrics: registry -------------------------------------------------------


def test_registry_get_or_create_idempotent():
    registry = MetricsRegistry()
    first = registry.counter("hits_total")
    second = registry.counter("hits_total")
    assert first is second


def test_registry_kind_clash_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")


def test_registry_publish_routes_totals_to_counters():
    registry = MetricsRegistry()
    registry.publish({"hits_total": 5, "occupancy": 7}, design="pdede")
    registry.publish({"hits_total": 3, "occupancy": 9}, design="pdede")
    assert registry.counter("hits_total").value(design="pdede") == 8
    assert registry.gauge("occupancy").value(design="pdede") == 9


def test_registry_to_dict_and_dump(tmp_path):
    registry = MetricsRegistry()
    registry.counter("hits_total", "cache hits").inc(2, app="a")
    registry.histogram("seconds").observe(0.25)
    snapshot = registry.to_dict()
    assert snapshot["hits_total"]["kind"] == "counter"
    assert snapshot["hits_total"]["help"] == "cache hits"
    assert snapshot["hits_total"]["series"] == [
        {"labels": {"app": "a"}, "value": 2}
    ]
    path = tmp_path / "metrics.json"
    registry.dump(str(path))
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(snapshot)
    )


# -- metrics: disabled mode --------------------------------------------------


def test_default_registry_is_null_and_records_nothing():
    registry = get_registry()
    assert not metrics_enabled()
    assert isinstance(registry, NullRegistry)
    instrument = registry.counter("anything_total")
    instrument.inc(5, label="x")
    instrument.observe(1.0)
    instrument.set(2.0)
    assert instrument.value() == 0
    assert registry.to_dict() == {}
    assert registry.names() == []


def test_enable_disable_metrics_roundtrip():
    registry = enable_metrics()
    try:
        assert metrics_enabled()
        assert get_registry() is registry
    finally:
        disable_metrics()
    assert not metrics_enabled()


def test_use_registry_restores_previous():
    scoped = MetricsRegistry()
    with use_registry(scoped) as active:
        assert active is scoped
        assert get_registry() is scoped
    assert not metrics_enabled()


# -- tracing -----------------------------------------------------------------


def test_span_nesting_parent_depth():
    tracer = Tracer()
    with tracer.span("outer", phase="x") as outer:
        with tracer.span("inner") as inner:
            assert tracer.current() is inner
        with tracer.span("sibling"):
            pass
    assert tracer.current() is None
    assert [s.name for s in tracer.spans()] == ["outer", "inner", "sibling"]
    assert inner.parent_id == outer.span_id
    assert inner.depth == 1
    assert outer.seconds >= inner.seconds >= 0.0


def test_span_annotate_and_event():
    tracer = Tracer()
    with tracer.span("run") as span:
        span.annotate(apps=4)
        tracer.event("cache-hit", app="x")
    records = tracer.to_records()
    assert records[0]["attrs"] == {"apps": 4}
    assert records[1]["name"] == "cache-hit"
    assert records[1]["seconds"] == 0.0
    assert records[1]["parent_id"] == records[0]["span_id"]


def test_on_close_callback_fires_in_completion_order():
    tracer = Tracer()
    closed = []
    tracer.on_close = lambda span: closed.append(span.name)
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    assert closed == ["inner", "outer"]


def test_jsonl_round_trip(tmp_path):
    tracer = Tracer()
    with tracer.span("simulate", app="a", design="d"):
        with tracer.span("trace-gen", app="a"):
            pass
    path = tmp_path / "trace.jsonl"
    tracer.write_jsonl(str(path))
    records = read_jsonl(str(path))
    assert records == tracer.to_records()
    assert records[0]["name"] == "simulate"
    assert records[1]["parent_id"] == records[0]["span_id"]
    assert records[1]["depth"] == 1


def test_tracer_concurrent_asyncio_tasks_keep_parentage(tmp_path):
    """Interleaved asyncio tasks must not corrupt span parentage.

    Each task inherits the spawner's contextvar stack snapshot, so its
    spans parent under the root that was open when it was created --
    never under a sibling task's span -- and the JSONL sink stays one
    well-formed record per line."""
    import asyncio

    tracer = Tracer()

    async def worker(n: int) -> None:
        with tracer.span(f"task-{n}", index=n):
            await asyncio.sleep(0)  # force interleaving with siblings
            with tracer.span(f"task-{n}-inner"):
                await asyncio.sleep(0)

    async def main():
        with tracer.span("root") as root:
            await asyncio.gather(*(worker(n) for n in range(8)))
        return root

    root = asyncio.run(main())
    path = tmp_path / "spans.jsonl"
    tracer.write_jsonl(str(path))
    lines = path.read_text().splitlines()
    records = [json.loads(line) for line in lines]  # every line parses
    assert len(records) == 1 + 2 * 8
    by_name = {record["name"]: record for record in records}
    assert by_name["root"]["span_id"] == root.span_id
    for n in range(8):
        outer = by_name[f"task-{n}"]
        inner = by_name[f"task-{n}-inner"]
        assert outer["parent_id"] == root.span_id, outer
        assert outer["depth"] == 1
        assert inner["parent_id"] == outer["span_id"], inner
        assert inner["depth"] == 2


def test_trace_memory_records_peaks():
    tracer = Tracer(trace_memory=True)
    try:
        with tracer.span("alloc") as span:
            _ = [0] * 50_000
        assert span.memory_peak_kib is not None
        assert span.memory_peak_kib > 100  # 50k pointers >> 100 KiB
    finally:
        tracer.close()


def test_render_tree_indents_children():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner", app="x"):
            pass
    tree = tracer.render_tree()
    lines = tree.splitlines()
    assert lines[0].startswith("outer")
    assert lines[1].startswith("  inner")
    assert "app=x" in lines[1]


def test_null_tracer_is_default_and_free():
    tracer = get_tracer()
    assert not tracing_enabled()
    assert isinstance(tracer, NullTracer)
    with tracer.span("anything", app="x") as span:
        span.annotate(ok=True)
    tracer.event("nothing")
    assert tracer.to_records() == []
    assert tracer.render_tree() == ""


def test_use_tracer_restores_previous():
    scoped = Tracer()
    with use_tracer(scoped) as active:
        assert active is scoped
        assert get_tracer() is scoped
    assert not tracing_enabled()


# -- stats serialisation (satellite) ----------------------------------------


def test_frontend_stats_to_dict_includes_derived():
    from repro.frontend.stats import FrontendStats

    stats = FrontendStats(instructions=1000, cycles=500.0, branches=10,
                          taken_branches=6, btb_misses=3)
    data = stats.to_dict()
    assert data["instructions"] == 1000
    assert data["ipc"] == 2.0
    assert data["btb_mpki"] == 3.0
    assert data["btb_miss_rate"] == 0.5
    assert data["taken_branch_fraction"] == 0.6
    raw = stats.to_dict(derived=False)
    assert "ipc" not in raw
    json.dumps(data)  # must be JSON-serialisable


def test_frontend_stats_empty_guards():
    from repro.frontend.stats import FrontendStats

    empty = FrontendStats()
    data = empty.to_dict()
    for name in FrontendStats._DERIVED:
        assert data[name] == 0.0


# -- harness cache telemetry (satellite) -------------------------------------


def test_cache_info_counts_hits_and_misses():
    from repro.experiments.designs import baseline_design
    from repro.experiments.harness import cache_info, clear_cache, run_design

    clear_cache()
    design = baseline_design(entries=256, key="obs-cache-probe")
    run_design("server_oltp_00", design, scale="tiny")
    run_design("server_oltp_00", design, scale="tiny")
    info = cache_info()
    assert info["hits"] == 1
    assert info["misses"] == 1
    assert info["size"] == 1
    assert info["hit_rate"] == 0.5
    assert info["enabled"] is True
    clear_cache()
    assert cache_info() == {
        "hits": 0, "misses": 0, "size": 0, "hit_rate": 0.0, "enabled": True,
    }


def test_result_cache_env_knob_disables_memoisation(monkeypatch):
    from repro.experiments.designs import baseline_design
    from repro.experiments.harness import cache_info, clear_cache, run_design

    clear_cache()
    monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
    design = baseline_design(entries=256, key="obs-cache-probe")
    first = run_design("server_oltp_00", design, scale="tiny")
    second = run_design("server_oltp_00", design, scale="tiny")
    assert first is not second
    info = cache_info()
    assert info["misses"] == 2
    assert info["size"] == 0
    assert info["enabled"] is False
    clear_cache()


def test_slowest_runs_ranked():
    from repro.experiments.designs import baseline_design
    from repro.experiments.harness import clear_cache, run_design, slowest_runs

    clear_cache()
    design = baseline_design(entries=256, key="obs-cache-probe")
    run_design("server_oltp_00", design, scale="tiny")
    ranked = slowest_runs(3)
    assert ranked[0][0] == "server_oltp_00"
    assert ranked[0][1] == "obs-cache-probe"
    assert ranked[0][2] > 0.0
    clear_cache()


# -- integration: a simulate run emits the expected metrics ------------------


EXPECTED_PDEDE_METRICS = (
    "frontend_ipc",
    "frontend_btb_mpki",
    "frontend_resteers_total",
    "frontend_stall_cycles_total",
    "btb_misses_total",
    "btb_occupancy",
    "btbm_occupancy",
    "btbm_delta_entries",
    "pdede_delta_hits_total",
    "pdede_pointer_hits_total",
    "page_btb_occupancy",
    "page_btb_dedup_hits_total",
    "region_btb_occupancy",
    "icache_misses_total",
    "ras_pushes_total",
    "harness_result_cache_total",
    "harness_simulation_seconds",
)


def test_simulate_cli_emits_metrics_and_trace(tmp_path):
    from repro.cli import main
    from repro.experiments.harness import clear_cache

    clear_cache()  # guarantee a fresh simulation so metrics are published
    metrics_path = tmp_path / "m.json"
    trace_path = tmp_path / "t.jsonl"
    code = main([
        "--scale", "tiny", "simulate",
        "--app", "server_oltp_00", "--design", "pdede-default",
        "--metrics-out", str(metrics_path),
        "--trace-out", str(trace_path),
    ])
    assert code == 0
    snapshot = json.loads(metrics_path.read_text())
    for name in EXPECTED_PDEDE_METRICS:
        assert name in snapshot, name
    # Every frontend series is labelled with the app and design.
    (ipc_series,) = snapshot["frontend_ipc"]["series"]
    assert ipc_series["labels"] == {
        "app": "server_oltp_00", "design": "PDede[default]",
    }
    assert ipc_series["value"] > 0
    records = read_jsonl(str(trace_path))
    names = [record["name"] for record in records]
    assert "simulate" in names
    assert "trace-gen" in names
    simulate = next(r for r in records if r["name"] == "simulate")
    nested = [r for r in records if r["parent_id"] == simulate["span_id"]]
    assert nested, "simulate span must have nested children"
    clear_cache()


def test_simulate_cli_positional_and_flag_mix(tmp_path, capsys):
    from repro.cli import main

    assert main(["--scale", "tiny", "simulate", "server_oltp_00",
                 "--design", "baseline"]) == 0
    assert "IPC" in capsys.readouterr().out
    assert main(["--scale", "tiny", "simulate"]) == 2
    assert "needs an application" in capsys.readouterr().err


def test_cli_epilog_lists_registries():
    from repro.cli import build_parser

    epilog = build_parser().epilog
    assert "pdede-multi-entry" in epilog
    assert "fig10" in epilog
    assert "ablation-stale" in epilog


def test_baseline_metrics_surface():
    from repro.btb.baseline import BaselineBTB
    from repro.branch.types import BranchEvent, BranchKind

    btb = BaselineBTB(entries=64, ways=4)
    event = BranchEvent(pc=0x1000, kind=BranchKind.UNCOND_DIRECT,
                        taken=True, target=0x2000, instr_gap=3)
    btb.observe(event)
    btb.observe(event)
    data = btb.metrics()
    assert data["btb_lookups_total"] == 2
    assert data["btb_misses_total"] == 1
    assert data["btb_hits_total"] == 1
    assert data["btb_occupancy"] == 1
    assert data["btb_entries"] == 64
    assert btb.stats.to_dict()["misses_by_kind"] == {"UNCOND_DIRECT": 1}
