"""Sharded stats must merge *exactly*.

The scheduler splits one run's measured region into shards, simulates
them independently (each replaying its prefix unmeasured), and merges
the per-shard ``FrontendStats``.  The merge is only useful if it is
bit-identical to the unsharded run -- otherwise sharded sweeps would
drift from serial ones and the disk cache would hold two truths.  The
integer-tick accounting makes the cycle buckets associative integer
sums, so the property holds for *arbitrary* shard boundaries; these
tests draw boundaries from a seeded RNG and compare against the frozen
seed referee, for every design family.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.designs import (
    ghrp_design,
    pdede_design,
    standard_designs,
    two_level_design,
    with_perfect_direction,
    with_returns_in_btb,
)
from repro.experiments.scheduler import shard_bounds
from repro.frontend.seedref import SeedFrontendSimulator, seed_counterpart
from repro.frontend.simulator import FrontendSimulator
from repro.frontend.stats import FrontendStats
from repro.workloads.suite import get_trace

TRACE_SCALE = "tiny"
TRACE_APP = "server_oltp_00"
WARMUP = 0.3


def _merge_designs():
    designs = dict(standard_designs())
    designs["ghrp"] = ghrp_design()
    designs["twolevel-pdede"] = two_level_design(512, pdede_design())
    pdede = designs["pdede-multi-entry"]
    designs["pdede+perfect-direction"] = with_perfect_direction(pdede)
    designs["pdede+returns-in-btb"] = with_returns_in_btb(pdede)
    return designs


def _random_boundaries(n_events: int, rng: random.Random) -> list[tuple[int, int]]:
    """Arbitrary (not equal-sized) shard bounds over the measured region."""
    warm_limit = int(n_events * WARMUP)
    n_cuts = rng.randrange(1, 5)
    cuts = sorted(rng.sample(range(warm_limit + 1, n_events), n_cuts))
    edges = [warm_limit] + cuts + [n_events]
    return list(zip(edges[:-1], edges[1:]))


def _run_shard(design, trace, start: int, stop: int) -> FrontendStats:
    btb, kwargs = design.build()
    simulator = FrontendSimulator(btb, **kwargs)
    return simulator.run(trace, measure_range=(start, stop))


def _stable_seed(key: str) -> int:
    # Per-design RNG seed; the determinism linter bans hash(), and a
    # byte sum is stable across interpreter runs anyway.
    return sum(key.encode())


@pytest.mark.parametrize("key", sorted(_merge_designs()))
def test_merge_is_bit_identical_to_unsharded_seed_run(key):
    design = _merge_designs()[key]
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    seed_btb, seed_kwargs = design.build()
    reference = SeedFrontendSimulator(seed_counterpart(seed_btb), **seed_kwargs)
    seed_stats = reference.run(trace, warmup_fraction=WARMUP)
    rng = random.Random(_stable_seed(key))
    for _ in range(2):
        bounds = _random_boundaries(len(trace), rng)
        parts = [_run_shard(design, trace, start, stop) for start, stop in bounds]
        merged = FrontendStats.merge(parts)
        assert merged.to_dict() == seed_stats.to_dict(), (key, bounds)


def test_single_shard_equals_full_run():
    design = standard_designs()["pdede-multi-entry"]
    trace = get_trace(TRACE_APP, TRACE_SCALE)
    warm_limit = int(len(trace) * WARMUP)
    whole = _run_shard(design, trace, warm_limit, len(trace))
    btb, kwargs = design.build()
    plain = FrontendSimulator(btb, **kwargs).run(trace, warmup_fraction=WARMUP)
    assert FrontendStats.merge([whole]).to_dict() == plain.to_dict()


def test_shard_bounds_partition_the_measured_region():
    rng = random.Random(7)
    for _ in range(50):
        n_events = rng.randrange(10, 5000)
        warmup = rng.choice([0.0, 0.1, 0.3, 0.5])
        n_shards = rng.randrange(1, 9)
        bounds = shard_bounds(n_events, warmup, n_shards)
        warm_limit = int(n_events * warmup)
        assert bounds[0][0] == warm_limit
        assert bounds[-1][1] == n_events
        for (_, stop), (start, _) in zip(bounds[:-1], bounds[1:]):
            assert stop == start
        assert len(bounds) <= n_shards
        sizes = [stop - start for start, stop in bounds]
        # Contiguous, near-even split: sizes differ by at most one, and
        # only the first shard of a degenerate region may be empty.
        assert max(sizes) - min(sizes) <= 1 or sizes[0] == 0


def test_merge_rejects_empty_and_mixed_ticks():
    with pytest.raises(ValueError):
        FrontendStats.merge([])
    with pytest.raises(ValueError):
        FrontendStats.merge([FrontendStats()])  # no tick accounting
    a = FrontendStats(cycle_tick=80)
    b = FrontendStats(cycle_tick=40)
    with pytest.raises(ValueError):
        FrontendStats.merge([a, b])


def test_merge_sums_counts_and_ticks():
    a = FrontendStats(cycle_tick=80)
    a.set_cycle_buckets(80, 800, 640, 80, 40, 40, 0)
    a.instructions = 100
    a.btb_misses = 3
    b = FrontendStats(cycle_tick=80)
    b.set_cycle_buckets(80, 400, 320, 0, 40, 40, 0)
    b.instructions = 50
    b.btb_misses = 1
    merged = FrontendStats.merge([a, b])
    assert merged.instructions == 150
    assert merged.btb_misses == 4
    assert merged.cycles_ticks == 1200
    assert merged.cycles == 1200 / 80
    assert merged.base_cycles == 960 / 80
