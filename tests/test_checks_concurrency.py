"""REP1xx concurrency rules: every rule catches its seeded violation
and stays quiet on the sanctioned pattern."""

from __future__ import annotations

import textwrap

from repro.checks.callgraph import build_project_from_sources
from repro.checks.concurrency import run_concurrency


def _findings(**sources: str):
    project = build_project_from_sources(
        {name.replace("_", "."): textwrap.dedent(src) for name, src in sources.items()}
    )
    return run_concurrency(project)


def _codes(**sources: str) -> set[str]:
    return {f.code for f in _findings(**sources)}


# -- REP101: blocking-in-event-loop -----------------------------------------


def test_rep101_direct_sleep_in_async_def():
    assert "REP101" in _codes(
        repro_a="""
        import time

        async def handler():
            time.sleep(0.1)
        """
    )


def test_rep101_sleep_two_calls_deep_under_async_handler():
    # ISSUE acceptance: injecting time.sleep two helpers below an async
    # handler must fail the gate, with the chain in the message.
    findings = _findings(
        repro_a="""
        import time

        def inner():
            time.sleep(0.1)

        def outer():
            inner()

        async def handler():
            outer()
        """
    )
    rep101 = [f for f in findings if f.code == "REP101"]
    assert rep101, findings
    assert any("outer -> inner: time.sleep()" in f.message for f in rep101)


def test_rep101_blocking_behind_executor_is_fine():
    assert "REP101" not in _codes(
        repro_a="""
        import time

        def blocking_work():
            time.sleep(0.1)

        async def handler(loop):
            await loop.run_in_executor(None, blocking_work)
        """
    )


def test_rep101_sync_only_blocking_is_fine():
    assert "REP101" not in _codes(
        repro_a="""
        import time

        def cli_pause():
            time.sleep(0.1)
        """
    )


def test_rep101_open_file_handle_write_via_method_chain():
    findings = _findings(
        repro_a="""
        class Log:
            def __init__(self, path):
                self._sink = open(path, "a")

            def emit(self, record):
                self._sink.write(record)

            async def handle(self):
                self.emit("hop")
        """
    )
    rep101 = [f for f in findings if f.code == "REP101"]
    assert rep101
    assert any("open file handle" in f.message for f in rep101)


def test_rep101_pathlib_write_text_in_async():
    assert "REP101" in _codes(
        repro_a="""
        async def persist(path, payload):
            path.write_text(payload)
        """
    )


def test_rep101_str_replace_is_not_filesystem():
    assert "REP101" not in _codes(
        repro_a="""
        async def sanitize(name):
            return name.replace("/", "_")
        """
    )


def test_rep101_noqa_suppresses():
    assert "REP101" not in _codes(
        repro_a="""
        import time

        async def handler():
            time.sleep(0.1)  # noqa: REP101 - startup-only, loop idle
        """
    )


# -- REP102: fire-and-forget task -------------------------------------------


def test_rep102_bare_create_task():
    assert "REP102" in _codes(
        repro_a="""
        import asyncio

        async def coro():
            pass

        async def handler():
            asyncio.create_task(coro())
        """
    )


def test_rep102_retained_task_is_fine():
    assert "REP102" not in _codes(
        repro_a="""
        import asyncio

        async def coro():
            pass

        async def handler(background):
            task = asyncio.create_task(coro())
            background.add(task)
            task.add_done_callback(background.discard)
        """
    )


# -- REP103: unawaited coroutine --------------------------------------------


def test_rep103_statement_level_coroutine_call():
    assert "REP103" in _codes(
        repro_a="""
        async def refresh():
            pass

        def tick():
            refresh()
        """
    )


def test_rep103_awaited_call_is_fine():
    assert "REP103" not in _codes(
        repro_a="""
        async def refresh():
            pass

        async def tick():
            await refresh()
        """
    )


def test_rep103_bound_coroutine_is_fine():
    # A coroutine assigned to a name may be awaited/scheduled later.
    assert "REP103" not in _codes(
        repro_a="""
        async def refresh():
            pass

        def make():
            pending = refresh()
            return pending
        """
    )


# -- REP104: unlocked shared state ------------------------------------------


_SHARED_GLOBAL = """
import threading

_TELEMETRY = {"hits": 0}

def worker():
    _TELEMETRY["hits"] = _TELEMETRY["hits"] + 1

async def stats():
    return dict(_TELEMETRY)

async def handler(loop):
    await loop.run_in_executor(None, worker)
"""


def test_rep104_unlocked_global_mutation_off_loop():
    findings = _findings(repro_a=_SHARED_GLOBAL)
    rep104 = [f for f in findings if f.code == "REP104"]
    assert rep104
    assert any("_TELEMETRY" in f.message for f in rep104)


def test_rep104_locked_mutation_is_fine():
    assert "REP104" not in _codes(
        repro_a="""
        import threading

        _TELEMETRY = {"hits": 0}
        _LOCK = threading.Lock()

        def worker():
            with _LOCK:
                _TELEMETRY["hits"] = _TELEMETRY["hits"] + 1

        async def stats():
            return dict(_TELEMETRY)

        async def handler(loop):
            await loop.run_in_executor(None, worker)
        """
    )


def test_rep104_plain_rebind_is_fine():
    # Reference swap is atomic under the GIL -- the sanctioned publish
    # pattern must not trip the rule.
    assert "REP104" not in _codes(
        repro_a="""
        _SNAPSHOT = {}

        def worker():
            global _SNAPSHOT
            _SNAPSHOT = {"fresh": True}

        async def stats():
            return _SNAPSHOT
        """
    )


def test_rep104_instance_attr_written_by_thread_entry():
    findings = _findings(
        repro_a="""
        import threading

        class Service:
            def __init__(self):
                self.stats = []
                threading.Thread(target=self._run).start()

            def _run(self):
                self.stats.append(1)

            async def snapshot(self):
                return list(self.stats)
        """
    )
    rep104 = [f for f in findings if f.code == "REP104"]
    assert rep104
    assert any("self.stats" in f.message for f in rep104)


# -- REP105: contextvar without reset ---------------------------------------


def test_rep105_set_without_reset():
    assert "REP105" in _codes(
        repro_a="""
        from contextvars import ContextVar

        _BOUND = ContextVar("bound", default=())

        def bind(rids):
            _BOUND.set(rids)
        """
    )


def test_rep105_paired_reset_is_fine():
    assert "REP105" not in _codes(
        repro_a="""
        from contextvars import ContextVar

        _BOUND = ContextVar("bound", default=())

        def bind(rids):
            token = _BOUND.set(rids)
            try:
                pass
            finally:
                _BOUND.reset(token)
        """
    )


# -- engine -----------------------------------------------------------------


def test_syntax_error_surfaces_as_rep000():
    assert "REP000" in _codes(repro_bad="def broken(:\n    pass\n")


def test_findings_deterministic_order():
    first = _findings(repro_a=_SHARED_GLOBAL)
    second = _findings(repro_a=_SHARED_GLOBAL)
    assert [f.sort_key for f in first] == [f.sort_key for f in second]
