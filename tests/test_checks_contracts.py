"""REP2xx contract rules: knob registry, metric/event catalogs, doc
coverage -- plus the ISSUE acceptance check that the repo itself is
clean under the full analysis."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.checks.callgraph import build_project, build_project_from_sources
from repro.checks.concurrency import run_concurrency
from repro.checks.contracts import (
    EVENT_CATALOG,
    KNOWN_KNOBS,
    METRIC_CATALOG,
    Knob,
    run_contracts,
)
from repro.checks.lint import run_lint

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _project(**sources: str):
    return build_project_from_sources(
        {name.replace("_", "."): textwrap.dedent(src) for name, src in sources.items()}
    )


def _codes(findings) -> set[str]:
    return {f.code for f in findings}


# -- REP201: undeclared knob ------------------------------------------------


def test_rep201_undeclared_knob_read():
    findings = run_contracts(
        _project(
            repro_a="""
            import os

            def read():
                return os.environ.get("REPRO_BOGUS_KNOB")
            """
        )
    )
    assert "REP201" in _codes(findings)
    assert any("REPRO_BOGUS_KNOB" in f.message for f in findings)


def test_rep201_declared_knob_is_fine():
    findings = run_contracts(
        _project(
            repro_a="""
            import os

            def read():
                return os.environ.get("REPRO_SCALE", "default")
            """
        )
    )
    assert "REP201" not in _codes(findings)


def test_rep201_matches_whole_string_only():
    # Help text *mentioning* a knob inside a sentence is not a read.
    findings = run_contracts(
        _project(
            repro_a="""
            HELP = "set REPRO_MYSTERY_KNOB to tune the flux"
            """
        )
    )
    assert "REP201" not in _codes(findings)


def test_rep201_noqa_suppresses():
    findings = run_contracts(
        _project(
            repro_a="""
            import os

            def read():
                return os.environ.get("REPRO_LEGACY_KNOB")  # noqa: REP201 - migration shim
            """
        )
    )
    assert "REP201" not in _codes(findings)


# -- REP202: undocumented knob ----------------------------------------------


_SCALE_READ = """
import os

def read():
    return os.environ.get("REPRO_SCALE")
"""


def test_rep202_knob_missing_from_docs():
    findings = run_contracts(_project(repro_a=_SCALE_READ), docs_text="nothing here")
    assert "REP202" in _codes(findings)


def test_rep202_documented_knob_is_fine():
    findings = run_contracts(
        _project(repro_a=_SCALE_READ), docs_text="| `REPRO_SCALE` | scale tier |"
    )
    assert "REP202" not in _codes(findings)


def test_rep202_skipped_without_docs_text():
    findings = run_contracts(_project(repro_a=_SCALE_READ), docs_text=None)
    assert "REP202" not in _codes(findings)


def test_rep202_test_scope_knob_exempt():
    findings = run_contracts(
        _project(
            repro_a="""
            import os

            def read():
                return os.environ.get("REPRO_TEST_KEEP_ENV")
            """
        ),
        docs_text="no knobs documented",
    )
    assert "REP202" not in _codes(findings)


# -- REP203 / REP204: metric and event catalogs -----------------------------


def test_rep203_uncatalogued_metric():
    findings = run_contracts(
        _project(
            repro_a="""
            def record(registry):
                registry.counter("bogus_metric_total").inc()
            """
        ),
        metrics=frozenset({"serve_requests_total"}),
    )
    assert "REP203" in _codes(findings)


def test_rep203_catalogued_metric_is_fine():
    findings = run_contracts(
        _project(
            repro_a="""
            def record(registry):
                registry.counter("serve_requests_total").inc()
            """
        ),
        metrics=frozenset({"serve_requests_total"}),
    )
    assert "REP203" not in _codes(findings)


def test_rep204_uncatalogued_event():
    findings = run_contracts(
        _project(
            repro_a="""
            from repro.obs.events import emit

            def hop():
                emit("mystery-hop", rid="r1")
            """
        ),
        events=frozenset({"admit"}),
    )
    assert "REP204" in _codes(findings)


def test_rep204_catalogued_event_is_fine():
    findings = run_contracts(
        _project(
            repro_a="""
            from repro.obs.events import emit

            def hop():
                emit("admit", rid="r1")
            """
        ),
        events=frozenset({"admit"}),
    )
    assert "REP204" not in _codes(findings)


# -- REP205: unused knob ----------------------------------------------------


def test_rep205_unread_runtime_knob():
    knobs = {
        "REPRO_GHOST": Knob("REPRO_GHOST", "runtime", "declared, never read"),
    }
    findings = run_contracts(_project(repro_a="x = 1\n"), knobs=knobs, check_unused=True)
    assert "REP205" in _codes(findings)


def test_rep205_read_knob_is_fine():
    knobs = {"REPRO_SCALE": KNOWN_KNOBS["REPRO_SCALE"]}
    findings = run_contracts(
        _project(repro_a=_SCALE_READ), knobs=knobs, check_unused=True
    )
    assert "REP205" not in _codes(findings)


def test_rep205_off_by_default():
    knobs = {
        "REPRO_GHOST": Knob("REPRO_GHOST", "runtime", "declared, never read"),
    }
    findings = run_contracts(_project(repro_a="x = 1\n"), knobs=knobs)
    assert "REP205" not in _codes(findings)


# -- registry sanity --------------------------------------------------------


def test_registry_names_match_their_keys():
    assert all(name == knob.name for name, knob in KNOWN_KNOBS.items())
    assert all(knob.scope in {"runtime", "test"} for knob in KNOWN_KNOBS.values())
    assert all(knob.description for knob in KNOWN_KNOBS.values())


def test_catalogs_are_nonempty_frozensets():
    assert isinstance(METRIC_CATALOG, frozenset) and METRIC_CATALOG
    assert isinstance(EVENT_CATALOG, frozenset) and EVENT_CATALOG


# -- ISSUE acceptance: the repo's own tree is clean -------------------------


def test_repo_passes_full_static_analysis():
    src = _REPO_ROOT / "src" / "repro"
    assert src.is_dir()
    docs_text = (_REPO_ROOT / "README.md").read_text() + (
        _REPO_ROOT / "DESIGN.md"
    ).read_text()
    project = build_project([src])
    findings = (
        run_lint([src])
        + run_concurrency(project)
        + run_contracts(project, docs_text=docs_text, check_unused=True)
    )
    assert findings == [], "\n".join(f.format() for f in findings)


def test_repo_baseline_is_empty():
    # The landing policy was fix-not-record; keep it that way.
    import json

    document = json.loads((_REPO_ROOT / "checks_baseline.json").read_text())
    assert document["findings"] == {}
