"""Unit tests for PDede configuration and Table 2 storage math."""

import pytest

from repro.core.config import PDedeConfig, PDedeMode, paper_config


def test_paper_configs_are_iso_storage_class():
    """Every paper config must stay within ~2% of the 37.5 KiB baseline."""
    baseline_kib = 37.5
    for mode in PDedeMode:
        config = paper_config(mode)
        assert config.storage_kib() <= baseline_kib * 1.03, mode


def test_multi_entry_tracks_twice_the_baseline_branches():
    config = paper_config(PDedeMode.MULTI_ENTRY)
    assert config.btbm_entries == 2 * 4096


def test_default_entry_bit_budget():
    config = PDedeConfig()
    # pid 1 + tag 12 + delta 1 + srrip 2 + conf 2 + offset 12 + ptr 10 + ptr 2
    assert config.btbm_long_entry_bits() == 42
    assert config.btbm_short_entry_bits() == 30


def test_multi_target_costs_one_extra_bit():
    default = paper_config(PDedeMode.DEFAULT)
    multi_target = paper_config(PDedeMode.MULTI_TARGET)
    assert multi_target.btbm_long_entry_bits() == default.btbm_long_entry_bits() + 1


def test_multi_entry_mixes_entry_sizes():
    config = paper_config(PDedeMode.MULTI_ENTRY)
    half = config.btbm_entries // 2
    expected = half * config.btbm_long_entry_bits() + half * config.btbm_short_entry_bits()
    assert config.btbm_bits() == expected


def test_pointer_widths_follow_table_sizes():
    config = PDedeConfig(page_entries=1024, region_entries=4)
    assert config.page_ptr_bits == 10
    assert config.region_ptr_bits == 2


def test_scaled_configuration():
    config = paper_config(PDedeMode.MULTI_ENTRY).scaled(2)
    assert config.btbm_entries == 16384
    assert config.page_entries == 2048


def test_replace_returns_new_config():
    config = PDedeConfig()
    other = config.replace(tag_bits=10)
    assert other.tag_bits == 10
    assert config.tag_bits == 12


def test_validation_rules():
    with pytest.raises(ValueError):
        PDedeConfig(btbm_entries=0)
    with pytest.raises(ValueError):
        PDedeConfig(btbm_entries=100, btbm_ways=8)
    with pytest.raises(ValueError):
        PDedeConfig(mode=PDedeMode.MULTI_ENTRY, btbm_ways=7)
    with pytest.raises(ValueError):
        PDedeConfig(mode=PDedeMode.MULTI_TARGET, delta_encoding=False)


def test_storage_components_positive():
    config = paper_config(PDedeMode.DEFAULT)
    assert config.page_btb_bits() == 1024 * (16 + 2)
    assert config.region_btb_bits() == 4 * (29 + 2)
    assert config.storage_bits() == (
        config.btbm_bits() + config.page_btb_bits() + config.region_btb_bits()
    )
