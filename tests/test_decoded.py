"""Decoded-trace columns: every derived column must agree with the
scalar helper it replaces, and the replayed state machines must land in
the same final state as an event-by-event live run."""

from __future__ import annotations

import pytest

from repro.branch.address import hash_pc, same_page
from repro.branch.direction import TageLitePredictor
from repro.branch.types import BranchKind
from repro.frontend.icache import ICache
from repro.workloads.suite import get_trace

TRACE_APP = "server_oltp_00"


@pytest.fixture(scope="module")
def trace():
    return get_trace(TRACE_APP, "tiny")


@pytest.fixture(scope="module")
def decoded(trace):
    return trace.decoded()


def test_decoded_is_cached_on_the_trace(trace):
    assert trace.decoded() is trace.decoded()


def test_block_instructions_is_gap_plus_one(trace, decoded):
    assert decoded.n_events == len(trace)
    assert decoded.block_instructions == [gap + 1 for gap in trace.gaps]


def test_hashes_match_scalar_hash_pc(trace, decoded):
    # Spot-check across the column; the vectorised mix64 must agree
    # with the scalar helper, including uint64 wrap-around.
    for index in range(0, len(trace), max(1, len(trace) // 257)):
        assert decoded.hashes[index] == hash_pc(trace.pcs[index])


def test_same_page_matches_scalar_helper(trace, decoded):
    assert decoded.same_page == [
        same_page(pc, target) for pc, target in zip(trace.pcs, trace.targets)
    ]


def test_kind_property_columns(trace, decoded):
    kinds = [BranchKind(value) for value in trace.kinds]
    assert decoded.is_call == [kind.is_call for kind in kinds]
    assert decoded.is_indirect == [kind.is_indirect for kind in kinds]


def test_supply_demand_ticks_are_exact_multiples(decoded):
    supply, demand = decoded.supply_demand_ticks(10, 16)
    assert supply == [count * 10 for count in decoded.block_instructions]
    assert demand == [count * 16 for count in decoded.block_instructions]
    assert all(isinstance(value, int) for value in supply[:64])
    assert decoded.supply_demand_ticks(10, 16) is decoded.supply_demand_ticks(10, 16)
    assert decoded.supply_demand_ticks(5, 16)[0] != supply


def test_icache_misses_match_live_replay(trace, decoded):
    misses, final = decoded.icache_misses(32, 64, 8)
    live = ICache(32, 64, 8)
    expected = []
    for pc, gap in zip(trace.pcs, trace.gaps):
        start = pc - gap * 4
        expected.append(live.touch_range(start, pc))
    assert misses == expected
    assert final.accesses == live.accesses
    assert final.misses == live.misses
    assert final._lines == live._lines
    # The memoised cache state must be adopted by *clone*, never shared.
    adopted = final.clone()
    adopted.touch_range(0x9999_0000, 0x9999_0040)
    assert final.accesses == live.accesses


def test_direction_outcomes_match_live_predictor(trace, decoded):
    outcomes, final = decoded.direction_outcomes("tage-default")
    live = TageLitePredictor()
    cond = int(BranchKind.COND_DIRECT)
    expected = [True] * len(trace)
    for index, kind in enumerate(trace.kinds):
        if kind == cond:
            taken = trace.takens[index]
            predicted = live.predict(trace.pcs[index])
            live.update(trace.pcs[index], taken)
            expected[index] = predicted == taken
    assert outcomes == expected
    assert final._history == live._history
    assert final._rng_state == live._rng_state


def test_unknown_direction_signature_raises(decoded):
    with pytest.raises(ValueError):
        decoded.direction_outcomes("perceptron-v2")


def test_predictor_clone_is_independent():
    predictor = TageLitePredictor()
    for pc in range(0x1000, 0x1400, 4):
        predictor.update(pc, pc % 3 == 0)
    twin = predictor.clone()
    assert twin._history == predictor._history
    assert twin._rng_state == predictor._rng_state
    twin.update(0x2000, True)
    assert twin._history != predictor._history
