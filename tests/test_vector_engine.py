"""Resteer-boundary edge cases of the columnar vector engine.

The chunked replay loop has three delicate spots: a boundary landing on
the first or last lane of a chunk (the clean-prefix commit is empty or
the truncated tail is), back-to-back boundaries (consecutive replays
with no vector commit between them), and a shard's ``measure_range``
edge falling *inside* a replayed segment.  These tests pin each against
the frozen seed referee, shrinking the chunk constants so every block
geometry actually occurs on a short trace.
"""

from __future__ import annotations

import pytest

from repro.experiments.designs import standard_designs, with_ittage
from repro.frontend import vector as vector_mod
from repro.frontend.seedref import SeedFrontendSimulator, seed_counterpart
from repro.frontend.simulator import FrontendSimulator
from repro.frontend.stats import FrontendStats
from repro.workloads.generator import generate_trace
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import get_trace

WARMUP = 0.25


def _dense_miss_trace(n_events: int = 900, seed: int = 7) -> object:
    """A short trace whose cold start makes nearly every taken branch a
    BTB allocation: boundaries land back to back, and on tiny chunks
    they hit first/last lanes of many blocks."""
    spec = WorkloadSpec(
        name="vector_edge",
        category="fuzz",
        seed=seed,
        n_events=n_events,
        n_functions=600,
        blocks_per_fn_mean=9.0,
        block_instrs_mean=5.0,
        n_regions=4,
        functions_per_page_mean=3.0,
        loop_fraction=0.15,
        mean_trip_count=3.0,
        cond_taken_bias=0.6,
        never_taken_fraction=0.2,
        indirect_fanout=5,
        n_phases=3,
        hot_functions_per_phase=25,
        zipf_s=1.1,
        sweep_fraction=0.2,
        max_call_depth=10,
    )
    return generate_trace(spec)


def _stats_pair(design, trace, engine="vector", **run_kwargs):
    btb, kwargs = design.build()
    simulator = FrontendSimulator(btb, engine=engine, **kwargs)
    stats = simulator.run(trace, warmup_fraction=WARMUP, **run_kwargs)
    seed_btb, seed_kwargs = design.build()
    reference = SeedFrontendSimulator(seed_counterpart(seed_btb), **seed_kwargs)
    seed_stats = reference.run(trace, warmup_fraction=WARMUP)
    return stats, seed_stats


@pytest.mark.parametrize("chunk", [1, 2, 3, 5, 8])
@pytest.mark.parametrize("key", ["baseline", "pdede-default", "pdede-multi-target"])
def test_boundary_on_first_and_last_chunk_lane(monkeypatch, key, chunk):
    # With CHUNK_MIN == CHUNK_START == CHUNK_MAX == chunk, every block
    # has exactly `chunk` lanes, so over a dense-miss trace boundaries
    # fall on the first lane (empty clean prefix), the last lane (empty
    # tail), and everywhere between -- including chunk == 1, where every
    # block is a single lane and the loop degenerates to scalar replay.
    for name in ("CHUNK_MIN", "CHUNK_START", "CHUNK_MAX"):
        monkeypatch.setattr(vector_mod, name, chunk)
    trace = _dense_miss_trace()
    stats, seed_stats = _stats_pair(standard_designs()[key], trace)
    assert stats.to_dict() == seed_stats.to_dict()


def test_back_to_back_resteers_cold_start(monkeypatch):
    # A cold BTB makes the first hundreds of taken branches consecutive
    # allocations: every active lane is a boundary, so replays run back
    # to back with zero-length clean segments between them.
    monkeypatch.setattr(vector_mod, "CHUNK_START", 16)
    monkeypatch.setattr(vector_mod, "CHUNK_MIN", 4)
    trace = _dense_miss_trace(n_events=400, seed=11)
    for key, design in standard_designs().items():
        stats, seed_stats = _stats_pair(design, trace)
        assert stats.to_dict() == seed_stats.to_dict(), key


def test_growth_and_shrink_across_resteer_clusters(monkeypatch):
    # Default-ish geometry but small enough that the adaptive chunk both
    # shrinks (dense early allocations) and re-grows (the warm tail).
    monkeypatch.setattr(vector_mod, "CHUNK_MIN", 2)
    monkeypatch.setattr(vector_mod, "CHUNK_START", 8)
    monkeypatch.setattr(vector_mod, "CHUNK_MAX", 64)
    trace = _dense_miss_trace(n_events=2500, seed=3)
    stats, seed_stats = _stats_pair(standard_designs()["pdede-multi-entry"], trace)
    assert stats.to_dict() == seed_stats.to_dict()


@pytest.mark.parametrize(
    "bounds", [(0, 117), (117, 800), (800, 900), (0, 900), (449, 451)]
)
def test_measure_range_edges_inside_replayed_segments(monkeypatch, bounds):
    # Shard edges at awkward offsets land inside replay clusters; the
    # shard must account exactly the events the seed engine would have
    # accounted over the same window.  Sharding the whole trace and
    # merging reproduces the unsharded seed run bit for bit.
    monkeypatch.setattr(vector_mod, "CHUNK_START", 32)
    monkeypatch.setattr(vector_mod, "CHUNK_MIN", 8)
    trace = _dense_miss_trace()
    design = standard_designs()["pdede-default"]

    btb, kwargs = design.build()
    vec = FrontendSimulator(btb, engine="vector", **kwargs)
    shard = vec.run(trace, measure_range=bounds)
    btb, kwargs = design.build()
    fast = FrontendSimulator(btb, engine="fast", **kwargs)
    fast_shard = fast.run(trace, measure_range=bounds)
    assert shard.to_dict() == fast_shard.to_dict()


def test_sharded_vector_run_merges_to_seed_run():
    trace = _dense_miss_trace()
    design = standard_designs()["pdede-multi-target"]
    cuts = [0, 117, 449, 800, len(trace)]
    parts = []
    for start, stop in zip(cuts, cuts[1:]):
        btb, kwargs = design.build()
        simulator = FrontendSimulator(btb, engine="vector", **kwargs)
        parts.append(simulator.run(trace, measure_range=(start, stop)))
    merged = FrontendStats.merge(parts)
    seed_btb, seed_kwargs = design.build()
    reference = SeedFrontendSimulator(seed_counterpart(seed_btb), **seed_kwargs)
    seed_stats = reference.run(trace, warmup_fraction=0.0)
    assert merged.to_dict() == seed_stats.to_dict()


# -- engine forcing and applicability ---------------------------------------


def test_unknown_engine_rejected_at_construction():
    btb, kwargs = standard_designs()["baseline"].build()
    with pytest.raises(ValueError, match="unknown engine"):
        FrontendSimulator(btb, engine="warp", **kwargs)


def test_forced_vector_rejects_inapplicable_design():
    design = with_ittage(standard_designs()["pdede-default"])
    btb, kwargs = design.build()
    simulator = FrontendSimulator(btb, engine="vector", **kwargs)
    with pytest.raises(ValueError, match="vector engine not applicable"):
        simulator.run(get_trace("server_oltp_00", "tiny"))


def test_forced_vector_rejects_reused_simulator():
    trace = get_trace("server_oltp_00", "tiny")
    btb, kwargs = standard_designs()["baseline"].build()
    simulator = FrontendSimulator(btb, engine="vector", **kwargs)
    simulator.run(trace, warmup_fraction=WARMUP)
    with pytest.raises(ValueError, match="vector engine not applicable"):
        simulator.run(trace, warmup_fraction=WARMUP)
