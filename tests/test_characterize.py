"""The characterization gate: profiles, envelope bounds, diagnostics."""

import pytest

from repro.analysis.characterize import (
    CharacterizationEnvelope,
    EnvelopeBound,
    EnvelopeError,
    characterize,
    paper_envelope,
)
from repro.branch.types import BranchKind
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import build_suite
from repro.workloads.generator import generate_trace

from conftest import make_trace


def _suite_trace(index: int = 0):
    return generate_trace(build_suite("tiny")[index])


def test_profile_condenses_the_paper_figures():
    trace = _suite_trace()
    profile = characterize(trace)
    assert profile.name == trace.name
    assert profile.n_events == len(trace)
    assert profile.instruction_count == trace.instruction_count
    assert sum(profile.kind_mix.values()) == pytest.approx(1.0)
    assert 0.0 <= profile.dynamic_taken_fraction <= 1.0
    assert profile.unique_pcs > 0
    assert profile.static_branches > 0
    assert profile.mean_gap == pytest.approx(
        sum(trace.gaps) / len(trace)
    )
    data = profile.to_dict()
    assert data["name"] == trace.name
    assert data["kind_mix"] == profile.kind_mix
    assert data["mean_gap"] == profile.mean_gap


def test_every_suite_trace_passes_the_paper_envelope():
    """The gate's whole point: realistic captures sail through.  Every
    workload the tiny suite generates must sit inside the envelope."""
    envelope = paper_envelope()
    for spec in build_suite("tiny"):
        profile = characterize(generate_trace(spec))
        assert envelope.validate(profile) == [], spec.name


def test_degenerate_traces_are_rejected_with_every_violation_named():
    trace = make_trace(
        [(0x1000, BranchKind.COND_DIRECT, False, 0x1004, 1)] * 256,
        name="degenerate",
    )
    profile = characterize(trace)
    violations = paper_envelope().validate(profile)
    violated = {violation.metric for violation in violations}
    assert "dynamic_taken_fraction" in violated
    assert "unique_pcs" in violated
    with pytest.raises(EnvelopeError) as excinfo:
        paper_envelope().check(profile)
    rendered = str(excinfo.value)
    assert "'degenerate'" in rendered
    # Each violation renders its bound and its diagnosis hint.
    for violation in violations:
        assert violation.message() in rendered
        assert violation.hint in rendered


def test_empty_trace_violates_the_volume_floor():
    profile = characterize(make_trace([], name="empty"))
    violated = {v.metric for v in paper_envelope().validate(profile)}
    assert "n_events" in violated


def test_envelope_bound_interval_semantics():
    bound = EnvelopeBound("metric", 0.25, 0.75, hint="why")
    assert bound.violation(0.25) is None  # closed interval
    assert bound.violation(0.75) is None
    assert bound.violation(0.1).low == 0.25
    assert bound.violation(0.9).hint == "why"
    open_low = EnvelopeBound("metric", None, 1.0, hint="h")
    assert open_low.violation(-1e9) is None
    assert "-inf" in open_low.violation(2.0).message()


def test_custom_envelope_overrides_the_paper_one():
    """import_trace(envelope=...) supports site-specific gates; a
    stricter bound must reject what the paper envelope accepts."""
    trace = _suite_trace()
    profile = characterize(trace)
    assert paper_envelope().validate(profile) == []
    strict = CharacterizationEnvelope(
        bounds=(EnvelopeBound("n_events", float(len(trace) + 1), None,
                              hint="need a longer capture"),)
    )
    violations = strict.validate(profile)
    assert [v.metric for v in violations] == ["n_events"]


def test_gate_is_reachable_from_import_trace(tmp_path):
    from repro.workloads.ingest import dump_text, import_trace

    trace = generate_trace(
        WorkloadSpec(name="gate_probe", category="Server", seed=9,
                     n_events=2048)
    )
    path = tmp_path / "probe.rbt"
    dump_text(trace, path)
    loaded, profile = import_trace(path)
    assert loaded.name == "gate_probe"
    assert profile.n_events == 2048
    strict = CharacterizationEnvelope(
        bounds=(EnvelopeBound("n_events", 1e9, None, hint="too short"),)
    )
    with pytest.raises(EnvelopeError, match="too short"):
        import_trace(path, envelope=strict)
