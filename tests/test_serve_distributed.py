"""Multi-replica serving over one shared result store.

Two real service instances (each its own event loop, port, worker
pool) boot over a single :class:`FakeStore` -- exactly the topology
``docker/docker-compose.yaml`` deploys with Redis, minus the network.
A duplicate storm split across the replicas must collapse to **one**
simulation cluster-wide (the lease CAS is the only coordination -- the
in-process harness memo is disabled so nothing short-circuits the
store), with every response byte-identical to a direct harness run.

The failure half: the same storm with the store partitioned mid-flight
must degrade -- every request still answered, every byte still exact,
degradation visible in ``serve_store_errors_total`` / ``store_degraded``
-- and a healed store gets used again without a restart.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments import design_registry, harness, scheduler
from repro.experiments.resultstore import FakeStore
from repro.frontend.simulator import FrontendSimulator
from repro.serve import ServeClient, ServeConfig, clear_serve_caches, serve_in_thread
from repro.serve.protocol import stats_payload
from repro.workloads import suite

APP = "server_oltp_00"
SCALE = "tiny"
DESIGN = "baseline"


@pytest.fixture(autouse=True)
def _cold_process_state():
    harness.clear_cache()
    suite._cached_trace.cache_clear()
    clear_serve_caches()
    scheduler.reset_session_counters()
    yield
    harness.clear_cache()
    suite._cached_trace.cache_clear()
    clear_serve_caches()
    scheduler.reset_session_counters()


def _config(**overrides) -> ServeConfig:
    base = dict(port=0, batch_window=0.15, queue_limit=64, workers=2,
                drain_timeout=10.0, default_scale=SCALE,
                store_ttl=5.0, store_wait=60.0, store_poll=0.02)
    base.update(overrides)
    return ServeConfig(**base)


def _count_simulations(monkeypatch) -> list[int]:
    """Every fresh simulation anywhere in the process bumps the count."""
    lock = threading.Lock()
    count = [0]
    real_run = FrontendSimulator.run

    def counting_run(self, *args, **kwargs):
        with lock:
            count[0] += 1
        return real_run(self, *args, **kwargs)

    monkeypatch.setattr(FrontendSimulator, "run", counting_run)
    return count


def _storm(replicas, total: int) -> list:
    """``total`` identical requests, round-robined across the replicas."""
    clients = [ServeClient(port=handle.port) for handle in replicas]

    def fire(i: int):
        return clients[i % len(clients)].simulate(design=DESIGN, app=APP)

    with ThreadPoolExecutor(max_workers=total) as pool:
        return list(pool.map(fire, range(total)))


def _cluster_outcomes(replicas) -> dict[str, int]:
    merged: dict[str, int] = {}
    for handle in replicas:
        for kind, value in handle.service.counters["outcomes"].items():
            merged[kind] = merged.get(kind, 0) + value
    return merged


def test_duplicate_storm_across_replicas_simulates_exactly_once(monkeypatch):
    # The harness memo would dedup within the process and mask the
    # store: turn it off so cross-replica single-flight is the ONLY
    # thing standing between 32 requests and 32 simulations.
    monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
    count = _count_simulations(monkeypatch)
    store = FakeStore(name="cluster")
    replicas = [
        serve_in_thread(_config(), store=store),
        serve_in_thread(_config(), store=store),
    ]
    try:
        responses = _storm(replicas, total=32)
        assert len(responses) == 32
        assert count[0] == 1, "the cluster must simulate a duplicate storm once"

        # Byte identity against a direct harness caller (computed after
        # the storm; with the memo off this is itself a fresh run).
        expected = stats_payload(
            harness.run_one(APP, design_registry()[DESIGN], scale=SCALE)
        )
        for response in responses:
            assert response.body == expected
            assert response.outcome in ("fresh", "store")

        outcomes = _cluster_outcomes(replicas)
        assert outcomes["local"] == 0
        assert outcomes["memo"] == outcomes["disk"] == 0
        assert outcomes["fresh"] + outcomes["store"] == 32
        assert sum(h.service.counters["ok"] for h in replicas) == 32
        # Both replicas took traffic, so the dedup genuinely crossed a
        # replica boundary rather than riding one service's batcher.
        for handle in replicas:
            assert handle.service.counters["ok"] == 16
        assert store.calls.get("put_result", 0) >= 1
        assert store.describe()["results"] == 1
        # /v1/stats surfaces the shared store on both replicas.
        for handle in replicas:
            snapshot = handle.service.stats_snapshot()
            assert snapshot["result_store"]["kind"] == "fake"
            assert snapshot["result_store"]["name"] == "cluster"
    finally:
        for handle in replicas:
            handle.shutdown()


def test_storm_with_partitioned_store_degrades_without_wrong_answers(monkeypatch):
    from repro.obs.metrics import MetricsRegistry, use_registry

    monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
    count = _count_simulations(monkeypatch)
    store = FakeStore(name="cluster")
    store.partition()
    registry = MetricsRegistry()
    with use_registry(registry):
        replicas = [
            serve_in_thread(_config(), store=store),
            serve_in_thread(_config(), store=store),
        ]
        try:
            responses = _storm(replicas, total=32)
            # Nothing lost, nothing wrong: every request answered, every
            # body exact -- only the cross-replica dedup is gone.
            assert len(responses) == 32
            storm_count = count[0]
            assert storm_count >= 1
            expected = stats_payload(
                harness.run_one(APP, design_registry()[DESIGN], scale=SCALE)
            )
            for response in responses:
                assert response.body == expected
                assert response.outcome == "local"
            outcomes = _cluster_outcomes(replicas)
            assert outcomes["local"] == 32
            assert outcomes["store"] == outcomes["fresh"] == 0
            assert sum(h.service.counters["ok"] for h in replicas) == 32
            # The degradation is loud: the store-error counter moved and
            # both replicas logged store_degraded hops.
            assert registry.get("serve_store_errors_total").total() > 0
            # (The process-wide active event log is whichever replica
            # booted last, so the hops are asserted cluster-wide.)
            degraded = [
                record
                for handle in replicas
                for record in handle.service.events.recent(event="store_degraded")
            ]
            assert degraded, "the cluster must log its degradation"
            assert all("op" in record for record in degraded)

            # Heal the partition: the next storm coordinates again.
            store.heal()
            count[0] = 0
            healed = _storm(replicas, total=8)
            assert count[0] == 1
            for response in healed:
                assert response.body == expected
                assert response.outcome in ("fresh", "store")
        finally:
            for handle in replicas:
                handle.shutdown()


def test_replica_restart_hits_the_store_not_the_simulator(monkeypatch):
    """A result published by replica A outlives A: a brand-new replica
    (cold memo, cold serve caches) answers from the store without ever
    simulating -- the distributed analogue of the warm-storm test."""
    monkeypatch.setenv("REPRO_RESULT_CACHE", "0")
    store = FakeStore(name="cluster")
    first = serve_in_thread(_config(), store=store)
    try:
        response = ServeClient(port=first.port).simulate(design=DESIGN, app=APP)
        assert response.outcome == "fresh"
    finally:
        first.shutdown()
    assert store.describe()["results"] == 1

    count = _count_simulations(monkeypatch)
    harness.clear_cache()
    suite._cached_trace.cache_clear()
    clear_serve_caches()
    second = serve_in_thread(_config(), store=store)
    try:
        again = ServeClient(port=second.port).simulate(design=DESIGN, app=APP)
        assert again.outcome == "store"
        assert again.body == response.body
        assert count[0] == 0, "the restarted replica must not re-simulate"
        assert second.service.counters["trace_decodes"] == 0
    finally:
        second.shutdown()
