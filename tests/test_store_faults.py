"""Fault injection against the shared-store serving path.

One real service instance over a :class:`FakeStore` with its fault
schedules armed: transient errors (first-N-fail), latency spikes, and a
full partition that later heals.  The invariants under every fault:

* **no wrong answers** -- responses stay byte-identical to a direct
  harness run (degradation swaps the *source* of a result, never the
  result);
* **no lost requests** -- every request is answered 200, none hang
  (the tests' own timeouts are the deadlock canary);
* **visible degradation** -- ``serve_store_errors_total`` moves and
  ``store_degraded`` events land in the service's request-event ring.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments import design_registry, harness, scheduler
from repro.experiments.resultstore import FakeStore
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.serve import ServeClient, ServeConfig, clear_serve_caches, serve_in_thread
from repro.serve.protocol import stats_payload
from repro.workloads import suite

APP = "server_oltp_00"
SCALE = "tiny"
DESIGNS = ["baseline", "pdede-default", "pdede-multi-entry", "dedup-only"]


@pytest.fixture(autouse=True)
def _cold_process_state():
    harness.clear_cache()
    suite._cached_trace.cache_clear()
    clear_serve_caches()
    scheduler.reset_session_counters()
    yield
    harness.clear_cache()
    suite._cached_trace.cache_clear()
    clear_serve_caches()
    scheduler.reset_session_counters()


def _config(**overrides) -> ServeConfig:
    base = dict(port=0, batch_window=0.05, queue_limit=64, workers=2,
                drain_timeout=10.0, default_scale=SCALE,
                store_ttl=5.0, store_wait=60.0, store_poll=0.02)
    base.update(overrides)
    return ServeConfig(**base)


def _expected_payloads():
    registry = design_registry()
    return {
        design: stats_payload(harness.run_one(APP, registry[design], scale=SCALE))
        for design in DESIGNS
    }


def test_transient_store_errors_degrade_then_recover():
    expected = _expected_payloads()
    harness.clear_cache()
    suite._cached_trace.cache_clear()

    store = FakeStore(name="flaky")
    store.fail_next(3)  # the first three protocol calls fail, then fine
    registry = MetricsRegistry()
    with use_registry(registry):
        handle = serve_in_thread(_config(), store=store)
        try:
            client = ServeClient(port=handle.port)
            first = client.simulate(design=DESIGNS[0], app=APP)
            # Answered correctly despite the errors; the compute was
            # local (either outcome depending on which calls the budget
            # burned), and the degradation was counted.
            assert first.body == expected[DESIGNS[0]]
            assert first.outcome in ("local", "fresh")
            assert registry.get("serve_store_errors_total").total() >= 1
            assert handle.service.events.recent(event="store_degraded")

            # Budget spent: the very next cold design coordinates
            # through the store again and publishes.
            second = client.simulate(design=DESIGNS[1], app=APP)
            assert second.body == expected[DESIGNS[1]]
            assert second.outcome == "fresh"
            assert store.describe()["results"] >= 1
            assert handle.service.counters["ok"] == 2
        finally:
            handle.shutdown()


def test_latency_spikes_slow_but_never_break():
    expected = _expected_payloads()
    harness.clear_cache()
    suite._cached_trace.cache_clear()

    store = FakeStore(name="slow")
    store.add_latency(0.1, count=8)  # 100ms on each of the next 8 calls
    registry = MetricsRegistry()
    with use_registry(registry):
        handle = serve_in_thread(_config(), store=store)
        try:
            client = ServeClient(port=handle.port)
            with ThreadPoolExecutor(max_workers=len(DESIGNS)) as pool:
                responses = list(
                    pool.map(
                        lambda d: client.simulate(design=d, app=APP), DESIGNS
                    )
                )
            for design, response in zip(DESIGNS, responses):
                assert response.body == expected[design]
                assert response.outcome == "fresh"
            # Slowness is not failure: zero degradations, all published.
            assert registry.get("serve_store_errors_total") is None
            assert not handle.service.events.recent(event="store_degraded")
            assert store.describe()["results"] == len(DESIGNS)
            assert handle.service.counters["outcomes"]["local"] == 0
        finally:
            handle.shutdown()


def test_partition_then_heal_round_trips_through_degraded():
    expected = _expected_payloads()
    harness.clear_cache()
    suite._cached_trace.cache_clear()

    store = FakeStore(name="split")
    registry = MetricsRegistry()
    with use_registry(registry):
        handle = serve_in_thread(_config(), store=store)
        try:
            client = ServeClient(port=handle.port)
            store.partition()
            # A concurrent storm against a dead backend: everything is
            # answered locally, correctly, without a single store write.
            storm = DESIGNS * 2
            with ThreadPoolExecutor(max_workers=len(storm)) as pool:
                responses = list(
                    pool.map(lambda d: client.simulate(design=d, app=APP), storm)
                )
            for design, response in zip(storm, responses):
                assert response.body == expected[design]
                assert response.outcome in ("local", "memo")
            counters = handle.service.counters
            assert counters["ok"] == len(storm)
            assert counters["outcomes"]["local"] >= len(DESIGNS)
            assert counters["outcomes"]["store"] == 0
            assert store.describe()["results"] == 0
            errors_during_partition = registry.get("serve_store_errors_total").total()
            assert errors_during_partition > 0
            events = handle.service.events.recent(event="store_degraded")
            assert events
            assert {record["op"] for record in events} & {
                "get_result", "acquire_lease", "put_result",
            }

            # Heal without a restart: cold keys coordinate again...
            store.heal()
            harness.clear_cache()
            clear_serve_caches()
            healed = client.simulate(design=DESIGNS[0], app=APP)
            assert healed.body == expected[DESIGNS[0]]
            assert healed.outcome == "fresh"
            assert store.describe()["results"] == 1
            # ...and a second cold pass is answered by the store.
            harness.clear_cache()
            clear_serve_caches()
            served = client.simulate(design=DESIGNS[0], app=APP)
            assert served.body == expected[DESIGNS[0]]
            assert served.outcome == "store"
            # No *new* errors after the heal.
            assert (
                registry.get("serve_store_errors_total").total()
                == errors_during_partition
            )
        finally:
            handle.shutdown()


def test_store_outage_never_rejects_or_deadlocks_a_storm():
    """The acceptance wording: degradation may cost duplicate compute,
    never a lost request.  64 requests against a permanently dead store
    all complete inside the suite timeout with exact bytes."""
    expected = _expected_payloads()
    harness.clear_cache()
    suite._cached_trace.cache_clear()

    store = FakeStore(name="dead")
    store.partition()
    handle = serve_in_thread(_config(queue_limit=128), store=store)
    try:
        client = ServeClient(port=handle.port)
        storm = DESIGNS * 16
        with ThreadPoolExecutor(max_workers=32) as pool:
            responses = list(
                pool.map(lambda d: client.simulate(design=d, app=APP), storm)
            )
        assert len(responses) == len(storm)
        for design, response in zip(storm, responses):
            assert response.body == expected[design]
        counters = handle.service.counters
        assert counters["ok"] == len(storm)
        assert counters["rejected"] == 0
        assert counters["errors"] == 0
    finally:
        handle.shutdown()
