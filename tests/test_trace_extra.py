"""Additional Trace behaviours: truncation, suite helpers."""

import pytest

from repro.branch.types import BranchKind
from repro.workloads.suite import build_suite, suite_traces
from repro.workloads.trace import Trace

from conftest import make_trace


def test_truncate_trims_all_columns():
    trace = make_trace([
        (0x100, BranchKind.COND_DIRECT, True, 0x200, 1),
        (0x200, BranchKind.COND_DIRECT, True, 0x300, 2),
        (0x300, BranchKind.COND_DIRECT, True, 0x400, 3),
    ])
    trace.truncate(2)
    assert len(trace) == 2
    assert len(trace.gaps) == 2
    assert trace.instruction_count == 2 + 1 + 2


def test_truncate_beyond_length_is_noop():
    trace = make_trace([(0x100, BranchKind.COND_DIRECT, True, 0x200, 1)])
    trace.truncate(10)
    assert len(trace) == 1


def test_truncate_rejects_negative():
    with pytest.raises(ValueError):
        Trace().truncate(-1)


def test_suite_traces_returns_all_apps():
    traces = suite_traces("tiny")
    assert len(traces) == len(build_suite("tiny"))
    assert all(len(trace) > 0 for trace in traces)
    names = {trace.name for trace in traces}
    assert "server_oltp_00" in names
