"""Unit tests for the temporal BTB prefetch wrapper."""

import pytest

from repro.branch.types import BranchKind
from repro.btb.baseline import BaselineBTB
from repro.btb.prefetch import TemporalPrefetchBTB

from conftest import make_event


def drive(btb, events):
    """Run lookup/score/update in trace order (the simulator's order)."""
    for event in events:
        lookup = btb.lookup(event.pc)
        btb.stats.record_outcome(event, lookup)
        btb.update(event)


def chain_events(base=0x10_0000, count=6):
    """A deterministic chain of taken branches: key -> b1 -> b2 -> ..."""
    events = []
    for index in range(count):
        pc = base + index * 0x100
        target = base + (index + 1) * 0x100
        events.append(make_event(pc=pc, kind=BranchKind.UNCOND_DIRECT, target=target))
    return events


def test_learns_group_after_miss():
    btb = TemporalPrefetchBTB(BaselineBTB(entries=64, ways=4), group_size=3)
    chain = chain_events()
    drive(btb, chain)  # first pass: misses open a recording
    drive(btb, chain)  # recordings complete across passes
    assert btb.groups_learned >= 1


def test_prefetch_restores_evicted_entries():
    inner = BaselineBTB(entries=32, ways=4)
    btb = TemporalPrefetchBTB(inner, group_size=3)
    chain = chain_events()
    key = chain[0]
    followers = chain[1:4]
    # Learn the group across two passes.
    drive(btb, chain)
    drive(btb, chain)
    # Evict the followers with unrelated branches; keep the key trained.
    for index in range(300):
        filler_pc = 0x90_0000 + index * 0x40
        drive(btb, [make_event(pc=filler_pc, kind=BranchKind.UNCOND_DIRECT,
                               target=filler_pc + 0x800)])
    drive(btb, [key])  # retrain/refresh the key
    before = btb.prefetches_issued
    lookup = btb.lookup(key.pc)
    if lookup.hit and btb.prefetches_issued > before:
        # The group was installed: the followers hit again immediately.
        assert inner.lookup(followers[0].pc).target == followers[0].target


def test_wrapper_is_transparent_on_storage():
    inner = BaselineBTB()
    btb = TemporalPrefetchBTB(inner)
    assert btb.storage_bits() == inner.storage_bits()
    assert btb.metadata_bits > 0


def test_group_table_is_bounded():
    btb = TemporalPrefetchBTB(BaselineBTB(entries=16, ways=2),
                              table_entries=4, group_size=2)
    # Create many distinct miss chains to overflow the group table.
    for block in range(40):
        base = 0x100_0000 + block * 0x10_000
        chain = chain_events(base=base, count=3)
        drive(btb, chain)
        drive(btb, chain)
    assert len(btb._groups) <= 4


def test_prefetch_reduces_misses_on_cyclic_sweep():
    """The end-to-end claim: temporal prefetch recovers capacity misses."""
    plain = BaselineBTB(entries=64, ways=4)
    wrapped = TemporalPrefetchBTB(BaselineBTB(entries=64, ways=4), group_size=8,
                                  table_entries=512)
    chains = [chain_events(base=0x100_0000 + c * 0x100_000, count=10) for c in range(12)]
    for sweep in range(6):
        for chain in chains:
            drive(plain, chain)
            drive(wrapped, chain)
    assert wrapped.stats.misses < plain.stats.misses


def test_validation():
    with pytest.raises(ValueError):
        TemporalPrefetchBTB(BaselineBTB(), prefetch_on="sometimes")
    with pytest.raises(ValueError):
        TemporalPrefetchBTB(BaselineBTB(), table_entries=0)


def test_miss_mode():
    btb = TemporalPrefetchBTB(BaselineBTB(entries=64, ways=4), prefetch_on="miss",
                              group_size=2)
    chain = chain_events()
    drive(btb, chain)
    drive(btb, chain)
    assert "miss" in btb.name
