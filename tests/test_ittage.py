"""Unit tests for the ITTAGE indirect-target predictor."""

import pytest

from repro.btb.ittage import ITTagePredictor


def test_untrained_returns_none():
    predictor = ITTagePredictor()
    assert predictor.predict(0x1234) is None


def test_learns_monomorphic_site():
    predictor = ITTagePredictor()
    pc, target = 0x1000, 0xAA000
    for _ in range(4):
        predictor.update(pc, target)
    assert predictor.predict(pc) == target


def test_learns_history_correlated_targets():
    """The point of ITTAGE: same PC, history-dependent targets."""
    predictor = ITTagePredictor()
    pc = 0x2000
    # Two contexts: distinct branch-outcome prefixes before each target
    # (the outcomes differ, so the folded history bits differ).
    contexts = {
        (True, True, False, True): 0xAAA000,
        (False, False, True, False): 0xBBB000,
    }
    def replay(prefix):
        for position, taken in enumerate(prefix):
            predictor.record_history(0x10 + position * 4, taken)
    for _ in range(300):
        for prefix, target in contexts.items():
            replay(prefix)
            predictor.update(pc, target)
    correct = 0
    trials = 0
    for _ in range(50):
        for prefix, target in contexts.items():
            replay(prefix)
            trials += 1
            if predictor.predict(pc) == target:
                correct += 1
            predictor.update(pc, target)
    assert correct / trials > 0.8


def test_misprediction_rate_tracks_quality():
    predictor = ITTagePredictor()
    pc = 0x3000
    for index in range(50):
        predictor.update(pc, 0xAAA000)
    assert predictor.misprediction_rate < 0.2


def test_storage_is_64kb_class():
    bits = ITTagePredictor().storage_bits()
    assert 40 * 8192 <= bits <= 80 * 8192  # 40-80 KiB


def test_rejects_non_power_of_two_tables():
    with pytest.raises(ValueError):
        ITTagePredictor(base_entries=1000)
