"""Unit tests for the return address stack."""

import pytest

from repro.btb.ras import ReturnAddressStack


def test_lifo_order():
    ras = ReturnAddressStack(depth=8)
    for addr in (0x100, 0x200, 0x300):
        ras.push(addr)
    assert ras.pop() == 0x300
    assert ras.pop() == 0x200
    assert ras.pop() == 0x100


def test_underflow_returns_none_and_counts():
    ras = ReturnAddressStack(depth=4)
    assert ras.pop() is None
    assert ras.underflows == 1


def test_overflow_overwrites_oldest():
    ras = ReturnAddressStack(depth=2)
    ras.push(0x1)
    ras.push(0x2)
    ras.push(0x3)  # overwrites 0x1
    assert ras.overflows == 1
    assert ras.pop() == 0x3
    assert ras.pop() == 0x2
    assert ras.pop() is None  # 0x1 was lost


def test_peek_does_not_pop():
    ras = ReturnAddressStack(depth=4)
    ras.push(0xAB)
    assert ras.peek() == 0xAB
    assert len(ras) == 1
    assert ras.pop() == 0xAB


def test_deep_recursion_degrades_gracefully():
    """Past the depth, the oldest frames' returns become mispredictable."""
    ras = ReturnAddressStack(depth=16)
    addresses = list(range(0x1000, 0x1000 + 32 * 4, 4))
    for addr in addresses:
        ras.push(addr)
    correct = sum(1 for addr in reversed(addresses) if ras.pop() == addr)
    assert correct == 16


def test_clear_and_len():
    ras = ReturnAddressStack(depth=4)
    ras.push(1)
    ras.push(2)
    ras.clear()
    assert len(ras) == 0
    assert ras.pop() is None


def test_storage_and_validation():
    assert ReturnAddressStack(depth=32).storage_bits() == 32 * 57
    with pytest.raises(ValueError):
        ReturnAddressStack(depth=0)
