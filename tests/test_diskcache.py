"""The persistent disk cache: hit/miss/invalidation semantics, atomic
writes under racing writers, corruption quarantine, and the harness
wiring that serves results across "processes" (simulated here by
clearing every in-memory cache)."""

from __future__ import annotations

import json
import threading

import pytest

from repro.experiments import diskcache
from repro.frontend.params import ICELAKE
from repro.frontend.stats import FrontendStats
from repro.workloads.generator import generate_trace
from repro.workloads.suite import build_suite


@pytest.fixture
def disk_cache(tmp_path, monkeypatch):
    """An enabled disk cache rooted in tmp_path, telemetry zeroed."""
    monkeypatch.setenv("REPRO_DISK_CACHE", "1")
    monkeypatch.setenv("REPRO_DISK_CACHE_DIR", str(tmp_path / "cache"))
    diskcache.reset_disk_telemetry()
    yield tmp_path / "cache"
    diskcache.reset_disk_telemetry()


def _spec():
    return build_suite("tiny")[0]


def _stats() -> FrontendStats:
    return FrontendStats(
        instructions=1000, cycles=250.5, base_cycles=200.0, branches=120,
        taken_branches=80, btb_misses=7, icache_misses=3,
    )


# -- traces ------------------------------------------------------------------


def test_trace_miss_then_hit_roundtrip(disk_cache):
    spec = _spec()
    assert diskcache.load_trace(spec) is None
    trace = generate_trace(spec)
    diskcache.store_trace(spec, trace)
    loaded = diskcache.load_trace(spec)
    assert loaded is not None
    assert loaded.pcs == trace.pcs
    assert loaded.kinds == trace.kinds
    assert loaded.takens == trace.takens
    assert loaded.targets == trace.targets
    assert loaded.gaps == trace.gaps
    info = diskcache.disk_cache_info()
    assert info["trace_misses"] == 1 and info["trace_hits"] == 1


def test_trace_key_tracks_generator_version(disk_cache, monkeypatch):
    spec = _spec()
    before = diskcache.spec_digest(spec)
    import repro.workloads.generator as generator

    monkeypatch.setattr(generator, "GENERATOR_VERSION", generator.GENERATOR_VERSION + 1)
    assert diskcache.spec_digest(spec) != before


def test_cache_version_bump_orphans_entries(disk_cache, monkeypatch):
    spec = _spec()
    diskcache.store_trace(spec, generate_trace(spec))
    assert diskcache.load_trace(spec) is not None
    monkeypatch.setattr(diskcache, "CACHE_VERSION", diskcache.CACHE_VERSION + 1)
    assert diskcache.load_trace(spec) is None  # new root: clean miss


def test_corrupt_trace_is_quarantined_not_fatal(disk_cache):
    spec = _spec()
    diskcache.store_trace(spec, generate_trace(spec))
    [npz] = list((disk_cache / f"v{diskcache.CACHE_VERSION}" / "traces").glob("*.npz"))
    npz.write_bytes(b"definitely not a zip archive")
    assert diskcache.load_trace(spec) is None
    assert diskcache.disk_cache_info()["quarantined"] == 1
    assert list(npz.parent.glob("*.corrupt-*")), "corrupt file not moved aside"
    # The slot is usable again immediately.
    diskcache.store_trace(spec, generate_trace(spec))
    assert diskcache.load_trace(spec) is not None


# -- results -----------------------------------------------------------------


def test_result_roundtrip_is_exact(disk_cache):
    key = diskcache.result_key("app", "tiny", "design", ICELAKE, 0.3, spec=_spec())
    assert diskcache.load_result(key) is None
    stats = _stats()
    diskcache.store_result(key, stats)
    loaded = diskcache.load_result(key)
    assert loaded is not None
    assert loaded.to_dict() == stats.to_dict()


def test_result_key_separates_inputs(disk_cache):
    spec = _spec()
    base = diskcache.result_key("app", "tiny", "design", ICELAKE, 0.3, spec=spec)
    assert diskcache.result_key("app2", "tiny", "design", ICELAKE, 0.3, spec=spec) != base
    assert diskcache.result_key("app", "tiny", "other", ICELAKE, 0.3, spec=spec) != base
    assert diskcache.result_key("app", "tiny", "design", ICELAKE, 0.5, spec=spec) != base
    assert (
        diskcache.result_key(
            "app", "tiny", "design", ICELAKE.scaled_pipeline(2.0), 0.3, spec=spec
        )
        != base
    )


def test_result_version_mismatch_is_a_miss(disk_cache):
    key = diskcache.result_key("app", "tiny", "design", ICELAKE, 0.3)
    diskcache.store_result(key, _stats())
    path = disk_cache / f"v{diskcache.CACHE_VERSION}" / "results" / f"{key}.json"
    payload = json.loads(path.read_text())
    payload["result_version"] = -1
    path.write_text(json.dumps(payload))
    assert diskcache.load_result(key) is None
    assert diskcache.disk_cache_info()["quarantined"] == 1


# -- concurrency and atomicity ----------------------------------------------


def test_racing_writers_leave_one_valid_file_and_no_temps(disk_cache):
    key = diskcache.result_key("app", "tiny", "design", ICELAKE, 0.3)
    stats = _stats()
    errors = []

    def writer():
        try:
            for _ in range(20):
                diskcache.store_result(key, stats)
        except Exception as exc:  # pragma: no cover - the assertion target
            errors.append(exc)

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    results_dir = disk_cache / f"v{diskcache.CACHE_VERSION}" / "results"
    assert not list(results_dir.glob("*.tmp-*")), "temp files leaked"
    assert [p.name for p in results_dir.glob("*.json")] == [f"{key}.json"]
    loaded = diskcache.load_result(key)
    assert loaded is not None and loaded.to_dict() == stats.to_dict()


# -- knobs -------------------------------------------------------------------


def test_env_knob_bypasses_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_DISK_CACHE", "0")
    monkeypatch.setenv("REPRO_DISK_CACHE_DIR", str(tmp_path / "cache"))
    diskcache.reset_disk_telemetry()
    spec = _spec()
    assert not diskcache.disk_cache_enabled()
    diskcache.store_trace(spec, generate_trace(spec))
    diskcache.store_result(
        diskcache.result_key("a", "tiny", "d", ICELAKE, 0.3), _stats()
    )
    assert not (tmp_path / "cache").exists(), "disabled cache touched disk"
    assert diskcache.load_trace(spec) is None
    info = diskcache.disk_cache_info()
    assert info["enabled"] is False
    assert info["stores"] == 0


def test_clear_disk_cache_removes_everything(disk_cache):
    spec = _spec()
    diskcache.store_trace(spec, generate_trace(spec))
    diskcache.store_result(
        diskcache.result_key("a", "tiny", "d", ICELAKE, 0.3), _stats()
    )
    removed = diskcache.clear_disk_cache()
    assert removed == 2
    assert not (disk_cache / f"v{diskcache.CACHE_VERSION}").exists()


# -- harness wiring ----------------------------------------------------------


def test_warm_disk_cache_serves_results_without_simulating(disk_cache):
    from repro.experiments.designs import baseline_design
    from repro.experiments.harness import cache_info, clear_cache, run_design
    from repro.workloads import suite

    clear_cache()
    design = baseline_design(entries=256, key="dc-harness-probe")
    first = run_design("server_oltp_00", design, scale="tiny")

    # A "new process": every in-memory cache emptied; only disk remains.
    clear_cache()
    suite._cached_trace.cache_clear()
    diskcache.reset_disk_telemetry()

    second = run_design("server_oltp_00", design, scale="tiny")
    assert second.to_dict() == first.to_dict()
    info = diskcache.disk_cache_info()
    assert info["result_hits"] == 1, info
    assert cache_info()["misses"] == 1  # memo missed; the disk answered
    # And the memo was refilled: a third call is a pure memory hit.
    run_design("server_oltp_00", design, scale="tiny")
    assert cache_info()["hits"] == 1
    clear_cache()
