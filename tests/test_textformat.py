"""Tests for the plain-text trace interchange format."""

import io

import pytest

from repro.branch.types import BranchKind
from repro.workloads.textformat import TraceFormatError, dump_trace, load_trace

from conftest import make_trace


def sample_trace():
    return make_trace(
        [
            (0x7F00_0000_1000, BranchKind.COND_DIRECT, True, 0x7F00_0000_1800, 5),
            (0x7F00_0000_1800, BranchKind.COND_DIRECT, False, 0x7F00_0000_1804, 2),
            (0x7F00_0000_1900, BranchKind.CALL_DIRECT, True, 0x7F11_0000_0000, 3),
            (0x7F11_0000_0040, BranchKind.RETURN, True, 0x7F00_0000_1904, 6),
            (0x7F00_0000_1A00, BranchKind.CALL_INDIRECT, True, 0x7F22_0000_0000, 1),
            (0x7F00_0000_1B00, BranchKind.UNCOND_INDIRECT, True, 0x7F00_0000_1F00, 4),
        ],
        name="sample",
    )


def test_roundtrip_through_file(tmp_path):
    trace = sample_trace()
    trace.category = "Browser"
    path = tmp_path / "trace.txt"
    dump_trace(trace, path)
    loaded = load_trace(path)
    assert loaded.name == "sample"
    assert loaded.category == "Browser"
    assert loaded.pcs == trace.pcs
    assert loaded.kinds == trace.kinds
    assert loaded.takens == trace.takens
    assert loaded.targets == trace.targets
    assert loaded.gaps == trace.gaps


def test_roundtrip_through_stream():
    trace = sample_trace()
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    loaded = load_trace(io.StringIO(buffer.getvalue()))
    assert loaded.pcs == trace.pcs


def test_comments_and_blank_lines_ignored():
    text = """
# a comment

7f0000001000 COND T 7f0000001800 5
"""
    loaded = load_trace(text.splitlines())
    assert len(loaded) == 1
    assert loaded.kinds[0] == int(BranchKind.COND_DIRECT)


def test_lowercase_taken_flag_accepted():
    loaded = load_trace(["7f00 COND t 7f80 1"])
    assert loaded.takens == [True]


def test_rejects_wrong_field_count():
    with pytest.raises(TraceFormatError, match="expected 5 fields"):
        load_trace(["7f00 COND T 7f80"])


def test_rejects_unknown_kind():
    with pytest.raises(TraceFormatError, match="unknown branch kind"):
        load_trace(["7f00 BRANCH T 7f80 1"])


def test_rejects_bad_taken_flag():
    with pytest.raises(TraceFormatError, match="taken flag"):
        load_trace(["7f00 COND X 7f80 1"])


def test_rejects_not_taken_unconditional():
    with pytest.raises(TraceFormatError, match="always taken"):
        load_trace(["7f00 JMP N 7f80 1"])


def test_rejects_bad_numbers():
    with pytest.raises(TraceFormatError):
        load_trace(["zzzz COND T 7f80 1"])
    with pytest.raises(TraceFormatError, match="negative gap"):
        load_trace(["7f00 COND T 7f80 -3"])


def test_kind_token_coverage():
    """Every BranchKind must roundtrip through its token."""
    lines = [
        "10 COND T 20 0",
        "30 JMP T 40 0",
        "50 CALL T 60 0",
        "70 IJMP T 80 0",
        "90 ICALL T a0 0",
        "b0 RET T c0 0",
    ]
    loaded = load_trace(lines)
    assert sorted(set(loaded.kinds)) == sorted(int(kind) for kind in BranchKind)
