"""Unit tests for the Region-/Page-BTB dedup value tables."""

import pytest

from repro.core.tables import DedupValueTable


def make_table(entries=16, ways=4, value_bits=16, **kwargs) -> DedupValueTable:
    return DedupValueTable(entries, ways, value_bits, **kwargs)


def test_allocate_then_read_roundtrip():
    table = make_table()
    pointer, generation = table.allocate(0xBEEF)
    assert table.read(pointer) == 0xBEEF
    assert not table.is_stale(pointer, generation)


def test_deduplication_returns_same_pointer():
    table = make_table()
    first, _ = table.allocate(0x1234)
    second, _ = table.allocate(0x1234)
    assert first == second
    assert table.dedup_hits == 1
    assert table.allocations == 1


def test_distinct_values_distinct_pointers():
    table = make_table()
    a, _ = table.allocate(0x1)
    b, _ = table.allocate(0x2)
    assert a != b
    assert table.unique_values() == {0x1, 0x2}


def test_eviction_bumps_generation():
    table = DedupValueTable(entries=2, ways=2, value_bits=16)
    pointers = {}
    for value in range(10):
        pointer, generation = table.allocate(value)
        pointers[value] = (pointer, generation)
    # The earliest values were evicted; their pointers are stale now.
    stale = sum(
        1 for value, (pointer, generation) in pointers.items()
        if table.is_stale(pointer, generation)
    )
    assert stale >= 8
    assert table.evictions == 8


def test_on_evict_callback_fires_with_pointer():
    evicted = []
    table = DedupValueTable(
        entries=2, ways=2, value_bits=16, on_evict=evicted.append
    )
    for value in range(5):
        table.allocate(value)
    assert len(evicted) == 3
    assert all(0 <= pointer < 2 for pointer in evicted)


def test_touch_protects_popular_entry():
    """The paper's argument for dangling pointers: popular entries are
    continuously referenced, so they are never victimised."""
    table = DedupValueTable(entries=4, ways=4, value_bits=16)
    hot_pointer, hot_generation = table.allocate(0xCAFE)
    for value in range(100):
        table.touch(hot_pointer)
        table.allocate(value)
    assert not table.is_stale(hot_pointer, hot_generation)
    assert table.read(hot_pointer) == 0xCAFE


def test_value_width_enforced():
    table = make_table(value_bits=8)
    with pytest.raises(ValueError):
        table.allocate(0x100)


def test_occupancy_and_storage():
    table = make_table(entries=16, ways=4, value_bits=16, srrip_bits=2)
    assert table.storage_bits() == 16 * 18
    table.allocate(1)
    table.allocate(2)
    assert table.occupancy() == 2


def test_fully_associative_single_set():
    table = DedupValueTable(entries=4, ways=4, value_bits=29)
    pointers = [table.allocate(value)[0] for value in (10, 20, 30, 40)]
    assert sorted(pointers) == [0, 1, 2, 3]


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        DedupValueTable(entries=0, ways=1, value_bits=8)
    with pytest.raises(ValueError):
        DedupValueTable(entries=10, ways=4, value_bits=8)
