"""Tests for the structured request-event log (``repro.obs.events``)
and the telemetry aggregation over it (``repro.obs.aggregate``)."""

import json
import threading

import pytest

from repro.obs.aggregate import (
    aggregate,
    read_events,
    reconstruct,
    render_markdown,
)
from repro.obs.events import (
    EventLog,
    NullEventLog,
    bind_rids,
    current_rids,
    disable_events,
    emit,
    enable_events,
    events_enabled,
    get_event_log,
    new_request_id,
    use_event_log,
)


# -- request ids and contextvar binding ---------------------------------------


def test_new_request_id_unique_and_prefixed():
    first = new_request_id()
    second = new_request_id()
    assert first != second
    assert first.startswith("r")
    assert new_request_id(prefix="b").startswith("b")


def test_bind_rids_nests_and_restores():
    assert current_rids() == ()
    with bind_rids("r1", "r2"):
        assert current_rids() == ("r1", "r2")
        with bind_rids("r3"):
            assert current_rids() == ("r3",)
        assert current_rids() == ("r1", "r2")
    assert current_rids() == ()


def test_bound_rids_are_task_local_across_threads():
    seen = {}

    def worker():
        seen["in_thread"] = current_rids()

    with bind_rids("r9"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    # A fresh thread starts from the contextvar default, not the
    # binder's context.
    assert seen["in_thread"] == ()


# -- EventLog ring ------------------------------------------------------------


def test_event_log_ring_bounds_and_drop_count():
    log = EventLog(capacity=3)
    for n in range(5):
        log.emit("tick", rid=f"r{n}")
    records = log.recent()
    assert [r["rid"] for r in records] == ["r2", "r3", "r4"]  # oldest first
    info = log.drain_info()
    assert info["enabled"] is True
    assert info["emitted"] == 5
    assert info["dropped"] == 2
    assert info["buffered"] == 3
    assert info["capacity"] == 3


def test_event_log_recent_filters_and_limits():
    log = EventLog(capacity=16)
    for n in range(4):
        log.emit("admit", rid=f"r{n}")
        log.emit("respond", rid=f"r{n}")
    responds = log.recent(event="respond")
    assert [r["rid"] for r in responds] == ["r0", "r1", "r2", "r3"]
    assert [r["rid"] for r in log.recent(limit=2, event="respond")] == ["r2", "r3"]


def test_event_log_for_request_matches_direct_and_batch_rids():
    log = EventLog(capacity=16)
    log.emit("admit", rid="ra")
    log.emit("batch-execute", rids=["ra", "rb"])
    log.emit("respond", rid="rb")
    assert [r["event"] for r in log.for_request("ra")] == ["admit", "batch-execute"]
    assert [r["event"] for r in log.for_request("rb")] == ["batch-execute", "respond"]
    assert log.for_request("rz") == []


def test_event_log_records_carry_timestamp_and_attrs():
    log = EventLog(capacity=4)
    log.emit("admit", rid="r1", bytes=42)
    (record,) = log.recent()
    assert record["event"] == "admit"
    assert record["rid"] == "r1"
    assert record["bytes"] == 42
    assert record["ts"] > 0


def test_event_log_sink_is_well_formed_jsonl_under_threads(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(capacity=8, sink_path=str(path))

    def worker(worker_id: int) -> None:
        for n in range(25):
            log.emit("tick", rid=f"w{worker_id}-{n}", worker=worker_id)

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    log.close()

    lines = path.read_text().splitlines()
    assert len(lines) == 100  # the sink keeps everything the ring drops
    records = [json.loads(line) for line in lines]  # every line parses
    rids = {record["rid"] for record in records}
    assert len(rids) == 100
    assert all(record["event"] == "tick" for record in records)
    # read_events round-trips the sink file.
    assert read_events(str(path)) == records
    # close() is idempotent and emit-after-close doesn't crash the ring.
    log.close()


def test_event_log_clear_resets_ring_and_counters():
    log = EventLog(capacity=2)
    for n in range(3):
        log.emit("tick")
    log.clear()
    assert log.recent() == []
    info = log.drain_info()
    assert info["emitted"] == 0
    assert info["dropped"] == 0
    assert info["buffered"] == 0


# -- module front door / null-object mode -------------------------------------


def test_events_disabled_by_default_and_emit_is_noop():
    assert not events_enabled()
    assert isinstance(get_event_log(), NullEventLog)
    emit("ignored", rid="r1")  # must not raise or record
    assert get_event_log().recent() == []
    assert get_event_log().drain_info()["enabled"] is False


def test_enable_disable_events_roundtrip():
    log = enable_events(capacity=8)
    try:
        assert events_enabled()
        assert get_event_log() is log
        emit("hello", rid="r1")
        assert [r["event"] for r in log.recent()] == ["hello"]
    finally:
        disable_events()
    assert not events_enabled()


def test_use_event_log_restores_previous_and_fills_bound_rid():
    log = EventLog(capacity=8)
    with use_event_log(log) as active:
        assert active is log
        with bind_rids("r7"):
            emit("deep")  # rid inferred from the binding
        with bind_rids("r8", "r9"):
            emit("batch")  # several bound: attached as a list
    assert not events_enabled()
    deep, batch = log.recent()
    assert deep["rid"] == "r7"
    assert batch["rids"] == ["r8", "r9"]


# -- aggregation --------------------------------------------------------------


def _respond(rid, outcome, seconds, status=200, **hops):
    return dict(event="respond", rid=rid, outcome=outcome,
                seconds=seconds, status=status, **hops)


def test_aggregate_splits_by_outcome_with_hop_means():
    records = [
        {"event": "admit", "rid": "r1"},
        _respond("r1", "fresh", 0.4, batch_wait_s=0.1, queue_s=0.05,
                 simulate_s=0.25),
        _respond("r2", "fresh", 0.2, batch_wait_s=0.1, queue_s=0.01,
                 simulate_s=0.09),
        _respond("r3", "memo", 0.01),
        _respond("r4", "queue-full", 0.0, status=429),
        _respond("r5", "internal", 0.0, status=500),
    ]
    summary = aggregate(records)
    assert summary["requests"] == 5
    assert summary["errors"] == 1
    assert summary["error_rate"] == pytest.approx(0.2)
    assert summary["shed"] == 1
    fresh = summary["by_outcome"]["fresh"]
    assert fresh["count"] == 2
    assert fresh["mean_s"] == pytest.approx(0.3)
    assert fresh["mean_batch_wait_s"] == pytest.approx(0.1)
    assert fresh["mean_simulate_s"] == pytest.approx(0.17)
    assert fresh["p99_s"] == pytest.approx(0.4)
    assert summary["events"]["respond"] == 5
    assert summary["events"]["admit"] == 1
    assert "metrics" not in summary
    assert aggregate(records, metrics_snapshot={"x": 1})["metrics"] == {"x": 1}


def test_aggregate_empty_records():
    summary = aggregate([])
    assert summary["requests"] == 0
    assert summary["error_rate"] == 0.0
    assert summary["by_outcome"] == {}


def test_reconstruct_matches_for_request_semantics():
    records = [
        {"event": "admit", "rid": "r1"},
        {"event": "batch-execute", "rids": ["r1", "r2"]},
        {"event": "respond", "rid": "r2"},
    ]
    assert [r["event"] for r in reconstruct(records, "r1")] == [
        "admit", "batch-execute",
    ]
    assert [r["event"] for r in reconstruct(records, "r2")] == [
        "batch-execute", "respond",
    ]


def test_render_markdown_contains_outcome_rows_and_event_counts():
    summary = aggregate([
        _respond("r1", "fresh", 0.05, batch_wait_s=0.01, queue_s=0.01,
                 simulate_s=0.03),
    ])
    text = render_markdown(summary, title="Probe")
    assert text.startswith("# Probe")
    assert "| fresh | 1 | 50.00 |" in text
    assert "- `respond`: 1" in text
