"""Unit tests for the Top-Down cycle accounting."""

from repro.frontend.stats import FrontendStats


def make_stats(**overrides) -> FrontendStats:
    stats = FrontendStats(
        instructions=10_000,
        cycles=5_000.0,
        base_cycles=2_000.0,
        icache_stall_cycles=1_000.0,
        btb_bubble_cycles=100.0,
        btb_resteer_cycles=900.0,
        bad_speculation_cycles=1_000.0,
        btb_misses=50,
    )
    for key, value in overrides.items():
        setattr(stats, key, value)
    return stats


def test_ipc():
    assert make_stats().ipc == 2.0


def test_mpki():
    assert make_stats().btb_mpki == 5.0


def test_frontend_fractions():
    stats = make_stats()
    assert stats.frontend_stall_cycles == 2_000.0
    assert stats.frontend_bound_fraction == 0.4
    assert stats.btb_resteer_share_of_frontend == 0.5
    assert stats.bad_speculation_fraction == 0.2


def test_speedup_and_reduction():
    fast = make_stats(cycles=4_000.0)
    slow = make_stats()
    assert fast.speedup_over(slow) == 1.25
    better = make_stats(btb_misses=25)
    assert better.mpki_reduction_vs(slow) == 0.5


def test_zero_division_guards():
    empty = FrontendStats()
    assert empty.ipc == 0.0
    assert empty.btb_mpki == 0.0
    assert empty.frontend_bound_fraction == 0.0
    assert empty.btb_resteer_share_of_frontend == 0.0
    assert empty.speedup_over(empty) == 0.0
    assert empty.mpki_reduction_vs(empty) == 0.0
