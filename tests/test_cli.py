"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_apps(capsys):
    assert main(["--scale", "tiny", "list-apps"]) == 0
    out = capsys.readouterr().out
    assert "server_oltp_00" in out
    assert "personal_animation" in out


def test_characterize(capsys):
    assert main(["--scale", "tiny", "characterize", "server_oltp_00"]) == 0
    out = capsys.readouterr().out
    assert "taken:" in out
    assert "same-page:" in out


def test_simulate(capsys):
    assert main(["--scale", "tiny", "simulate", "server_oltp_00", "baseline"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "BTB MPKI" in out


def test_simulate_unknown_design(capsys):
    assert main(["--scale", "tiny", "simulate", "server_oltp_00", "nonsense"]) == 2
    assert "unknown design" in capsys.readouterr().err


def test_experiment_tab2(capsys):
    assert main(["--scale", "tiny", "experiment", "tab2"]) == 0
    assert "Table 2" in capsys.readouterr().out


def test_experiment_unknown(capsys):
    assert main(["--scale", "tiny", "experiment", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_parser_rejects_bad_scale():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--scale", "galactic", "list-apps"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
