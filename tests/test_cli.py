"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_apps(capsys):
    assert main(["--scale", "tiny", "list-apps"]) == 0
    out = capsys.readouterr().out
    assert "server_oltp_00" in out
    assert "personal_animation" in out


def test_characterize(capsys):
    assert main(["--scale", "tiny", "characterize", "server_oltp_00"]) == 0
    out = capsys.readouterr().out
    assert "taken:" in out
    assert "same-page:" in out


def test_simulate(capsys):
    assert main(["--scale", "tiny", "simulate", "server_oltp_00", "baseline"]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "BTB MPKI" in out


def test_simulate_unknown_design(capsys):
    assert main(["--scale", "tiny", "simulate", "server_oltp_00", "nonsense"]) == 2
    assert "unknown design" in capsys.readouterr().err


def test_experiment_tab2(capsys):
    assert main(["--scale", "tiny", "experiment", "tab2"]) == 0
    assert "Table 2" in capsys.readouterr().out


def test_experiment_unknown(capsys):
    assert main(["--scale", "tiny", "experiment", "fig99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_check_lint_on_repo_exits_zero(capsys):
    assert main(["check", "--lint"]) == 0
    assert "0 finding(s)" in capsys.readouterr().err


def test_check_lint_flags_violations(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nx = random.random()\n")
    assert main(["check", str(bad)]) == 1
    captured = capsys.readouterr()
    assert "REP001" in captured.out
    assert "1 finding(s)" in captured.err


def test_check_defaults_to_lint(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert main(["check", str(clean)]) == 0
    assert "check [lint]:" in capsys.readouterr().err


def test_check_sanitize_runs_clean(capsys):
    assert main(["--scale", "tiny", "check",
                 "--sanitize", "server_oltp_00", "--interval", "512"]) == 0
    err = capsys.readouterr().err
    assert "sanitize: server_oltp_00" in err
    assert "OK" in err


def test_check_sanitize_unknown_design(capsys):
    assert main(["--scale", "tiny", "check", "--sanitize", "server_oltp_00",
                 "--design", "nonsense"]) == 2
    assert "unknown design" in capsys.readouterr().err


def test_simulate_with_sanitize_flag(capsys):
    assert main(["--scale", "tiny", "simulate", "server_oltp_00", "baseline",
                 "--sanitize", "--sanitize-interval", "512"]) == 0
    captured = capsys.readouterr()
    assert "IPC" in captured.out
    assert "sanitizer: OK" in captured.err


def test_parser_rejects_bad_scale():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--scale", "galactic", "list-apps"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
