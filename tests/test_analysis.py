"""Unit tests for the Section 3 characterisation tools."""

from repro.analysis.characterize import (
    branch_type_mix,
    density_stats,
    distance_stats,
    runtime_series,
    taken_stats,
    uniqueness_stats,
)
from repro.branch.types import BranchKind

from conftest import make_trace

PAGE = 0x1000


def crafted_trace():
    """A small trace with known uniqueness/distance structure."""
    events = [
        # Two branches sharing one target (dedup candidate).
        (0x10_0000, BranchKind.COND_DIRECT, True, 0x10_0800, 3),
        (0x10_0040, BranchKind.COND_DIRECT, True, 0x10_0800, 3),
        # A different-page jump.
        (0x10_0080, BranchKind.UNCOND_DIRECT, True, 0x20_0100, 3),
        # A call and its return (returns excluded from the analyses).
        (0x10_00C0, BranchKind.CALL_DIRECT, True, 0x30_0000, 3),
        (0x30_0040, BranchKind.RETURN, True, 0x10_00C4, 3),
        # A never-taken conditional.
        (0x10_0100, BranchKind.COND_DIRECT, False, 0x10_0104, 3),
    ]
    return make_trace(events, name="crafted")


def test_taken_stats():
    stats = taken_stats(crafted_trace())
    assert stats.dynamic_taken_fraction == 5 / 6
    # 6 distinct PCs, 5 ever taken.
    assert stats.static_taken_fraction == 5 / 6


def test_branch_type_mix_excludes_returns():
    mix = branch_type_mix(crafted_trace())
    assert "RETURN" not in mix.fractions
    assert mix.fractions["COND_DIRECT"] == 2 / 4
    assert mix.fractions["UNCOND_DIRECT"] == 1 / 4
    assert mix.fractions["CALL_DIRECT"] == 1 / 4


def test_branch_type_mix_can_include_returns():
    mix = branch_type_mix(crafted_trace(), include_returns=True)
    assert mix.fractions["RETURN"] == 1 / 5


def test_uniqueness_counts_dedup():
    stats = uniqueness_stats(crafted_trace())
    assert stats.unique_pcs == 4  # taken non-return branches
    assert stats.unique_targets == 3  # 0x10_0800 shared
    assert stats.unique_pages == 3
    assert stats.target_fraction == 3 / 4


def test_density_stats():
    stats = density_stats(crafted_trace())
    assert stats.targets_per_page == 1.0
    assert stats.targets_per_region == 3.0  # all in one region


def test_distance_stats_buckets():
    stats = distance_stats(crafted_trace())
    assert abs(stats.same_page_fraction - 2 / 4) < 1e-9
    assert abs(sum(stats.buckets.values()) - 1.0) < 1e-9
    assert stats.by_kind["COND_DIRECT"] == 1.0
    assert stats.by_kind["CALL_DIRECT"] == 0.0


def test_runtime_series_sampling():
    trace = crafted_trace()
    series = runtime_series(trace, max_samples=10)
    assert len(series.regions) == len(series.pages) == len(series.offsets)
    assert len(series.sample_indices) == 4  # taken non-return events
    assert series.distinct_regions() >= 1


def test_runtime_series_strides_long_traces():
    events = [(0x100 + i * 8, BranchKind.COND_DIRECT, True, 0x5000, 1) for i in range(1000)]
    series = runtime_series(make_trace(events), max_samples=100)
    assert len(series.sample_indices) <= 112  # stride sampling bound
