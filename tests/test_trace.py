"""Unit tests for the Trace container."""

from pathlib import Path

from repro.branch.types import BranchKind
from repro.workloads.trace import Trace

from conftest import make_trace


def test_append_and_len():
    trace = Trace()
    trace.append(0x100, BranchKind.COND_DIRECT, True, 0x200, 5)
    assert len(trace) == 1


def test_instruction_count_includes_branches():
    trace = make_trace([
        (0x100, BranchKind.COND_DIRECT, True, 0x200, 5),
        (0x200, BranchKind.UNCOND_DIRECT, True, 0x300, 3),
    ])
    assert trace.instruction_count == 2 + 5 + 3


def test_taken_fractions():
    trace = make_trace([
        (0x100, BranchKind.COND_DIRECT, True, 0x200, 1),
        (0x100, BranchKind.COND_DIRECT, False, 0x104, 1),
        (0x300, BranchKind.COND_DIRECT, False, 0x304, 1),
    ])
    assert trace.dynamic_taken_fraction() == 1 / 3
    # PC 0x100 was taken at least once; 0x300 never -> 1/2 static.
    assert trace.static_taken_fraction() == 0.5
    assert trace.static_branch_count() == 2


def test_branch_events_roundtrip():
    trace = make_trace([(0x100, BranchKind.CALL_DIRECT, True, 0x900, 7)])
    event = next(trace.branch_events())
    assert event.pc == 0x100
    assert event.kind is BranchKind.CALL_DIRECT
    assert event.target == 0x900
    assert event.instr_gap == 7


def test_save_load_roundtrip(tmp_path: Path):
    trace = make_trace(
        [
            (0x7F00_0000_1000, BranchKind.COND_DIRECT, True, 0x7F00_0000_1400, 5),
            (0x7F00_0000_1400, BranchKind.RETURN, True, 0x7F00_0000_1004, 2),
        ],
        name="roundtrip",
    )
    trace.category = "Server"
    path = tmp_path / "trace.npz"
    trace.save(path)
    loaded = Trace.load(path)
    assert loaded.name == "roundtrip"
    assert loaded.category == "Server"
    assert loaded.pcs == trace.pcs
    assert loaded.kinds == trace.kinds
    assert loaded.takens == trace.takens
    assert loaded.targets == trace.targets
    assert loaded.gaps == trace.gaps


def test_empty_trace_statistics():
    trace = Trace()
    assert trace.dynamic_taken_fraction() == 0.0
    assert trace.static_taken_fraction() == 0.0
    assert trace.instruction_count == 0
