"""Unit tests for workload specs, layout, and the trace generator."""

import pytest

from repro.branch.address import OFFSET_BITS, same_page
from repro.branch.types import BranchKind
from repro.workloads.generator import generate_trace
from repro.workloads.layout import RET, CodeLayout
from repro.workloads.spec import CATEGORY_COUNTS, CATEGORY_TEMPLATES, WorkloadSpec
from repro.workloads.suite import SCALES, build_suite, get_trace


def tiny_spec(**overrides) -> WorkloadSpec:
    base = dict(
        name="tiny",
        category="Server",
        seed=42,
        n_events=5_000,
        n_functions=300,
        hot_functions_per_phase=60,
        phase_calls=200,
        n_regions=4,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


def test_layout_is_deterministic():
    a = CodeLayout(tiny_spec())
    b = CodeLayout(tiny_spec())
    assert a.block_branch_pc == b.block_branch_pc
    assert a.block_kind == b.block_kind


def test_layout_every_function_ends_in_return():
    layout = CodeLayout(tiny_spec())
    for fn_index in range(len(layout.fn_entry_block)):
        blocks = layout._function_blocks(fn_index)
        assert layout.block_kind[blocks[-1]] == RET


def test_layout_addresses_monotonic_within_function():
    layout = CodeLayout(tiny_spec())
    for fn_index in range(len(layout.fn_entry_block)):
        blocks = list(layout._function_blocks(fn_index))
        starts = [layout.block_start[b] for b in blocks]
        assert starts == sorted(starts)
        for block in blocks:
            assert layout.block_branch_pc[block] > layout.block_start[block] - 4


def test_layout_regions_match_function_map():
    layout = CodeLayout(tiny_spec())
    for fn_index, region in enumerate(layout.fn_region):
        base_region = layout.region_ids[region]
        actual_region = layout.fn_entry_addr[fn_index] >> (OFFSET_BITS + 16)
        assert actual_region == base_region


def test_layout_rejects_too_few_regions():
    with pytest.raises(ValueError):
        CodeLayout(tiny_spec(n_regions=2))


def test_generator_deterministic():
    a = generate_trace(tiny_spec())
    b = generate_trace(tiny_spec())
    assert a.pcs == b.pcs
    assert a.targets == b.targets


def test_generator_produces_requested_length():
    trace = generate_trace(tiny_spec(n_events=3_000))
    assert len(trace) == 3_000


def test_generator_calls_and_returns_balance():
    """Every return's target must be its matching call site + 4."""
    trace = generate_trace(tiny_spec())
    stack = []
    mismatches = 0
    for pc, kind, taken, target, gap in trace.events():
        kind = BranchKind(kind)
        if kind.is_call and taken:
            stack.append(pc + 4)
        elif kind.is_return:
            if not stack or stack.pop() != target:
                mismatches += 1
    assert mismatches == 0


def test_generator_unconditional_always_taken():
    trace = generate_trace(tiny_spec())
    for pc, kind, taken, target, gap in trace.events():
        if BranchKind(kind).is_unconditional:
            assert taken


def test_generator_not_taken_target_is_fall_through():
    trace = generate_trace(tiny_spec())
    for pc, kind, taken, target, gap in trace.events():
        if not taken:
            assert target == pc + 4


def test_generator_same_page_fraction_in_range():
    trace = generate_trace(tiny_spec(n_events=20_000))
    pairs = [
        (pc, target)
        for pc, kind, taken, target, gap in trace.events()
        if taken and BranchKind(kind) != BranchKind.RETURN
    ]
    fraction = sum(1 for pc, target in pairs if same_page(pc, target)) / len(pairs)
    assert 0.4 < fraction < 0.95  # Figure 8 territory


def test_suite_composition_full():
    suite = build_suite("full")
    assert len(suite) == 102
    by_category = {}
    for spec in suite:
        by_category[spec.category] = by_category.get(spec.category, 0) + 1
    assert by_category == CATEGORY_COUNTS


def test_suite_contains_named_specials():
    names = {spec.name for spec in build_suite("full")}
    for expected in (
        "browser_js_static_analyzer",
        "personal_animation",
        "server_oltp_00",
        "server_microservice_00",
        "server_data_analytics",
        "browser_html5_render",
    ):
        assert expected in names


def test_suite_scales_consistent():
    for scale, (counts, n_events) in SCALES.items():
        suite = build_suite(scale)
        assert len(suite) == sum(counts.values())
        assert all(spec.n_events == n_events for spec in suite)


def test_suite_seeds_stable_across_calls():
    a = [spec.seed for spec in build_suite("tiny")]
    b = [spec.seed for spec in build_suite("tiny")]
    assert a == b


def test_get_trace_memoised():
    first = get_trace("server_oltp_00", "tiny")
    second = get_trace("server_oltp_00", "tiny")
    assert first is second


def test_get_trace_unknown_name():
    with pytest.raises(KeyError):
        get_trace("nonexistent_app", "tiny")


def test_templates_cover_categories():
    assert set(CATEGORY_TEMPLATES) == set(CATEGORY_COUNTS)
