"""Extra coverage for the design registry additions."""

from repro.btb.ghrp import GhrpBTB
from repro.btb.prefetch import TemporalPrefetchBTB
from repro.core.multitag import MultiTagPartitionedBTB
from repro.experiments.designs import (
    baseline_design,
    ghrp_design,
    multitag_design,
    with_temporal_prefetch,
)


def test_ghrp_design_builds():
    design = ghrp_design()
    assert design.key == "ghrp-4096"
    btb, kwargs = design.build()
    assert isinstance(btb, GhrpBTB)
    assert kwargs == {}


def test_multitag_design_builds():
    btb, _ = multitag_design().build()
    assert isinstance(btb, MultiTagPartitionedBTB)


def test_prefetch_wrapper_design():
    wrapped = with_temporal_prefetch(baseline_design(), group_size=4)
    assert wrapped.key == "baseline-4096+prefetch"
    btb, _ = wrapped.build()
    assert isinstance(btb, TemporalPrefetchBTB)
    assert btb.group_size == 4
    # Fresh inner instance per build.
    other, _ = wrapped.build()
    assert other.inner is not btb.inner


def test_prefetch_wrapper_preserves_simulator_kwargs():
    from repro.experiments.designs import with_perfect_direction

    base = with_perfect_direction(baseline_design())
    wrapped = with_temporal_prefetch(base)
    assert wrapped.simulator_kwargs()["direction"].is_perfect
