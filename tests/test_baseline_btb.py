"""Unit tests for the conventional set-associative BTB."""

import pytest

from repro.branch.types import BranchEvent, BranchKind
from repro.btb.baseline import BaselineBTB

from conftest import make_event, synthetic_branch_set


def test_paper_geometry_storage():
    # 4096 entries x (1 pid + 12 tag + 57 target + 3 srrip + 2 conf) bits.
    btb = BaselineBTB()
    assert btb.storage_bits() == 4096 * 75
    assert btb.storage_kib() == 37.5


def test_lookup_miss_then_hit_after_update():
    btb = BaselineBTB(entries=256, ways=4)
    event = make_event()
    assert not btb.lookup(event.pc).hit
    btb.update(event)
    lookup = btb.lookup(event.pc)
    assert lookup.hit
    assert lookup.target == event.target


def test_not_taken_branches_never_allocate():
    btb = BaselineBTB(entries=256, ways=4)
    event = make_event(taken=False, kind=BranchKind.COND_DIRECT)
    btb.update(event)
    assert btb.occupancy() == 0


def test_confidence_protects_incumbent_target():
    btb = BaselineBTB(entries=256, ways=4, conf_bits=2)
    pc = 0x1234_5678
    steady = make_event(pc=pc, target=0xAAAA000)
    other = make_event(pc=pc, target=0xBBBB000)
    for _ in range(3):
        btb.update(steady)  # confidence builds up
    btb.update(other)  # drains confidence, keeps target
    assert btb.lookup(pc).target == 0xAAAA000
    for _ in range(4):
        btb.update(other)  # drains fully, then replaces
    assert btb.lookup(pc).target == 0xBBBB000


def test_capacity_eviction():
    btb = BaselineBTB(entries=16, ways=2)
    pairs = synthetic_branch_set(200, seed=3)
    for pc, target in pairs:
        btb.update(make_event(pc=pc, target=target))
    assert btb.occupancy() <= 16
    assert btb.stats.evictions > 0


def test_indirect_gating():
    btb = BaselineBTB(entries=64, ways=4, allocate_indirect=False)
    indirect = make_event(kind=BranchKind.CALL_INDIRECT)
    btb.update(indirect)
    assert btb.occupancy() == 0
    direct = make_event(kind=BranchKind.CALL_DIRECT)
    btb.update(direct)
    assert btb.occupancy() == 1


def test_miss_definition_counts_wrong_target():
    """Section 5.1: a present-but-wrong entry is a miss too."""
    btb = BaselineBTB(entries=64, ways=4)
    pc = 0x4242_0000
    btb.update(make_event(pc=pc, target=0x1111000))
    wrong = make_event(pc=pc, target=0x2222000)
    lookup = btb.lookup(pc)
    missed = btb.stats.record_outcome(wrong, lookup)
    assert missed
    assert btb.stats.wrong_target == 1


def test_not_taken_lookups_not_scored():
    btb = BaselineBTB(entries=64, ways=4)
    event = make_event(taken=False)
    lookup = btb.lookup(event.pc)
    assert not btb.stats.record_outcome(event, lookup)
    assert btb.stats.taken_lookups == 0


def test_partial_tag_aliasing_possible_but_rare():
    """12-bit folded tags: different PCs rarely but possibly alias."""
    btb = BaselineBTB(entries=4096, ways=8, tag_bits=12)
    pairs = synthetic_branch_set(2000, seed=9)
    false_hits = 0
    for pc, target in pairs:
        lookup = btb.lookup(pc)
        if lookup.hit and lookup.target != target:
            false_hits += 1
        btb.update(make_event(pc=pc, target=target))
    assert false_hits < len(pairs) * 0.05


def test_non_power_of_two_sets_supported():
    btb = BaselineBTB(entries=6144, ways=8)
    assert btb.sets == 768
    pairs = synthetic_branch_set(500, seed=5)
    for pc, target in pairs:
        btb.update(make_event(pc=pc, target=target))
        assert btb.lookup(pc).target == target


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        BaselineBTB(entries=0)
    with pytest.raises(ValueError):
        BaselineBTB(entries=100, ways=8)


def test_reset_stats():
    btb = BaselineBTB(entries=64, ways=4)
    btb.observe(make_event())
    assert btb.stats.lookups == 1
    btb.reset_stats()
    assert btb.stats.lookups == 0
