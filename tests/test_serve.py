"""End-to-end tests for the simulation service (``repro.serve``).

Every test boots a real service on an ephemeral port (its own event
loop on a daemon thread) and talks to it over real sockets with the
blocking client -- nothing is mocked below the batch runner, and the
backpressure/drain tests inject slow runners exactly the way the
scheduler's fault-injection tests do.

The two invariants the issue pins:

* responses are **byte-identical** to a direct
  :func:`repro.experiments.harness.run_one` caller serialising
  ``to_dict()`` canonically -- the service adds zero numeric drift;
* concurrent requests sharing a trace are **micro-batched**: the
  decoded trace columns are computed once per batch, and a warm-cache
  storm completes with zero fresh simulations.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments import design_registry, harness, scheduler
from repro.frontend.stats import FrontendStats
from repro.serve import (
    BatchOutcome,
    ServeClient,
    ServeConfig,
    ServiceError,
    clear_serve_caches,
    serve_in_thread,
)
from repro.serve.protocol import stats_payload
from repro.workloads import suite

APP = "server_oltp_00"
SCALE = "tiny"
DESIGNS = ["baseline", "pdede-default", "pdede-multi-entry", "dedup-only"]


@pytest.fixture(autouse=True)
def _cold_process_state():
    """Start every test from a cold process: empty harness memo, no
    generated traces, no serve-local caches, zeroed scheduler session
    counters (several tests assert exact counter values)."""
    harness.clear_cache()
    suite._cached_trace.cache_clear()
    clear_serve_caches()
    scheduler.reset_session_counters()
    yield
    harness.clear_cache()
    suite._cached_trace.cache_clear()
    clear_serve_caches()
    scheduler.reset_session_counters()


def _config(**overrides) -> ServeConfig:
    base = dict(port=0, batch_window=0.05, queue_limit=64, workers=2,
                drain_timeout=10.0, default_scale=SCALE)
    base.update(overrides)
    return ServeConfig(**base)


def _expected_payloads(pairs) -> dict[tuple[str, str], bytes]:
    """What a direct harness caller would serialise, per (app, design)."""
    registry = design_registry()
    return {
        (app, design): stats_payload(
            harness.run_one(app, registry[design], scale=SCALE)
        )
        for app, design in pairs
    }


# -- byte identity + concurrency ---------------------------------------------


def test_concurrent_responses_byte_identical_to_direct_run():
    pairs = [(APP, design) for design in DESIGNS]
    expected = _expected_payloads(pairs)
    # Forget everything so the service simulates fresh through the
    # scheduler bridge (comparing a memo hit with itself proves nothing).
    harness.clear_cache()
    suite._cached_trace.cache_clear()

    handle = serve_in_thread(_config())
    try:
        client = ServeClient(port=handle.port)
        requests = pairs * 3  # duplicates exercise single-flight dedup
        with ThreadPoolExecutor(max_workers=len(requests)) as pool:
            responses = list(
                pool.map(lambda p: client.simulate(design=p[1], app=p[0]), requests)
            )
        for (app, design), response in zip(requests, responses):
            assert response.body == expected[(app, design)], (app, design)
            assert response.outcome in ("fresh", "memo", "disk")
        # Every design simulated exactly once despite three requests each.
        assert handle.service.counters["fresh_jobs"] == len(DESIGNS)
        assert handle.service.counters["ok"] == len(requests)
    finally:
        handle.shutdown()
    assert not handle.thread.is_alive()


def test_batch_shares_one_decode_across_cold_requests():
    handle = serve_in_thread(_config(batch_window=0.25))
    try:
        client = ServeClient(port=handle.port)
        requests = [(APP, design) for design in DESIGNS] * 2
        with ThreadPoolExecutor(max_workers=len(requests)) as pool:
            responses = list(
                pool.map(lambda p: client.simulate(design=p[1], app=p[0]), requests)
            )
        # All eight arrived inside one window for the same trace: one
        # batch, one decode of the shared trace, four unique simulations.
        counters = handle.service.counters
        assert counters["batches"] == 1
        assert counters["max_batch_size"] == len(requests)
        assert counters["trace_decodes"] == 1
        assert counters["fresh_jobs"] == len(DESIGNS)
        for response in responses:
            assert response.batch_size == len(requests)
        trace = suite.get_trace(APP, SCALE)
        assert trace.is_decoded
    finally:
        handle.shutdown()


def test_group_pass_and_scheduler_bridge_byte_identical(monkeypatch):
    """Cold suite batches run as one in-process vectorised group pass by
    default, and bridge to the shard scheduler under REPRO_SCHED_*; both
    paths must serialise exactly what a direct harness caller would."""
    pairs = [(APP, design) for design in DESIGNS]
    expected = _expected_payloads(pairs)

    def _collect() -> list[bytes]:
        harness.clear_cache()
        suite._cached_trace.cache_clear()
        handle = serve_in_thread(_config(batch_window=0.2))
        try:
            client = ServeClient(port=handle.port)
            with ThreadPoolExecutor(max_workers=len(pairs)) as pool:
                responses = list(
                    pool.map(lambda p: client.simulate(design=p[1], app=p[0]), pairs)
                )
            assert handle.service.counters["fresh_jobs"] == len(DESIGNS)
            return [response.body for response in responses]
        finally:
            handle.shutdown()

    group_bodies = _collect()
    monkeypatch.setenv("REPRO_SCHED_WORKERS", "2")
    bridge_bodies = _collect()
    for (app, design), group, bridge in zip(pairs, group_bodies, bridge_bodies):
        assert group == bridge == expected[(app, design)], (app, design)


# -- backpressure ------------------------------------------------------------


def _blocking_runner(release: threading.Event):
    """A runner that parks until released, then answers with stub stats
    (the backpressure/drain tests care about control flow, not numbers)."""

    def run(jobs) -> BatchOutcome:
        release.wait(timeout=30)
        return BatchOutcome(
            results={job: (FrontendStats(instructions=1), "fresh") for job in jobs}
        )

    return run


def test_queue_overflow_returns_structured_429():
    release = threading.Event()
    handle = serve_in_thread(
        _config(queue_limit=2, workers=1, batch_window=0.01, retry_after=3.0),
        runner=_blocking_runner(release),
    )
    try:
        client = ServeClient(port=handle.port)
        with ThreadPoolExecutor(max_workers=2) as pool:
            admitted = [
                pool.submit(client.simulate, design=design, app=APP)
                for design in DESIGNS[:2]
            ]
            deadline = time.monotonic() + 5
            while client.health()["inflight"] < 2:
                assert time.monotonic() < deadline, "requests never admitted"
                time.sleep(0.01)
            with pytest.raises(ServiceError) as excinfo:
                client.simulate(design=DESIGNS[2], app=APP)
            assert excinfo.value.status == 429
            assert excinfo.value.code == "queue-full"
            assert excinfo.value.retry_after == 3.0
            release.set()
            for future in admitted:
                assert future.result(timeout=10).result["instructions"] == 1
        assert handle.service.counters["rejected"] == 1
        assert handle.service.counters["ok"] == 2
    finally:
        release.set()
        handle.shutdown()


# -- malformed requests ------------------------------------------------------


def _post_raw(port: int, body: bytes, path: str = "/v1/simulate"):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request("POST", path, body=body,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def test_malformed_requests_get_structured_400s():
    handle = serve_in_thread(_config())
    try:
        port = handle.port
        cases = [
            (b"{not json", "bad-json"),
            (b"[1, 2, 3]", "bad-request"),
            (b'{"app": "server_oltp_00"}', "missing-design"),
            (b'{"design": "no-such-design", "app": "server_oltp_00"}',
             "unknown-design"),
            (b'{"design": "baseline", "app": "no_such_app"}', "unknown-app"),
            (b'{"design": "baseline"}', "missing-workload"),
            (b'{"design": "baseline", "app": "server_oltp_00", '
             b'"spec": {"name": "x", "category": "Server", "seed": 1}}',
             "ambiguous-workload"),
            (b'{"design": "baseline", "app": "server_oltp_00", "warmup": 1.5}',
             "bad-warmup"),
            (b'{"design": "baseline", "app": "server_oltp_00", '
             b'"scale": "galactic"}', "unknown-scale"),
            (b'{"design": "baseline", "app": "server_oltp_00", '
             b'"params": {"no_such_knob": 1}}', "bad-field"),
            (b'{"design": "baseline", "app": "server_oltp_00", "bogus": 1}',
             "unknown-field"),
        ]
        for body, expected_code in cases:
            status, payload = _post_raw(port, body)
            assert status == 400, (body, payload)
            assert payload["error"]["code"] == expected_code, (body, payload)
        # Wrong method and unknown route are structured too.
        client = ServeClient(port=port)
        with pytest.raises(ServiceError) as excinfo:
            client._get_json("/v1/simulate")
        assert excinfo.value.status == 405
        with pytest.raises(ServiceError) as excinfo:
            client._get_json("/v1/nope")
        assert excinfo.value.status == 404
        assert handle.service.counters["bad_requests"] == len(cases)
        assert handle.service.counters["ok"] == 0
    finally:
        handle.shutdown()


def test_unknown_design_400_enumerates_the_live_registry():
    """The rejection must list every key of the *live* design registry
    (including families registered after the protocol was written), so
    clients can self-correct without a docs round trip."""
    handle = serve_in_thread(_config())
    try:
        port = handle.port
        status, payload = _post_raw(
            port, b'{"design": "no-such-design", "app": "server_oltp_00"}'
        )
        assert status == 400
        error = payload["error"]
        assert error["code"] == "unknown-design"
        assert error["options"] == sorted(design_registry())
        for family in ("micro-btb", "shadow-baseline", "shadow-pdede",
                       "pdede-default"):
            assert family in error["options"]
        # The blocking client surfaces the same enumeration.
        client = ServeClient(port=port)
        with pytest.raises(ServiceError) as excinfo:
            client.simulate(design="no-such-design", app=APP)
        assert excinfo.value.code == "unknown-design"
        assert excinfo.value.options == sorted(design_registry())
        # unknown-scale enumerates too; other 400s carry no options key.
        status, payload = _post_raw(
            port,
            b'{"design": "baseline", "app": "server_oltp_00", '
            b'"scale": "galactic"}',
        )
        assert status == 400
        assert payload["error"]["options"] == sorted(suite.SCALES)
        status, payload = _post_raw(port, b'{"app": "server_oltp_00"}')
        assert status == 400
        assert "options" not in payload["error"]
    finally:
        handle.shutdown()


# -- graceful shutdown -------------------------------------------------------


def test_graceful_shutdown_drains_inflight_requests():
    release = threading.Event()
    handle = serve_in_thread(
        _config(workers=1, batch_window=0.01),
        runner=_blocking_runner(release),
    )
    try:
        client = ServeClient(port=handle.port)
        with ThreadPoolExecutor(max_workers=1) as pool:
            inflight = pool.submit(client.simulate, design="baseline", app=APP)
            deadline = time.monotonic() + 5
            while client.health()["inflight"] < 1:
                assert time.monotonic() < deadline, "request never admitted"
                time.sleep(0.01)
            # A keep-alive connection opened before the drain begins...
            held = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=10)
            held.request("GET", "/healthz")
            assert json.loads(held.getresponse().read())["status"] == "ok"

            handle.service.request_shutdown()
            deadline = time.monotonic() + 5
            while not handle.service.draining:
                assert time.monotonic() < deadline, "drain never started"
                time.sleep(0.01)
            # ...still gets answered, but new work is refused (503).
            held.request("POST", "/v1/simulate",
                         body=b'{"design": "baseline", "app": "server_oltp_00"}',
                         headers={"Content-Type": "application/json"})
            response = held.getresponse()
            payload = json.loads(response.read())
            assert response.status == 503
            assert payload["error"]["code"] == "draining"
            held.close()

            # The in-flight request is not lost: it completes the drain.
            release.set()
            result = inflight.result(timeout=10)
            assert result.result["instructions"] == 1
        handle.thread.join(timeout=10)
        assert not handle.thread.is_alive()
        assert handle.service.counters["ok"] == 1
        assert handle.service.counters["draining_rejected"] == 1
    finally:
        release.set()
        handle.shutdown()


# -- warm-cache storm (the issue's acceptance scenario) ----------------------


def test_warm_storm_zero_fresh_simulations(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_DISK_CACHE", "1")
    monkeypatch.setenv("REPRO_DISK_CACHE_DIR", str(tmp_path / "serve-cache"))

    # Populate the disk cache the way an earlier service process would
    # have, and record the exact bytes each request must receive.
    pairs = [(APP, design) for design in DESIGNS]
    expected = _expected_payloads(pairs)

    # "Restart" the service: forget every in-process cache, keep disk.
    harness.clear_cache()
    suite._cached_trace.cache_clear()
    clear_serve_caches()
    scheduler.reset_session_counters()

    handle = serve_in_thread(_config(queue_limit=64))
    try:
        client = ServeClient(port=handle.port)
        requests = pairs * 8  # 32 concurrent requests
        with ThreadPoolExecutor(max_workers=len(requests)) as pool:
            responses = list(
                pool.map(lambda p: client.simulate(design=p[1], app=p[0]), requests)
            )
        assert len(responses) == 32
        for (app, design), response in zip(requests, responses):
            assert response.body == expected[(app, design)], (app, design)
            assert response.outcome in ("disk", "memo")
        counters = handle.service.counters
        assert counters["ok"] == 32
        assert counters["fresh_jobs"] == 0
        assert counters["outcomes"]["fresh"] == 0
        assert counters["outcomes"]["disk"] + counters["outcomes"]["memo"] == 32
        # Zero fresh simulations: the scheduler never saw a task, and no
        # trace was decoded (warm answers never touch the trace at all).
        assert sum(scheduler.session_counters().values()) == 0
        assert counters["trace_decodes"] == 0
        stats = client.stats()
        assert stats["service"]["fresh_jobs"] == 0
        assert stats["scheduler"] == {}
    finally:
        handle.shutdown()


# -- inline (ad-hoc) workload specs ------------------------------------------


def test_inline_spec_requests_are_served_and_cached():
    from repro.workloads.spec import WorkloadSpec

    spec = WorkloadSpec(name="adhoc_probe", category="Server", seed=99,
                        n_events=2000)
    handle = serve_in_thread(_config(max_events=10_000))
    try:
        client = ServeClient(port=handle.port)
        first = client.simulate(design="baseline", spec=spec)
        assert first.outcome == "fresh"
        assert first.result["instructions"] > 0
        again = client.simulate(design="baseline", spec=spec)
        assert again.outcome == "memo"
        assert again.body == first.body
        # Same name, different seed: the spec digest keeps them apart.
        other = client.simulate(
            design="baseline",
            spec=WorkloadSpec(name="adhoc_probe", category="Server", seed=100,
                              n_events=2000),
        )
        assert other.outcome == "fresh"
        assert other.body != first.body
        # Admission control also bounds the work one spec may request.
        with pytest.raises(ServiceError) as excinfo:
            client.simulate(
                design="baseline",
                spec=WorkloadSpec(name="huge", category="Server", seed=1,
                                  n_events=1_000_000),
            )
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad-field"
    finally:
        handle.shutdown()


# -- observability -----------------------------------------------------------


def test_service_publishes_metrics():
    from repro.obs.metrics import MetricsRegistry, use_registry

    registry = MetricsRegistry()
    with use_registry(registry):
        handle = serve_in_thread(_config())
        try:
            client = ServeClient(port=handle.port)
            client.simulate(design="baseline", app=APP)
            client.simulate(design="baseline", app=APP)
            snapshot = client.metrics()
        finally:
            handle.shutdown()
    assert registry.get("serve_requests_total").value(outcome="ok") == 2
    assert registry.get("serve_request_seconds").count(design="baseline") == 2
    assert registry.get("serve_cache_outcome_total").value(outcome="fresh") == 1
    assert registry.get("serve_cache_outcome_total").value(outcome="memo") == 1
    assert registry.get("serve_trace_decodes_total").total() == 1
    assert registry.get("serve_queue_depth").value() == 0
    # /metrics serves the very same snapshot.
    assert "serve_requests_total" in snapshot
