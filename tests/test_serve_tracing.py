"""End-to-end tests for serve request tracing and telemetry.

The acceptance criterion this file pins: one request's **full hop
sequence** -- admission, batch formation, batch execution (the run),
cache classification, response -- must be reconstructible from the
structured event log by correlation id alone, over the public
``/debug/trace`` endpoint of a real booted service.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.experiments import harness, scheduler
from repro.obs.aggregate import aggregate, read_events, reconstruct
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.serve import (
    ServeClient,
    ServeConfig,
    ServiceError,
    clear_serve_caches,
    serve_in_thread,
)
from repro.workloads import suite

APP = "server_oltp_00"
DESIGN = "pdede-default"
SCALE = "tiny"

#: The hop trail every successful request must leave, in order.
HOP_SEQUENCE = ("admit", "batch-join", "batch-execute", "cache", "respond")


@pytest.fixture(autouse=True)
def _cold_process_state():
    harness.clear_cache()
    suite._cached_trace.cache_clear()
    clear_serve_caches()
    scheduler.reset_session_counters()
    yield
    harness.clear_cache()
    suite._cached_trace.cache_clear()
    clear_serve_caches()
    scheduler.reset_session_counters()


def _config(**overrides) -> ServeConfig:
    base = dict(port=0, batch_window=0.05, queue_limit=64, workers=2,
                drain_timeout=10.0, default_scale=SCALE)
    base.update(overrides)
    return ServeConfig(**base)


def _hop_order(records: list[dict]) -> list[str]:
    """The subsequence of HOP_SEQUENCE events, in emission order."""
    return [r["event"] for r in records if r["event"] in HOP_SEQUENCE]


# -- the acceptance test ------------------------------------------------------


def test_cold_request_full_hop_sequence_by_correlation_id():
    handle = serve_in_thread(_config())
    try:
        client = ServeClient(port=handle.port)
        response = client.simulate(design=DESIGN, app=APP)
        rid = response.request_id
        assert rid, "response must carry X-Repro-Request-Id"
        assert response.outcome == "fresh"

        trace = client.debug_trace(rid=rid)
        records = trace["records"]
        # The five service hops arrive in causal order.
        assert _hop_order(records) == list(HOP_SEQUENCE)
        # reconstruct() over the same records agrees with the server's
        # rid filter (they share the matching rule).
        assert reconstruct(trace["records"], rid) == records

        by_event = {r["event"]: r for r in records}
        admit = by_event["admit"]
        assert admit["rid"] == rid
        assert admit["bytes"] > 0
        join = by_event["batch-join"]
        assert join["design"] == DESIGN
        assert join["batch"].startswith("b")
        execute = by_event["batch-execute"]
        # The run hop is emitted from the worker thread with every rid
        # in the batch bound -- this request's id must be among them.
        assert rid in execute["rids"]
        assert execute["batch"] == join["batch"]
        cache = by_event["cache"]
        assert cache["outcome"] == "fresh"
        respond = by_event["respond"]
        assert respond["status"] == 200
        assert respond["outcome"] == "fresh"
        # The hop decomposition on the respond event adds up sensibly.
        assert respond["seconds"] >= respond["simulate_s"] >= 0.0
        assert respond["batch_wait_s"] >= 0.0
        assert respond["queue_s"] >= 0.0

        # Deep layers (harness/disk-cache/scheduler) emitted under the
        # bound rids: a cold request must show its cache miss.
        deep = [r for r in trace["records"] if r["event"] == "cache-lookup"]
        assert deep and deep[0]["hit"] is False
    finally:
        handle.shutdown()


def test_warm_request_traces_memo_outcome():
    handle = serve_in_thread(_config())
    try:
        client = ServeClient(port=handle.port)
        cold = client.simulate(design=DESIGN, app=APP)
        warm = client.simulate(design=DESIGN, app=APP)
        assert warm.outcome == "memo"
        assert warm.request_id != cold.request_id
        records = client.debug_trace(rid=warm.request_id)["records"]
        assert _hop_order(records) == list(HOP_SEQUENCE)
        by_event = {r["event"]: r for r in records}
        assert by_event["cache"]["outcome"] == "memo"
        # A memo hit barely simulates: the hop decomposition shows it.
        assert by_event["respond"]["simulate_s"] < by_event["respond"]["seconds"]
    finally:
        handle.shutdown()


# -- timing headers -----------------------------------------------------------


def test_response_carries_timing_headers():
    handle = serve_in_thread(_config())
    try:
        client = ServeClient(port=handle.port)
        response = client.simulate(design=DESIGN, app=APP)
        assert set(response.timing) == {"batch_wait", "queue", "simulate"}
        assert all(value >= 0.0 for value in response.timing.values())
        # The same decomposition the respond event records.
        records = client.debug_trace(rid=response.request_id)["records"]
        respond = next(r for r in records if r["event"] == "respond")
        assert respond["batch_wait_s"] == pytest.approx(
            response.timing["batch_wait"], abs=1e-6)
        assert respond["simulate_s"] == pytest.approx(
            response.timing["simulate"], abs=1e-6)
    finally:
        handle.shutdown()


def test_submit_cli_timing_flag_prints_breakdown(capsys):
    from repro.cli import main

    handle = serve_in_thread(_config())
    try:
        code = main(["--scale", SCALE, "submit", APP, DESIGN,
                     "--port", str(handle.port), "--timing"])
        assert code == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout still carries the exact payload
        assert "submit: timing rid=r" in captured.err
        for hop in ("batch_wait=", "queue=", "simulate=", "server-total="):
            assert hop in captured.err
    finally:
        handle.shutdown()


# -- /debug/trace endpoint ----------------------------------------------------


def test_debug_trace_filters_and_drain_state():
    handle = serve_in_thread(_config(trace_buffer=128))
    try:
        client = ServeClient(port=handle.port)
        for _ in range(3):
            client.simulate(design=DESIGN, app=APP)
        trace = client.debug_trace()
        assert trace["drain"]["enabled"] is True
        assert trace["drain"]["capacity"] == 128
        assert trace["drain"]["emitted"] >= len(trace["records"])
        responds = client.debug_trace(event="respond")["records"]
        assert len(responds) == 3
        assert all(r["event"] == "respond" for r in responds)
        limited = client.debug_trace(event="respond", limit=2)["records"]
        assert limited == responds[-2:]
        # Health reports the same drain state under "events".
        health = client.health()
        assert health["status"] in ("ok", "draining")
        assert health["events"]["enabled"] is True
        assert health["events"]["capacity"] == 128
    finally:
        handle.shutdown()


def test_debug_trace_rejects_bad_limit():
    handle = serve_in_thread(_config())
    try:
        connection = http.client.HTTPConnection("127.0.0.1", handle.port, timeout=10)
        connection.request("GET", "/debug/trace?limit=banana")
        response = connection.getresponse()
        payload = json.loads(response.read())
        assert response.status == 400
        assert payload["error"]["code"] == "bad-limit"
        connection.close()
    finally:
        handle.shutdown()


def test_trace_buffer_zero_disables_tracing():
    handle = serve_in_thread(_config(trace_buffer=0))
    try:
        client = ServeClient(port=handle.port)
        response = client.simulate(design=DESIGN, app=APP)
        assert response.request_id  # ids still flow even with no ring
        trace = client.debug_trace()
        assert trace["drain"]["enabled"] is False
        assert trace["records"] == []
        assert client.health()["events"]["enabled"] is False
    finally:
        handle.shutdown()


# -- event sink + aggregation -------------------------------------------------


def test_events_sink_file_reconstructs_after_shutdown(tmp_path):
    sink = tmp_path / "serve-events.jsonl"
    handle = serve_in_thread(_config(events_path=str(sink)))
    try:
        client = ServeClient(port=handle.port)
        response = client.simulate(design=DESIGN, app=APP)
        rid = response.request_id
    finally:
        handle.shutdown()
    # The sink survives the service: offline reconstruction still works.
    records = read_events(str(sink))
    assert _hop_order(reconstruct(records, rid)) == list(HOP_SEQUENCE)
    summary = aggregate(records)
    assert summary["requests"] == 1
    assert summary["errors"] == 0
    assert summary["by_outcome"]["fresh"]["count"] == 1
    assert summary["by_outcome"]["fresh"]["mean_simulate_s"] > 0.0


def test_rejections_emit_respond_events():
    handle = serve_in_thread(_config())
    try:
        client = ServeClient(port=handle.port)
        with pytest.raises(ServiceError) as excinfo:
            client.simulate(design="no-such-design", app=APP)
        assert excinfo.value.status == 400
        records = client.debug_trace(event="respond")["records"]
        assert len(records) == 1
        assert records[0]["status"] == 400
        assert records[0]["outcome"] == "unknown-design"
        # The aggregate counts it as a request but not a 5xx error.
        summary = aggregate(client.debug_trace()["records"])
        assert summary["requests"] == 1
        assert summary["errors"] == 0
    finally:
        handle.shutdown()


# -- /metrics content negotiation ---------------------------------------------


def test_metrics_prometheus_text_on_accept_header():
    registry = MetricsRegistry()
    with use_registry(registry):
        handle = serve_in_thread(_config())
        try:
            client = ServeClient(port=handle.port)
            client.simulate(design=DESIGN, app=APP)
            # Default stays the JSON snapshot (same shape as the
            # registry's to_dict), byte-path untouched.
            snapshot = client.metrics()
            assert "serve_request_seconds" in snapshot
            # Accept: text/plain switches to Prometheus exposition.
            text = client.metrics_text()
            assert "# TYPE serve_request_seconds histogram" in text
            assert 'serve_request_seconds_bucket' in text
            assert 'le="+Inf"' in text
            assert "serve_request_seconds_count" in text
        finally:
            handle.shutdown()


def test_metrics_percentiles_in_json_snapshot():
    registry = MetricsRegistry()
    with use_registry(registry):
        handle = serve_in_thread(_config())
        try:
            client = ServeClient(port=handle.port)
            client.simulate(design=DESIGN, app=APP)
        finally:
            handle.shutdown()
    (series,) = registry.get("serve_request_seconds").to_dict()["series"]
    assert {"p50", "p95", "p99"} <= set(series)
    assert series["p99"] >= series["p50"] > 0.0
