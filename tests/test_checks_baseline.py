"""Baseline ratchet semantics and the JSON/SARIF document shapes,
plus the ``repro check`` CLI wiring over a scratch tree."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.checks.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.checks.lint import LintFinding
from repro.checks.output import to_json, to_sarif
from repro.cli import main


def _finding(path="src/repro/x.py", line=3, col=0, code="REP101", message="boom"):
    return LintFinding(path, line, col, code, message)


# -- fingerprints -----------------------------------------------------------


def test_fingerprint_excludes_line_numbers():
    assert fingerprint(_finding(line=3)) == fingerprint(_finding(line=300))


def test_fingerprint_relativizes_against_root(tmp_path):
    finding = _finding(path=str(tmp_path / "pkg" / "m.py"))
    assert fingerprint(finding, tmp_path) == "pkg/m.py:REP101:boom"


# -- load / write round trip ------------------------------------------------


def test_missing_baseline_allows_nothing(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == {}


def test_write_then_load_round_trips_counts(tmp_path):
    path = tmp_path / "baseline.json"
    write_baseline(path, [_finding(line=1), _finding(line=9), _finding(code="REP104")])
    loaded = load_baseline(path)
    assert loaded == {
        "src/repro/x.py:REP101:boom": 2,
        "src/repro/x.py:REP104:boom": 1,
    }
    document = json.loads(path.read_text())
    assert document["version"] == 1


# -- apply semantics --------------------------------------------------------


def test_baselined_findings_are_tolerated_up_to_count():
    baseline = {"src/repro/x.py:REP101:boom": 1}
    new, stale = apply_baseline([_finding(line=5), _finding(line=9)], baseline)
    # One occurrence tolerated (the earliest), the second is new.
    assert [f.line for f in new] == [9]
    assert stale == []


def test_fixed_finding_reports_stale_entry():
    baseline = {"src/repro/x.py:REP101:boom": 2}
    new, stale = apply_baseline([_finding(line=5)], baseline)
    assert new == []
    assert stale == ["src/repro/x.py:REP101:boom"]


def test_unrelated_finding_is_always_new():
    baseline = {"src/repro/x.py:REP101:boom": 1}
    new, _ = apply_baseline([_finding(code="REP202")], baseline)
    assert [f.code for f in new] == ["REP202"]


# -- JSON / SARIF shape -----------------------------------------------------


def test_json_document_shape():
    document = json.loads(to_json([_finding()], {"passes": ["concurrency"]}))
    assert document["version"] == 1
    assert document["summary"]["passes"] == ["concurrency"]
    assert document["rules"]["REP101"]["name"] == "blocking-in-event-loop"
    assert document["rules"]["REP201"]["name"] == "undeclared-knob"
    (entry,) = document["findings"]
    assert entry == {
        "path": "src/repro/x.py",
        "line": 3,
        "col": 0,
        "code": "REP101",
        "name": "blocking-in-event-loop",
        "message": "boom",
    }


def test_sarif_document_shape():
    document = json.loads(to_sarif([_finding(col=4)]))
    assert document["version"] == "2.1.0"
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-check"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert "REP101" in rule_ids and "REP204" in rule_ids
    (result,) = run["results"]
    assert result["ruleId"] == "REP101"
    assert rule_ids[result["ruleIndex"]] == "REP101"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region == {"startLine": 3, "startColumn": 5}  # col is 1-based


# -- CLI wiring over a scratch tree -----------------------------------------


_BAD_TREE = """
import time

async def handler():
    time.sleep(0.1)
"""


def _scratch_repo(tmp_path: Path) -> Path:
    (tmp_path / "README.md").write_text("scratch\n")
    pkg = tmp_path / "repro_scratch"
    pkg.mkdir()
    (pkg / "mod.py").write_text(textwrap.dedent(_BAD_TREE))
    return pkg


def test_cli_concurrency_pass_fails_on_seeded_bug(tmp_path, capsys):
    pkg = _scratch_repo(tmp_path)
    assert main(["check", "--concurrency", str(pkg)]) == 1
    out = capsys.readouterr().out
    assert "REP101" in out


def test_cli_baseline_ratchet_and_update(tmp_path, capsys):
    pkg = _scratch_repo(tmp_path)
    baseline = tmp_path / "checks_baseline.json"
    assert main(
        ["check", "--concurrency", str(pkg), "--update-baseline",
         "--baseline", str(baseline)]
    ) == 0
    # Baselined finding no longer fails the gate.
    assert main(
        ["check", "--concurrency", str(pkg), "--baseline", str(baseline)]
    ) == 0
    capsys.readouterr()
    # Fixing the bug surfaces the stale entry (still exit 0).
    (pkg / "mod.py").write_text("async def handler():\n    pass\n")
    assert main(
        ["check", "--concurrency", str(pkg), "--baseline", str(baseline)]
    ) == 0
    assert "stale baseline entry" in capsys.readouterr().err


def test_cli_sarif_output_file(tmp_path, capsys):
    pkg = _scratch_repo(tmp_path)
    out_path = tmp_path / "checks.sarif"
    assert main(
        ["check", "--concurrency", str(pkg), "--format", "sarif",
         "--output", str(out_path)]
    ) == 1
    capsys.readouterr()
    document = json.loads(out_path.read_text())
    assert document["version"] == "2.1.0"
    assert document["runs"][0]["results"]
