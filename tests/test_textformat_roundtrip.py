"""Property-based round-trip tests for the text trace format.

Mirrors the differential-fuzz style of ``test_engine_equivalence.py``:
seeded random traces sweep the format's whole event space (every branch
kind, huge/zero addresses, taken/not-taken, zero and large gaps), each
must survive ``dump_trace`` -> ``load_trace`` bit-exactly, and a failing
seed is binary-search shrunk to a short reproducing prefix before the
assertion fires.
"""

from __future__ import annotations

import io
import random

import pytest

from repro.branch.types import BranchKind
from repro.workloads.textformat import TraceFormatError, dump_trace, load_trace
from repro.workloads.trace import Trace

N_FUZZ_SWEEPS = 16
_KINDS = list(BranchKind)


def _random_trace(seed: int, n_events: int | None = None) -> Trace:
    """A seeded trace hitting the format's full value space."""
    rng = random.Random(seed * 2654435761 % (1 << 31))
    trace = Trace(name=f"fuzz-{seed}", category="Fuzz")
    for _ in range(n_events if n_events is not None else rng.randrange(1, 200)):
        kind = rng.choice(_KINDS)
        # Unconditional kinds are always taken (the format rejects the
        # impossible combination); only COND may be not-taken.
        taken = True if kind.is_unconditional else rng.random() < 0.5
        pc = rng.choice((0, 1, rng.getrandbits(rng.choice((16, 32, 48, 63)))))
        target = rng.choice((0, pc, pc + 4, rng.getrandbits(48)))
        gap = rng.choice((0, 1, rng.randrange(0, 10_000)))
        trace.append(pc, kind, taken, target, gap)
    return trace


def _columns(trace: Trace) -> list[tuple[int, int, bool, int, int]]:
    return list(trace.events())


def _roundtrip(trace: Trace) -> Trace:
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    buffer.seek(0)
    return load_trace(buffer)


def _diverges(trace: Trace) -> bool:
    loaded = _roundtrip(trace)
    return (
        _columns(loaded) != _columns(trace)
        or loaded.name != trace.name
        or loaded.category != trace.category
    )


def _shrink_prefix(seed: int, failing_length: int) -> int:
    """Binary-search a short failing prefix (same caveat as the engine
    fuzz sweep: not minimal, just small enough to eyeball)."""
    low, high = 1, failing_length
    while low < high:
        mid = (low + high) // 2
        prefix = _random_trace(seed, failing_length)
        prefix.truncate(mid)
        if _diverges(prefix):
            high = mid
        else:
            low = mid + 1
    return low


@pytest.mark.parametrize("fuzz_seed", range(N_FUZZ_SWEEPS))
def test_random_traces_roundtrip_bit_exactly(fuzz_seed):
    trace = _random_trace(fuzz_seed)
    if _diverges(trace):
        shrunk = _shrink_prefix(fuzz_seed, len(trace))
        repro = _random_trace(fuzz_seed, len(trace))
        repro.truncate(shrunk)
        buffer = io.StringIO()
        dump_trace(repro, buffer)
        pytest.fail(
            f"seed {fuzz_seed}: round-trip diverges; {shrunk}-event "
            f"reproduction:\n{buffer.getvalue()}"
        )
    # The second generation is identical, so the property is stable.
    assert _columns(_random_trace(fuzz_seed)) == _columns(trace)


def test_roundtrip_preserves_exact_text():
    """Dump -> load -> dump is a fixed point (the parser loses nothing
    the writer emits)."""
    trace = _random_trace(7)
    first = io.StringIO()
    dump_trace(trace, first)
    second = io.StringIO()
    dump_trace(_roundtrip(trace), second)
    assert second.getvalue() == first.getvalue()


def test_empty_trace_roundtrips():
    trace = Trace(name="empty", category="Fuzz")
    loaded = _roundtrip(trace)
    assert len(loaded) == 0
    assert loaded.name == "empty"
    assert loaded.category == "Fuzz"


@pytest.mark.parametrize(
    "line, message_part",
    [
        ("zz COND T 0 0", "invalid literal"),
        ("0 COND T 0", "expected 5 fields"),
        ("0 WAT T 0 0", "unknown branch kind"),
        ("0 COND X 0 0", "taken flag"),
        ("0 JMP N 0 0", "always taken"),
        ("0 COND T 0 -1", "negative gap"),
    ],
)
def test_malformed_lines_are_structured_errors(line, message_part):
    with pytest.raises(TraceFormatError, match=message_part):
        load_trace([line])
