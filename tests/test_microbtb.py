"""Unit tests for the two-tier Micro BTB (L1 + delta last-level)."""

import pytest

from repro.btb.microbtb import MicroBTB

from conftest import make_event, synthetic_branch_set


def _single_set_btb(**overrides):
    """One L1 set of two ways over a roomy last level, so any third
    distinct branch must evict (and victim-fill the last level)."""
    config = dict(l1_entries=2, l1_ways=2, ll_entries=256, ll_ways=8,
                  delta_bits=16)
    config.update(overrides)
    return MicroBTB(**config)


BRANCHES = [
    (0x7F00_0000_1000, 0x7F00_0000_1100),
    (0x7F00_0000_2000, 0x7F00_0000_2200),
    (0x7F00_0000_3000, 0x7F00_0000_3300),
]


def _fill_three(btb):
    for pc, target in BRANCHES:
        btb.update(make_event(pc=pc, target=target))


def test_default_geometry_storage():
    # L1: 1024 x (12 tag + 57 target + 2 conf + 3 srrip) = 1024 x 74.
    # LL: 16384 x (12 tag + 16 delta + 3 srrip) = 16384 x 31.
    btb = MicroBTB()
    assert btb.storage_bits() == 1024 * 74 + 16384 * 31
    assert btb.name == "MicroBTB(1024+16384x16b)"


def test_lookup_miss_then_l1_hit():
    btb = _single_set_btb()
    event = make_event()
    assert not btb.lookup(event.pc).hit
    btb.update(event)
    lookup = btb.lookup(event.pc)
    assert lookup.hit
    assert lookup.provider == "l1btb"
    assert lookup.target == event.target
    assert lookup.latency == btb.latency


def test_eviction_victim_fills_the_last_level():
    # promote_on_hit off so the census lookups have no side effects.
    btb = _single_set_btb(promote_on_hit=False)
    _fill_three(btb)
    assert btb.stats.evictions == 1
    assert btb.victim_fills == 1
    # All three branches still answer: two from the L1, the victim from
    # the last level with the extra latency and reconstructed target.
    lookups = [btb.lookup(pc) for pc, _ in BRANCHES]
    providers = sorted(result.provider for result in lookups)
    assert providers == ["l1btb", "l1btb", "llbtb"]
    for (pc, target), result in zip(BRANCHES, lookups):
        assert result.hit
        assert result.target == target
    victim = next(r for r in lookups if r.provider == "llbtb")
    assert victim.latency == btb.latency + btb.ll_extra_latency


def test_last_level_hit_promotes_back_to_l1():
    btb = _single_set_btb()
    _fill_three(btb)
    victim_pc = None
    for pc, _ in BRANCHES:
        if btb.lookup(pc).provider == "llbtb":
            victim_pc = pc
            break  # the hit just promoted this entry; stop probing
    assert victim_pc is not None
    assert btb.promotions == 1
    assert btb.lookup(victim_pc).provider == "l1btb"


def test_promote_on_hit_can_be_disabled():
    btb = _single_set_btb(promote_on_hit=False)
    _fill_three(btb)
    victim_pc = next(pc for pc, _ in BRANCHES
                     if btb.lookup(pc).provider == "llbtb")
    assert btb.promotions == 0
    assert btb.lookup(victim_pc).provider == "llbtb"


def test_uncompressible_deltas_never_reach_the_last_level():
    btb = _single_set_btb(delta_bits=8)  # deltas beyond +/-127 dropped
    far = [(pc, pc + 0x10_0000) for pc, _ in BRANCHES]
    for pc, target in far:
        btb.update(make_event(pc=pc, target=target))
    assert btb.stats.evictions == 1
    assert btb.uncompressible == 1
    assert btb.ll_hits == 0
    # The evicted branch is simply lost -- exactly one of the three
    # misses now.
    hits = [btb.lookup(pc).hit for pc, _ in far]
    assert sorted(hits) == [False, True, True]


def test_fill_policy_all_writes_last_level_eagerly():
    btb = _single_set_btb(fill_policy="all")
    event = make_event()
    btb.update(event)
    assert btb.victim_fills == 0
    assert sum(btb._ll_valid) == 1
    # Even with the L1 entry gone, the last level answers.
    _fill_three(btb)
    for pc, target in BRANCHES:
        result = btb.lookup(pc)
        assert result.hit
        assert result.target == target


def test_not_taken_branches_never_allocate():
    btb = _single_set_btb()
    btb.update(make_event(taken=False))
    assert btb.occupancy() == 0


def test_indirect_gating():
    from repro.branch.types import BranchKind

    btb = _single_set_btb(allocate_indirect=False)
    btb.update(make_event(kind=BranchKind.CALL_INDIRECT))
    assert btb.occupancy() == 0
    btb.update(make_event(kind=BranchKind.COND_DIRECT))
    assert btb.occupancy() == 1


def test_confidence_protects_incumbent_target():
    btb = _single_set_btb(conf_bits=2)
    pc = 0x7F00_0000_4000
    steady = make_event(pc=pc, target=pc + 0x40)
    flip = make_event(pc=pc, target=pc + 0x80)
    for _ in range(3):
        btb.update(steady)
    btb.update(flip)  # drains confidence, keeps the incumbent
    assert btb.lookup(pc).target == steady.target
    for _ in range(4):
        btb.update(flip)
    assert btb.lookup(pc).target == flip.target


def test_capacity_stays_bounded_under_pressure():
    btb = MicroBTB(l1_entries=16, l1_ways=2, ll_entries=64, ll_ways=4)
    for pc, target in synthetic_branch_set(500, seed=7):
        btb.update(make_event(pc=pc, target=target))
    assert btb.occupancy() <= 16 + 64
    assert btb.stats.evictions > 0
    assert btb.victim_fills > 0


def test_metrics_expose_the_hierarchy():
    # promote_on_hit off so each probe's provider is order-independent.
    btb = _single_set_btb(promote_on_hit=False)
    _fill_three(btb)
    for pc, _ in BRANCHES:
        btb.lookup(pc)
    data = btb.metrics()
    assert data["btb_l1_hits_total"] == btb.l1_hits == 2
    assert data["btb_ll_hits_total"] == btb.ll_hits == 1
    assert data["btb_ll_victim_fills_total"] == 1
    assert data["btb_l1_entries"] == 2
    assert data["btb_ll_entries"] == 256


@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(l1_entries=0), "l1_entries"),
        (dict(l1_entries=5, l1_ways=4), "divisible"),
        (dict(ll_entries=7, ll_ways=2), "divisible"),
        (dict(fill_policy="never"), "fill_policy"),
        (dict(delta_bits=1), "delta_bits"),
    ],
)
def test_bad_geometry_is_rejected(kwargs, match):
    with pytest.raises(ValueError, match=match):
        MicroBTB(**kwargs)


def test_opts_out_of_fast_engines():
    assert MicroBTB.supports_fast_path is False
