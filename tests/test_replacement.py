"""Unit tests for per-set replacement policies."""

import pytest

from repro.btb.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    SrripPolicy,
    make_replacement_policy,
)


def test_factory_and_unknown():
    assert isinstance(make_replacement_policy("lru", 4), LruPolicy)
    assert isinstance(make_replacement_policy("srrip", 4, m=3), SrripPolicy)
    with pytest.raises(ValueError):
        make_replacement_policy("plru", 4)


def test_invalid_ways_preferred_by_all_policies():
    for name in ("lru", "fifo", "random", "srrip"):
        policy = make_replacement_policy(name, 4)
        valid = [True, False, True, True]
        assert policy.victim(valid) == 1


def test_lru_evicts_least_recent():
    policy = LruPolicy(4)
    valid = [True] * 4
    for way in (0, 1, 2, 3):
        policy.on_insert(way)
    policy.on_hit(0)  # order now 1,2,3,0
    assert policy.victim(valid) == 1
    policy.on_hit(1)
    assert policy.victim(valid) == 2


def test_fifo_round_robin():
    policy = FifoPolicy(3)
    valid = [True] * 3
    policy.on_insert(0)
    assert policy.victim(valid) == 1
    policy.on_insert(1)
    assert policy.victim(valid) == 2
    policy.on_insert(2)
    assert policy.victim(valid) == 0


def test_random_is_deterministic_per_seed():
    a = RandomPolicy(8, seed=7)
    b = RandomPolicy(8, seed=7)
    valid = [True] * 8
    assert [a.victim(valid) for _ in range(20)] == [b.victim(valid) for _ in range(20)]


def test_srrip_promotes_on_hit():
    policy = SrripPolicy(4, m=2)
    valid = [True] * 4
    for way in range(4):
        policy.on_insert(way)
    policy.on_hit(2)  # rrpv[2] -> 0, others at max-1
    victim = policy.victim(valid)
    assert victim != 2


def test_srrip_always_finds_victim():
    policy = SrripPolicy(4, m=2)
    valid = [True] * 4
    for way in range(4):
        policy.on_insert(way)
        policy.on_hit(way)
    # All at RRPV 0; ageing must still produce a victim.
    assert policy.victim(valid) in range(4)


def test_srrip_partial_retention_under_thrash():
    """SRRIP's defining property: not pure LRU under a cyclic scan."""
    policy = SrripPolicy(4, m=2)
    valid = [True] * 4
    for way in range(4):
        policy.on_insert(way)
    policy.on_hit(0)
    policy.on_hit(0)
    # Way 0 is near-immediate; a stream of inserts should evict others.
    victims = set()
    for _ in range(3):
        victim = policy.victim(valid)
        victims.add(victim)
        policy.on_insert(victim)
    assert 0 not in victims


def test_metadata_bits():
    assert SrripPolicy(8, m=3).metadata_bits_per_entry() == 3
    assert LruPolicy(8).metadata_bits_per_entry() == 3
    assert RandomPolicy(8).metadata_bits_per_entry() == 0


def test_rejects_nonpositive_ways():
    with pytest.raises(ValueError):
        LruPolicy(0)
    with pytest.raises(ValueError):
        SrripPolicy(4, m=0)
