"""Unit tests for the direction predictors."""

import pytest

from repro.branch.direction import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    GSharePredictor,
    PerfectDirectionPredictor,
    TageLitePredictor,
    make_direction_predictor,
)


def test_factory_names():
    for name, cls in (
        ("always_taken", AlwaysTakenPredictor),
        ("bimodal", BimodalPredictor),
        ("gshare", GSharePredictor),
        ("tage", TageLitePredictor),
        ("perfect", PerfectDirectionPredictor),
    ):
        assert isinstance(make_direction_predictor(name), cls)


def test_factory_rejects_unknown():
    with pytest.raises(ValueError):
        make_direction_predictor("neural")


def test_perfect_flag():
    assert PerfectDirectionPredictor().is_perfect
    assert not BimodalPredictor().is_perfect


def test_bimodal_learns_bias():
    predictor = BimodalPredictor(entries=64)
    pc = 0x4000
    for _ in range(10):
        predictor.update(pc, False)
    assert predictor.predict(pc) is False
    for _ in range(10):
        predictor.update(pc, True)
    assert predictor.predict(pc) is True


def test_bimodal_rejects_bad_size():
    with pytest.raises(ValueError):
        BimodalPredictor(entries=48)


def test_gshare_learns_alternating_pattern():
    predictor = GSharePredictor(entries=1024, history_bits=8)
    pc = 0x1234
    # Train a strict alternation; gshare's history disambiguates it.
    outcomes = [bool(i % 2) for i in range(400)]
    for taken in outcomes:
        predictor.update(pc, taken)
    correct = 0
    trials = 200
    for i in range(trials):
        taken = bool(i % 2)
        if predictor.predict(pc) == taken:
            correct += 1
        predictor.update(pc, taken)
    assert correct / trials > 0.9


def test_bimodal_cannot_learn_alternation():
    predictor = BimodalPredictor(entries=1024)
    pc = 0x1234
    correct = 0
    for i in range(400):
        taken = bool(i % 2)
        if predictor.predict(pc) == taken:
            correct += 1
        predictor.update(pc, taken)
    assert correct / 400 < 0.7  # a per-PC counter is blind to patterns


def test_tage_learns_biased_branches():
    predictor = TageLitePredictor()
    correct = 0
    trials = 0
    for round_index in range(300):
        for pc, taken in ((0x100, True), (0x200, False), (0x300, True)):
            if round_index > 50:
                trials += 1
                if predictor.predict(pc) == taken:
                    correct += 1
            predictor.update(pc, taken)
    assert correct / trials > 0.95


def test_tage_outperforms_bimodal_on_history_pattern():
    """A short repeating pattern is TAGE's home turf."""
    pattern = [True, True, False, True, False, False]
    tage = TageLitePredictor(table_entries=512)
    bimodal = BimodalPredictor(entries=512)
    pc = 0x7777
    scores = {"tage": 0, "bimodal": 0}
    trials = 0
    for i in range(1200):
        taken = pattern[i % len(pattern)]
        if i > 400:
            trials += 1
            scores["tage"] += tage.predict(pc) == taken
            scores["bimodal"] += bimodal.predict(pc) == taken
        tage.update(pc, taken)
        bimodal.update(pc, taken)
    assert scores["tage"] > scores["bimodal"]


def test_storage_bits_positive():
    assert BimodalPredictor().storage_bits() > 0
    assert GSharePredictor().storage_bits() > 0
    assert TageLitePredictor().storage_bits() > 0
    assert AlwaysTakenPredictor().storage_bits() == 0
