"""Unit tests for the instruction-cache model."""

import pytest

from repro.frontend.icache import ICache


def test_first_touch_misses_then_hits():
    cache = ICache(size_kib=4, line_bytes=64, ways=4)
    assert cache.touch_range(0x1000, 0x1010) == 1
    assert cache.touch_range(0x1000, 0x1010) == 0


def test_range_spanning_lines():
    cache = ICache(size_kib=4, line_bytes=64, ways=4)
    # 0x1000..0x10FF covers 4 lines of 64 bytes.
    assert cache.touch_range(0x1000, 0x10FF) == 4


def test_lru_eviction_within_set():
    cache = ICache(size_kib=1, line_bytes=64, ways=2)  # 8 sets x 2 ways
    sets = cache.sets
    base_line = 0
    conflicting = [
        (base_line + k * sets) * 64 for k in range(3)
    ]  # three lines mapping to set 0
    for addr in conflicting:
        cache.touch_line(addr // 64)
    # The first line was evicted by the third.
    assert cache.touch_line(conflicting[0] // 64) is False


def test_miss_rate_accounting():
    cache = ICache(size_kib=4, line_bytes=64, ways=4)
    cache.touch_range(0x0, 0x3F)
    cache.touch_range(0x0, 0x3F)
    assert cache.accesses == 2
    assert cache.misses == 1
    assert cache.miss_rate == 0.5


def test_degenerate_range():
    cache = ICache()
    # end < start is clamped (a zero-length block still fetches its line).
    assert cache.touch_range(0x1000, 0x900) == 1


def test_rejects_bad_geometry():
    with pytest.raises(ValueError):
        ICache(size_kib=0)
    with pytest.raises(ValueError):
        ICache(size_kib=1, line_bytes=64, ways=3)
