"""Fault tolerance of the shard scheduler.

Injected faults -- a runner that raises, a worker that sleeps past its
deadline, a worker that dies outright, a corrupted disk-cache entry --
must degrade a sweep (retries, then a structured failure in the report)
rather than abort it, and a killed sweep must resume from the disk
cache without re-simulating finished shards.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments import diskcache
from repro.experiments import scheduler as sched
from repro.experiments.designs import baseline_design, pdede_design
from repro.experiments.scheduler import (
    SchedulerConfig,
    ShardTask,
    build_shard_tasks,
    drain_failures,
    run_grid,
)
from repro.frontend.simulator import FrontendSimulator
from repro.workloads.suite import build_suite, get_trace

SCALE = "tiny"
#: Fast retries so fault tests stay sub-second per backoff.
FAST = dict(max_retries=2, backoff_base=0.01, backoff_max=0.05)


@pytest.fixture(autouse=True)
def _clean_session_failures():
    drain_failures()
    yield
    drain_failures()


def _specs():
    return build_suite(SCALE)[:1]


def _reference_stats(design, spec):
    btb, kwargs = design.build()
    simulator = FrontendSimulator(btb, **kwargs)
    return simulator.run(get_trace(spec.name, SCALE), warmup_fraction=0.3)


def test_raising_runner_is_retried_with_backoff():
    design = baseline_design()
    spec = _specs()[0]
    attempts_seen = []

    def flaky(task, attempt):
        if task.shard_index == 1 and attempt <= 2:
            attempts_seen.append(attempt)
            raise RuntimeError("injected")
        return sched._default_runner(task, attempt)

    started = time.perf_counter()
    report = run_grid(
        [design], scale=SCALE, specs=_specs(), runner=flaky,
        config=SchedulerConfig(workers=1, shards=3, **FAST),
    )
    elapsed = time.perf_counter() - started
    assert attempts_seen == [1, 2]
    assert report.counters["retries"] == 2
    assert report.counters["failed"] == 0
    # Backoff actually waited: 0.01 + 0.02 of scheduled delay.
    assert elapsed >= 0.03
    merged = report.merged[(spec.name, design.key)]
    assert merged.to_dict() == _reference_stats(design, spec).to_dict()


def test_exhausted_retries_become_structured_failure():
    design = baseline_design()
    spec = _specs()[0]

    def broken(task, attempt):
        if task.shard_index == 0:
            raise ValueError("permanently broken shard")
        return sched._default_runner(task, attempt)

    report = run_grid(
        [design], scale=SCALE, specs=_specs(), runner=broken,
        config=SchedulerConfig(workers=1, shards=3, **FAST),
    )
    # The sweep completed: the other shards ran, nothing raised out.
    assert report.counters["completed"] == 2
    assert report.counters["failed"] == 1
    assert (spec.name, design.key) not in report.merged
    (failure,) = report.failures
    assert failure.kind == "exception"
    assert failure.attempts == 3  # first try + max_retries
    assert "permanently broken" in failure.message
    assert failure.shard_index == 0
    # The failure is on the session record for the report appendix.
    assert [f.task_id for f in drain_failures()] == [failure.task_id]


@pytest.mark.skipif(not hasattr(os, "fork"), reason="fork not available")
def test_worker_sleeping_past_timeout_is_killed_and_reported():
    design = baseline_design()

    def sleepy(task, attempt):
        if task.shard_index == 2:
            time.sleep(60)
        return sched._default_runner(task, attempt)

    report = run_grid(
        [design], scale=SCALE, specs=_specs(), runner=sleepy,
        config=SchedulerConfig(
            workers=2, shards=3, task_timeout=1.0, max_retries=1,
            backoff_base=0.01,
        ),
    )
    assert report.counters["timeouts"] == 2  # first try + one retry
    assert report.counters["failed"] == 1
    (failure,) = report.failures
    assert failure.kind == "timeout"
    assert "1.0" in failure.message
    # The non-faulty shards still completed.
    assert report.counters["completed"] == 2


@pytest.mark.skipif(not hasattr(os, "fork"), reason="fork not available")
def test_dead_worker_is_respawned_and_task_retried():
    design = baseline_design()
    spec = _specs()[0]

    def dying(task, attempt):
        if task.shard_index == 1 and attempt == 1:
            os._exit(13)
        return sched._default_runner(task, attempt)

    report = run_grid(
        [design], scale=SCALE, specs=_specs(), runner=dying,
        config=SchedulerConfig(workers=2, shards=3, **FAST),
    )
    assert report.counters["crashes"] == 1
    assert report.counters["failed"] == 0
    merged = report.merged[(spec.name, design.key)]
    assert merged.to_dict() == _reference_stats(design, spec).to_dict()


def test_corrupted_disk_cache_entry_is_resimulated(monkeypatch):
    monkeypatch.setenv("REPRO_DISK_CACHE", "1")
    design = baseline_design()
    spec = _specs()[0]
    config = SchedulerConfig(workers=1, shards=3, **FAST)
    report = run_grid([design], scale=SCALE, specs=_specs(), config=config)
    assert report.counters["fresh"] == 3

    # Corrupt one shard's entry on disk, mid-sweep-sequence.
    tasks = build_shard_tasks([design], {}, 0.3, SCALE, 3, specs=_specs())
    victim = tasks[1]
    path = diskcache._result_path(victim.disk_key)
    assert path.exists()
    path.write_text("{ not json")

    executed: list[int] = []

    def counting(task, attempt):
        executed.append(task.shard_index)
        return sched._default_runner(task, attempt)

    report2 = run_grid(
        [design], scale=SCALE, specs=_specs(), config=config, runner=counting
    )
    # Only the corrupted shard was re-simulated; the rest disk-hit.
    assert executed == [victim.shard_index]
    assert report2.counters["disk_hits"] == 2
    assert report2.counters["failed"] == 0
    merged = report2.merged[(spec.name, design.key)]
    assert merged.to_dict() == _reference_stats(design, spec).to_dict()


def test_killed_sweep_resumes_without_resimulating_cached_shards(monkeypatch):
    monkeypatch.setenv("REPRO_DISK_CACHE", "1")
    design = pdede_design()
    spec = _specs()[0]
    config = SchedulerConfig(workers=1, shards=4, **FAST)

    # "Kill" the sweep after two shards: the runner aborts the process
    # loop by raising through max_retries on every later shard.
    class Killed(Exception):
        pass

    def dies_midway(task, attempt):
        if task.shard_index >= 2:
            raise Killed("sweep killed")
        return sched._default_runner(task, attempt)

    first = run_grid(
        [design], scale=SCALE, specs=_specs(), config=config, runner=dies_midway
    )
    assert first.counters["fresh"] == 2 and first.counters["failed"] == 2
    drain_failures()

    executed: list[int] = []

    def counting(task, attempt):
        executed.append(task.shard_index)
        return sched._default_runner(task, attempt)

    resumed = run_grid(
        [design], scale=SCALE, specs=_specs(), config=config, runner=counting
    )
    # Zero fresh re-simulation of already-cached shards: only the two
    # shards the first run never finished execute now.
    assert sorted(executed) == [2, 3]
    assert resumed.counters["disk_hits"] == 2
    assert resumed.counters["fresh"] == 2
    merged = resumed.merged[(spec.name, design.key)]
    assert merged.to_dict() == _reference_stats(design, spec).to_dict()

    # A third run re-simulates nothing at all: the merged group was also
    # stored under the unsharded key, and every shard is cached.
    executed.clear()
    third = run_grid(
        [design], scale=SCALE, specs=_specs(), config=config, runner=counting
    )
    assert executed == []
    assert third.counters["disk_hits"] == 4
    assert third.merged[(spec.name, design.key)].to_dict() == merged.to_dict()


def test_grid_with_multiple_designs_merges_every_group():
    designs = [baseline_design(), pdede_design()]
    specs = _specs()
    report = run_grid(
        designs, scale=SCALE, specs=specs,
        config=SchedulerConfig(workers=1, shards=2, **FAST),
    )
    assert set(report.merged) == {
        (spec.name, design.key) for spec in specs for design in designs
    }
    assert not report.failures


def test_shard_task_ids_and_grouping():
    tasks = build_shard_tasks(
        [baseline_design()], {}, 0.3, SCALE, 3, specs=_specs()
    )
    assert len(tasks) == 3
    assert [t.task_id for t in tasks] == [
        f"{tasks[0].trace_name}:{tasks[0].design_key}:{i + 1}/3" for i in range(3)
    ]
    assert len({t.group for t in tasks}) == 1
    assert all(isinstance(t, ShardTask) for t in tasks)
    assert tasks[0].start == int(tasks[0].n_events * 0.3)
    assert tasks[-1].stop == tasks[0].n_events
