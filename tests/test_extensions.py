"""Tests for the future-work extensions and optional model features."""

import pytest

from repro.branch.address import fold_bits
from repro.branch.types import BranchKind
from repro.btb.baseline import BaselineBTB
from repro.core.config import PDedeConfig, PDedeMode
from repro.core.pdede import PDedeBTB
from repro.frontend.simulator import FrontendSimulator

from conftest import make_event, make_trace

SAME_PAGE_PC = 0x7F00_0040_1000
SAME_PAGE_TARGET = 0x7F00_0040_1F00


def mt_config(**overrides) -> PDedeConfig:
    base = dict(
        btbm_entries=256, btbm_ways=8, page_entries=64, page_ways=4,
        region_entries=4, mode=PDedeMode.MULTI_TARGET,
    )
    base.update(overrides)
    return PDedeConfig(**base)


def _stage_and_invalidate(btb, first_pc, first_target, second_pc, second_target):
    """Train a next-target chain, then force second_pc to miss."""
    btb.update(make_event(pc=first_pc, target=first_target))
    btb.update(make_event(pc=second_pc, target=second_target))
    set_index = btb._index(second_pc)
    way = btb._find_way(set_index, btb._tag(second_pc))
    slot = set_index * btb._ways + way
    btb._valid[slot] = False
    btb._tags[slot] = -1  # flat storage: invalid slots hold the tag sentinel
    btb.lookup(first_pc)  # stages the register


def test_next_target_tag_blocks_mismatched_pc():
    btb = PDedeBTB(mt_config(next_target_tag_bits=4))
    second_pc = SAME_PAGE_TARGET + 0x20
    second_target = (second_pc & ~0xFFF) | 0x800
    _stage_and_invalidate(btb, SAME_PAGE_PC, SAME_PAGE_TARGET, second_pc, second_target)
    # A *different* missing PC (wrong tag) must not be served.
    imposter = second_pc + 0x300
    if fold_bits(imposter >> 1, 4) == fold_bits(second_pc >> 1, 4):
        imposter += 0x40  # dodge an accidental tag collision
    lookup = btb.lookup(imposter)
    assert lookup.provider == "miss"


def test_next_target_tag_allows_matching_pc():
    btb = PDedeBTB(mt_config(next_target_tag_bits=4))
    second_pc = SAME_PAGE_TARGET + 0x20
    second_target = (second_pc & ~0xFFF) | 0x800
    _stage_and_invalidate(btb, SAME_PAGE_PC, SAME_PAGE_TARGET, second_pc, second_target)
    lookup = btb.lookup(second_pc)
    assert lookup.provider == "next-target"
    assert lookup.target == second_target


def test_next_target_tag_requires_multi_target_mode():
    with pytest.raises(ValueError):
        PDedeConfig(mode=PDedeMode.DEFAULT, next_target_tag_bits=4)


def test_next_target_tag_costs_storage():
    plain = mt_config()
    tagged = mt_config(next_target_tag_bits=4)
    assert tagged.btbm_long_entry_bits() == plain.btbm_long_entry_bits() + 4


def test_wrong_path_pollution_degrades_icache():
    """With wrong-path modelling on, flushes drag junk into the ICache."""
    pc = 0x1000
    events = []
    for index in range(400):
        taken = index % 2 == 0  # alternation stresses the predictor early
        target = 0x80_0000 if taken else pc + 4
        events.append((pc, BranchKind.COND_DIRECT, taken, target, 6))
    trace = make_trace(events)
    clean = FrontendSimulator(BaselineBTB(entries=64, ways=4))
    clean_stats = clean.run(trace, warmup_fraction=0.0)
    polluted = FrontendSimulator(
        BaselineBTB(entries=64, ways=4), model_wrong_path=True
    )
    polluted_stats = polluted.run(trace, warmup_fraction=0.0)
    assert polluted.wrong_path_fetches > 0
    # Pollution can only add ICache pressure, never remove it.
    assert polluted.icache.accesses > clean.icache.accesses
    assert polluted_stats.instructions == clean_stats.instructions


def test_wrong_path_off_by_default():
    simulator = FrontendSimulator(BaselineBTB(entries=64, ways=4))
    assert not simulator.model_wrong_path
