"""Tests for the report generator and the parallel suite runner."""

import os

import pytest

from repro.core.config import PDedeMode
from repro.experiments.designs import baseline_design, pdede_design
from repro.experiments.harness import clear_cache, run_suite


def test_parallel_run_suite_matches_serial():
    if not hasattr(os, "fork"):
        pytest.skip("fork not available")
    design = pdede_design(PDedeMode.MULTI_ENTRY)
    baseline = baseline_design()
    clear_cache()
    serial = run_suite(design, baseline, scale="tiny")
    clear_cache()
    parallel = run_suite(design, baseline, scale="tiny", workers=2)
    assert serial.per_app.keys() == parallel.per_app.keys()
    for app in serial.per_app:
        assert serial.per_app[app].cycles == parallel.per_app[app].cycles
        assert serial.per_app[app].btb_misses == parallel.per_app[app].btb_misses
    clear_cache()


def test_report_sections_cover_every_experiment():
    from repro.experiments.report import generate_report

    clear_cache()
    seen = []
    report = generate_report(scale="tiny", progress=lambda eid, s: seen.append(eid))
    ids = [section.experiment_id for section in report.sections]
    assert ids == seen
    for expected in (
        "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
        "tab2", "tab4", "fig10", "fig11a", "fig11b", "fig11c",
        "fig12a", "fig12b", "fig12c", "s5.5", "s5.6", "s5.7", "s5.11",
    ):
        assert expected in ids, expected
    text = report.render()
    assert "# EXPERIMENTS" in text
    assert "*Paper:*" in text
    assert "*Measured:*" in text
    clear_cache()
