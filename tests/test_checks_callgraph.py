"""The interprocedural call graph: registration, edge resolution,
async/thread context propagation, and the boundary/union heuristics."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.checks.callgraph import (
    UNION_CAP,
    Project,
    build_project_from_sources,
    module_name_for,
)


def _project(**sources: str) -> Project:
    return build_project_from_sources(
        {name.replace("_", "."): textwrap.dedent(src) for name, src in sources.items()}
    )


def _targets(project: Project, caller: str) -> set[str]:
    return {
        target
        for site in project.calls.get(caller, ())
        for target in site.targets
    }


# -- registration -----------------------------------------------------------


def test_functions_and_methods_registered_with_qualnames():
    project = _project(
        repro_a="""
        def helper():
            pass

        class Service:
            async def handle(self):
                pass

            def sync_part(self):
                pass
        """
    )
    assert "repro.a.helper" in project.functions
    assert "repro.a.Service.handle" in project.functions
    assert project.functions["repro.a.Service.handle"].is_async
    assert not project.functions["repro.a.Service.sync_part"].is_async
    assert project.functions["repro.a.Service.handle"].class_qualname == "repro.a.Service"
    assert project.async_roots() == ["repro.a.Service.handle"]


def test_syntax_error_recorded_not_raised():
    project = _project(repro_bad="def broken(:\n    pass\n")
    assert project.modules == {}
    assert len(project.syntax_errors) == 1
    assert project.syntax_errors[0].code == "REP000"


def test_module_name_for_derives_from_repro_tail():
    assert module_name_for(Path("src/repro/serve/service.py")) == "repro.serve.service"
    assert module_name_for(Path("src/repro/__init__.py")) == "repro"
    assert module_name_for(Path("scratch/tool.py")) == "tool"


# -- edge resolution --------------------------------------------------------


def test_same_module_name_call_resolves():
    project = _project(
        repro_a="""
        def callee():
            pass

        def caller():
            callee()
        """
    )
    assert _targets(project, "repro.a.caller") == {"repro.a.callee"}


def test_from_import_alias_resolves_cross_module():
    project = _project(
        repro_a="""
        def work():
            pass
        """,
        repro_b="""
        from repro.a import work as w

        def caller():
            w()
        """,
    )
    assert _targets(project, "repro.b.caller") == {"repro.a.work"}


def test_self_method_call_resolves_to_enclosing_class():
    project = _project(
        repro_a="""
        class Service:
            def _step(self):
                pass

            def run_all(self):
                self._step()
        """
    )
    assert _targets(project, "repro.a.Service.run_all") == {"repro.a.Service._step"}


def test_stdlib_alias_attribute_does_not_union():
    project = _project(
        repro_a="""
        import json

        def dumps():
            pass

        def caller():
            json.dumps({})
        """
    )
    # ``json`` is a known alias that is not a project module, so the
    # call must NOT union-resolve into the local ``dumps``.
    assert _targets(project, "repro.a.caller") == set()


def test_union_deny_list_blocks_generic_method_names():
    project = _project(
        repro_a="""
        class Table:
            def update(self, pc):
                pass
        """,
        repro_b="""
        def caller(record):
            record.update({})
        """,
    )
    assert _targets(project, "repro.b.caller") == set()


def test_union_resolution_caps_candidates():
    mods = {
        f"repro_m{i}": f"""
        def rare_name():
            pass
        """
        for i in range(UNION_CAP + 1)
    }
    mods["repro_caller"] = """
    def caller(obj):
        obj.rare_name()
    """
    project = _project(**mods)
    assert _targets(project, "repro.caller.caller") == set()


def test_union_resolution_is_not_confident():
    project = _project(
        repro_a="""
        def rare_name():
            pass

        def caller(obj):
            obj.rare_name()
        """
    )
    (site,) = project.calls["repro.a.caller"]
    assert site.targets == ("repro.a.rare_name",)
    assert not site.confident


# -- context propagation ----------------------------------------------------


def test_sync_to_async_edge_requires_await():
    project = _project(
        repro_a="""
        async def coro():
            pass

        def sync_caller():
            coro()

        async def async_caller():
            await coro()
        """
    )
    # Naming a coroutine from sync code does not run it on any path.
    assert set(project.successors("repro.a.sync_caller")) == set()
    assert set(project.successors("repro.a.async_caller")) == {"repro.a.coro"}
    assert "repro.a.coro" in project.loop_reachable()


def test_executor_boundary_registers_thread_root_without_edge():
    project = _project(
        repro_a="""
        def blocking_work():
            pass

        async def handler(loop):
            await loop.run_in_executor(None, blocking_work)
        """
    )
    assert "repro.a.blocking_work" in project.thread_roots
    assert _targets(project, "repro.a.handler") == set()
    assert "repro.a.blocking_work" not in project.loop_reachable()
    assert "repro.a.blocking_work" in project.thread_reachable()


def test_thread_target_keyword_registers_thread_root():
    project = _project(
        repro_a="""
        import threading

        def worker_main():
            pass

        def start():
            threading.Thread(target=worker_main, daemon=True).start()
        """
    )
    assert "repro.a.worker_main" in project.thread_roots


def test_loop_reachability_crosses_sync_helpers():
    project = _project(
        repro_a="""
        def deep():
            pass

        def shallow():
            deep()

        async def handler():
            shallow()
        """
    )
    reachable = project.loop_reachable()
    assert {"repro.a.handler", "repro.a.shallow", "repro.a.deep"} <= reachable


def test_nested_defs_are_separate_scopes():
    project = _project(
        repro_a="""
        def target():
            pass

        def outer():
            def inner():
                target()
            return inner
        """
    )
    # The call belongs to ``inner``, not ``outer``.
    assert _targets(project, "repro.a.outer") == set()
    assert _targets(project, "repro.a.outer.inner") == {"repro.a.target"}
