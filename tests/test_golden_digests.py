"""Golden-digest regression test: the simulator's exact numbers.

One SHA-256 per design family over the canonical JSON of
``FrontendStats.to_dict()`` for a fixed tiny-scale workload, committed
in ``tests/fixtures/golden_digests.json``.  Any change to simulation
semantics -- intended or not -- flips a digest.

A failure here means one of two things:

* an unintended behaviour change: a real regression, fix the code;
* an intended semantic change: regenerate the fixture **and** bump
  ``repro.experiments.diskcache.RESULT_VERSION`` so persisted disk-cache
  results from the old semantics cannot be served as current ones.

Regenerate with::

    PYTHONPATH=src python tests/test_golden_digests.py --update
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

import pytest

from repro.experiments import design_registry, diskcache, harness
from repro.serve.protocol import stats_payload

FIXTURE = Path(__file__).parent / "fixtures" / "golden_digests.json"

APP = "server_oltp_00"
SCALE = "tiny"
WARMUP = 0.3
FAMILIES = [
    "baseline",
    "pdede-default",
    "pdede-multi-target",
    "pdede-multi-entry",
    "dedup-only",
    "partition-only",
    "shotgun",
    "micro-btb",
    "shadow-baseline",
    "shadow-pdede",
]


def compute_digests() -> dict[str, str]:
    registry = design_registry()
    return {
        family: hashlib.sha256(
            stats_payload(
                harness.run_one(
                    APP, registry[family], warmup_fraction=WARMUP, scale=SCALE
                )
            )
        ).hexdigest()
        for family in FAMILIES
    }


def load_fixture() -> dict:
    with open(FIXTURE) as handle:
        return json.load(handle)


def test_fixture_matches_current_result_version():
    """The fixture must be regenerated whenever result semantics change
    (the bump discipline the disk cache already enforces on itself)."""
    fixture = load_fixture()
    assert fixture["result_version"] == diskcache.RESULT_VERSION, (
        "golden fixture was generated for result_version "
        f"{fixture['result_version']} but the code is at "
        f"{diskcache.RESULT_VERSION}; regenerate with "
        "`PYTHONPATH=src python tests/test_golden_digests.py --update`"
    )
    assert fixture["app"] == APP
    assert fixture["scale"] == SCALE
    assert fixture["warmup"] == WARMUP


def test_simulation_digests_match_golden_fixture():
    fixture = load_fixture()
    digests = compute_digests()
    assert set(digests) == set(fixture["digests"])
    mismatched = {
        family: (digests[family], fixture["digests"][family])
        for family in FAMILIES
        if digests[family] != fixture["digests"][family]
    }
    assert not mismatched, (
        "simulation output changed for "
        f"{sorted(mismatched)}; if intentional, bump "
        "repro.experiments.diskcache.RESULT_VERSION and regenerate the "
        "fixture with `PYTHONPATH=src python tests/test_golden_digests.py "
        f"--update` (got != golden: {mismatched})"
    )


def _update_fixture() -> None:
    FIXTURE.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "result_version": diskcache.RESULT_VERSION,
        "app": APP,
        "scale": SCALE,
        "warmup": WARMUP,
        "digests": compute_digests(),
    }
    with open(FIXTURE, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {FIXTURE}")


if __name__ == "__main__":
    if "--update" in sys.argv:
        _update_fixture()
    else:
        raise SystemExit(pytest.main([__file__, "-v"]))
