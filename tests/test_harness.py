"""Unit tests for the experiment harness and design registry."""

from repro.core.config import PDedeMode
from repro.experiments.designs import (
    baseline_design,
    dedup_only_design,
    partition_only_design,
    pdede_design,
    shotgun_design,
    standard_designs,
    two_level_design,
    with_ittage,
    with_perfect_direction,
    with_returns_in_btb,
)
from repro.experiments.harness import (
    clear_cache,
    format_table,
    percent,
    run_design,
    run_suite,
)
from repro.frontend.params import ICELAKE


def test_design_keys_stable():
    assert baseline_design().key == "baseline-4096"
    assert pdede_design(PDedeMode.MULTI_ENTRY).key == "pdede-multi-entry"
    assert dedup_only_design().key == "dedup-only"
    assert partition_only_design().key == "partition-only"
    assert shotgun_design().key == "shotgun"


def test_design_build_returns_fresh_instances():
    design = baseline_design()
    first, _ = design.build()
    second, _ = design.build()
    assert first is not second


def test_wrappers_extend_key_and_kwargs():
    design = pdede_design(PDedeMode.MULTI_ENTRY)
    perfect = with_perfect_direction(design)
    assert perfect.key.endswith("+perfect-dir")
    assert perfect.simulator_kwargs()["direction"].is_perfect
    ittage = with_ittage(design)
    assert "ittage" in ittage.simulator_kwargs()
    returns = with_returns_in_btb(design)
    assert returns.simulator_kwargs() == {"returns_use_ras": False}


def test_two_level_design_composition():
    hierarchy = two_level_design(256, baseline_design(entries=4096, key="l1"))
    btb, _ = hierarchy.build()
    assert btb.level0.entries == 256
    assert btb.level1.entries == 4096


def test_standard_designs_lineup():
    designs = standard_designs()
    assert list(designs) == [
        "baseline",
        "pdede-default",
        "pdede-multi-target",
        "pdede-multi-entry",
    ]


def test_run_design_caches(monkeypatch):
    clear_cache()
    calls = {"count": 0}
    import repro.experiments.harness as harness_module

    original = harness_module.FrontendSimulator

    class CountingSimulator(original):
        def __init__(self, *args, **kwargs):
            calls["count"] += 1
            super().__init__(*args, **kwargs)

    monkeypatch.setattr(harness_module, "FrontendSimulator", CountingSimulator)
    design = baseline_design(entries=256, key="tiny-baseline")
    first = run_design("server_oltp_00", design, scale="tiny")
    second = run_design("server_oltp_00", design, scale="tiny")
    assert calls["count"] == 1
    assert first is second
    clear_cache()


def test_run_suite_aggregates():
    clear_cache()
    baseline = baseline_design(entries=1024, key="small-base")
    design = pdede_design(PDedeMode.MULTI_ENTRY)
    result = run_suite(design, baseline, scale="tiny")
    assert set(result.per_app) == set(result.baseline_per_app)
    assert len(result.per_app) == 4  # tiny scale: one app per category
    assert result.mean_speedup() > 0
    assert -1.0 <= result.mean_mpki_reduction() <= 1.0
    categories = result.category_mean_speedup()
    assert set(categories) == {"Server", "Browser", "BP", "Personal"}
    clear_cache()


def test_format_table_and_percent():
    table = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "333" in table
    assert percent(0.1234) == "12.3%"
    assert percent(0.5, 0) == "50%"
