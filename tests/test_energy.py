"""Tests for the first-order SRAM energy model."""

import pytest

from repro.core.config import PDedeMode, paper_config
from repro.storage.energy import (
    access_energy,
    baseline_energy,
    leakage_power,
    pdede_energy,
)

_BASELINE_BITS = 4096 * 75


def test_baseline_normalisation():
    assert access_energy(_BASELINE_BITS) == pytest.approx(1.0)
    assert leakage_power(_BASELINE_BITS) == pytest.approx(1.0)


def test_scaling_laws():
    # Dynamic energy ~ sqrt(capacity); leakage ~ capacity.
    assert access_energy(4 * _BASELINE_BITS) == pytest.approx(2.0)
    assert leakage_power(4 * _BASELINE_BITS) == pytest.approx(4.0)


def test_baseline_estimate():
    estimate = baseline_energy(lookups=1000)
    assert estimate.dynamic_energy == pytest.approx(1000.0)
    assert estimate.energy_per_access == pytest.approx(1.0)


def test_pdede_delta_path_saves_energy():
    """Delta-path lookups touch only the (smaller) BTBM: cheaper reads."""
    config = paper_config(PDedeMode.DEFAULT)
    all_delta = pdede_energy(config, lookups=1000, pointer_lookups=0)
    baseline = baseline_energy(lookups=1000)
    assert all_delta.energy_per_access < baseline.energy_per_access


def test_pointer_path_costs_more_than_delta_path():
    config = paper_config(PDedeMode.DEFAULT)
    no_pointers = pdede_energy(config, lookups=1000, pointer_lookups=0)
    all_pointers = pdede_energy(config, lookups=1000, pointer_lookups=1000)
    assert all_pointers.dynamic_energy > no_pointers.dynamic_energy


def test_iso_mpki_config_saves_leakage():
    """Figure 12c's energy angle: the 19KB-class config leaks ~half."""
    small = paper_config(PDedeMode.MULTI_ENTRY).replace(
        btbm_entries=4096, page_entries=512
    )
    estimate = pdede_energy(small, lookups=1, pointer_lookups=0)
    assert estimate.leakage < 0.6


def test_validation():
    with pytest.raises(ValueError):
        access_energy(0)
    with pytest.raises(ValueError):
        leakage_power(-5)
    with pytest.raises(ValueError):
        pdede_energy(paper_config(PDedeMode.DEFAULT), lookups=1, pointer_lookups=2)
