"""Setuptools entry point.

The offline environment lacks the ``wheel`` package, so we keep a classic
``setup.py`` (and no ``[build-system]`` table) to let ``pip install -e .``
fall back to the legacy develop install that works without bdist_wheel.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "PDede: Partitioned, Deduplicated, Delta Branch Target Buffer "
        "(MICRO 2021) reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
