"""Consolidation study: two programs timesharing one core's BTB.

Data-center cores run consolidated workloads; the per-entry PID bit in
every BTB of the paper exists exactly for this.  This example interleaves
two applications in scheduling quanta and shows how the union working
set squeezes the baseline BTB while PDede's doubled effective capacity
absorbs it -- and how the gain varies with the scheduling quantum.

Usage::

    python examples/multiprogramming.py
"""

from __future__ import annotations

from repro import BaselineBTB, FrontendSimulator, PDedeBTB, PDedeMode, paper_config
from repro.workloads import build_suite, generate_trace, interleave_traces
from repro.workloads.mixing import working_set_overlap


def simulate(trace, btb):
    return FrontendSimulator(btb).run(trace, warmup_fraction=0.3)


def main() -> None:
    suite = {spec.name: spec for spec in build_suite("smoke")}
    first = generate_trace(suite["server_oltp_00"])
    second = generate_trace(suite["browser_js_static_analyzer"])
    print(f"programs: {first.name} ({first.static_branch_count():,} static branches), "
          f"{second.name} ({second.static_branch_count():,})")
    print(f"address-space overlap: {working_set_overlap(first, second):.2%}\n")

    print(f"{'workload':44s}{'base MPKI':>10s}{'PDede MPKI':>11s}{'IPC gain':>9s}")
    rows = [("solo: " + first.name, first), ("solo: " + second.name, second)]
    for quantum in (500, 2000, 8000):
        mixed = interleave_traces([first, second], quantum_events=quantum)
        mixed.name = f"mix @ quantum={quantum}"
        rows.append((mixed.name, mixed))
    for label, trace in rows:
        base = simulate(trace, BaselineBTB())
        pdede = simulate(trace, PDedeBTB(paper_config(PDedeMode.MULTI_ENTRY)))
        gain = pdede.speedup_over(base) - 1.0
        print(f"{label:44s}{base.btb_mpki:>10.2f}{pdede.btb_mpki:>11.2f}{gain:>8.1%}")

    print("\nConsolidation roughly sums the miss pressure of the two programs")
    print("(at any realistic quantum), and PDede's advantage grows with it.")


if __name__ == "__main__":
    main()
