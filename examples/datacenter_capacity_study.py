"""Capacity study over the Server category (the paper's intro scenario).

Data-center applications have branch working sets far beyond any
practical BTB.  This example sweeps BTB capacity for both designs over
the Server workloads and answers two questions the paper's evaluation
poses:

1. how does BTB MPKI fall as capacity grows (and where does PDede sit
   on that curve at iso-storage)?  -- the Figure 12b question;
2. how much storage does PDede need to *match* the baseline's MPKI?
   -- the Figure 12c question.

Usage::

    python examples/datacenter_capacity_study.py
"""

from __future__ import annotations

from repro import BaselineBTB, FrontendSimulator, PDedeBTB, PDedeMode, paper_config
from repro.workloads import build_suite, generate_trace


def mean(values):
    values = list(values)
    return sum(values) / len(values)


def main() -> None:
    server_specs = [spec for spec in build_suite("smoke") if spec.category == "Server"]
    print(f"Server workloads: {[spec.name for spec in server_specs]}")
    traces = [generate_trace(spec) for spec in server_specs]

    print("\n-- capacity sweep (baseline) ------------------------------")
    print(f"{'entries':>8s} {'storage':>10s} {'mean MPKI':>10s} {'mean IPC':>9s}")
    baseline_points = {}
    for entries in (2048, 4096, 8192, 16384):
        stats = [
            FrontendSimulator(BaselineBTB(entries=entries)).run(t, warmup_fraction=0.3)
            for t in traces
        ]
        mpki = mean(s.btb_mpki for s in stats)
        ipc = mean(s.ipc for s in stats)
        baseline_points[entries] = mpki
        storage = BaselineBTB(entries=entries).storage_kib()
        print(f"{entries:>8d} {storage:>8.1f}KB {mpki:>10.2f} {ipc:>9.3f}")

    print("\n-- PDede multi-entry at iso-storage ------------------------")
    print(f"{'config':>16s} {'storage':>10s} {'mean MPKI':>10s}")
    pdede_mpki = {}
    for factor in (1, 2):
        config = paper_config(PDedeMode.MULTI_ENTRY).scaled(factor)
        stats = [
            FrontendSimulator(PDedeBTB(config)).run(t, warmup_fraction=0.3)
            for t in traces
        ]
        mpki = mean(s.btb_mpki for s in stats)
        pdede_mpki[factor] = mpki
        print(f"{'ME x' + str(factor):>16s} {config.storage_kib():>8.1f}KB {mpki:>10.2f}")

    print("\n-- iso-MPKI search (Figure 12c style) ----------------------")
    target = baseline_points[4096]
    print(f"baseline (37.5 KiB) MPKI to match: {target:.2f}")
    for btbm_entries, page_entries in ((2048, 256), (4096, 512), (6144, 1024), (8192, 1024)):
        config = paper_config(PDedeMode.MULTI_ENTRY).replace(
            btbm_entries=btbm_entries, page_entries=page_entries
        )
        stats = [
            FrontendSimulator(PDedeBTB(config)).run(t, warmup_fraction=0.3)
            for t in traces
        ]
        mpki = mean(s.btb_mpki for s in stats)
        marker = "  <-- iso-MPKI" if mpki <= target else ""
        print(f"  ME {btbm_entries:5d} entries @ {config.storage_kib():5.1f} KiB: "
              f"MPKI {mpki:6.2f}{marker}")


if __name__ == "__main__":
    main()
