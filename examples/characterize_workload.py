"""Characterise a custom workload the way Section 3 characterises traces.

Shows the full workload-authoring API: define a ``WorkloadSpec`` from
scratch (here, a JIT-heavy browser-style application), generate its
trace, and run every Section 3 analysis on it -- taken fractions
(Fig 3), branch-type mix (Fig 4), region/page locality (Fig 5/6),
target dedup opportunity (Fig 7), and PC-to-target distance (Fig 8).

Usage::

    python examples/characterize_workload.py
"""

from __future__ import annotations

from repro.analysis import (
    branch_type_mix,
    density_stats,
    distance_stats,
    runtime_series,
    taken_stats,
    uniqueness_stats,
)
from repro.workloads import WorkloadSpec, generate_trace

MY_APP = WorkloadSpec(
    name="my_jit_engine",
    category="Browser",
    seed=20260707,
    n_events=60_000,
    n_functions=2400,
    blocks_per_fn_mean=13.0,
    n_regions=5,           # app + JIT code cache + two libraries + glue
    hot_functions_per_phase=520,
    phase_calls=2600,
    ind_call_fraction=0.06,  # virtual dispatch everywhere
    ind_jump_fraction=0.05,  # interpreter switch
    loop_fraction=0.24,
)


def main() -> None:
    print(f"Generating {MY_APP.name} ...")
    trace = generate_trace(MY_APP)
    print(f"  {len(trace):,} events / {trace.instruction_count:,} instructions")

    taken = taken_stats(trace)
    print("\nFigure 3 -- taken fractions")
    print(f"  static : {taken.static_taken_fraction:.1%}")
    print(f"  dynamic: {taken.dynamic_taken_fraction:.1%}")

    mix = branch_type_mix(trace)
    print("\nFigure 4 -- branch type mix (taken, BTB-relevant)")
    for kind, fraction in mix.fractions.items():
        print(f"  {kind:16s} {fraction:6.1%}")

    series = runtime_series(trace)
    print("\nFigure 5 -- runtime locality")
    print(f"  distinct regions touched: {series.distinct_regions()}")
    print(f"  distinct pages touched  : {series.distinct_pages()}")
    print(f"  pages per region        : "
          f"{series.distinct_pages() / series.distinct_regions():.0f}")

    density = density_stats(trace)
    print("\nFigure 6 -- target density")
    print(f"  targets per page  : {density.targets_per_page:.1f}")
    print(f"  targets per region: {density.targets_per_region:.0f}")

    unique = uniqueness_stats(trace)
    print("\nFigure 7 -- dedup opportunity (vs unique branch PCs)")
    print(f"  unique targets: {unique.target_fraction:6.1%}  "
          f"({1 - unique.target_fraction:.0%} deduplicable)")
    print(f"  unique regions: {unique.region_fraction:6.2%}")
    print(f"  unique pages  : {unique.page_fraction:6.1%}")
    print(f"  unique offsets: {unique.offset_fraction:6.1%}")

    distance = distance_stats(trace)
    print("\nFigure 8 -- PC-to-target distance")
    for bucket, fraction in distance.buckets.items():
        print(f"  {bucket:16s} {fraction:6.1%}")
    print("  same-page by kind:")
    for kind, fraction in distance.by_kind.items():
        print(f"    {kind:16s} {fraction:6.1%}")


if __name__ == "__main__":
    main()
