"""Design-space exploration of the PDede micro-architecture knobs.

Sweeps the knobs DESIGN.md calls out for ablation -- BTBM tag width,
Page-BTB capacity, replacement policy, and stale-pointer handling --
on one server workload, reporting MPKI, the wrong-target rate, and the
stale-pointer read rate for each point.  This is the kind of study a
designer adopting PDede would run before freezing an implementation.

Usage::

    python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro import FrontendSimulator, PDedeBTB, PDedeMode, paper_config
from repro.workloads import build_suite, generate_trace


def evaluate(config, trace):
    btb = PDedeBTB(config)
    stats = FrontendSimulator(btb).run(trace, warmup_fraction=0.3)
    taken = max(1, btb.stats.taken_lookups)
    return {
        "mpki": stats.btb_mpki,
        "ipc": stats.ipc,
        "wrong_target_rate": btb.stats.wrong_target / taken,
        "stale_read_rate": btb.stale_pointer_reads / taken,
        "delta_entries": btb.delta_entry_count(),
        "storage_kib": config.storage_kib(),
    }


def show(label, result):
    print(
        f"  {label:28s} mpki={result['mpki']:6.2f} ipc={result['ipc']:.3f} "
        f"wrong-tgt={result['wrong_target_rate']:7.4%} "
        f"stale={result['stale_read_rate']:7.4%} "
        f"({result['storage_kib']:.1f} KiB)"
    )


def main() -> None:
    spec = [s for s in build_suite("smoke") if s.name == "server_microservice_00"][0]
    trace = generate_trace(spec)
    base = paper_config(PDedeMode.MULTI_ENTRY)
    print(f"Workload: {spec.name}, {len(trace):,} events\n")

    print("BTBM tag width (aliasing vs storage):")
    for tag_bits in (8, 10, 12, 14):
        show(f"tag = {tag_bits} bits", evaluate(base.replace(tag_bits=tag_bits), trace))

    print("\nPage-BTB capacity (dedup reach vs storage):")
    for page_entries in (256, 512, 1024, 2048):
        config = base.replace(page_entries=page_entries)
        show(f"page entries = {page_entries}", evaluate(config, trace))

    print("\nReplacement policy (paper uses SRRIP):")
    for policy in ("srrip", "lru", "fifo", "random"):
        show(policy, evaluate(base.replace(replacement=policy), trace))

    print("\nStale-pointer handling (Section 4.4.2 trade-off):")
    show("dangling (paper)", evaluate(base, trace))
    show("eager invalidation", evaluate(base.replace(invalidate_stale_pointers=True), trace))

    print("\nLookup-latency policy (Figure 11b):")
    show("delta bypass (paper)", evaluate(base, trace))
    show("always 2-cycle", evaluate(base.replace(always_two_cycle=True), trace))


if __name__ == "__main__":
    main()
