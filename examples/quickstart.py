"""Quickstart: compare the baseline BTB against PDede on one workload.

Runs a synthetic server application through the frontend timing model
twice -- once with the conventional 4K-entry BTB, once with the
iso-storage PDede multi-entry design -- and prints the paper's headline
metrics: BTB MPKI, IPC, and the relative improvement.

Usage::

    python examples/quickstart.py [app-name]
"""

from __future__ import annotations

import sys

from repro import (
    BaselineBTB,
    FrontendSimulator,
    PDedeBTB,
    PDedeMode,
    paper_config,
)
from repro.workloads import build_suite, generate_trace


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "server_microservice_00"
    suite = {spec.name: spec for spec in build_suite("smoke")}
    if app_name not in suite:
        raise SystemExit(f"unknown app {app_name!r}; options: {sorted(suite)}")
    spec = suite[app_name]
    print(f"Generating trace for {spec.name} ({spec.category}, seed {spec.seed}) ...")
    trace = generate_trace(spec)
    print(f"  {len(trace):,} branch events, {trace.instruction_count:,} instructions")
    print(f"  {trace.static_branch_count():,} static branches, "
          f"{trace.dynamic_taken_fraction():.0%} taken dynamically")

    baseline_btb = BaselineBTB()
    pdede_btb = PDedeBTB(paper_config(PDedeMode.MULTI_ENTRY))
    print(f"\nBaseline BTB : {baseline_btb.storage_kib():.1f} KiB")
    print(f"PDede (ME)   : {pdede_btb.storage_kib():.1f} KiB")

    print("\nSimulating ...")
    baseline = FrontendSimulator(baseline_btb).run(trace, warmup_fraction=0.3)
    pdede = FrontendSimulator(pdede_btb).run(trace, warmup_fraction=0.3)

    print(f"\n{'metric':24s}{'baseline':>12s}{'PDede-ME':>12s}")
    print(f"{'IPC':24s}{baseline.ipc:>12.3f}{pdede.ipc:>12.3f}")
    print(f"{'BTB MPKI':24s}{baseline.btb_mpki:>12.2f}{pdede.btb_mpki:>12.2f}")
    print(f"{'decode resteers':24s}{baseline.decode_resteers:>12d}{pdede.decode_resteers:>12d}")
    print(f"{'frontend-bound cycles':24s}{baseline.frontend_bound_fraction:>11.1%}"
          f"{pdede.frontend_bound_fraction:>11.1%}")
    print(f"\nIPC speedup     : {pdede.speedup_over(baseline) - 1.0:+.1%}")
    print(f"MPKI reduction  : {pdede.mpki_reduction_vs(baseline):.1%}")


if __name__ == "__main__":
    main()
