"""Figure 8: branch-PC-to-target page distance."""

from repro.experiments import run_fig8

from conftest import run_once


def test_fig08_distance(benchmark):
    result = run_once(benchmark, run_fig8)
    print("\n" + result.render())
    # Paper: over 60% of branches have PC and target in the same page.
    assert result.mean_same_page > 0.5
    buckets = result.mean_buckets()
    assert buckets["same page"] == result.mean_same_page
    assert abs(sum(buckets.values()) - 1.0) < 1e-6
