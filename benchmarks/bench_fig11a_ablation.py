"""Figure 11a: IPC contribution of each PDede technique."""

from repro.experiments import run_fig11a

from conftest import run_once


def test_fig11a_ablation(benchmark):
    result = run_once(benchmark, run_fig11a)
    print("\n" + result.render())
    ladder = dict(result.ladder())

    # Paper ladder: dedup-only is the weakest rung (1.6%); partitioning
    # adds the bulk; delta encoding and the two storage-recycling designs
    # add on top (total 14.4% for multi-entry).
    assert ladder["dedup-only"] < ladder["pdede-default"]
    assert ladder["partition-only"] < ladder["pdede-default"] + 0.01
    assert ladder["pdede-default"] <= ladder["pdede-multi-target"] + 0.005
    assert ladder["pdede-multi-target"] <= ladder["pdede-multi-entry"] + 0.005
    assert ladder["pdede-multi-entry"] > 0.02
