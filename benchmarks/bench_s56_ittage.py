"""Section 5.6: adding a 64KB-class ITTAGE indirect predictor."""

from repro.experiments import run_ittage

from conftest import run_once


def test_s56_ittage(benchmark):
    result = run_once(benchmark, run_ittage)
    print("\n" + result.render())
    # Paper: with ITTAGE owning indirects the PDede gain dips slightly
    # (14.4% -> 13.9%) but remains substantial.
    assert result.gains["with ITTAGE"] > 0
    assert result.gains["with ITTAGE"] < result.gains["no ITTAGE"] + 0.02
