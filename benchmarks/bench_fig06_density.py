"""Figure 6: average branch targets per page and per region."""

from repro.experiments import run_fig6

from conftest import run_once


def test_fig06_density(benchmark):
    result = run_once(benchmark, run_fig6)
    print("\n" + result.render())
    # Paper: ~18 targets per page, ~2200 per region.  The shape to hold:
    # pages hold tens, regions hold hundreds-to-thousands.
    assert 5 <= result.mean_targets_per_page <= 40
    assert result.mean_targets_per_region > 20 * result.mean_targets_per_page
