"""Table 2: storage requirements of PDede vs the baseline BTB."""

from repro.experiments import run_table2

from conftest import run_once


def test_tab2_storage(benchmark):
    result = run_once(benchmark, run_table2)
    print("\n" + result.render())
    rows = {row.name: row for row in result.rows}
    baseline = rows["Baseline BTB"]
    assert baseline.total_kib == 37.5
    # Every PDede design stays in the iso-storage class (paper: "as
    # close as possible" to the baseline budget).
    for name, row in rows.items():
        if name != "Baseline BTB":
            assert row.total_kib <= baseline.total_kib * 1.03, name
    # Multi-entry tracks twice the baseline's branches.
    assert rows["PDede (multi_entry)"].components["btbm"] > rows[
        "PDede (default)"
    ].components["btbm"]
