"""Section 5.5: PDede under a perfect branch direction predictor."""

from repro.experiments import run_perfect_direction

from conftest import run_once


def test_s55_perfect_direction(benchmark):
    result = run_once(benchmark, run_perfect_direction)
    print("\n" + result.render())
    # Paper: a perfect direction predictor *raises* PDede's gain
    # (14.4% -> 15.2%): fewer execute flushes leave more frontend-bound
    # cycles for the BTB to win back.
    assert result.gains["perfect predictor"] > 0
    assert result.gains["perfect predictor"] > result.gains["default predictor"] - 0.02
