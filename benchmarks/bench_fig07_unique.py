"""Figure 7: uniqueness of targets / regions / pages / offsets."""

from repro.experiments import run_fig7

from conftest import run_once


def test_fig07_unique(benchmark):
    result = run_once(benchmark, run_fig7)
    print("\n" + result.render())
    means = result.means()
    # Paper: targets 67%, regions 0.07%, pages 5%, offsets 18% of PCs.
    assert 0.5 < means["targets"] < 0.95
    assert means["regions"] < 0.01
    assert 0.02 < means["pages"] < 0.12
    assert 0.05 < means["offsets"] < 0.35
    assert means["regions"] < means["pages"] < means["offsets"] < means["targets"]
