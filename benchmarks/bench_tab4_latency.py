"""Table 4: access latency at 22nm, 1 and 6 RW ports."""

import pytest

from repro.experiments import run_table4

from conftest import run_once


def test_tab4_latency(benchmark):
    result = run_once(benchmark, run_table4)
    print("\n" + result.render())
    entries = result.entries
    # Published points: baseline 0.24/0.72, Page-BTB 0.09/0.16,
    # PDede chain 0.30/0.71 (we match BTBM within the fit tolerance).
    assert entries["Baseline BTB"][1] == pytest.approx(0.24, abs=0.02)
    assert entries["Baseline BTB"][6] == pytest.approx(0.72, abs=0.08)
    assert entries["Page-BTB (PBTB)"][1] == pytest.approx(0.09, abs=0.02)
    # Structural claims: BTBM alone beats the baseline; only the serial
    # chain is slower -- the basis for the 1-extra-cycle model.
    assert entries["BTBM"][1] < entries["Baseline BTB"][1]
    assert entries["PDede (BTBM+PBTB)"][1] > entries["Baseline BTB"][1]
