"""Serve SLO gate: open-loop load test against a real booted service.

Boots a :class:`~repro.serve.service.SimulationService` in-process (the
same path ``python -m repro serve`` runs) and drives it with an
**open-loop** arrival process: one request every ``1/rate`` seconds on
a fixed schedule, regardless of completions -- so a slow service
accumulates queueing latency instead of quietly slowing the generator
down (closed-loop generators hide overload).  The job mix is seeded and
configurable:

* **warm** -- suite (app, design) pairs pre-simulated before the run;
  answered from the harness memo without touching a trace;
* **cold** -- suite pairs *not* pre-warmed; the first hit pays the
  simulation (and becomes warm for any repeat);
* **inline** -- unique-seed ad-hoc :class:`WorkloadSpec` requests that
  always simulate fresh.

Client-side latency percentiles (exact, over true samples) and
throughput land in ``BENCH_serve.json``; the server's own event log is
folded through :mod:`repro.obs.aggregate` into a per-outcome telemetry
report (``BENCH_serve_report.md``) with the batch-wait / queue /
simulate decomposition.  ``--check`` gates the p99 latency and
error-rate budget read from the committed ``BENCH_serve.json`` (the CI
``serve-slo`` job runs this, like ``perf-budget`` runs bench_hotpath)::

    PYTHONPATH=src python benchmarks/bench_serve.py --check
    PYTHONPATH=src python benchmarks/bench_serve.py --record --rate 40
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import sys
import tempfile
import time
from dataclasses import asdict
from pathlib import Path

from repro.obs.aggregate import aggregate, render_markdown
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.serve.config import ServeConfig
from repro.serve.protocol import canonical_json
from repro.serve.service import serve_in_thread
from repro.workloads.spec import WorkloadSpec

#: Default SLO budget, used when BENCH_serve.json does not exist yet.
#: Generous for slow CI machines: the gate is a regression tripwire for
#: "serving got pathologically slower", not a tight perf assertion.
DEFAULT_SLO = {"p99_s": 2.5, "error_rate": 0.01}

#: Designs the generated load cycles through.
DESIGNS = ("baseline", "pdede-default")

_RESULTS_FILE = Path(__file__).with_name("BENCH_serve.json")
_REPORT_FILE = Path(__file__).with_name("BENCH_serve_report.md")


# -- a minimal async HTTP client ---------------------------------------------
#
# stdlib http.client is blocking; the open-loop generator needs real
# concurrency, so speak HTTP/1.1 over asyncio streams directly
# (Connection: close -- one connection per request keeps parsing
# trivial and exercises the service's accept path like real clients).


async def _post(host: str, port: int, path: str, body: bytes) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        raw = await reader.read(-1)
    finally:
        writer.close()
    header_blob, _, payload = raw.partition(b"\r\n\r\n")
    status = int(header_blob.split(None, 2)[1])
    return status, payload


# -- the load generator ------------------------------------------------------


def _build_jobs(seed: int, count: int, mix: tuple[float, float, float], scale: str):
    """The request schedule: ``count`` seeded draws from the job mix."""
    from repro.workloads.suite import build_suite

    rng = random.Random(seed)
    suite = [spec.name for spec in build_suite(scale)]
    split = max(1, len(suite) // 2)
    warm_pairs = [(app, d) for app in suite[:split] for d in DESIGNS]
    cold_pairs = [(app, d) for app in suite[split:] for d in DESIGNS]
    rng.shuffle(cold_pairs)

    warm_w, cold_w, inline_w = mix
    jobs = []
    inline_seq = 0
    for _ in range(count):
        draw = rng.random() * (warm_w + cold_w + inline_w)
        if draw < warm_w:
            app, design = rng.choice(warm_pairs)
            jobs.append(("warm", {"app": app, "design": design}))
        elif draw < warm_w + cold_w and cold_pairs:
            app, design = cold_pairs.pop()
            jobs.append(("cold", {"app": app, "design": design}))
        else:
            inline_seq += 1
            # Small static footprint: the default 3000-function layout
            # costs ~150ms to generate, which saturates the worker pool
            # at any interesting arrival rate.  An ad-hoc probe spec is
            # deliberately tiny (~10ms end to end).
            spec = WorkloadSpec(
                name=f"bench_inline_{inline_seq}", category="Server",
                seed=10_000 + inline_seq, n_events=2000,
                n_functions=200, hot_functions_per_phase=50, phase_calls=200,
            )
            jobs.append(("inline", {"spec": asdict(spec), "design": DESIGNS[0]}))
    return warm_pairs, jobs


async def _drive(
    host: str, port: int, jobs: list, rate: float
) -> tuple[list[dict], float]:
    """Fire the schedule open-loop; returns per-request results + wall s."""

    async def one(kind: str, request: dict) -> dict:
        body = canonical_json(request)
        started = time.monotonic()
        try:
            status, _payload = await _post(host, port, "/v1/simulate", body)
        except OSError as error:
            return {"kind": kind, "status": 0, "error": str(error),
                    "seconds": time.monotonic() - started}
        return {"kind": kind, "status": status,
                "seconds": time.monotonic() - started}

    interval = 1.0 / rate
    epoch = time.monotonic()
    tasks = []
    for index, (kind, request) in enumerate(jobs):
        delay = epoch + index * interval - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(one(kind, request)))
    results = list(await asyncio.gather(*tasks))
    return results, time.monotonic() - epoch


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


# -- the benchmark -----------------------------------------------------------


def run_load(
    rate: float = 25.0,
    duration: float = 8.0,
    mix: tuple[float, float, float] = (0.75, 0.15, 0.10),
    seed: int = 1234,
    scale: str = "tiny",
) -> tuple[dict, dict]:
    """Boot a service, drive it, return (client report, telemetry summary)."""
    from repro.experiments import harness
    from repro.experiments.designs import design_registry

    # Hermetic: never read or pollute the developer's persistent disk
    # cache -- cold jobs must actually be cold, run after run.
    os.environ["REPRO_DISK_CACHE"] = "0"
    os.environ["REPRO_DISK_CACHE_DIR"] = tempfile.mkdtemp(prefix="bench-serve-")
    harness.clear_cache()

    count = max(1, int(rate * duration))
    warm_pairs, jobs = _build_jobs(seed, count, mix, scale)

    registry = MetricsRegistry()
    with use_registry(registry):
        # Pre-warm: the service thread shares this process's harness
        # memo, so direct runs here make the "warm" pairs true memo hits.
        designs = design_registry()
        for app, design_key in warm_pairs:
            harness.run_one(app, designs[design_key], scale=scale)

        config = ServeConfig(
            port=0, batch_window=0.005, queue_limit=256, workers=4,
            default_scale=scale, trace_buffer=65536,
        )
        handle = serve_in_thread(config)
        try:
            results, wall = asyncio.run(
                _drive("127.0.0.1", handle.port, jobs, rate)
            )
        finally:
            handle.shutdown()
        records = handle.service.events.recent()

    seconds = [r["seconds"] for r in results]
    ok = [r for r in results if 200 <= r["status"] < 300]
    errors = [r for r in results if r["status"] >= 500 or r["status"] == 0]
    shed = [r for r in results if r["status"] == 429]
    by_kind: dict[str, int] = {}
    for r in results:
        by_kind[r["kind"]] = by_kind.get(r["kind"], 0) + 1

    hist = registry.get("serve_request_seconds")
    report = {
        "scale": scale,
        "rate_rps": rate,
        "duration_s": duration,
        "requests": len(results),
        "mix": {"warm": mix[0], "cold": mix[1], "inline": mix[2]},
        "by_kind": by_kind,
        "ok": len(ok),
        "errors": len(errors),
        "shed": len(shed),
        "error_rate": len(errors) / len(results) if results else 0.0,
        "throughput_rps": round(len(ok) / wall, 2) if wall else 0.0,
        "p50_s": round(_percentile(seconds, 50), 6),
        "p95_s": round(_percentile(seconds, 95), 6),
        "p99_s": round(_percentile(seconds, 99), 6),
        "mean_s": round(sum(seconds) / len(seconds), 6) if seconds else 0.0,
        "server_p99_s": round(hist.percentile(99), 6) if hist else 0.0,
    }
    summary = aggregate(records, metrics_snapshot={
        "serve_request_seconds": hist.to_dict() if hist else {},
        "serve_batch_size": (
            registry.get("serve_batch_size").to_dict()
            if registry.get("serve_batch_size") else {}
        ),
    })
    return report, summary


def _load_slo() -> dict:
    """The committed budget (falls back to defaults pre-baseline)."""
    if _RESULTS_FILE.exists():
        committed = json.loads(_RESULTS_FILE.read_text()).get("slo")
        if committed:
            return committed
    return dict(DEFAULT_SLO)


def run_gate(
    record: bool = False,
    rate: float = 25.0,
    duration: float = 8.0,
    report_path: Path | None = None,
) -> dict:
    report, summary = run_load(rate=rate, duration=duration)
    slo = _load_slo()

    (report_path or _REPORT_FILE).write_text(
        render_markdown(summary, title="Serve telemetry (bench_serve)")
    )

    assert report["error_rate"] <= slo["error_rate"], (
        f"serve error rate {report['error_rate']:.4f} exceeds the "
        f"{slo['error_rate']:.4f} budget ({report['errors']} errors "
        f"over {report['requests']} requests)"
    )
    assert report["p99_s"] <= slo["p99_s"], (
        f"serve p99 latency {report['p99_s']:.3f}s exceeds the "
        f"{slo['p99_s']:.3f}s budget (p50 {report['p50_s']:.3f}s, "
        f"throughput {report['throughput_rps']} rps)"
    )

    if record:
        history = []
        if _RESULTS_FILE.exists():
            history = json.loads(_RESULTS_FILE.read_text()).get("history", [])
        history.append(report)
        _RESULTS_FILE.write_text(
            json.dumps({"slo": slo, "history": history}, indent=2) + "\n"
        )
    return report


def test_serve_slo_gate():
    report = run_gate(record=False, rate=15.0, duration=4.0)
    print(
        f"\nserve gate: p99 {report['p99_s'] * 1000:.1f}ms, "
        f"{report['throughput_rps']} rps, "
        f"error rate {report['error_rate']:.4f}"
    )


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="enforce the SLO budget (CI serve-slo job)")
    parser.add_argument("--record", action="store_true",
                        help="append this run to BENCH_serve.json")
    parser.add_argument("--rate", type=float, default=25.0,
                        help="open-loop arrival rate, requests/second")
    parser.add_argument("--duration", type=float, default=8.0,
                        help="generation window in seconds")
    parser.add_argument("--report-out", type=Path, default=None,
                        help="telemetry report path (default BENCH_serve_report.md)")
    args = parser.parse_args(argv)

    report = run_gate(
        record=args.record, rate=args.rate, duration=args.duration,
        report_path=args.report_out,
    )
    print(json.dumps(report, indent=2))
    slo = _load_slo()
    print(
        f"serve gate PASSED: p99 {report['p99_s']:.3f}s <= {slo['p99_s']:.3f}s, "
        f"error rate {report['error_rate']:.4f} <= {slo['error_rate']:.4f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
