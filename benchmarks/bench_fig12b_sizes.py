"""Figure 12b: iso-storage PDede gains at larger BTB capacities."""

from repro.experiments import run_fig12b

from conftest import run_once


def test_fig12b_sizes(benchmark):
    result = run_once(benchmark, run_fig12b)
    print("\n" + result.render())
    gains = result.gains_by_size
    # Paper: gains persist at 8K/16K entries but shrink as working sets
    # start to fit (14.4% at 4K down to 3.3% at 16K).
    assert gains[4096] > 0
    assert gains[16384] > -0.01
    assert gains[16384] < gains[4096]
    # Iso-storage discipline at every point.
    for entries, (base_kib, pdede_kib) in result.storages_kib.items():
        assert pdede_kib <= base_kib * 1.05
