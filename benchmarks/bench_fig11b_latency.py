"""Figure 11b: two-cycle-lookup cost and fetch-queue-size sensitivity."""

from repro.experiments import run_fig11b

from conftest import run_once


def test_fig11b_latency(benchmark):
    result = run_once(benchmark, run_fig11b)
    print("\n" + result.render())
    # Paper: stalling every taken branch for 2 cycles lowers the gain
    # (14.4% -> 13.4%) but does not erase it.
    assert result.always_two_cycle_gain < result.default_gain + 0.003
    assert result.always_two_cycle_gain > result.default_gain - 0.05
    assert result.always_two_cycle_gain > 0
    # Paper: gains grow with fetch-queue depth (12.7% @ small ->
    # 15.4% @ 128 entries).
    gains = result.fetch_queue_gains
    assert gains[128] >= gains[32] - 0.005
