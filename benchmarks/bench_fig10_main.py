"""Figure 10: the headline IPC / MPKI comparison across PDede designs."""

from repro.experiments import run_fig10

from conftest import run_once


def test_fig10_main(benchmark):
    result = run_once(benchmark, run_fig10)
    print("\n" + result.render())
    speedups = result.mean_speedups()
    reductions = result.mean_mpki_reductions()

    # Paper shape: Default < Multi-Target < Multi-Entry, all positive.
    assert 1.0 < speedups["pdede-default"] <= speedups["pdede-multi-target"] + 0.005
    assert speedups["pdede-multi-target"] <= speedups["pdede-multi-entry"] + 0.005
    assert reductions["pdede-multi-entry"] > reductions["pdede-default"] - 0.01

    # Substantial MPKI reduction for the best design (paper: 54.7%).
    assert reductions["pdede-multi-entry"] > 0.25

    # Figure 10c: a wide per-app spread with every app gaining (paper:
    # 3%..76%); at reduced scale we accept small noise at the low end.
    curve = result.per_app_gain_curve()
    assert curve[-1][1] > 0.05
    assert curve[0][1] > -0.02

    # The 50%-larger baseline lands in the same gain class as
    # PDede-Default, as the paper's text observes.
    larger = result.results["baseline-150pct"].mean_speedup()
    default = result.results["pdede-default"].mean_speedup()
    assert abs(larger - default) < 0.05
