"""Figure 3: static/dynamic taken-branch fractions."""

from repro.experiments import run_fig3

from conftest import run_once


def test_fig03_taken(benchmark):
    result = run_once(benchmark, run_fig3)
    print("\n" + result.render())
    # Paper: branches are taken more than 50% of the time, both ways.
    assert result.mean_static > 0.5
    assert result.mean_dynamic > 0.5
