"""Section 5.10 closing claim: PDede complements BTB prefetching."""

from repro.experiments import run_prefetch_complement

from conftest import run_once


def test_prefetch_complement(benchmark):
    result = run_once(benchmark, run_prefetch_complement)
    print("\n" + result.render())
    gains = result.gains
    # PDede alone must beat prefetching alone (the paper's iso-storage
    # argument), and adding the prefetcher on top must not hurt PDede.
    assert gains["pdede-me"] > gains["baseline + prefetch"] - 0.02
    assert gains["pdede-me + prefetch"] > gains["pdede-me"] - 0.02
