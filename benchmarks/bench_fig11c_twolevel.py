"""Figure 11c: two-level BTBs with PDede re-architecting the L1."""

from repro.experiments import run_fig11c

from conftest import run_once


def test_fig11c_twolevel(benchmark):
    result = run_once(benchmark, run_fig11c)
    print("\n" + result.render())
    # Paper: PDede-ifying only the L1 still yields significant gains at
    # every L0 size.
    for entries, gain in result.gains_by_l0.items():
        assert gain > 0.0, f"no gain at L0={entries}"
