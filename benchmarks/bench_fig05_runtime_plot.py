"""Figure 5: runtime region/page/offset series for a browser app."""

from repro.experiments import run_fig5

from conftest import run_once


def test_fig05_runtime_plot(benchmark):
    result = run_once(benchmark, run_fig5, app="browser_html5_render")
    print("\n" + result.render())
    series = result.series
    # Paper: few regions, ~100x more pages, with locality inside regions.
    assert series.distinct_regions() <= 16
    assert series.distinct_pages() > series.distinct_regions() * 5
