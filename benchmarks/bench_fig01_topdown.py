"""Figure 1: Top-Down frontend stall breakdown across the suite."""

from repro.experiments import run_fig1

from conftest import run_once


def test_fig01_topdown(benchmark):
    result = run_once(benchmark, run_fig1)
    print("\n" + result.render())
    # Paper: the suite is frontend-bound, with BTB resteers a major
    # contributor to frontend stalls.
    assert result.report.mean_frontend_bound > 0.15
    assert result.report.mean_btb_resteer_share > 0.1
