"""Benchmark configuration.

Benchmarks default to the ``smoke`` suite scale (8 applications,
60K-event traces) so a full ``pytest benchmarks/ --benchmark-only`` run
finishes in minutes; export ``REPRO_SCALE=default`` or ``=full`` for the
larger reproductions.  Simulation results are memoised process-wide, so
benchmark files that share (app, design) pairs do not re-simulate.
"""

from __future__ import annotations

import os

os.environ.setdefault("REPRO_SCALE", "smoke")


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
