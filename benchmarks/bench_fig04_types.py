"""Figure 4: branch-type mix among taken branches."""

from repro.experiments import run_fig4

from conftest import run_once


def test_fig04_types(benchmark):
    result = run_once(benchmark, run_fig4)
    print("\n" + result.render())
    means = result.mean_fractions()
    # Paper: skewed towards conditional + unconditional direct, but all
    # types occur frequently enough to matter.
    assert means["COND_DIRECT"] > 0.4
    assert means.get("CALL_INDIRECT", 0) + means.get("UNCOND_INDIRECT", 0) > 0.01
    assert abs(sum(means.values()) - 1.0) < 1e-6
