"""Section 5.7: storing return targets in the BTB instead of a RAS."""

from repro.experiments import run_returns_in_btb

from conftest import run_once


def test_s57_returns_in_btb(benchmark):
    result = run_once(benchmark, run_returns_in_btb)
    print("\n" + result.render())
    # Paper: PDede still gains 13.7% when returns live in the BTB
    # (slightly below the RAS configuration's 14.4%).
    assert result.gains["returns in BTB"] > 0
