"""Figure 12c: smallest PDede configuration that is iso-MPKI with baseline."""

from repro.experiments import run_fig12c

from conftest import run_once


def test_fig12c_isompki(benchmark):
    result = run_once(benchmark, run_fig12c)
    print("\n" + result.render())
    # Paper: iso-MPKI at ~19KB, a ~49% storage saving.  Shape: a PDede
    # configuration meaningfully below 37.5KB matches baseline MPKI.
    assert result.baseline_mpki > 0
    assert result.chosen_kib < 37.5
    assert result.saving_fraction > 0.15
