"""Sanitizer overhead: the armed checker must stay under 10%.

The sanitizer's contract mirrors the obs layer's: disabled (the
default), ``sanitizer_step`` is a global load plus a ``None`` test --
nothing the hot loop can feel.  Armed at the default interval, full
invariant sweeps amortise to a bounded tax.  This benchmark holds both
claims on a smoke-scale PDede simulation: disabled overhead within
noise of the seed, armed overhead under ``MAX_OVERHEAD``.
"""

from __future__ import annotations

import time

from repro.checks.sanitizer import DEFAULT_CHECK_INTERVAL, Sanitizer, use_sanitizer
from repro.experiments.designs import pdede_design
from repro.frontend.simulator import FrontendSimulator
from repro.workloads.suite import get_trace

from conftest import run_once

#: Maximum tolerated wall-time regression with the sanitizer armed at
#: its default interval.
MAX_OVERHEAD = 0.10


def _simulate(trace, design):
    btb, kwargs = design.build()
    return FrontendSimulator(btb, **kwargs).run(trace, warmup_fraction=0.3)


def _best_of(n, trace, design):
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        _simulate(trace, design)
        best = min(best, time.perf_counter() - start)
    return best


def test_sanitizer_overhead_under_10_percent(benchmark):
    design = pdede_design()
    trace = get_trace("server_oltp_00")  # smoke scale via conftest
    _simulate(trace, design)  # warm the trace cache and code paths

    disabled = _best_of(3, trace, design)
    with use_sanitizer(Sanitizer(interval=DEFAULT_CHECK_INTERVAL)) as sanitizer:
        armed = _best_of(3, trace, design)
        checks = sanitizer.snapshot()["sanitizer_checks_total"]

    overhead = armed / disabled - 1.0
    print(
        f"\nsanitizer overhead: disabled {disabled:.3f}s, armed {armed:.3f}s "
        f"({overhead:+.2%}, budget {MAX_OVERHEAD:.0%}, {checks} sweeps "
        f"at interval {DEFAULT_CHECK_INTERVAL})"
    )
    assert checks > 0, "interval too large: the sweep never ran"
    assert overhead < MAX_OVERHEAD, (
        f"sanitizer overhead {overhead:.2%} exceeds {MAX_OVERHEAD:.0%}"
    )
    run_once(benchmark, _simulate, trace, design)
