"""Figure 12a: comparison against a Shotgun-like BTB."""

from repro.experiments import run_fig12a

from conftest import run_once


def test_fig12a_shotgun(benchmark):
    result = run_once(benchmark, run_fig12a)
    print("\n" + result.render())
    # Paper: Shotgun buys ~0.8% at iso-storage and ~2.7% at 45KB --
    # far below PDede.  The shape to hold: PDede > Shotgun variants,
    # and more Shotgun storage helps Shotgun.
    assert result.pdede_gain > result.shotgun_iso_gain
    assert result.pdede_gain > result.shotgun_45k_gain
    assert result.shotgun_45k_gain >= result.shotgun_iso_gain - 0.01
