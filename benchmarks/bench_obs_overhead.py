"""Observability overhead: instrumentation must stay under 5%.

The obs layer's contract is "always available, never in the way": the
simulator hot loop carries no per-event instrumentation (structures
publish aggregate snapshots once per run), and the disabled-mode null
objects make every publish a no-op.  This benchmark holds the layer to
that contract on a smoke-scale simulation, both disabled (the default
state every other benchmark runs in) and fully enabled.
"""

from __future__ import annotations

import time

from repro.experiments.designs import pdede_design
from repro.frontend.simulator import FrontendSimulator
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.tracing import Tracer, use_tracer
from repro.workloads.suite import get_trace

from conftest import run_once

#: Maximum tolerated wall-time regression with the obs layer fully on.
MAX_OVERHEAD = 0.05


def _simulate(trace, design):
    btb, kwargs = design.build()
    return FrontendSimulator(btb, **kwargs).run(trace, warmup_fraction=0.3)


def _best_of(n, trace, design):
    best = float("inf")
    for _ in range(n):
        start = time.perf_counter()
        _simulate(trace, design)
        best = min(best, time.perf_counter() - start)
    return best


def test_obs_overhead_under_5_percent(benchmark):
    design = pdede_design()
    trace = get_trace("server_oltp_00")  # smoke scale via conftest
    _simulate(trace, design)  # warm the trace cache and code paths

    disabled = _best_of(3, trace, design)
    with use_registry(MetricsRegistry()), use_tracer(Tracer()):
        enabled = _best_of(3, trace, design)

    overhead = enabled / disabled - 1.0
    print(
        f"\nobs overhead: disabled {disabled:.3f}s, enabled {enabled:.3f}s "
        f"({overhead:+.2%}, budget {MAX_OVERHEAD:.0%})"
    )
    assert overhead < MAX_OVERHEAD, (
        f"instrumentation overhead {overhead:.2%} exceeds {MAX_OVERHEAD:.0%}"
    )
    run_once(benchmark, _simulate, trace, design)
