"""Hot-path engine gate: decoded-trace speedup and bit-exactness.

The decoded-trace engines exist only if they are (a) fast and (b)
invisible in the results.  This benchmark holds both,
machine-independently, by racing the live engine tiers against the
frozen seed engine (:mod:`repro.frontend.seedref`) in the same process:

* every standard design's :class:`FrontendStats` must be byte-identical
  between each tier and the seed engine (``to_dict()`` equality,
  nothing fuzzy);
* the columnar vector engine must beat the seed engine by
  ``MIN_SPEEDUP`` on its best standard design and by
  ``SWEEP_MIN_SPEEDUP`` across the whole sweep.

The race attributes the shared one-time work -- trace decode plus the
memoised TAGE direction replay -- to an explicit *prepare* step, timed
and reported separately (``prepare_seconds``).  Every design and every
engine tier reuses exactly that state, so per-design times compare
engine loops, not cache warmth.  The remaining per-configuration memos
(ICache replay, RAS replay, column extraction) are paid inside the
*fast* tier, which runs before the vector tier; they are small and the
bias is against the newer engine.

Speedup ceiling, for the record: the vector engine replays every
resteer boundary (BTB allocation or misprediction) through the real
scalar ``observe_fast``, because allocations perturb later lookups.
Boundary counts are intrinsic -- they are the capacity misses the paper
itself studies -- so the per-design speedup saturates around 5-8x at
suite scales rather than growing with trace length.

``BENCH_hotpath.json`` checks in the measured trajectory (events/sec
per engine) for trend tracking; the gate itself is the live ratio, so
a slower CI machine cannot produce a false failure.

Run directly (CI perf-budget job) or under pytest-benchmark::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --check
    PYTHONPATH=src python benchmarks/bench_hotpath.py --record
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.experiments.designs import standard_designs
from repro.frontend.seedref import SeedFrontendSimulator, seed_counterpart
from repro.frontend.simulator import FrontendSimulator
from repro.obs.metrics import get_registry
from repro.workloads.suite import current_scale, get_trace

#: Required speedup of the vector engine over the seed engine on its
#: best standard design, measured after the shared prepare step.
#: Raised from the original 2.0 end-to-end budget; measured peaks are
#: 5-7x across suite apps, so 4.0 leaves honest CI headroom.
MIN_SPEEDUP = 4.0

#: Required vector-engine speedup across the *whole* standard sweep
#: (all designs, prepare excluded).  Measured ~4x at smoke scale.
SWEEP_MIN_SPEEDUP = 3.0

#: App the gate races on (hot-set and branch mix representative; any
#: suite member works -- results must match on all of them regardless).
GATE_APP = "server_oltp_00"

#: Engine tiers raced against the seed referee, in run order (the fast
#: tier goes first and absorbs the small per-config memo warmup).
TIERS = ("fast", "vector")

_RESULTS_FILE = Path(__file__).with_name("BENCH_hotpath.json")


def _measure(run) -> tuple[float, object]:
    start = time.perf_counter()
    stats = run()
    return time.perf_counter() - start, stats


def prepare(trace) -> float:
    """Pay the shared one-time costs; returns the seconds spent.

    Decode and the TAGE direction replay are memoised on the trace and
    reused by every design and engine tier, so they are a *prepare*
    cost, not a per-design cost.  (The seed engine never touches them;
    excluding them from its times would only flatter the new engines.)
    """
    start = time.perf_counter()
    decoded = trace.decoded()
    decoded.direction_array("tage-default")
    return time.perf_counter() - start


def race(trace) -> dict:
    """Race the engine tiers against the seed referee on every design."""
    designs = standard_designs()
    prepare_seconds = prepare(trace)
    per_design: dict[str, dict] = {key: {} for key in designs}
    tier_seconds = dict.fromkeys(TIERS, 0.0)
    engines: dict[str, dict[str, str]] = {tier: {} for tier in TIERS}
    mismatches = []

    for tier in TIERS:
        for key, design in designs.items():
            btb, kwargs = design.build()
            simulator = FrontendSimulator(btb, engine=tier, **kwargs)
            elapsed, stats = _measure(
                lambda s=simulator: s.run(trace, warmup_fraction=0.3)
            )
            tier_seconds[tier] += elapsed
            per_design[key][tier] = elapsed
            engines[tier][key] = simulator.last_engine
            per_design[key].setdefault("stats", {})[tier] = stats.to_dict()

    seed_seconds = 0.0
    for key, design in designs.items():
        seed_btb, seed_kwargs = design.build()
        reference = SeedFrontendSimulator(seed_counterpart(seed_btb), **seed_kwargs)
        elapsed, seed_stats = _measure(
            lambda s=reference: s.run(trace, warmup_fraction=0.3)
        )
        seed_seconds += elapsed
        per_design[key]["seed"] = elapsed
        seed_dict = seed_stats.to_dict()
        for tier in TIERS:
            tier_dict = per_design[key]["stats"][tier]
            if tier_dict != seed_dict:
                diffs = {
                    name: (value, seed_dict[name])
                    for name, value in tier_dict.items()
                    if value != seed_dict[name]
                }
                mismatches.append((key, tier, diffs))
        del per_design[key]["stats"]

    events = len(trace)
    design_rows = {
        key: {
            "seed_seconds": round(row["seed"], 4),
            **{
                f"{tier}_seconds": round(row[tier], 4)
                for tier in TIERS
            },
            **{
                f"{tier}_speedup": round(row["seed"] / row[tier], 2)
                for tier in TIERS
                if row[tier]
            },
        }
        for key, row in per_design.items()
    }
    peak_key = max(per_design, key=lambda k: per_design[k]["seed"] / per_design[k]["vector"])
    report = {
        "scale": current_scale(),
        "app": trace.name,
        "designs": sorted(designs),
        "engines": engines,
        "events_simulated": events * len(designs),
        "prepare_seconds": round(prepare_seconds, 4),
        "seed_events_per_sec": round(events * len(designs) / seed_seconds)
        if seed_seconds
        else 0,
        "per_design": design_rows,
        "mismatches": mismatches,
        "peak_design": peak_key,
        "peak_vector_speedup": design_rows[peak_key]["vector_speedup"],
    }
    for tier in TIERS:
        seconds = tier_seconds[tier]
        report[f"{tier}_events_per_sec"] = (
            round(events * len(designs) / seconds) if seconds else 0
        )
        report[f"{tier}_sweep_speedup"] = (
            round(seed_seconds / seconds, 3) if seconds else float("inf")
        )
    # Back-compat alias: the recorded trajectory's original field tracked
    # the best engine's sweep-level speedup.
    report["speedup"] = report["vector_sweep_speedup"]
    return report


def run_gate(record: bool = False) -> dict:
    trace = get_trace(GATE_APP)
    report = race(trace)
    gauge = get_registry().gauge(
        "bench_hotpath_speedup", "decoded-trace engine speedup over the seed engine"
    )
    gauge.set(report["vector_sweep_speedup"], scale=report["scale"], tier="vector")
    gauge.set(report["fast_sweep_speedup"], scale=report["scale"], tier="fast")

    assert not report["mismatches"], (
        "decoded-trace engine diverged from the seed engine: "
        f"{report['mismatches']}"
    )
    for tier in TIERS:
        for key, engine in report["engines"][tier].items():
            assert engine == tier, (
                f"{key} requested the {tier} engine but ran {engine}"
            )
    assert report["peak_vector_speedup"] >= MIN_SPEEDUP, (
        f"peak vector speedup {report['peak_vector_speedup']:.2f}x "
        f"({report['peak_design']}) is below the {MIN_SPEEDUP:.1f}x budget"
    )
    assert report["vector_sweep_speedup"] >= SWEEP_MIN_SPEEDUP, (
        f"vector sweep speedup {report['vector_sweep_speedup']:.2f}x is below "
        f"the {SWEEP_MIN_SPEEDUP:.1f}x budget "
        f"({report['vector_events_per_sec']} vs "
        f"{report['seed_events_per_sec']} events/s)"
    )

    if record:
        history = []
        if _RESULTS_FILE.exists():
            history = json.loads(_RESULTS_FILE.read_text()).get("history", [])
        history.append({k: v for k, v in report.items() if k != "mismatches"})
        _RESULTS_FILE.write_text(
            json.dumps(
                {
                    "min_speedup": MIN_SPEEDUP,
                    "sweep_min_speedup": SWEEP_MIN_SPEEDUP,
                    "history": history,
                },
                indent=2,
            )
            + "\n"
        )
    return report


def test_hotpath_speedup_and_equivalence(benchmark):
    from conftest import run_once

    report = run_gate(record=False)
    print(
        f"\nhot-path gate: vector {report['vector_sweep_speedup']:.2f}x / "
        f"fast {report['fast_sweep_speedup']:.2f}x over seed sweep, peak "
        f"{report['peak_vector_speedup']:.2f}x on {report['peak_design']} "
        f"(budgets {SWEEP_MIN_SPEEDUP:.1f}x sweep, {MIN_SPEEDUP:.1f}x peak) "
        f"at scale={report['scale']}"
    )
    trace = get_trace(GATE_APP)
    design = standard_designs()["pdede-default"]

    def simulate():
        btb, kwargs = design.build()
        return FrontendSimulator(btb, **kwargs).run(trace, warmup_fraction=0.3)

    run_once(benchmark, simulate)


def main(argv: list[str]) -> int:
    record = "--record" in argv
    report = run_gate(record=record)
    print(json.dumps({k: v for k, v in report.items() if k != "mismatches"}, indent=2))
    print(
        f"hot-path gate PASSED: vector sweep "
        f"{report['vector_sweep_speedup']:.2f}x >= {SWEEP_MIN_SPEEDUP:.1f}x, "
        f"peak {report['peak_vector_speedup']:.2f}x >= {MIN_SPEEDUP:.1f}x, "
        "stats bit-identical across engines"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
