"""Hot-path engine gate: decoded-trace speedup and bit-exactness.

The decoded-trace engine (``FrontendSimulator._run_fast``) exists only
if it is (a) fast and (b) invisible in the results.  This benchmark
holds both, machine-independently, by racing the live engine against
the frozen seed engine (:mod:`repro.frontend.seedref`) in the same
process:

* every standard design's :class:`FrontendStats` must be byte-identical
  between the two engines (``to_dict()`` equality, nothing fuzzy);
* the end-to-end speedup across the standard design sweep -- including
  the one-time trace decode the fast engine pays -- must be at least
  ``MIN_SPEEDUP``.

``BENCH_hotpath.json`` checks in the measured trajectory (events/sec
per engine) for trend tracking; the gate itself is the live ratio, so
a slower CI machine cannot produce a false failure.

Run directly (CI perf-budget job) or under pytest-benchmark::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --check
    PYTHONPATH=src python benchmarks/bench_hotpath.py --record
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.experiments.designs import standard_designs
from repro.frontend.seedref import SeedFrontendSimulator, seed_counterpart
from repro.frontend.simulator import FrontendSimulator
from repro.obs.metrics import get_registry
from repro.workloads.suite import current_scale, get_trace

#: Required end-to-end speedup of the decoded-trace engine over the
#: seed engine across the standard design sweep (ISSUE acceptance: 2x).
MIN_SPEEDUP = 2.0

#: App the gate races on (hot-set and branch mix representative; any
#: suite member works -- results must match on all of them regardless).
GATE_APP = "server_oltp_00"

_RESULTS_FILE = Path(__file__).with_name("BENCH_hotpath.json")


def _measure(run) -> tuple[float, object]:
    start = time.perf_counter()
    stats = run()
    return time.perf_counter() - start, stats


def race(trace) -> dict:
    """Race both engines over the standard designs; returns the report.

    The fast engine goes first *from a cold trace* so its wall time
    includes the shared one-time decode -- the honest end-to-end cost a
    fresh process pays.
    """
    designs = standard_designs()
    fast_seconds = 0.0
    seed_seconds = 0.0
    mismatches = []
    engines = {}
    for key, design in designs.items():
        btb, kwargs = design.build()
        simulator = FrontendSimulator(btb, **kwargs)
        elapsed, stats = _measure(
            lambda s=simulator: s.run(trace, warmup_fraction=0.3)
        )
        fast_seconds += elapsed
        engines[key] = simulator.last_engine

        seed_btb, seed_kwargs = design.build()
        reference = SeedFrontendSimulator(seed_counterpart(seed_btb), **seed_kwargs)
        elapsed, seed_stats = _measure(
            lambda s=reference: s.run(trace, warmup_fraction=0.3)
        )
        seed_seconds += elapsed

        if stats.to_dict() != seed_stats.to_dict():
            diffs = {
                name: (value, seed_stats.to_dict()[name])
                for name, value in stats.to_dict().items()
                if value != seed_stats.to_dict()[name]
            }
            mismatches.append((key, diffs))

    events = len(trace) * len(designs)
    speedup = seed_seconds / fast_seconds if fast_seconds else float("inf")
    return {
        "scale": current_scale(),
        "app": trace.name,
        "designs": sorted(designs),
        "engines": engines,
        "events_simulated": events,
        "fast_events_per_sec": round(events / fast_seconds) if fast_seconds else 0,
        "seed_events_per_sec": round(events / seed_seconds) if seed_seconds else 0,
        "speedup": round(speedup, 3),
        "mismatches": mismatches,
    }


def run_gate(record: bool = False) -> dict:
    trace = get_trace(GATE_APP)
    report = race(trace)
    get_registry().gauge(
        "bench_hotpath_speedup", "decoded-trace engine speedup over the seed engine"
    ).set(report["speedup"], scale=report["scale"])

    assert not report["mismatches"], (
        "decoded-trace engine diverged from the seed engine: "
        f"{report['mismatches']}"
    )
    for key, engine in report["engines"].items():
        assert engine == "fast", f"{key} fell back to the {engine} engine"
    assert report["speedup"] >= MIN_SPEEDUP, (
        f"hot-path speedup {report['speedup']:.2f}x is below the "
        f"{MIN_SPEEDUP:.1f}x budget "
        f"({report['fast_events_per_sec']} vs {report['seed_events_per_sec']} events/s)"
    )

    if record:
        history = []
        if _RESULTS_FILE.exists():
            history = json.loads(_RESULTS_FILE.read_text()).get("history", [])
        history.append({k: v for k, v in report.items() if k != "mismatches"})
        _RESULTS_FILE.write_text(
            json.dumps({"min_speedup": MIN_SPEEDUP, "history": history}, indent=2)
            + "\n"
        )
    return report


def test_hotpath_speedup_and_equivalence(benchmark):
    from conftest import run_once

    report = run_gate(record=False)
    print(
        f"\nhot-path gate: {report['speedup']:.2f}x over seed engine "
        f"(budget {MIN_SPEEDUP:.1f}x) at scale={report['scale']}, "
        f"{report['fast_events_per_sec']}/s vs {report['seed_events_per_sec']}/s"
    )
    trace = get_trace(GATE_APP)
    design = standard_designs()["pdede-default"]

    def simulate():
        btb, kwargs = design.build()
        return FrontendSimulator(btb, **kwargs).run(trace, warmup_fraction=0.3)

    run_once(benchmark, simulate)


def main(argv: list[str]) -> int:
    record = "--record" in argv
    report = run_gate(record=record)
    print(json.dumps({k: v for k, v in report.items() if k != "mismatches"}, indent=2))
    print(
        f"hot-path gate PASSED: {report['speedup']:.2f}x >= {MIN_SPEEDUP:.1f}x, "
        "stats bit-identical across engines"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
