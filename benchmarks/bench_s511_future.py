"""Section 5.11: PDede on wider/deeper future pipelines."""

from repro.experiments import run_future_pipelines

from conftest import run_once


def test_s511_future_pipelines(benchmark):
    result = run_once(benchmark, run_future_pipelines)
    print("\n" + result.render())
    gains = result.gains
    # Paper: gains grow with pipeline scale (14.4% -> 16.8% -> 20.1%):
    # deeper pipelines pay more per resteer.
    assert gains["1.5x pipeline"] > gains["1.0x pipeline"] - 0.005
    assert gains["2.0x pipeline"] > gains["1.0x pipeline"]
