"""DESIGN.md extra ablations: replacement policy, stale pointers, tags,
the rejected multi-tag alternative, and the tagged next-target extension."""

from repro.experiments import (
    run_multitag_alternative,
    run_next_target_tag_extension,
    run_replacement_ablation,
    run_stale_pointer_ablation,
    run_tag_width_ablation,
)

from conftest import run_once


def test_replacement_policy_ablation(benchmark):
    result = run_once(benchmark, run_replacement_ablation)
    print("\n" + result.render())
    # SRRIP (the paper's choice) must not be materially worse than LRU.
    assert result.gains["srrip"] > result.gains["lru"] - 0.02
    assert all(gain > -0.05 for gain in result.gains.values())


def test_stale_pointer_ablation(benchmark):
    result = run_once(benchmark, run_stale_pointer_ablation)
    print("\n" + result.render())
    dangling = result.gains["dangling pointers (paper)"]
    eager = result.gains["eager invalidation"]
    # Paper: stale reads are ~0.06%, so skipping the invalidation
    # hardware costs (almost) nothing.
    assert abs(dangling - eager) < 0.03


def test_tag_width_ablation(benchmark):
    result = run_once(benchmark, run_tag_width_ablation)
    print("\n" + result.render())
    # Wider tags reduce aliasing; gains should not degrade with width.
    assert result.gains["14-bit tags"] > result.gains["8-bit tags"] - 0.02


def test_multitag_alternative(benchmark):
    result = run_once(benchmark, run_multitag_alternative)
    print("\n" + result.render())
    # Section 4.2: the BTBM indirection beats multi-tag sharing -- the
    # static tag-slot limit and the tag overhead both bite.
    assert result.gains["pdede (BTBM indirection)"] > result.gains["multi-tag alternative"]


def test_next_target_tag_extension(benchmark):
    result = run_once(benchmark, run_next_target_tag_extension)
    print("\n" + result.render())
    # The future-work tag guard must not materially hurt; it trades a
    # few provisions for fewer bogus ones.
    assert abs(result.gains["4-bit next tag"] - result.gains["untagged (paper)"]) < 0.03
