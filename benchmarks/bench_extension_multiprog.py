"""Extensions: multiprogramming pressure and GHRP predictive replacement."""

from repro.experiments import run_ghrp_combination, run_multiprogramming

from conftest import run_once


def test_multiprogramming(benchmark):
    result = run_once(benchmark, run_multiprogramming)
    print("\n" + result.render())
    # Consolidated working sets are the capacity-bound worst case: PDede
    # must keep a positive gain on every mix.
    assert result.gains, "no mixes produced"
    for mix, gain in result.gains.items():
        assert gain > 0.0, mix


def test_ghrp_combination(benchmark):
    result = run_once(benchmark, run_ghrp_combination)
    print("\n" + result.render())
    # GHRP attacks replacement, PDede attacks encoding: both should be
    # non-negative, with PDede clearly larger at iso-storage.
    assert result.gains["pdede-me"] > result.gains["ghrp baseline"]
    assert result.gains["ghrp baseline"] > -0.02
