"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-apps``     -- list the workload suite at a scale.
* ``characterize``  -- Section 3 analyses for one application.
* ``simulate``      -- run one (application, design) pair, print metrics;
  ``--trace FILE`` runs an imported trace file instead of a suite app.
* ``convert``       -- convert a branch trace between framings (RBT
  text/binary, legacy text, ``.npz``) through the characterization gate
  (README "Importing real traces").
* ``experiment``    -- run a paper figure/table by id and print its rows.
* ``report``        -- run the whole evaluation, emit a markdown report.
* ``check``         -- determinism linter and/or sanitized simulation.
* ``serve``         -- run the HTTP/JSON simulation service (README
  "Serving the simulator"): micro-batching, bounded admission queue,
  graceful drain on SIGTERM.
* ``submit``        -- submit one simulation request to a running
  service and print the response payload.

``simulate``, ``experiment``, and ``report`` share the observability
flags (README "Observability"): ``--metrics-out FILE.json`` dumps the
metrics-registry snapshot, ``--trace-out FILE.jsonl`` dumps the span
tree, ``--progress`` streams span completions to stderr.  ``simulate``
and ``experiment`` also take ``--sanitize`` (README "Static checks &
sanitizer") to run with the microarchitectural invariant checker armed.

``experiment`` and ``report`` take the scheduler flags (README "Scaling
out"): ``--workers N --shards K`` fan simulations out over the
work-stealing shard scheduler, with ``--task-timeout``,
``--max-retries``, and ``--scheduler-log FILE.jsonl`` controlling the
fault-tolerance machinery.  Sharded output is bit-identical to serial
output; scheduler failures go to stderr and the report's appendix,
never into result rows.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys

from repro.experiments import design_registry, run_design
from repro.obs.metrics import enable_metrics, use_registry
from repro.obs.tracing import NullTracer, Tracer, use_tracer
from repro.workloads.suite import SCALES, build_suite


def _design_registry() -> dict:
    """The stable design-name mapping (now shared with ``repro.serve``)."""
    return design_registry()


def _experiment_registry() -> dict:
    from repro.experiments import (
        run_fig1, run_fig3, run_fig4, run_fig5, run_fig6, run_fig7, run_fig8,
        run_fig10, run_fig11a, run_fig11b, run_fig11c,
        run_fig12a, run_fig12b, run_fig12c,
        run_future_pipelines, run_ghrp_combination, run_ittage,
        run_multiprogramming, run_multitag_alternative,
        run_next_target_tag_extension, run_perfect_direction,
        run_prefetch_complement, run_replacement_ablation,
        run_returns_in_btb, run_stale_pointer_ablation,
        run_tag_width_ablation, run_table2, run_table4,
    )

    return {
        "fig1": run_fig1, "fig3": run_fig3, "fig4": run_fig4, "fig5": run_fig5,
        "fig6": run_fig6, "fig7": run_fig7, "fig8": run_fig8,
        "fig10": run_fig10, "fig11a": run_fig11a, "fig11b": run_fig11b,
        "fig11c": run_fig11c, "fig12a": run_fig12a, "fig12b": run_fig12b,
        "fig12c": run_fig12c,
        "s5.5": run_perfect_direction, "s5.6": run_ittage,
        "s5.7": run_returns_in_btb, "s5.11": run_future_pipelines,
        "ablation-replacement": run_replacement_ablation,
        "ablation-stale": run_stale_pointer_ablation,
        "ablation-tags": run_tag_width_ablation,
        "alt-multitag": run_multitag_alternative,
        "ext-next-tag": run_next_target_tag_extension,
        "ext-prefetch": run_prefetch_complement,
        "ext-ghrp": run_ghrp_combination,
        "ext-multiprog": run_multiprogramming,
        "tab2": lambda scale=None: run_table2(),
        "tab4": lambda scale=None: run_table4(),
    }


def cmd_list_apps(args: argparse.Namespace) -> int:
    for spec in build_suite(args.scale):
        print(f"{spec.name:32s} {spec.category:10s} seed={spec.seed} "
              f"functions={spec.n_functions} hot={spec.hot_functions_per_phase}")
    return 0


def cmd_characterize(args: argparse.Namespace) -> int:
    from repro.analysis import (
        branch_type_mix, density_stats, distance_stats, taken_stats,
        uniqueness_stats,
    )
    from repro.workloads.suite import get_trace

    trace = get_trace(args.app, args.scale)
    taken = taken_stats(trace)
    unique = uniqueness_stats(trace)
    density = density_stats(trace)
    distance = distance_stats(trace)
    mix = branch_type_mix(trace)
    print(f"{trace.name} ({trace.category}): {len(trace):,} events, "
          f"{trace.instruction_count:,} instructions")
    print(f"taken: static {taken.static_taken_fraction:.1%}, "
          f"dynamic {taken.dynamic_taken_fraction:.1%}")
    print("mix: " + ", ".join(f"{k} {v:.1%}" for k, v in mix.fractions.items()))
    print(f"unique: PCs {unique.unique_pcs}, targets {unique.target_fraction:.1%}, "
          f"regions {unique.region_fraction:.2%}, pages {unique.page_fraction:.1%}")
    print(f"density: {density.targets_per_page:.1f} targets/page, "
          f"{density.targets_per_region:.0f} targets/region")
    print(f"same-page: {distance.same_page_fraction:.1%}")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    """Convert a branch trace between framings, through the gate."""
    from repro.analysis.characterize import EnvelopeError, characterize
    from repro.workloads.ingest import (
        IngestError, detect_format, dump_any, load_any,
    )

    try:
        source_format = detect_format(args.input)
        trace = load_any(args.input)
    except OSError as error:
        print(f"convert: cannot read {args.input}: {error}", file=sys.stderr)
        return 1
    except (IngestError, ValueError) as error:
        print(f"convert: {args.input}: {error}", file=sys.stderr)
        return 1
    if args.name:
        trace.name = args.name
    if args.category:
        trace.category = args.category
    profile = characterize(trace)
    if args.profile_out:
        with open(args.profile_out, "w") as handle:
            json.dump(profile.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.profile_out}", file=sys.stderr)
    if not args.no_gate:
        from repro.analysis.characterize import paper_envelope

        try:
            paper_envelope().check(profile)
        except EnvelopeError as error:
            print(f"convert: {error}", file=sys.stderr)
            return 1
    try:
        used = dump_any(trace, args.output, fmt=args.to)
    except (OSError, ValueError) as error:
        print(f"convert: cannot write {args.output}: {error}", file=sys.stderr)
        return 1
    print(f"convert: {args.input} ({source_format}) -> {args.output} ({used}): "
          f"{len(trace):,} events, {profile.instruction_count:,} instructions, "
          f"{profile.unique_pcs:,} static branches"
          + ("" if args.no_gate else "; characterization gate passed"),
          file=sys.stderr)
    return 0


def _simulate_trace_file(args: argparse.Namespace, design) -> int:
    """``simulate --trace FILE``: run a design over an imported trace."""
    from repro.analysis.characterize import EnvelopeError
    from repro.frontend.simulator import FrontendSimulator
    from repro.workloads.ingest import IngestError, import_trace

    try:
        trace, _profile = import_trace(args.trace_file, gate=not args.no_gate)
    except OSError as error:
        print(f"simulate: cannot read {args.trace_file}: {error}",
              file=sys.stderr)
        return 1
    except (IngestError, EnvelopeError, ValueError) as error:
        print(f"simulate: {args.trace_file}: {error}", file=sys.stderr)
        return 1
    btb, simulator_kwargs = design.build()
    simulator = FrontendSimulator(btb, **simulator_kwargs)
    stats = simulator.run(trace, warmup_fraction=args.warmup)
    print(f"{trace.name} x {design.key} (storage {btb.storage_kib():.1f} KiB)")
    print(f"  IPC            : {stats.ipc:.3f}")
    print(f"  BTB MPKI       : {stats.btb_mpki:.2f}")
    print(f"  decode resteers: {stats.decode_resteers}")
    print(f"  exec resteers  : {stats.execute_resteers}")
    print(f"  frontend-bound : {stats.frontend_bound_fraction:.1%}")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    app = args.app_opt or args.app
    design_key = args.design_opt or args.design
    if args.trace_file:
        if app and design_key is None:
            # `simulate --trace FILE DESIGN` puts the design first.
            app, design_key = None, app
    if not design_key or (not app and not args.trace_file):
        print("simulate needs an application (or --trace FILE) and a design "
              "(positional or --app/--design)", file=sys.stderr)
        return 2
    registry = _design_registry()
    if design_key not in registry:
        print(f"unknown design {design_key!r}; options: {sorted(registry)}",
              file=sys.stderr)
        return 2
    design = registry[design_key]
    if args.trace_file:
        return _simulate_trace_file(args, design)
    stats = run_design(app, design, scale=args.scale,
                       warmup_fraction=args.warmup)
    btb, _ = design.build()
    print(f"{app} x {design.key} (storage {btb.storage_kib():.1f} KiB)")
    print(f"  IPC            : {stats.ipc:.3f}")
    print(f"  BTB MPKI       : {stats.btb_mpki:.2f}")
    print(f"  decode resteers: {stats.decode_resteers}")
    print(f"  exec resteers  : {stats.execute_resteers}")
    print(f"  frontend-bound : {stats.frontend_bound_fraction:.1%}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import scheduler

    registry = _experiment_registry()
    if args.id not in registry:
        print(f"unknown experiment {args.id!r}; options: {sorted(registry)}",
              file=sys.stderr)
        return 2
    result = registry[args.id](scale=args.scale)
    # stdout carries only the result rows -- sharded and serial runs stay
    # byte-identical; scheduler degradation is stderr-only here.
    print(result.render())
    for failure in scheduler.drain_failures():
        print(f"scheduler: task {failure.task_id} failed after "
              f"{failure.attempts} attempt(s) [{failure.kind}]: "
              f"{failure.message}", file=sys.stderr)
    return 0


def _checks_root(paths: list[str]) -> "os.PathLike | None":
    """The repo root above the checked paths: the nearest ancestor with
    a README.md (where the baseline file and knob docs live)."""
    from pathlib import Path

    start = Path(paths[0]).resolve()
    for candidate in (start, *start.parents):
        if (candidate / "README.md").is_file():
            return candidate
    return None


def cmd_check(args: argparse.Namespace) -> int:
    """Front door for every engine: static passes and/or a sanitized
    simulation.

    ``--lint`` is the per-file AST pass, ``--concurrency`` the
    interprocedural REP1xx pass over the project call graph,
    ``--contracts`` the REP2xx knob/metric/event registry pass;
    ``--all`` runs the three.  With no engine flag, lints (the cheap,
    always-applicable engine).  Findings in the committed baseline
    (``checks_baseline.json``) are tolerated; exit status is 1 only for
    *new* findings (or any sanitizer violation).
    """
    run_linter = args.lint or args.all or not (
        args.concurrency or args.contracts or args.sanitize
    )
    run_concurrency_pass = args.concurrency or args.all
    run_contracts_pass = args.contracts or args.all
    failed = False
    if run_linter or run_concurrency_pass or run_contracts_pass:
        from pathlib import Path

        from repro.checks.baseline import apply_baseline, load_baseline, write_baseline
        from repro.checks.lint import run_lint

        paths = args.paths
        default_target = not paths
        if default_target:
            # Default target: the installed repro package source itself.
            import repro

            paths = [os.path.dirname(os.path.abspath(repro.__file__))]
        findings = []
        passes = []
        if run_linter:
            findings.extend(run_lint(paths))
            passes.append("lint")
        if run_concurrency_pass or run_contracts_pass:
            from repro.checks.callgraph import build_project

            project = build_project(paths)
            if run_concurrency_pass:
                from repro.checks.concurrency import run_concurrency

                findings.extend(run_concurrency(project))
                passes.append("concurrency")
            if run_contracts_pass:
                from repro.checks.contracts import run_contracts

                root = _checks_root(paths)
                docs_text = None
                if root is not None:
                    docs_text = (root / "README.md").read_text()
                    design_md = root / "DESIGN.md"
                    if design_md.is_file():
                        docs_text += design_md.read_text()
                findings.extend(
                    run_contracts(
                        project,
                        docs_text=docs_text,
                        # Unused-knob detection (REP205) is only
                        # meaningful over the whole package.
                        check_unused=default_target,
                    )
                )
                passes.append("contracts")
        # The passes overlap on REP000 (syntax errors): dedup.
        findings = sorted(set(findings), key=lambda f: f.sort_key)

        root = _checks_root(paths)
        baseline_path = (
            Path(args.baseline)
            if args.baseline
            else (root / "checks_baseline.json" if root is not None else None)
        )
        if args.update_baseline:
            if baseline_path is None:
                print("check: no repo root found for the baseline file",
                      file=sys.stderr)
                return 2
            write_baseline(baseline_path, findings, root)
            print(f"check: baseline updated with {len(findings)} finding(s) "
                  f"at {baseline_path}", file=sys.stderr)
            return 0
        baseline = load_baseline(baseline_path) if baseline_path else {}
        new, stale = apply_baseline(findings, baseline, root)

        if args.format == "text":
            for finding in new:
                print(finding.format())
        else:
            from repro.checks.output import to_json, to_sarif

            summary = {
                "passes": passes,
                "findings": len(findings),
                "baselined": len(findings) - len(new),
                "new": len(new),
                "stale_baseline_entries": len(stale),
            }
            document = (
                to_json(new, summary) if args.format == "json" else to_sarif(new)
            )
            if args.output:
                Path(args.output).write_text(document)
            else:
                sys.stdout.write(document)
        print(f"check [{'+'.join(passes)}]: {len(findings)} finding(s) in "
              f"{len(paths)} path(s); {len(findings) - len(new)} baselined, "
              f"{len(new)} new", file=sys.stderr)
        for entry in stale:
            print(f"check: stale baseline entry (finding fixed?): {entry} "
                  "-- run --update-baseline to shrink the baseline",
                  file=sys.stderr)
        failed |= bool(new)
    if args.sanitize:
        from repro.checks.sanitizer import (
            DEFAULT_CHECK_INTERVAL,
            InvariantViolation,
            Sanitizer,
            use_sanitizer,
        )
        from repro.frontend.simulator import FrontendSimulator
        from repro.workloads.suite import get_trace

        registry = _design_registry()
        if args.design not in registry:
            print(f"unknown design {args.design!r}; options: {sorted(registry)}",
                  file=sys.stderr)
            return 2
        design = registry[args.design]
        trace = get_trace(args.sanitize, args.scale)
        btb, simulator_kwargs = design.build()
        simulator = FrontendSimulator(btb, **simulator_kwargs)
        interval = args.interval or DEFAULT_CHECK_INTERVAL
        try:
            with use_sanitizer(Sanitizer(interval=interval)) as sanitizer:
                simulator.run(trace, warmup_fraction=args.warmup)
                snapshot = sanitizer.snapshot()
            print(f"sanitize: {args.sanitize} x {design.key}: OK "
                  f"({snapshot['sanitizer_checks_total']} checks over "
                  f"{snapshot['sanitizer_steps_total']} steps)", file=sys.stderr)
        except InvariantViolation as violation:
            print(f"sanitize: {args.sanitize} x {design.key}: FAILED",
                  file=sys.stderr)
            print(violation, file=sys.stderr)
            failed = True
    return 1 if failed else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the simulation service until SIGTERM/SIGINT, then drain."""
    import asyncio

    from repro.serve import SimulationService, config_from_env

    overrides = {
        name: value
        for name, value in {
            "host": args.host,
            "port": args.port,
            "batch_window": args.batch_window,
            "queue_limit": args.queue_limit,
            "workers": args.serve_workers,
            "drain_timeout": args.drain_timeout,
            "default_scale": args.scale,
            "trace_buffer": args.trace_buffer,
            "events_path": args.events_out,
            "store_url": args.store,
            "store_ttl": args.store_ttl,
        }.items()
        if value is not None
    }
    service = SimulationService(config=config_from_env().replace(**overrides))

    def ready() -> None:
        store = service.store.describe()["kind"] if service.store else "none"
        print(f"serving on http://{service.config.host}:{service.port} "
              f"(queue limit {service.config.queue_limit}, "
              f"batch window {service.config.batch_window * 1000:.0f}ms, "
              f"store {store})",
              file=sys.stderr)

    asyncio.run(service.serve_forever(_on_ready=ready))
    print("drained; bye", file=sys.stderr)
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit one request to a running service; stdout carries the exact
    response payload (canonical stats JSON), metadata goes to stderr."""
    from repro.serve import ServeClient, ServiceError

    client = ServeClient(host=args.host, port=args.port, timeout=args.timeout)
    params = json.loads(args.params) if args.params else None
    try:
        response = client.simulate(
            design=args.design,
            app=args.app,
            params=params,
            warmup=args.warmup,
            scale=args.scale,
        )
    except ServiceError as error:
        print(f"submit: {error}", file=sys.stderr)
        if error.retry_after is not None:
            print(f"submit: retry after {error.retry_after:.0f}s", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"submit: cannot reach {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 1
    sys.stdout.buffer.write(response.body)
    sys.stdout.buffer.write(b"\n")
    print(f"submit: outcome={response.outcome} "
          f"batch-size={response.batch_size}", file=sys.stderr)
    if args.timing:
        timing = response.timing
        hops = " ".join(
            f"{hop}={timing[hop] * 1000:.3f}ms"
            for hop in ("batch_wait", "queue", "simulate")
            if hop in timing
        )
        total = sum(timing.values())
        rid = response.request_id or "?"
        print(f"submit: timing rid={rid} {hops} "
              f"server-total={total * 1000:.3f}ms", file=sys.stderr)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    def progress(experiment_id: str, seconds: float) -> None:
        print(f"  [{seconds:6.1f}s] {experiment_id}", file=sys.stderr)

    report = generate_report(scale=args.scale, progress=progress)
    text = report.render()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _wrap(values, indent: str = "  ", width: int = 72) -> str:
    """Lay comma-separated values out over indented lines."""
    lines, line = [], indent
    for value in values:
        cell = value + "  "
        if len(line) + len(cell) > width and line.strip():
            lines.append(line.rstrip())
            line = indent
        line += cell
    if line.strip():
        lines.append(line.rstrip())
    return "\n".join(lines)


def _epilog() -> str:
    """Generated from the registries so --help never goes stale."""
    return (
        "design keys (simulate DESIGN):\n"
        + _wrap(sorted(_design_registry()))
        + "\n\nexperiment ids (experiment ID):\n"
        + _wrap(sorted(_experiment_registry()))
    )


def _add_sanitize_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("sanitizer")
    group.add_argument(
        "--sanitize", action="store_true",
        help="run with the microarchitectural invariant checker armed "
             "(disables the result cache so simulations actually execute)",
    )
    group.add_argument(
        "--sanitize-interval", type=int, default=None, metavar="N",
        help="structure updates between two invariant sweeps "
             "(default: repro.checks.DEFAULT_CHECK_INTERVAL)",
    )


def _add_scheduler_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("scheduler")
    group.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="forked worker processes for the shard scheduler "
             "(default: REPRO_SCHED_WORKERS or serial)",
    )
    group.add_argument(
        "--shards", type=int, default=None, metavar="K",
        help="shards per (app, design) run; merged stats are "
             "bit-identical to unsharded (default: REPRO_SCHED_SHARDS or 1)",
    )
    group.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="kill + retry a scheduler task past this wall-clock budget",
    )
    group.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="retries per task before it becomes a structured failure "
             "(default: REPRO_SCHED_MAX_RETRIES or 2)",
    )
    group.add_argument(
        "--scheduler-log", metavar="FILE.jsonl", default=None,
        help="append one JSONL record per scheduler task outcome",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--metrics-out", metavar="FILE.json", default=None,
        help="dump the metrics-registry snapshot as JSON",
    )
    group.add_argument(
        "--trace-out", metavar="FILE.jsonl", default=None,
        help="dump the span trace as JSONL (one span per line)",
    )
    group.add_argument(
        "--progress", action="store_true",
        help="stream span completions to stderr while running",
    )
    group.add_argument(
        "--trace-memory", action="store_true",
        help="record tracemalloc peaks per span (implies tracing)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PDede (MICRO 2021) reproduction toolkit",
        epilog=_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default=None,
        help="suite scale (default: REPRO_SCALE env or 'default')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list the workload suite")

    characterize = sub.add_parser("characterize", help="Section 3 analyses for one app")
    characterize.add_argument("app")

    simulate = sub.add_parser(
        "simulate", help="simulate one (app, design) pair",
        epilog=_epilog(), formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    simulate.add_argument("app", nargs="?", default=None)
    simulate.add_argument("design", nargs="?", default=None)
    simulate.add_argument("--app", dest="app_opt", default=None,
                          help="application name (alternative to positional)")
    simulate.add_argument("--design", dest="design_opt", default=None,
                          help="design key (alternative to positional)")
    simulate.add_argument("--warmup", type=float, default=0.3)
    simulate.add_argument("--trace", dest="trace_file", default=None,
                          metavar="FILE",
                          help="simulate an imported trace file (RBT text/"
                               "binary, legacy text, or .npz) instead of a "
                               "suite app")
    simulate.add_argument("--no-gate", action="store_true",
                          help="with --trace: skip the characterization "
                               "envelope gate")
    _add_obs_flags(simulate)
    _add_sanitize_flags(simulate)

    convert = sub.add_parser(
        "convert", help="convert a branch trace between framings "
                        "(README 'Importing real traces')",
    )
    convert.add_argument("input", help="source trace (RBT text/binary, "
                                       "legacy text, or .npz)")
    convert.add_argument("output", help="destination path; framing from "
                                        "--to or the suffix (.rbt/.rbtb/.npz)")
    convert.add_argument(
        "--to", choices=("rbt-text", "rbt-binary", "npz", "legacy-text"),
        default=None, help="output framing (default: by output suffix)",
    )
    convert.add_argument("--name", default=None,
                         help="override the trace name header")
    convert.add_argument("--category", default=None,
                         help="override the trace category header")
    convert.add_argument("--no-gate", action="store_true",
                         help="skip the characterization envelope gate")
    convert.add_argument("--profile-out", metavar="FILE.json", default=None,
                         help="write the characterization profile as JSON")

    experiment = sub.add_parser(
        "experiment", help="run a paper figure/table by id",
        epilog=_epilog(), formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    experiment.add_argument("id")
    _add_obs_flags(experiment)
    _add_sanitize_flags(experiment)
    _add_scheduler_flags(experiment)

    report = sub.add_parser("report", help="run the full evaluation matrix")
    report.add_argument("--output", "-o", default=None)
    _add_obs_flags(report)
    _add_scheduler_flags(report)

    check = sub.add_parser(
        "check", help="determinism linter and/or sanitized simulation",
        epilog=_epilog(), formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    check.add_argument(
        "paths", nargs="*", default=[],
        help="files/directories to lint (default: the repro package)",
    )
    check.add_argument(
        "--lint", action="store_true",
        help="run the determinism linter (the default when no engine "
             "flag is given)",
    )
    check.add_argument(
        "--concurrency", action="store_true",
        help="run the interprocedural REP1xx concurrency pass "
             "(call-graph reachability from async handlers)",
    )
    check.add_argument(
        "--contracts", action="store_true",
        help="run the REP2xx contract pass (knob registry, metric and "
             "event catalogs)",
    )
    check.add_argument(
        "--all", action="store_true",
        help="run every static pass: lint + concurrency + contracts",
    )
    check.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="findings output format (default: text)",
    )
    check.add_argument(
        "--output", metavar="FILE", default=None,
        help="write json/sarif findings to FILE instead of stdout",
    )
    check.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline file of tolerated findings "
             "(default: checks_baseline.json at the repo root)",
    )
    check.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    check.add_argument(
        "--sanitize", metavar="APP", default=None,
        help="simulate APP with the invariant checker armed",
    )
    check.add_argument(
        "--design", default="pdede-multi-entry",
        help="design to sanitize (default: pdede-multi-entry)",
    )
    check.add_argument(
        "--interval", type=int, default=None, metavar="N",
        help="updates between invariant sweeps "
             "(default: repro.checks.DEFAULT_CHECK_INTERVAL)",
    )
    check.add_argument("--warmup", type=float, default=0.3)

    serve = sub.add_parser(
        "serve", help="run the HTTP/JSON simulation service",
        epilog=_epilog(), formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    serve.add_argument("--host", default=None,
                       help="bind address (default: REPRO_SERVE_HOST or 127.0.0.1)")
    serve.add_argument("--port", type=int, default=None,
                       help="bind port, 0 for ephemeral "
                            "(default: REPRO_SERVE_PORT or 8337)")
    serve.add_argument("--batch-window", type=float, default=None, metavar="SECONDS",
                       help="micro-batch collection window "
                            "(default: REPRO_SERVE_BATCH_WINDOW or 0.02)")
    serve.add_argument("--queue-limit", type=int, default=None, metavar="N",
                       help="max queued+running requests before 429 "
                            "(default: REPRO_SERVE_QUEUE_LIMIT or 64)")
    serve.add_argument("--workers", dest="serve_workers", type=int, default=None,
                       metavar="N",
                       help="batch-executor threads "
                            "(default: REPRO_SERVE_WORKERS or 2)")
    serve.add_argument("--drain-timeout", type=float, default=None, metavar="SECONDS",
                       help="max wait for in-flight requests on shutdown "
                            "(default: REPRO_SERVE_DRAIN_TIMEOUT or 30)")
    serve.add_argument("--trace-buffer", type=int, default=None, metavar="N",
                       help="request-event ring capacity, 0 disables tracing "
                            "(default: REPRO_SERVE_TRACE_BUFFER or 4096)")
    serve.add_argument("--store", default=None, metavar="URL",
                       help="shared result-store backend "
                            "(redis://host:port/db, disk://, fake://name; "
                            "default REPRO_SERVE_STORE or none)")
    serve.add_argument("--store-ttl", type=float, default=None, metavar="SECONDS",
                       help="cross-replica single-flight lease TTL "
                            "(default REPRO_SERVE_STORE_TTL or 30)")
    serve.add_argument("--events-out", default=None, metavar="FILE",
                       help="also append every request event to FILE as JSONL "
                            "(default: REPRO_SERVE_EVENTS or unset)")
    # --metrics-out enables the recording registry, so /metrics serves a
    # live snapshot and the file is written after the drain completes.
    _add_obs_flags(serve)

    submit = sub.add_parser(
        "submit", help="submit one request to a running service",
        epilog=_epilog(), formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    submit.add_argument("app", help="suite workload name")
    submit.add_argument("design", help="design key")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8337)
    submit.add_argument("--warmup", type=float, default=None,
                        help="warmup fraction (default: the service's 0.3)")
    submit.add_argument("--params", default=None, metavar="JSON",
                        help='CoreParams overrides, e.g. \'{"fetch_width": 8}\'')
    submit.add_argument("--timeout", type=float, default=60.0)
    submit.add_argument("--timing", action="store_true",
                        help="print the server-reported per-hop breakdown "
                             "(batch-wait/queue/simulate) to stderr")

    return parser


_COMMANDS = {
    "list-apps": cmd_list_apps,
    "characterize": cmd_characterize,
    "simulate": cmd_simulate,
    "convert": cmd_convert,
    "experiment": cmd_experiment,
    "report": cmd_report,
    "check": cmd_check,
    "serve": cmd_serve,
    "submit": cmd_submit,
}


@contextlib.contextmanager
def _sanitization(args: argparse.Namespace):
    """Scope ``--sanitize`` on simulate/experiment: arm the checker and
    disable the memo-cache so simulations actually execute (a cache hit
    would silently skip the sweeps being asked for)."""
    if not getattr(args, "sanitize", None) or args.command == "check":
        yield
        return
    from repro.checks.sanitizer import DEFAULT_CHECK_INTERVAL, Sanitizer, use_sanitizer

    interval = getattr(args, "sanitize_interval", None) or DEFAULT_CHECK_INTERVAL
    previous_cache = os.environ.get("REPRO_RESULT_CACHE")
    os.environ["REPRO_RESULT_CACHE"] = "0"
    try:
        with use_sanitizer(Sanitizer(interval=interval)) as sanitizer:
            yield
            snapshot = sanitizer.snapshot()
            print(f"sanitizer: OK ({snapshot['sanitizer_checks_total']} checks "
                  f"over {snapshot['sanitizer_steps_total']} steps)",
                  file=sys.stderr)
    finally:
        if previous_cache is None:
            del os.environ["REPRO_RESULT_CACHE"]
        else:
            os.environ["REPRO_RESULT_CACHE"] = previous_cache


@contextlib.contextmanager
def _scheduling(args: argparse.Namespace):
    """Scope the scheduler flags: install a process-wide config so every
    ``run_suite`` under this command fans out the same way."""
    flags = (
        getattr(args, "workers", None),
        getattr(args, "shards", None),
        getattr(args, "task_timeout", None),
        getattr(args, "max_retries", None),
        getattr(args, "scheduler_log", None),
    )
    if all(value is None for value in flags):
        yield
        return
    from repro.experiments import scheduler

    workers, shards, task_timeout, max_retries, log_path = flags
    scheduler.configure(
        scheduler.resolve_config(
            workers=workers,
            shards=shards,
            task_timeout=task_timeout,
            max_retries=max_retries,
            log_path=log_path,
        )
    )
    try:
        yield
    finally:
        scheduler.configure(None)


@contextlib.contextmanager
def _observability(args: argparse.Namespace):
    """Scope the obs flags: enable, run, dump to the requested sinks."""
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    progress = getattr(args, "progress", False)
    trace_memory = getattr(args, "trace_memory", False)
    want_tracing = bool(trace_out or progress or trace_memory)
    with contextlib.ExitStack() as stack:
        registry = None
        if metrics_out:
            registry = stack.enter_context(use_registry(enable_metrics()))
        tracer = NullTracer()
        if want_tracing:
            tracer = stack.enter_context(
                use_tracer(Tracer(trace_memory=trace_memory))
            )
            if progress:
                def _line(span):
                    if span.depth <= 1:
                        attrs = " ".join(
                            f"{k}={v}" for k, v in span.attrs.items()
                        )
                        print(f"  [{span.seconds:7.2f}s] {span.name} {attrs}",
                              file=sys.stderr)
                tracer.on_close = _line
        try:
            yield
        finally:
            if metrics_out and registry is not None:
                registry.dump(metrics_out)
                print(f"wrote {metrics_out}", file=sys.stderr)
            if trace_out:
                tracer.write_jsonl(trace_out)
                print(f"wrote {trace_out}", file=sys.stderr)
            if want_tracing:
                tracer.close()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    with _observability(args), _sanitization(args), _scheduling(args):
        return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
