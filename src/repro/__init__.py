"""repro: a reproduction of *PDede: Partitioned, Deduplicated, Delta
Branch Target Buffer* (MICRO 2021).

Quickstart::

    from repro import (
        BaselineBTB, PDedeBTB, PDedeMode, paper_config,
        FrontendSimulator, build_suite, generate_trace,
    )

    spec = build_suite("smoke")[0]
    trace = generate_trace(spec)
    baseline = FrontendSimulator(BaselineBTB()).run(trace)
    pdede = FrontendSimulator(PDedeBTB(paper_config(PDedeMode.MULTI_ENTRY))).run(trace)
    print(pdede.speedup_over(baseline))

Package map:

* :mod:`repro.core` -- the PDede BTB (the paper's contribution);
* :mod:`repro.btb` -- baseline BTB, RAS, ITTAGE, two-level, Shotgun;
* :mod:`repro.branch` -- addresses, branch kinds, direction predictors;
* :mod:`repro.workloads` -- the synthetic 102-application suite;
* :mod:`repro.frontend` -- the decoupled-frontend timing model;
* :mod:`repro.analysis` -- Section 3 characterisation, Top-Down;
* :mod:`repro.storage` -- Table 2 storage / Table 4 latency models;
* :mod:`repro.experiments` -- one runner per paper figure/table.
"""

from repro.branch import BranchEvent, BranchKind, make_direction_predictor
from repro.btb import (
    BaselineBTB,
    BTBLookup,
    BranchTargetPredictor,
    ITTagePredictor,
    ReturnAddressStack,
    MicroBTB,
    ShadowBTB,
    ShotgunBTB,
    TwoLevelBTB,
)
from repro.core import (
    DedupOnlyBTB,
    PDedeBTB,
    PDedeConfig,
    PDedeMode,
    paper_config,
    partition_only_config,
)
from repro.frontend import CoreParams, FrontendSimulator, FrontendStats, ICELAKE
from repro.workloads import Trace, WorkloadSpec, build_suite, generate_trace, suite_traces

__version__ = "1.0.0"

__all__ = [
    "BranchEvent",
    "BranchKind",
    "make_direction_predictor",
    "BaselineBTB",
    "BTBLookup",
    "BranchTargetPredictor",
    "ITTagePredictor",
    "ReturnAddressStack",
    "MicroBTB",
    "ShadowBTB",
    "ShotgunBTB",
    "TwoLevelBTB",
    "DedupOnlyBTB",
    "PDedeBTB",
    "PDedeConfig",
    "PDedeMode",
    "paper_config",
    "partition_only_config",
    "CoreParams",
    "FrontendSimulator",
    "FrontendStats",
    "ICELAKE",
    "Trace",
    "WorkloadSpec",
    "build_suite",
    "generate_trace",
    "suite_traces",
    "__version__",
]
