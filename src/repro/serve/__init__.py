"""Async simulation service: the front door of the reproduction stack.

``python -m repro serve`` boots an asyncio HTTP/JSON service (stdlib
only) that validates simulation requests against the design registry,
answers from the harness memo / disk cache when warm, and micro-batches
cold requests that share a trace before bridging them to the shard
scheduler on a worker thread.  ``python -m repro submit`` and
:mod:`repro.serve.client` are the matching blocking clients.

See README "Serving the simulator" and DESIGN.md §10.
"""

from repro.serve.config import ServeConfig, config_from_env
from repro.serve.protocol import (
    RequestError,
    SimJob,
    canonical_json,
    parse_request,
    stats_payload,
)
from repro.serve.service import (
    BatchOutcome,
    ServiceHandle,
    SimulationService,
    clear_serve_caches,
    default_batch_runner,
    serve_in_thread,
)
from repro.serve.client import ServeClient, ServiceError, SimulateResponse

__all__ = [
    "BatchOutcome",
    "RequestError",
    "ServeClient",
    "ServeConfig",
    "ServiceError",
    "ServiceHandle",
    "SimJob",
    "SimulateResponse",
    "SimulationService",
    "canonical_json",
    "clear_serve_caches",
    "config_from_env",
    "default_batch_runner",
    "parse_request",
    "serve_in_thread",
    "stats_payload",
]
