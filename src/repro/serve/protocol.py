"""Request/response schema of the simulation service.

A simulate request is JSON:

.. code-block:: json

    {"app": "server_oltp_00", "design": "pdede-default",
     "scale": "tiny", "warmup": 0.3,
     "params": {"fetch_queue_entries": 96}}

``app`` names a suite member; alternatively ``spec`` carries a full
inline :class:`~repro.workloads.spec.WorkloadSpec` as a field dict
(ad-hoc workloads the suite does not know).  ``design`` must name an
entry of the design registry
(:func:`repro.experiments.designs.design_registry`); ``params`` carries
:class:`~repro.frontend.params.CoreParams` field overrides.

The 200 response body is *exactly* the canonical JSON serialisation of
``FrontendStats.to_dict()`` -- byte-identical to what a direct
:func:`repro.experiments.harness.run_one` caller would serialise --
with request metadata (cache outcome, batch size) in ``X-Repro-*``
headers, so clients can byte-compare payloads without re-encoding.
Errors are ``{"ok": false, "error": {"code", "message"}}``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache

from repro.frontend.params import ICELAKE, CoreParams
from repro.frontend.stats import FrontendStats
from repro.workloads.spec import WorkloadSpec
from repro.workloads.suite import SCALES, build_suite, current_scale

__all__ = [
    "RequestError",
    "SimJob",
    "canonical_json",
    "parse_request",
    "stats_payload",
]


class RequestError(ValueError):
    """A request the service refuses, with a machine-readable code.

    ``options`` (when set) enumerates the valid values for the field
    the request got wrong -- e.g. every design key in the live registry
    -- and is surfaced verbatim in the 400 body, so clients can recover
    without a round trip to the docs and new registry entries show up
    in rejections without any protocol change.
    """

    def __init__(
        self, code: str, message: str, options: list[str] | None = None
    ) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.options = options


def canonical_json(payload: object) -> bytes:
    """Deterministic JSON bytes (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def stats_payload(stats: FrontendStats) -> bytes:
    """The canonical response body for one simulation result."""
    return canonical_json(stats.to_dict())


@dataclass(frozen=True)
class SimJob:
    """One validated unit of serving work.

    Requests that parse to equal jobs are answered by a single
    simulation (single-flight); jobs sharing :attr:`group_key` share a
    micro-batch and therefore one trace decode.
    """

    trace_name: str
    scale: str
    design_key: str
    params: CoreParams
    warmup_fraction: float
    #: Inline workload (None: ``trace_name`` is a suite member).
    spec: WorkloadSpec | None = None
    #: Content digest of the inline spec ("" for suite jobs) -- part of
    #: the identity so same-named ad-hoc specs can never alias.
    spec_digest: str = ""

    @property
    def group_key(self) -> tuple[str, str]:
        """Jobs with one group key share a trace (and a micro-batch)."""
        return (self.spec_digest or self.trace_name, self.scale)


@lru_cache(maxsize=None)
def _suite_names(scale: str) -> frozenset[str]:
    return frozenset(spec.name for spec in build_suite(scale))


_SPEC_FIELDS = {field.name: field for field in dataclasses.fields(WorkloadSpec)}
_PARAM_FIELDS = {field.name for field in dataclasses.fields(CoreParams)}


def _parse_params(raw: object) -> CoreParams:
    if raw is None:
        return ICELAKE
    if not isinstance(raw, dict):
        raise RequestError("bad-field", "params must be an object of CoreParams fields")
    unknown = sorted(set(raw) - _PARAM_FIELDS)
    if unknown:
        raise RequestError(
            "bad-field",
            f"unknown CoreParams field(s) {unknown}; known: {sorted(_PARAM_FIELDS)}",
        )
    for name, value in raw.items():
        if not isinstance(value, (int, float)):
            raise RequestError("bad-field", f"params.{name} must be a number")
    try:
        return dataclasses.replace(ICELAKE, **raw)
    except (ValueError, TypeError) as error:
        raise RequestError("bad-field", f"invalid params: {error}") from None


def _parse_spec(raw: object, max_events: int) -> WorkloadSpec:
    if not isinstance(raw, dict):
        raise RequestError("bad-field", "spec must be an object of WorkloadSpec fields")
    unknown = sorted(set(raw) - set(_SPEC_FIELDS))
    if unknown:
        raise RequestError(
            "bad-field",
            f"unknown WorkloadSpec field(s) {unknown}; known: {sorted(_SPEC_FIELDS)}",
        )
    for required in ("name", "category", "seed"):
        if required not in raw:
            raise RequestError("bad-field", f"spec.{required} is required")
    try:
        spec = WorkloadSpec(**raw)
    except (ValueError, TypeError) as error:
        raise RequestError("bad-field", f"invalid spec: {error}") from None
    if not isinstance(spec.name, str) or not spec.name:
        raise RequestError("bad-field", "spec.name must be a non-empty string")
    if spec.n_events < 1 or spec.n_events > max_events:
        raise RequestError(
            "bad-field",
            f"spec.n_events must be in [1, {max_events}], got {spec.n_events}",
        )
    return spec


def parse_request(
    payload: object,
    design_keys: frozenset[str] | set[str],
    default_scale: str | None = None,
    max_events: int = 2_000_000,
) -> SimJob:
    """Validate one simulate-request payload into a :class:`SimJob`.

    Raises :class:`RequestError` (mapped to a structured 400) on any
    malformed or unknown field.
    """
    if not isinstance(payload, dict):
        raise RequestError("bad-request", "request body must be a JSON object")
    design_key = payload.get("design")
    if not isinstance(design_key, str) or not design_key:
        raise RequestError("missing-design", "design is required and must be a string")
    if design_key not in design_keys:
        raise RequestError(
            "unknown-design",
            f"unknown design {design_key!r}; options: {sorted(design_keys)}",
            options=sorted(design_keys),
        )
    scale = payload.get("scale", default_scale)
    if scale is None:
        scale = current_scale()
    if scale not in SCALES:
        raise RequestError(
            "unknown-scale",
            f"scale must be one of {sorted(SCALES)}, got {scale!r}",
            options=sorted(SCALES),
        )
    warmup = payload.get("warmup", 0.3)
    if not isinstance(warmup, (int, float)) or isinstance(warmup, bool):
        raise RequestError("bad-warmup", "warmup must be a number")
    warmup = float(warmup)
    if not 0.0 <= warmup < 1.0:
        raise RequestError("bad-warmup", f"warmup must be in [0, 1), got {warmup}")
    params = _parse_params(payload.get("params"))
    app = payload.get("app")
    spec_raw = payload.get("spec")
    if app is not None and spec_raw is not None:
        raise RequestError(
            "ambiguous-workload", "app and spec are mutually exclusive"
        )
    if app is None and spec_raw is None:
        raise RequestError(
            "missing-workload", "exactly one of app / spec is required"
        )
    known = {"design", "scale", "warmup", "params", "app", "spec"}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise RequestError(
            "unknown-field", f"unknown field(s) {unknown}; known: {sorted(known)}"
        )
    if app is not None:
        if not isinstance(app, str):
            raise RequestError("bad-field", "app must be a string")
        if app not in _suite_names(scale):
            raise RequestError(
                "unknown-app", f"no workload named {app!r} at scale {scale!r}"
            )
        return SimJob(
            trace_name=app,
            scale=scale,
            design_key=design_key,
            params=params,
            warmup_fraction=warmup,
        )
    spec = _parse_spec(spec_raw, max_events)
    digest = hashlib.sha256(
        canonical_json(dataclasses.asdict(spec))
    ).hexdigest()
    return SimJob(
        trace_name=spec.name,
        scale=scale,
        design_key=design_key,
        params=params,
        warmup_fraction=warmup,
        spec=spec,
        spec_digest=digest,
    )
