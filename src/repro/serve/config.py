"""Service configuration (``REPRO_SERVE_*`` environment variables).

Every knob has a CLI flag on ``python -m repro serve``; the environment
is the deployment-facing surface (container images set env, operators
rarely edit unit files).  All knobs are documented in README "Serving
the simulator".
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Any


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one service instance.

    Attributes:
        host: listen address (default loopback; serving is trusted-LAN
            infrastructure, not an internet-facing endpoint).
        port: listen port; ``0`` binds an ephemeral port (tests) and the
            bound port is published on ``SimulationService.port``.
        batch_window: seconds a freshly-opened micro-batch stays open to
            collect concurrent requests sharing its trace.
        queue_limit: admission bound on queued-plus-running simulate
            requests; arrivals past it get a structured 429.
        workers: worker threads executing batches (each batch occupies
            one thread; the scheduler bridge may fork below it when
            ``REPRO_SCHED_WORKERS`` says so).
        drain_timeout: seconds a graceful shutdown waits for in-flight
            requests before giving up.
        retry_after: seconds advertised in the 429 ``Retry-After`` header.
        max_body_bytes: request-body cap (413 past it).
        max_events: cap on ``n_events`` of inline ``spec`` requests (an
            unbounded spec would let one request monopolise a worker).
        default_scale: suite scale used when a request omits ``scale``
            (``None``: the process-wide ``REPRO_SCALE`` resolution).
        trace_buffer: capacity of the request-event ring served on
            ``GET /debug/trace`` (``0`` disables request tracing).
        events_path: optional JSONL file every request event is also
            appended to (the ring only holds the recent window).
        store_url: shared result-store backend URL
            (``redis://host:port/db``, ``disk://``, ``fake://name``;
            ``None`` disables the cluster-shared tier).  See README
            "Shared result store".
        store_ttl: single-flight lease TTL seconds; a replica that dies
            mid-simulation orphans its claim for at most this long
            (heartbeats renew at TTL/3 while it computes).
        store_wait: seconds a replica waits for another's publish
            before degrading to local compute (deadlock ceiling).
        store_poll: result-poll cadence while awaiting a publish.
    """

    host: str = "127.0.0.1"
    port: int = 8337
    batch_window: float = 0.02
    queue_limit: int = 64
    workers: int = 2
    drain_timeout: float = 30.0
    retry_after: float = 1.0
    max_body_bytes: int = 1 << 20
    max_events: int = 2_000_000
    default_scale: str | None = None
    trace_buffer: int = 4096
    events_path: str | None = None
    store_url: str | None = None
    store_ttl: float = 30.0
    store_wait: float = 120.0
    store_poll: float = 0.05

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.batch_window < 0:
            raise ValueError("batch_window must be non-negative")
        if self.trace_buffer < 0:
            raise ValueError("trace_buffer must be non-negative")
        if self.store_ttl <= 0:
            raise ValueError("store_ttl must be positive")
        if self.store_wait <= 0:
            raise ValueError("store_wait must be positive")
        if self.store_poll <= 0:
            raise ValueError("store_poll must be positive")

    def replace(self, **changes: Any) -> "ServeConfig":
        return replace(self, **changes)


def config_from_env() -> ServeConfig:
    """Build the default config from ``REPRO_SERVE_*`` variables."""

    def _int(name: str, default: int) -> int:
        raw = os.environ.get(name, "")
        return int(raw) if raw else default

    def _float(name: str, default: float) -> float:
        raw = os.environ.get(name, "")
        return float(raw) if raw else default

    return ServeConfig(
        host=os.environ.get("REPRO_SERVE_HOST") or "127.0.0.1",
        port=_int("REPRO_SERVE_PORT", 8337),
        batch_window=_float("REPRO_SERVE_BATCH_WINDOW", 0.02),
        queue_limit=_int("REPRO_SERVE_QUEUE_LIMIT", 64),
        workers=_int("REPRO_SERVE_WORKERS", 2),
        drain_timeout=_float("REPRO_SERVE_DRAIN_TIMEOUT", 30.0),
        retry_after=_float("REPRO_SERVE_RETRY_AFTER", 1.0),
        max_body_bytes=_int("REPRO_SERVE_MAX_BODY", 1 << 20),
        max_events=_int("REPRO_SERVE_MAX_EVENTS", 2_000_000),
        default_scale=os.environ.get("REPRO_SERVE_SCALE") or None,
        trace_buffer=_int("REPRO_SERVE_TRACE_BUFFER", 4096),
        events_path=os.environ.get("REPRO_SERVE_EVENTS") or None,
        store_url=os.environ.get("REPRO_SERVE_STORE") or None,
        store_ttl=_float("REPRO_SERVE_STORE_TTL", 30.0),
        store_wait=_float("REPRO_SERVE_STORE_WAIT", 120.0),
        store_poll=_float("REPRO_SERVE_STORE_POLL", 0.05),
    )
