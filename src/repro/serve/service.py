"""The asyncio simulation service: batching, backpressure, drain.

Request lifecycle (``POST /v1/simulate``):

1. **admission** -- a draining service answers 503; a service at its
   ``queue_limit`` of queued-plus-running requests answers a structured
   429 with ``Retry-After`` (load-shedding beats unbounded latency).
2. **validation** -- the body parses into a
   :class:`~repro.serve.protocol.SimJob` against the design registry
   (structured 400 on any malformed field).
3. **micro-batching** -- the job lands in the open batch for its
   ``(trace, scale)`` group, or opens one that stays open for
   ``batch_window`` seconds.  Requests that share a trace therefore
   execute together: the decoded columns
   (:meth:`~repro.workloads.trace.Trace.decoded`) are computed once per
   batch, and identical jobs collapse to one simulation (single-flight).
4. **execution** -- the batch runs on a worker thread: warm jobs answer
   from the harness memo / disk cache (or the cluster-shared result
   store, outcome ``"store"``); cold suite jobs run as one in-process
   vectorised multi-design pass over the batch's shared decoded trace
   (or bridge to the shard scheduler,
   :func:`repro.experiments.scheduler.run_grid`, when
   ``REPRO_SCHED_WORKERS``/``SHARDS`` configure sharded execution);
   cold inline-spec jobs simulate directly.  With a shared store
   configured (``--store`` / ``REPRO_SERVE_STORE``), every cold job
   first runs the cross-node single-flight protocol
   (:func:`repro.experiments.resultstore.fetch_or_compute`): exactly
   one replica cluster-wide claims the lease and simulates while the
   others await its published result; a store outage degrades to local
   compute (outcome ``"local"``, ``store_degraded`` event,
   ``serve_store_errors_total`` metric) -- never a wrong answer, never
   a lost request.
5. **response** -- the body is the canonical JSON of
   ``FrontendStats.to_dict()`` (byte-identical to a direct
   :func:`repro.experiments.harness.run_one` caller's serialisation);
   cache outcome and batch size ride in ``X-Repro-*`` headers.

SIGTERM/SIGINT (or :meth:`SimulationService.request_shutdown`) starts a
graceful drain: the listener closes, new requests on live connections
get 503, and every in-flight request is answered before the service
exits (bounded by ``drain_timeout``).

Metrics (when a recording registry is active): ``serve_requests_total``
by outcome, ``serve_request_seconds`` latency (serve-tuned sub-ms
buckets), ``serve_queue_depth``, ``serve_batch_size``,
``serve_cache_outcome_total`` and ``serve_trace_decodes_total``.  The
same numbers are always available as plain counters on ``/v1/stats``
(the tests pin those).

Request tracing: every ``/v1/simulate`` request gets a correlation id
(``X-Repro-Request-Id``) at admission and leaves a hop trail in the
service's event log (:mod:`repro.obs.events`) -- ``admit`` →
``batch-join`` → ``batch-execute`` → ``cache`` → ``respond`` -- with
the batch runner's thread bound to the batch's ids so harness /
disk-cache / scheduler events join each member request's trace.  The
recent ring is served on ``GET /debug/trace``; per-hop timing
(batch-wait / executor-queue / simulate) rides back in ``X-Repro-*``
headers.  ``trace_buffer=0`` disables all of it (null event log).
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from http import HTTPStatus
from typing import Any, Callable
from urllib.parse import parse_qs, urlsplit

from repro.experiments import resultstore
from repro.frontend.simulator import FrontendSimulator
from repro.frontend.stats import FrontendStats
from repro.obs import events as obs_events
from repro.obs.events import EventLog, NullEventLog, bind_rids, new_request_id
from repro.obs.metrics import SERVE_BUCKETS, get_registry
from repro.serve.config import ServeConfig, config_from_env
from repro.serve.protocol import (
    RequestError,
    SimJob,
    canonical_json,
    parse_request,
    stats_payload,
)
from repro.workloads.trace import Trace

__all__ = [
    "BatchOutcome",
    "ServiceHandle",
    "SimulationService",
    "clear_serve_caches",
    "default_batch_runner",
    "serve_in_thread",
]


# -- the default batch runner ------------------------------------------------
#
# Runs on a worker thread.  Tests inject replacement runners (slow ones
# for the backpressure and drain tests), mirroring the scheduler's
# fault-injection runners.


@dataclass
class BatchOutcome:
    """What one executed batch produced.

    Attributes:
        results: per unique job, ``(stats, outcome)`` with outcome one
            of ``"memo"`` / ``"disk"`` / ``"fresh"``.
        decodes: fresh trace decodes this batch forced (0 when the
            trace's decode was already cached, or every job was warm).
    """

    results: dict[SimJob, tuple[FrontendStats, str]] = field(default_factory=dict)
    decodes: int = 0


#: Serve-local caches for inline-spec (ad-hoc) jobs, which the harness
#: memo (keyed by suite trace names) cannot hold.  Keyed by spec digest
#: so same-named specs never alias.
_ADHOC_TRACES: dict[str, Trace] = {}
_ADHOC_MEMO: dict[tuple, FrontendStats] = {}
_ADHOC_TRACE_CAP = 32


def clear_serve_caches() -> None:
    """Drop the ad-hoc trace/result caches (tests use this)."""
    _ADHOC_TRACES.clear()
    _ADHOC_MEMO.clear()


def _adhoc_result_key(job: SimJob) -> str:
    from repro.experiments import diskcache

    return diskcache.result_key(
        job.trace_name, job.scale, job.design_key, job.params,
        job.warmup_fraction, spec=job.spec,
    )


def _lookup_adhoc(job: SimJob) -> tuple[FrontendStats | None, str]:
    from repro.experiments import diskcache

    key = (job.spec_digest, job.design_key, job.params, job.warmup_fraction)
    stats = _ADHOC_MEMO.get(key)
    if stats is not None:
        return stats, "memo"
    if diskcache.disk_cache_enabled():
        stats = diskcache.load_result(_adhoc_result_key(job))
        if stats is not None:
            _ADHOC_MEMO[key] = stats
            return stats, "disk"
    store = resultstore.get_active_store()
    if store is not None:
        try:
            stats = store.get_result(_adhoc_result_key(job))
        except resultstore.StoreError as error:
            resultstore.degraded(
                "get_result", error, app=job.trace_name, design=job.design_key
            )
            stats = None
        if stats is not None:
            _ADHOC_MEMO[key] = stats
            return stats, "store"
    return None, "miss"


def _resolve_trace(job: SimJob) -> Trace:
    if job.spec is None:
        from repro.workloads.suite import get_trace

        return get_trace(job.trace_name, job.scale)
    trace = _ADHOC_TRACES.get(job.spec_digest)
    if trace is None:
        from repro.experiments import diskcache
        from repro.workloads.generator import generate_trace

        trace = diskcache.load_trace(job.spec)
        if trace is None:
            trace = generate_trace(job.spec)
            diskcache.store_trace(job.spec, trace)
        while len(_ADHOC_TRACES) >= _ADHOC_TRACE_CAP:
            _ADHOC_TRACES.pop(next(iter(_ADHOC_TRACES)))
        _ADHOC_TRACES[job.spec_digest] = trace
    return trace


def _run_group_pass(
    misses: list[SimJob],
    registry: dict[str, Any],
    results: dict[SimJob, tuple[FrontendStats, str]],
) -> None:
    """Cross-job batching: run the group's cold suite jobs in-process.

    Every job of a batch shares a ``(trace, scale)`` group, so the
    designs execute back to back over the *same* decoded trace: the
    columnar extraction, ICache replay, RAS replay and TAGE direction
    replay are all memoised on the :class:`DecodedTrace` and computed
    once for the whole batch -- one vectorised multi-design pass.  Each
    design still runs through :func:`repro.experiments.harness.run_one`,
    so responses stay byte-identical to a direct caller's and results
    land in the same memo/disk caches.
    """
    from repro.experiments import harness

    for job in misses:
        stats = harness.run_one(
            job.trace_name, registry[job.design_key],
            params=job.params, warmup_fraction=job.warmup_fraction,
            scale=job.scale,
        )
        results[job] = (stats, "fresh")


def _run_suite_misses(
    misses: list[SimJob],
    registry: dict[str, Any],
    results: dict[SimJob, tuple[FrontendStats, str]],
) -> None:
    """Bridge cold suite jobs to the shard scheduler, one grid per
    (warmup, params) group (``run_grid`` keys everything by design key,
    so per-design parameter variants must not share a grid)."""
    from repro.experiments import harness, scheduler
    from repro.workloads.suite import build_suite

    lead = misses[0]
    spec = next(
        (s for s in build_suite(lead.scale) if s.name == lead.trace_name), None
    )
    groups: dict[tuple[float, Any], dict[str, SimJob]] = {}
    for job in misses:
        groups.setdefault((job.warmup_fraction, job.params), {})[job.design_key] = job
    for (warmup, params), by_design in groups.items():
        designs = [registry[name] for name in by_design]
        report = scheduler.run_grid(
            designs,
            params_by_design={design.key: params for design in designs},
            warmup_fraction=warmup,
            scale=lead.scale,
            specs=[spec] if spec is not None else None,
        )
        for name, job in by_design.items():
            design = registry[name]
            stats = report.merged.get((job.trace_name, design.key))
            if stats is not None:
                harness.adopt_result(
                    job.trace_name, design, stats,
                    params=params, warmup_fraction=warmup, scale=job.scale,
                )
            else:
                # A shard exhausted its retries: degrade to an inline
                # run (memoised + disk-cached by the harness itself).
                stats = harness.run_one(
                    job.trace_name, design,
                    params=params, warmup_fraction=warmup, scale=job.scale,
                )
            results[job] = (stats, "fresh")


def _simulate_adhoc(job: SimJob, trace: Trace, registry: dict[str, Any]) -> FrontendStats:
    from repro.experiments import diskcache

    design = registry[job.design_key]
    btb, simulator_kwargs = design.build()
    simulator = FrontendSimulator(btb, params=job.params, **simulator_kwargs)
    stats = simulator.run(trace, warmup_fraction=job.warmup_fraction)
    _ADHOC_MEMO[(job.spec_digest, job.design_key, job.params, job.warmup_fraction)] = stats
    diskcache.store_result(_adhoc_result_key(job), stats)
    return stats


def _run_store_misses(
    store: "resultstore.ResultStore",
    opts: dict,
    misses: list[SimJob],
    registry: dict[str, Any],
    outcome: BatchOutcome,
) -> None:
    """Cluster-wide single-flight for a batch's cold jobs.

    Each job's content-addressed key runs through
    :func:`repro.experiments.resultstore.fetch_or_compute`: one replica
    cluster-wide wins the lease CAS and simulates (outcome ``fresh``),
    the rest await its publish (outcome ``store``); a backend failure
    or an over-long wait degrades to local compute (outcome ``local``).
    The trace is resolved and decoded lazily -- a batch fully answered
    by other replicas' publishes never touches trace data at all.
    """
    from repro.experiments import harness

    lead = misses[0]
    state: dict[str, Trace] = {}

    def ensure_trace() -> Trace:
        trace = state.get("trace")
        if trace is None:
            trace = _resolve_trace(lead)
            if not trace.is_decoded:
                outcome.decodes = 1
            trace.decoded()
            state["trace"] = trace
        return trace

    for job in misses:
        if job.spec is None:
            # Key by the *resolved* design's key, not the request's
            # registry name: aliases ("baseline" -> "baseline-4096")
            # must share one store slot with harness/disk publishes.
            key = harness.result_store_key(
                job.trace_name, registry[job.design_key].key, job.params,
                job.warmup_fraction, job.scale,
            )

            def compute(job: SimJob = job) -> FrontendStats:
                ensure_trace()
                return harness.run_one(
                    job.trace_name, registry[job.design_key],
                    params=job.params, warmup_fraction=job.warmup_fraction,
                    scale=job.scale,
                )

        else:
            key = _adhoc_result_key(job)

            def compute(job: SimJob = job) -> FrontendStats:
                return _simulate_adhoc(job, ensure_trace(), registry)

        stats, kind = resultstore.fetch_or_compute(
            store, key, compute,
            ttl=opts.get("ttl", 30.0),
            wait_timeout=opts.get("wait", 120.0),
            poll_interval=opts.get("poll", 0.05),
            context={"app": job.trace_name, "design": job.design_key},
        )
        if kind == "store":
            # Another replica paid for the simulation: adopt the value
            # into the local memo so the next lookup never leaves the
            # process.
            if job.spec is None:
                harness.adopt_result(
                    job.trace_name, registry[job.design_key], stats,
                    params=job.params, warmup_fraction=job.warmup_fraction,
                    scale=job.scale,
                )
            else:
                _ADHOC_MEMO[
                    (job.spec_digest, job.design_key, job.params, job.warmup_fraction)
                ] = stats
        outcome.results[job] = (stats, kind)


def default_batch_runner(
    jobs: list[SimJob],
    store: "resultstore.ResultStore | None" = None,
    store_opts: dict | None = None,
) -> BatchOutcome:
    """Answer every unique job of one batch (all share a trace).

    Warm jobs never touch the trace at all; the trace is resolved and
    decoded (once) only when at least one job must actually simulate.
    With a shared store active, cold jobs run the cross-node
    single-flight protocol instead of simulating unconditionally.
    """
    from repro.experiments import harness
    from repro.experiments.designs import design_registry

    registry = design_registry()
    outcome = BatchOutcome()
    misses: list[SimJob] = []
    for job in jobs:
        if job.spec is None:
            stats, kind = harness.lookup_cached(
                job.trace_name, registry[job.design_key],
                params=job.params, warmup_fraction=job.warmup_fraction,
                scale=job.scale,
            )
        else:
            stats, kind = _lookup_adhoc(job)
        if stats is None:
            misses.append(job)
        else:
            outcome.results[job] = (stats, kind)
    if not misses:
        return outcome
    store = store if store is not None else resultstore.get_active_store()
    if store is not None:
        _run_store_misses(store, store_opts or {}, misses, registry, outcome)
        return outcome
    trace = _resolve_trace(misses[0])
    if not trace.is_decoded:
        outcome.decodes = 1
    trace.decoded()
    suite_misses = [job for job in misses if job.spec is None]
    if suite_misses:
        # Sharded execution (REPRO_SCHED_WORKERS/SHARDS) keeps the
        # scheduler bridge -- fork isolation and retries are the point
        # there.  Otherwise the group runs as one in-process vectorised
        # multi-design pass over the decode paid just above.
        from repro.experiments import scheduler

        sched = scheduler.config_from_env()
        if sched.workers > 1 or sched.shards > 1:
            _run_suite_misses(suite_misses, registry, outcome.results)
        else:
            _run_group_pass(suite_misses, registry, outcome.results)
    for job in misses:
        if job.spec is not None:
            outcome.results[job] = (_simulate_adhoc(job, trace, registry), "fresh")
    return outcome


# -- batching ---------------------------------------------------------------


class _Batch:
    """One open micro-batch: unique jobs -> the waiters awaiting them.

    Each waiter is ``(future, rid)`` -- the correlation id rides along
    so batch execution and cache outcomes land in every member
    request's trace.
    """

    __slots__ = ("batch_id", "group_key", "jobs", "closed", "size")

    def __init__(self, batch_id: str, group_key: tuple[str, str]) -> None:
        self.batch_id = batch_id
        self.group_key = group_key
        self.jobs: dict[SimJob, list[tuple[asyncio.Future, str]]] = {}
        self.closed = False
        self.size = 0

    def add(self, job: SimJob, future: asyncio.Future, rid: str) -> None:
        self.jobs.setdefault(job, []).append((future, rid))
        self.size += 1

    def rids(self) -> list[str]:
        return [rid for waiters in self.jobs.values() for _, rid in waiters]


# -- the service ------------------------------------------------------------


class SimulationService:
    """Asyncio HTTP/JSON front door over the experiment stack.

    Args:
        config: service knobs (default: ``REPRO_SERVE_*`` environment).
        runner: batch executor ``runner(jobs) -> BatchOutcome`` run on a
            worker thread (default :func:`default_batch_runner`; tests
            inject slow or counting runners, as the scheduler's fault
            tests do).
        store: shared result store for cross-replica dedup (default:
            built from ``config.store_url``; tests inject a
            :class:`~repro.experiments.resultstore.FakeStore` shared by
            several in-process replicas).  A non-None store is also
            installed process-wide so the harness cache-lookup path
            consults it.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        runner: Callable[[list[SimJob]], BatchOutcome] | None = None,
        store: "resultstore.ResultStore | None" = None,
    ) -> None:
        self.config = config or config_from_env()
        self.store = (
            store
            if store is not None
            else resultstore.store_from_url(self.config.store_url)
        )
        if self.store is not None:
            resultstore.set_active_store(self.store)
        store_opts = {
            "ttl": self.config.store_ttl,
            "wait": self.config.store_wait,
            "poll": self.config.store_poll,
        }
        if runner is not None:
            self._runner = runner
        elif self.store is not None:
            self._runner = lambda jobs: default_batch_runner(
                jobs, store=self.store, store_opts=store_opts
            )
        else:
            self._runner = default_batch_runner
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_event: asyncio.Event | None = None
        self._batches: dict[tuple[str, str], _Batch] = {}
        self._batch_seq = itertools.count(1)
        self._inflight = 0
        self._draining = False
        #: Request-event log: ring served on /debug/trace (+ optional
        #: JSONL sink).  trace_buffer=0 turns tracing off entirely.
        self.events: EventLog | NullEventLog = (
            EventLog(
                capacity=self.config.trace_buffer,
                sink_path=self.config.events_path,
            )
            if self.config.trace_buffer > 0
            else NullEventLog()
        )
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        from repro.experiments.designs import design_registry

        self._design_keys = frozenset(design_registry())
        #: Bound port once listening (== config.port unless that was 0).
        self.port: int | None = None
        #: Strong refs to in-flight batch-flush tasks: the event loop
        #: only holds weak references, so an unreferenced task can be
        #: garbage-collected mid-flight and its exception lost (REP102).
        self._background: set[asyncio.Task] = set()
        self.counters: dict[str, Any] = {
            "requests_total": 0,
            "ok": 0,
            "bad_requests": 0,
            "rejected": 0,
            "draining_rejected": 0,
            "errors": 0,
            "batches": 0,
            "batched_requests": 0,
            "max_batch_size": 0,
            "trace_decodes": 0,
            "fresh_jobs": 0,
            "outcomes": {"memo": 0, "disk": 0, "fresh": 0, "store": 0, "local": 0},
        }

    # -- lifecycle -----------------------------------------------------------

    async def serve_forever(self, _on_ready: Callable[[], None] | None = None) -> None:
        """Listen, serve until a shutdown is requested, then drain."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        installed_signals = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(signum, self._shutdown_event.set)
                installed_signals.append(signum)
            except (RuntimeError, NotImplementedError, ValueError):
                pass  # non-main thread or unsupported platform
        try:
            # The service's event log becomes the process-wide active
            # one while serving, so emissions from the deep layers
            # (harness, disk cache, scheduler) land in the same ring as
            # the service's own hop events.
            with obs_events.use_event_log(self.events):
                if _on_ready is not None:
                    _on_ready()
                await self._shutdown_event.wait()
                # Graceful drain: stop accepting, let in-flight work finish.
                self._draining = True
                server.close()
                await server.wait_closed()
                deadline = self._loop.time() + self.config.drain_timeout
                while self._inflight > 0 and self._loop.time() < deadline:
                    await asyncio.sleep(0.01)
        finally:
            for signum in installed_signals:
                self._loop.remove_signal_handler(signum)
            server.close()
            self._executor.shutdown(wait=False, cancel_futures=True)
            self.events.close()

    def request_shutdown(self) -> None:
        """Begin a graceful drain (thread-safe; signals route here too)."""
        loop, event = self._loop, self._shutdown_event
        if loop is None or event is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(event.set)

    @property
    def draining(self) -> bool:
        return self._draining

    # -- admission + batching ------------------------------------------------

    async def _submit(
        self, job: SimJob, rid: str
    ) -> tuple[FrontendStats, str, int, tuple[float, float, float]]:
        loop = asyncio.get_running_loop()
        batch = self._batches.get(job.group_key)
        if batch is None or batch.closed:
            batch = _Batch(f"b{next(self._batch_seq):05d}", job.group_key)
            self._batches[job.group_key] = batch
            task = asyncio.ensure_future(self._flush_batch(batch))
            self._background.add(task)
            task.add_done_callback(self._background.discard)
        future: asyncio.Future = loop.create_future()
        batch.add(job, future, rid)
        self.events.emit(
            "batch-join", rid=rid, batch=batch.batch_id,
            group=list(batch.group_key), design=job.design_key,
        )
        return await future

    def _execute_batch(
        self, jobs: list[SimJob], rids: list[str], batch_id: str, size: int
    ) -> tuple[BatchOutcome, float, float]:
        """Worker-thread wrapper around the (injectable) runner: binds
        the batch's correlation ids so deep-layer events join every
        member request's trace, and times the actual execution."""
        with bind_rids(*rids):
            exec_start = time.monotonic()
            self.events.emit(
                "batch-execute", batch=batch_id, jobs=len(jobs),
                size=size, rids=rids,
            )
            outcome = self._runner(jobs)
            exec_end = time.monotonic()
        return outcome, exec_start, exec_end

    async def _flush_batch(self, batch: _Batch) -> None:
        try:
            if self.config.batch_window > 0:
                await asyncio.sleep(self.config.batch_window)
        finally:
            batch.closed = True
            if self._batches.get(batch.group_key) is batch:
                del self._batches[batch.group_key]
        registry = get_registry()
        self.counters["batches"] += 1
        self.counters["batched_requests"] += batch.size
        if batch.size > self.counters["max_batch_size"]:
            self.counters["max_batch_size"] = batch.size
        registry.histogram(
            "serve_batch_size", "simulate requests per executed micro-batch",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128),
        ).observe(batch.size)
        jobs = list(batch.jobs)
        flush_ts = time.monotonic()
        try:
            outcome, exec_start, exec_end = (
                await asyncio.get_running_loop().run_in_executor(
                    self._executor, self._execute_batch,
                    jobs, batch.rids(), batch.batch_id, batch.size,
                )
            )
        except Exception as exc:  # noqa: BLE001 - surfaced as per-request 500s
            for waiters in batch.jobs.values():
                for future, _rid in waiters:
                    if not future.done():
                        future.set_exception(exc)
            return
        timing = (flush_ts, exec_start, exec_end)
        self.counters["trace_decodes"] += outcome.decodes
        if outcome.decodes:
            registry.counter(
                "serve_trace_decodes_total", "fresh trace decodes forced by batches"
            ).inc(outcome.decodes)
        for job, waiters in batch.jobs.items():
            result = outcome.results.get(job)
            if result is None:
                error = RuntimeError(f"runner returned no result for {job.trace_name}")
                for future, _rid in waiters:
                    if not future.done():
                        future.set_exception(error)
                continue
            stats, kind = result
            if kind in ("fresh", "local"):
                # "local" is a degraded fresh simulation: the shared
                # store was unreachable, so this replica computed.
                self.counters["fresh_jobs"] += 1
            self.counters["outcomes"][kind] = (
                self.counters["outcomes"].get(kind, 0) + len(waiters)
            )
            registry.counter(
                "serve_cache_outcome_total", "simulate requests by cache outcome"
            ).inc(len(waiters), outcome=kind)
            for future, rid in waiters:
                self.events.emit(
                    "cache", rid=rid, batch=batch.batch_id, outcome=kind,
                )
                if not future.done():
                    future.set_result((stats, kind, batch.size, timing))

    # -- request handlers ----------------------------------------------------

    def _reject(
        self,
        rid: str,
        status: HTTPStatus,
        code: str,
        message: str,
        options: list[str] | None = None,
    ) -> tuple[int, bytes, dict[str, str]]:
        """A structured rejection, traced and tagged with the rid."""
        self.events.emit("respond", rid=rid, status=int(status), outcome=code)
        result = _error(status, code, message, options)
        result[2]["X-Repro-Request-Id"] = rid
        return result

    async def _simulate(self, body: bytes) -> tuple[int, bytes, dict[str, str]]:
        registry = get_registry()
        rid = new_request_id()
        self.events.emit("admit", rid=rid, bytes=len(body))
        self.counters["requests_total"] += 1
        if self._draining:
            self.counters["draining_rejected"] += 1
            registry.counter(
                "serve_requests_total", "simulate requests by outcome"
            ).inc(outcome="draining")
            return self._reject(rid, HTTPStatus.SERVICE_UNAVAILABLE, "draining",
                                "service is draining for shutdown")
        try:
            payload = json.loads(body)
        except ValueError:
            self.counters["bad_requests"] += 1
            registry.counter(
                "serve_requests_total", "simulate requests by outcome"
            ).inc(outcome="bad-request")
            return self._reject(rid, HTTPStatus.BAD_REQUEST, "bad-json",
                                "request body is not valid JSON")
        try:
            job = parse_request(
                payload,
                self._design_keys,
                default_scale=self.config.default_scale,
                max_events=self.config.max_events,
            )
        except RequestError as error:
            self.counters["bad_requests"] += 1
            registry.counter(
                "serve_requests_total", "simulate requests by outcome"
            ).inc(outcome="bad-request")
            return self._reject(
                rid, HTTPStatus.BAD_REQUEST, error.code, error.message,
                options=error.options,
            )
        if self._inflight >= self.config.queue_limit:
            self.counters["rejected"] += 1
            registry.counter(
                "serve_requests_total", "simulate requests by outcome"
            ).inc(outcome="rejected")
            retry_after = max(1, round(self.config.retry_after))
            status, body_bytes, headers = self._reject(
                rid, HTTPStatus.TOO_MANY_REQUESTS, "queue-full",
                f"admission queue is full ({self.config.queue_limit} in flight); "
                f"retry after {retry_after}s",
            )
            headers["Retry-After"] = str(retry_after)
            return status, body_bytes, headers
        started = time.monotonic()
        self._inflight += 1
        registry.gauge(
            "serve_queue_depth", "simulate requests queued or running"
        ).set(self._inflight)
        try:
            stats, kind, batch_size, timing = await self._submit(job, rid)
        except Exception as exc:  # noqa: BLE001 - reported as a structured 500
            self.counters["errors"] += 1
            registry.counter(
                "serve_requests_total", "simulate requests by outcome"
            ).inc(outcome="error")
            return self._reject(rid, HTTPStatus.INTERNAL_SERVER_ERROR, "internal",
                                f"{type(exc).__name__}: {exc}")
        finally:
            self._inflight -= 1
            registry.gauge(
                "serve_queue_depth", "simulate requests queued or running"
            ).set(self._inflight)
            registry.histogram(
                "serve_request_seconds", "simulate request latency",
                buckets=SERVE_BUCKETS,
            ).observe(time.monotonic() - started, design=job.design_key)
        self.counters["ok"] += 1
        registry.counter(
            "serve_requests_total", "simulate requests by outcome"
        ).inc(outcome="ok")
        # Per-hop latency decomposition (all monotonic-clock deltas):
        # how long the request sat in its open micro-batch, how long
        # the closed batch waited for an executor thread, and how long
        # the runner actually took.
        flush_ts, exec_start, exec_end = timing
        seconds = time.monotonic() - started
        batch_wait_s = max(0.0, flush_ts - started)
        queue_s = max(0.0, exec_start - flush_ts)
        simulate_s = max(0.0, exec_end - exec_start)
        self.events.emit(
            "respond", rid=rid, status=200, outcome=kind,
            app=job.trace_name, design=job.design_key,
            seconds=round(seconds, 6),
            batch_wait_s=round(batch_wait_s, 6),
            queue_s=round(queue_s, 6),
            simulate_s=round(simulate_s, 6),
        )
        return (
            HTTPStatus.OK,
            stats_payload(stats),
            {
                "X-Repro-Outcome": kind,
                "X-Repro-Batch-Size": str(batch_size),
                "X-Repro-App": job.trace_name,
                "X-Repro-Design": job.design_key,
                "X-Repro-Request-Id": rid,
                "X-Repro-Batch-Wait-Seconds": f"{batch_wait_s:.6f}",
                "X-Repro-Queue-Seconds": f"{queue_s:.6f}",
                "X-Repro-Simulate-Seconds": f"{simulate_s:.6f}",
            },
        )

    def stats_snapshot(self) -> dict:
        """Everything ``/v1/stats`` serves (plain counters, no registry)."""
        from repro.experiments import diskcache, harness, scheduler

        service = {
            key: (dict(value) if isinstance(value, dict) else value)
            for key, value in self.counters.items()
        }
        service["queue_depth"] = self._inflight
        service["queue_limit"] = self.config.queue_limit
        service["draining"] = self._draining
        return {
            "service": service,
            "scheduler": scheduler.session_counters(),
            "harness_cache": harness.cache_info(),
            "disk_cache": diskcache.disk_cache_info(),
            "result_store": (
                self.store.describe() if self.store is not None else {"kind": "none"}
            ),
        }

    async def _dispatch(
        self,
        method: str,
        target: str,
        body: bytes,
        request_headers: dict[str, str] | None = None,
    ) -> tuple[int, bytes, dict[str, str]]:
        request_headers = request_headers or {}
        parts = urlsplit(target)
        path = parts.path
        if path == "/v1/simulate":
            if method != "POST":
                return _error(HTTPStatus.METHOD_NOT_ALLOWED, "bad-method",
                              "simulate requires POST")
            return await self._simulate(body)
        if method != "GET":
            return _error(HTTPStatus.METHOD_NOT_ALLOWED, "bad-method",
                          f"{path} requires GET")
        if path == "/healthz":
            status = "draining" if self._draining else "ok"
            return HTTPStatus.OK, canonical_json(
                {
                    "status": status,
                    "inflight": self._inflight,
                    "events": self.events.drain_info(),
                }
            ), {}
        if path == "/metrics":
            accept = request_headers.get("accept", "")
            if "text/plain" in accept:
                return (
                    HTTPStatus.OK,
                    get_registry().to_prometheus_text().encode(),
                    {"Content-Type": "text/plain; version=0.0.4; charset=utf-8"},
                )
            return HTTPStatus.OK, get_registry().to_json().encode(), {}
        if path == "/debug/trace":
            query = parse_qs(parts.query)
            rid = query.get("rid", [None])[0]
            event = query.get("event", [None])[0]
            limit_raw = query.get("limit", [None])[0]
            try:
                limit = int(limit_raw) if limit_raw is not None else None
            except ValueError:
                return _error(HTTPStatus.BAD_REQUEST, "bad-limit",
                              f"limit must be an integer, got {limit_raw!r}")
            if rid is not None:
                records = self.events.for_request(rid)
            else:
                records = self.events.recent(limit=limit, event=event)
            return HTTPStatus.OK, canonical_json(
                {"drain": self.events.drain_info(), "records": records}
            ), {}
        if path == "/v1/stats":
            return HTTPStatus.OK, canonical_json(self.stats_snapshot()), {}
        if path == "/v1/designs":
            return HTTPStatus.OK, canonical_json(sorted(self._design_keys)), {}
        if path == "/v1/apps":
            from repro.workloads.suite import SCALES, build_suite, current_scale

            query = parse_qs(parts.query)
            scale = query.get("scale", [None])[0] or self.config.default_scale
            scale = scale or current_scale()
            if scale not in SCALES:
                return _error(HTTPStatus.BAD_REQUEST, "unknown-scale",
                              f"scale must be one of {sorted(SCALES)}")
            return HTTPStatus.OK, canonical_json(
                [spec.name for spec in build_suite(scale)]
            ), {}
        return _error(HTTPStatus.NOT_FOUND, "not-found", f"no route for {path}")

    # -- the HTTP layer ------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, keep_alive, body, request_headers, parse_error = request
                if parse_error is not None:
                    status, payload, headers = parse_error
                    keep_alive = False
                else:
                    status, payload, headers = await self._dispatch(
                        method, target, body, request_headers
                    )
                keep_alive = keep_alive and not self._draining
                writer.write(_encode_response(status, payload, headers, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # event-loop teardown after the drain completed
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one HTTP/1.1 request.  Returns ``None`` on clean EOF, or
        ``(method, target, keep_alive, body, headers, error)`` where a
        non-None ``error`` is a ready-to-send response triple."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, version = line.decode("latin-1").split()
        except ValueError:
            return "", "", False, b"", {}, _error(
                HTTPStatus.BAD_REQUEST, "bad-request", "malformed request line"
            )
        headers: dict[str, str] = {}
        while True:
            header_line = await reader.readline()
            if header_line in (b"\r\n", b"\n", b""):
                break
            name, _, value = header_line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
            if len(headers) > 100:
                return method, target, False, b"", headers, _error(
                    HTTPStatus.BAD_REQUEST, "bad-request", "too many headers"
                )
        keep_alive = (
            version == "HTTP/1.1"
            and headers.get("connection", "").lower() != "close"
        )
        raw_length = headers.get("content-length", "0") or "0"
        try:
            length = int(raw_length)
        except ValueError:
            return method, target, False, b"", headers, _error(
                HTTPStatus.BAD_REQUEST, "bad-request",
                f"bad Content-Length {raw_length!r}",
            )
        if length < 0 or length > self.config.max_body_bytes:
            return method, target, False, b"", headers, _error(
                HTTPStatus.REQUEST_ENTITY_TOO_LARGE, "too-large",
                f"body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit",
            )
        body = await reader.readexactly(length) if length else b""
        return method, target, keep_alive, body, headers, None


def _error(
    status: HTTPStatus,
    code: str,
    message: str,
    options: list[str] | None = None,
) -> tuple[int, bytes, dict[str, str]]:
    error: dict[str, object] = {"code": code, "message": message}
    if options is not None:
        # Valid values for the rejected field (e.g. the live design
        # registry), so clients can self-correct from the 400 alone.
        error["options"] = options
    body = canonical_json({"ok": False, "error": error})
    return int(status), body, {}


def _encode_response(
    status: int, body: bytes, headers: dict[str, str], keep_alive: bool
) -> bytes:
    content_type = headers.get("Content-Type", "application/json")
    lines = [
        f"HTTP/1.1 {status} {HTTPStatus(status).phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(
        f"{name}: {value}"
        for name, value in headers.items()
        if name != "Content-Type"
    )
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


# -- in-process hosting (tests, notebooks) -----------------------------------


@dataclass
class ServiceHandle:
    """A service running on a background thread (its own event loop)."""

    service: SimulationService
    thread: threading.Thread

    @property
    def port(self) -> int:
        assert self.service.port is not None
        return self.service.port

    def shutdown(self, timeout: float = 15.0) -> None:
        """Graceful drain, then join the hosting thread."""
        self.service.request_shutdown()
        self.thread.join(timeout)


def serve_in_thread(
    config: ServeConfig | None = None,
    runner: Callable[[list[SimJob]], BatchOutcome] | None = None,
    store: "resultstore.ResultStore | None" = None,
) -> ServiceHandle:
    """Boot a service on a daemon thread and wait until it listens.

    The end-to-end tests use this (with ``port=0`` for an ephemeral
    port); production deployments run ``python -m repro serve`` instead.
    The distributed tests boot several of these over one shared
    ``store`` to exercise cross-replica single-flight in-process.
    """
    service = SimulationService(config=config, runner=runner, store=store)
    ready = threading.Event()
    failure: list[BaseException] = []

    def _run() -> None:
        try:
            asyncio.run(service.serve_forever(_on_ready=ready.set))
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            failure.append(exc)
            ready.set()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=15.0):
        raise RuntimeError("service did not start listening within 15s")
    if failure:
        raise RuntimeError(f"service failed to start: {failure[0]}") from failure[0]
    return ServiceHandle(service=service, thread=thread)
