"""Blocking HTTP client for the simulation service.

``ServeClient`` is what ``repro submit`` and the end-to-end tests use:
a thin stdlib :mod:`http.client` wrapper that speaks the service's
JSON protocol and surfaces its structured errors as
:class:`ServiceError` (status + machine-readable code + message +
``Retry-After`` when the service is shedding load).

Each call opens its own connection, so one client instance is safe to
share across threads (the concurrency tests hammer a single client from
a pool of threads).
"""

from __future__ import annotations

import http.client
import json
from dataclasses import asdict, dataclass, field
from typing import Any

from repro.serve.protocol import canonical_json
from repro.workloads.spec import WorkloadSpec

__all__ = ["ServeClient", "ServiceError", "SimulateResponse"]


class ServiceError(RuntimeError):
    """A structured (non-2xx) answer from the service."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        retry_after: float | None = None,
        options: list[str] | None = None,
    ) -> None:
        super().__init__(f"[{status}/{code}] {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after
        #: Valid values for the rejected field, when the service
        #: enumerated them (e.g. the live design registry).
        self.options = options


@dataclass
class SimulateResponse:
    """One successful simulation answer.

    Attributes:
        body: the exact response bytes -- the canonical JSON of
            ``FrontendStats.to_dict()``, byte-identical to a direct
            harness caller's serialisation (tests pin this).
        result: the parsed body.
        outcome: cache outcome (``memo`` / ``disk`` / ``fresh``).
        batch_size: how many requests shared this request's micro-batch.
        request_id: the server-assigned correlation id
            (``X-Repro-Request-Id``) -- feed it to :meth:`ServeClient.
            debug_trace` to reconstruct the request's hop sequence.
        timing: server-reported per-hop latency decomposition in seconds
            (``batch_wait`` / ``queue`` / ``simulate``) from the
            ``X-Repro-*-Seconds`` headers.
    """

    body: bytes
    result: dict = field(default_factory=dict)
    outcome: str = ""
    batch_size: int = 1
    request_id: str = ""
    timing: dict = field(default_factory=dict)


class ServeClient:
    """Blocking client bound to one ``host:port``."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8337, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- raw transport -------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        extra_headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            if extra_headers:
                headers.update(extra_headers)
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
            header_map = {name.lower(): value for name, value in response.getheaders()}
            return response.status, header_map, payload
        finally:
            connection.close()

    @staticmethod
    def _raise_for_error(status: int, headers: dict[str, str], payload: bytes) -> None:
        if status < 400:
            return
        code, message = "unknown", payload.decode("utf-8", "replace")
        options = None
        try:
            error = json.loads(payload)["error"]
            code, message = error["code"], error["message"]
            options = error.get("options")
        except (ValueError, KeyError, TypeError):
            pass
        retry_after = None
        if "retry-after" in headers:
            try:
                retry_after = float(headers["retry-after"])
            except ValueError:
                pass
        raise ServiceError(
            status, code, message, retry_after=retry_after, options=options
        )

    def _get_json(self, path: str) -> Any:
        status, headers, payload = self._request("GET", path)
        self._raise_for_error(status, headers, payload)
        return json.loads(payload)

    # -- the protocol --------------------------------------------------------

    def simulate(
        self,
        design: str,
        app: str | None = None,
        spec: WorkloadSpec | None = None,
        params: dict | None = None,
        warmup: float | None = None,
        scale: str | None = None,
    ) -> SimulateResponse:
        """Submit one simulation request and block for its answer.

        Exactly one of ``app`` (a suite workload name) or ``spec`` (an
        inline :class:`WorkloadSpec`) must be given, mirroring the wire
        protocol.  Raises :class:`ServiceError` on any structured
        rejection (400 validation, 429 queue-full, 503 draining).
        """
        request: dict[str, Any] = {"design": design}
        if app is not None:
            request["app"] = app
        if spec is not None:
            request["spec"] = asdict(spec)
        if params is not None:
            request["params"] = params
        if warmup is not None:
            request["warmup"] = warmup
        if scale is not None:
            request["scale"] = scale
        status, headers, payload = self._request(
            "POST", "/v1/simulate", canonical_json(request)
        )
        self._raise_for_error(status, headers, payload)
        timing = {}
        for hop, header in (
            ("batch_wait", "x-repro-batch-wait-seconds"),
            ("queue", "x-repro-queue-seconds"),
            ("simulate", "x-repro-simulate-seconds"),
        ):
            if header in headers:
                try:
                    timing[hop] = float(headers[header])
                except ValueError:
                    pass
        return SimulateResponse(
            body=payload,
            result=json.loads(payload),
            outcome=headers.get("x-repro-outcome", ""),
            batch_size=int(headers.get("x-repro-batch-size", "1")),
            request_id=headers.get("x-repro-request-id", ""),
            timing=timing,
        )

    def health(self) -> dict:
        return self._get_json("/healthz")

    def stats(self) -> dict:
        return self._get_json("/v1/stats")

    def metrics(self) -> dict:
        return self._get_json("/metrics")

    def metrics_text(self) -> str:
        """The ``/metrics`` snapshot in Prometheus text exposition
        format (the server switches on ``Accept: text/plain``)."""
        status, headers, payload = self._request(
            "GET", "/metrics", extra_headers={"Accept": "text/plain"}
        )
        self._raise_for_error(status, headers, payload)
        return payload.decode()

    def debug_trace(
        self,
        rid: str | None = None,
        limit: int | None = None,
        event: str | None = None,
    ) -> dict:
        """The service's recent request-event ring (``/debug/trace``).

        With ``rid``, only that request's hop records; otherwise the
        recent window, optionally filtered by event name / capped.
        """
        params = []
        if rid is not None:
            params.append(f"rid={rid}")
        if limit is not None:
            params.append(f"limit={limit}")
        if event is not None:
            params.append(f"event={event}")
        path = "/debug/trace" + ("?" + "&".join(params) if params else "")
        return self._get_json(path)

    def designs(self) -> list[str]:
        return self._get_json("/v1/designs")

    def apps(self, scale: str | None = None) -> list[str]:
        path = "/v1/apps" + (f"?scale={scale}" if scale else "")
        return self._get_json(path)
