"""57-bit virtual-address arithmetic: region / page / offset partitioning.

PDede (Section 3.3) splits a branch-target address into three components:

* ``offset``  -- the low 12 bits (position inside a 4 KiB page),
* ``page``    -- the next 16 bits (position of the page inside a region),
* ``region``  -- the remaining 29 high bits.

A *region* is a multi-page address cluster: the paper observes that
dynamically-mapped libraries land in clusters separated by >65K pages, so
a region spans ``2**16`` pages (256 MiB).  Addresses are 57 bits wide to
match five-level paging (Section 2).

All helpers are pure functions on ``int`` so they can be used both by the
BTB models and by the workload generator.
"""

from __future__ import annotations

#: Width of a virtual address with 5-level paging.
ADDRESS_BITS = 57

#: Bits addressing a byte inside a 4 KiB page.
OFFSET_BITS = 12

#: Bits addressing a page inside a region (regions span 2**16 pages).
PAGE_IN_REGION_BITS = 16

#: Bits identifying the region itself.
REGION_BITS = ADDRESS_BITS - OFFSET_BITS - PAGE_IN_REGION_BITS

#: Total page-number width (region + page-in-region).
PAGE_BITS = ADDRESS_BITS - OFFSET_BITS

#: Number of pages covered by one region.
REGION_SPAN_PAGES = 1 << PAGE_IN_REGION_BITS

ADDRESS_MASK = (1 << ADDRESS_BITS) - 1

_OFFSET_MASK = (1 << OFFSET_BITS) - 1
_PAGE_IN_REGION_MASK = (1 << PAGE_IN_REGION_BITS) - 1
_REGION_MASK = (1 << REGION_BITS) - 1


def page_offset(addr: int) -> int:
    """Return the 12-bit offset of ``addr`` inside its page."""
    return addr & _OFFSET_MASK


def page_number(addr: int) -> int:
    """Return the full 45-bit page number of ``addr``."""
    return (addr >> OFFSET_BITS) & ((1 << PAGE_BITS) - 1)


def page_base(addr: int) -> int:
    """Return ``addr`` with its page offset cleared."""
    return addr & ~_OFFSET_MASK & ADDRESS_MASK


def page_in_region(addr: int) -> int:
    """Return the 16-bit page index of ``addr`` inside its region."""
    return (addr >> OFFSET_BITS) & _PAGE_IN_REGION_MASK


def region_id(addr: int) -> int:
    """Return the 29-bit region identifier of ``addr``."""
    return (addr >> (OFFSET_BITS + PAGE_IN_REGION_BITS)) & _REGION_MASK


def split_target(addr: int) -> tuple[int, int, int]:
    """Split ``addr`` into ``(region, page_in_region, offset)``.

    The inverse of :func:`join_target`.
    """
    return region_id(addr), page_in_region(addr), page_offset(addr)


def join_target(region: int, page: int, offset: int) -> int:
    """Reassemble an address from its region / page / offset components.

    Components wider than their fields raise ``ValueError`` -- that would
    silently corrupt targets inside a BTB model otherwise.
    """
    if region >> REGION_BITS:
        raise ValueError(f"region {region:#x} exceeds {REGION_BITS} bits")
    if page >> PAGE_IN_REGION_BITS:
        raise ValueError(f"page {page:#x} exceeds {PAGE_IN_REGION_BITS} bits")
    if offset >> OFFSET_BITS:
        raise ValueError(f"offset {offset:#x} exceeds {OFFSET_BITS} bits")
    return (((region << PAGE_IN_REGION_BITS) | page) << OFFSET_BITS) | offset


def same_page(a: int, b: int) -> bool:
    """True when ``a`` and ``b`` lie in the same 4 KiB page.

    PDede's delta encoding applies exactly to branches for which
    ``same_page(pc, target)`` holds (Section 3.5).
    """
    return (a >> OFFSET_BITS) == (b >> OFFSET_BITS)


def page_distance(a: int, b: int) -> int:
    """Distance between the pages of ``a`` and ``b``, in pages (signed).

    Used by the Figure 8 characterisation (branch-PC-to-target distance).
    """
    return (b >> OFFSET_BITS) - (a >> OFFSET_BITS)


_MASK64 = (1 << 64) - 1


def mix64(value: int) -> int:
    """64-bit avalanche mix (murmur3 finalizer)."""
    x = value & _MASK64
    x ^= x >> 33
    x = (x * 0xFF51AFD7ED558CCD) & _MASK64
    x ^= x >> 33
    x = (x * 0xC4CEB9FE1A85EC53) & _MASK64
    x ^= x >> 33
    return x


def hash_pc(pc: int) -> int:
    """64-bit avalanche hash of a branch PC.

    BTB indices and partial tags must come from *decorrelated* bits:
    code addresses are highly structured (fixed region bases, 4-byte
    alignment, dense pages), and a plain XOR-fold leaves systematic
    index+tag collisions between unrelated branches.  This is the "good
    hashing technique" the paper assumes when arguing that short-tag
    aliasing resteers are negligible (Section 2).  Structures take the
    index and tag from disjoint bit ranges of this hash.
    """
    return mix64(pc >> 1)


def fold_bits(value: int, width: int) -> int:
    """XOR-fold ``value`` down to ``width`` bits.

    This is the "good hashing technique" the paper assumes for partial
    tags: every source bit influences the folded result, so branches that
    differ only in high address bits rarely alias.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    mask = (1 << width) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= width
    return folded
