"""Branch taxonomy and the dynamic ``BranchEvent`` trace record.

The paper (Section 2) distinguishes conditional direct branches,
unconditional direct branches (calls, ``goto``), unconditional indirect
branches (indirect calls/jumps), and returns (served by the return
address stack rather than the BTB).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class BranchKind(enum.IntEnum):
    """Classification of a control-flow-changing instruction."""

    #: Loop back-edges, if-then-else: taken/not-taken, target in the insn.
    COND_DIRECT = 0
    #: Always-taken jumps with the target encoded in the instruction.
    UNCOND_DIRECT = 1
    #: Direct function calls (always taken, push a return address).
    CALL_DIRECT = 2
    #: Indirect jumps (switch tables, tail dispatch) -- target at runtime.
    UNCOND_INDIRECT = 3
    #: Indirect function calls (virtual dispatch, function pointers).
    CALL_INDIRECT = 4
    #: Returns -- handled by the RAS, not the BTB (except Section 5.7).
    RETURN = 5

    @property
    def is_conditional(self) -> bool:
        return self is BranchKind.COND_DIRECT

    @property
    def is_unconditional(self) -> bool:
        return self is not BranchKind.COND_DIRECT

    @property
    def is_direct(self) -> bool:
        return self in (
            BranchKind.COND_DIRECT,
            BranchKind.UNCOND_DIRECT,
            BranchKind.CALL_DIRECT,
        )

    @property
    def is_indirect(self) -> bool:
        return self in (BranchKind.UNCOND_INDIRECT, BranchKind.CALL_INDIRECT)

    @property
    def is_call(self) -> bool:
        return self in (BranchKind.CALL_DIRECT, BranchKind.CALL_INDIRECT)

    @property
    def is_return(self) -> bool:
        return self is BranchKind.RETURN


@dataclass(slots=True)
class BranchEvent:
    """One dynamic branch instance in a trace.

    Attributes:
        pc: virtual address of the branch instruction.
        kind: static classification of the branch.
        taken: dynamic outcome (always True for unconditional kinds).
        target: virtual address control flow moves to when taken; for a
            not-taken conditional this is the fall-through address.
        instr_gap: count of non-branch instructions retired since the
            previous branch event (used for MPKI and IPC accounting).
    """

    pc: int
    kind: BranchKind
    taken: bool
    target: int
    instr_gap: int

    def __post_init__(self) -> None:
        if self.kind.is_unconditional and not self.taken:
            raise ValueError(f"{self.kind.name} branches are always taken")
        if self.instr_gap < 0:
            raise ValueError("instr_gap must be non-negative")

    @property
    def fall_through(self) -> int:
        """Address of the next sequential instruction (approximate)."""
        return self.pc + 4
