"""Branch and virtual-address model shared by every BTB design.

This package defines the 57-bit virtual-address arithmetic used by PDede
(region / page / page-offset partitioning), the branch taxonomy of the
paper (Section 2), and the ``BranchEvent`` record that traces are made of.
"""

from repro.branch.address import (
    ADDRESS_BITS,
    ADDRESS_MASK,
    OFFSET_BITS,
    PAGE_BITS,
    PAGE_IN_REGION_BITS,
    REGION_BITS,
    REGION_SPAN_PAGES,
    join_target,
    page_base,
    page_distance,
    page_in_region,
    page_number,
    page_offset,
    region_id,
    same_page,
    split_target,
)
from repro.branch.types import BranchEvent, BranchKind
from repro.branch.direction import (
    AlwaysTakenPredictor,
    BimodalPredictor,
    DirectionPredictor,
    GSharePredictor,
    PerfectDirectionPredictor,
    TageLitePredictor,
    make_direction_predictor,
)

__all__ = [
    "ADDRESS_BITS",
    "ADDRESS_MASK",
    "OFFSET_BITS",
    "PAGE_BITS",
    "PAGE_IN_REGION_BITS",
    "REGION_BITS",
    "REGION_SPAN_PAGES",
    "join_target",
    "page_base",
    "page_distance",
    "page_in_region",
    "page_number",
    "page_offset",
    "region_id",
    "same_page",
    "split_target",
    "BranchEvent",
    "BranchKind",
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "DirectionPredictor",
    "GSharePredictor",
    "PerfectDirectionPredictor",
    "TageLitePredictor",
    "make_direction_predictor",
]
