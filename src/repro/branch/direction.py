"""Branch direction predictors.

The BTB answers *where* a taken branch goes; these predictors answer
*whether* a conditional branch is taken.  The paper's core uses a
state-of-the-art direction predictor (Table 3) and Section 5.5 evaluates
PDede under a *perfect* direction predictor; we provide a ladder of
predictors so both the default and the perfect configuration can be run,
plus cheaper ones for sensitivity studies.

All predictors share one small interface: ``predict(pc)`` returns the
predicted direction, ``update(pc, taken)`` trains with the real outcome.
A predictor with ``is_perfect`` set is treated as oracle by the frontend
model (no direction mispredict penalty is ever charged).
"""

from __future__ import annotations

import abc

from repro.branch.address import fold_bits, mix64


class DirectionPredictor(abc.ABC):
    """Interface for conditional-branch direction predictors."""

    #: Oracles set this; the frontend then never charges a mispredict.
    is_perfect: bool = False

    @abc.abstractmethod
    def predict(self, pc: int) -> bool:
        """Predict the direction of the conditional branch at ``pc``."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train with the resolved outcome of the branch at ``pc``."""

    @property
    def name(self) -> str:
        return type(self).__name__

    def storage_bits(self) -> int:
        """Storage footprint of the predictor state, in bits."""
        return 0


class AlwaysTakenPredictor(DirectionPredictor):
    """Degenerate static predictor; useful as a worst-case baseline."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


class PerfectDirectionPredictor(DirectionPredictor):
    """Oracle predictor for the Section 5.5 study.

    ``predict`` still returns a value (taken) so that the object can be
    used interchangeably, but the frontend model consults ``is_perfect``
    and substitutes the actual outcome.
    """

    is_perfect = True

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass


class BimodalPredictor(DirectionPredictor):
    """Classic per-PC table of 2-bit saturating counters."""

    def __init__(self, entries: int = 4096) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self._entries = entries
        self._mask = entries - 1
        self._table = [2] * entries  # weakly taken

    def predict(self, pc: int) -> bool:
        return self._table[(pc >> 1) & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = (pc >> 1) & self._mask
        counter = self._table[index]
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1

    def storage_bits(self) -> int:
        return 2 * self._entries


class GSharePredictor(DirectionPredictor):
    """Global-history XOR predictor (McFarling gshare)."""

    def __init__(self, entries: int = 16384, history_bits: int = 12) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self._entries = entries
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._table = [2] * entries

    def _index(self, pc: int) -> int:
        return ((pc >> 1) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._table[index]
        if taken:
            if counter < 3:
                self._table[index] = counter + 1
        elif counter > 0:
            self._table[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def storage_bits(self) -> int:
        return 2 * self._entries


class _TageComponent:
    """One tagged table of a TAGE predictor."""

    __slots__ = (
        "entries", "mask", "tag_bits", "tag_mask", "history_length",
        "history_mask", "tags", "counters", "useful",
        "cached_mix", "cached_version",
    )

    def __init__(self, entries: int, tag_bits: int, history_length: int) -> None:
        self.entries = entries
        self.mask = entries - 1
        self.tag_bits = tag_bits
        self.tag_mask = (1 << tag_bits) - 1
        self.history_length = history_length
        self.history_mask = (1 << history_length) - 1
        self.tags = [0] * entries
        self.counters = [0] * entries  # signed 3-bit: -4..3
        self.useful = [0] * entries
        # The history mix only changes when the history does; cache it.
        self.cached_mix = 0
        self.cached_version = -1


class TageLitePredictor(DirectionPredictor):
    """A compact TAGE: bimodal base + tagged tables with geometric history.

    This is not a contest-grade TAGE-SC-L, but it captures the behaviour
    that matters here -- long-history correlation on the hard branches --
    at a fidelity adequate for a frontend study whose subject is the BTB.
    """

    def __init__(
        self,
        base_entries: int = 8192,
        table_entries: int = 2048,
        tag_bits: int = 9,
        history_lengths: tuple[int, ...] = (5, 15, 44, 130),
    ) -> None:
        self._base = BimodalPredictor(base_entries)
        self._components = [
            _TageComponent(table_entries, tag_bits, length) for length in history_lengths
        ]
        self._history = 0  # masked per component
        self._history_version = 0
        self._rng_state = 0x9E3779B97F4A7C15

    # -- internal helpers -------------------------------------------------

    def _next_random(self) -> int:
        """xorshift64 -- deterministic tie-breaking for allocation."""
        x = self._rng_state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._rng_state = x
        return x

    def _component_key(self, component: _TageComponent, pc: int) -> tuple[int, int]:
        """(index, tag) of ``pc`` in ``component`` -- constant-time mix."""
        if component.cached_version != self._history_version:
            component.cached_mix = mix64(
                (self._history & component.history_mask)
                ^ (component.history_length * 0x9E3779B97F4A7C15)
            )
            component.cached_version = self._history_version
        mixed = component.cached_mix
        index = ((pc >> 1) ^ mixed) & component.mask
        tag = ((pc >> 1) ^ (mixed >> 24)) & component.tag_mask
        return index, tag

    def _provider(self, pc: int) -> tuple[int, int] | None:
        """Longest-history component hitting on ``pc`` -> (level, index)."""
        for level in range(len(self._components) - 1, -1, -1):
            component = self._components[level]
            index, tag = self._component_key(component, pc)
            if component.tags[index] == tag:
                return level, index
        return None

    # -- DirectionPredictor API -------------------------------------------

    def predict(self, pc: int) -> bool:
        provider = self._provider(pc)
        if provider is None:
            return self._base.predict(pc)
        level, index = provider
        return self._components[level].counters[index] >= 0

    def update(self, pc: int, taken: bool) -> None:
        provider = self._provider(pc)
        if provider is not None:
            level, index = provider
            component = self._components[level]
            predicted = component.counters[index] >= 0
        else:
            predicted = self._base.predict(pc)
        if provider is not None:
            counter = component.counters[index]
            if taken:
                component.counters[index] = min(3, counter + 1)
            else:
                component.counters[index] = max(-4, counter - 1)
            if predicted == taken and component.useful[index] < 3:
                component.useful[index] += 1
        else:
            self._base.update(pc, taken)
        if predicted != taken:
            self._allocate(pc, taken, provider)
        self._history = ((self._history << 1) | int(taken)) & ((1 << 192) - 1)
        self._history_version += 1

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Fused ``predict`` + ``update`` sharing one provider search.

        ``predict(pc)`` followed by ``update(pc, taken)`` walks the tagged
        components twice for the same (pc, history) pair; the hot loop
        always makes both calls back to back, so fuse them.  State
        transitions and the returned prediction are identical to the
        two-call sequence.
        """
        provider = self._provider(pc)
        if provider is not None:
            level, index = provider
            component = self._components[level]
            counter = component.counters[index]
            predicted = counter >= 0
            if taken:
                component.counters[index] = min(3, counter + 1)
            else:
                component.counters[index] = max(-4, counter - 1)
            if predicted == taken and component.useful[index] < 3:
                component.useful[index] += 1
        else:
            predicted = self._base.predict(pc)
            self._base.update(pc, taken)
        if predicted != taken:
            self._allocate(pc, taken, provider)
        self._history = ((self._history << 1) | int(taken)) & ((1 << 192) - 1)
        self._history_version += 1
        return predicted

    def _allocate(self, pc: int, taken: bool, provider: tuple[int, int] | None) -> None:
        """On a mispredict, claim an entry in a longer-history table."""
        start = 0 if provider is None else provider[0] + 1
        for level in range(start, len(self._components)):
            component = self._components[level]
            index, tag = self._component_key(component, pc)
            if component.useful[index] == 0:
                component.tags[index] = tag
                component.counters[index] = 0 if taken else -1
                return
            if self._next_random() & 1:
                component.useful[index] -= 1

    def storage_bits(self) -> int:
        bits = self._base.storage_bits()
        for component in self._components:
            bits += component.entries * (component.tag_bits + 3 + 2)
        return bits

    def clone(self) -> "TageLitePredictor":
        """Independent copy of the full predictor state.

        Used by the decoded-trace engine: the direction replay is shared
        across designs, so each simulator adopts a clone of the end
        state rather than the cached replay object itself.  Plain
        ``list`` copies keep this far cheaper than ``copy.deepcopy``.
        """
        clone = TageLitePredictor.__new__(TageLitePredictor)
        base = BimodalPredictor.__new__(BimodalPredictor)
        base._entries = self._base._entries
        base._mask = self._base._mask
        base._table = list(self._base._table)
        clone._base = base
        clone._components = []
        for component in self._components:
            copied = _TageComponent(
                component.entries, component.tag_bits, component.history_length
            )
            copied.tags = list(component.tags)
            copied.counters = list(component.counters)
            copied.useful = list(component.useful)
            copied.cached_mix = component.cached_mix
            copied.cached_version = component.cached_version
            clone._components.append(copied)
        clone._history = self._history
        clone._history_version = self._history_version
        clone._rng_state = self._rng_state
        return clone


_PREDICTORS = {
    "always_taken": AlwaysTakenPredictor,
    "bimodal": BimodalPredictor,
    "gshare": GSharePredictor,
    "tage": TageLitePredictor,
    "perfect": PerfectDirectionPredictor,
}


def make_direction_predictor(name: str, **kwargs) -> DirectionPredictor:
    """Build a direction predictor by name.

    Args:
        name: one of ``always_taken``, ``bimodal``, ``gshare``, ``tage``,
            ``perfect``.
        **kwargs: forwarded to the predictor constructor.
    """
    try:
        factory = _PREDICTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown direction predictor {name!r}; options: {sorted(_PREDICTORS)}"
        ) from None
    return factory(**kwargs)
