"""Workload specifications and the paper's four application categories.

The paper evaluates 102 proprietary frontend-bound applications
(Table 1: 61 Server, 20 Browser, 11 Business Productivity, 10 Personal).
The exact binaries are anonymised, so we substitute a parameterised
synthetic program model whose knobs are calibrated per category to the
branch-level characteristics the paper *does* publish (Figures 3-8); the
calibration targets are listed in DESIGN.md.

The load-bearing structure (why these defaults look the way they do):

* Each trace is a *driver loop* sweeping a hot set of root functions in
  round-robin order (plus Zipf draws); each root invokes a small, mostly
  disjoint call subtree.  The per-sweep footprint is therefore roughly
  ``hot_functions_per_phase x (distinct branch sites per subtree)``, and
  every hot branch is revisited once per sweep at a reuse distance of
  one full footprint -- exactly the regime in which BTB *capacity*
  decides hit rates, which is the regime the paper studies.
* Footprints are tuned per category to straddle the capacity ladder:
  baseline 4K < PDede-Default 6K < PDede-Multi-Entry 8K monitor entries.
* Regions model a process image: region 0 = driver glue, region 1 = the
  Zipf-popular shared utility library, regions 2+ = application modules
  (phases move between modules, reproducing Figure 5's region hops).

A :class:`WorkloadSpec` fully determines a workload: same spec (and the
seed inside it) -> bit-identical trace.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one synthetic application.

    Code-shape knobs:
        n_functions: static function count (drives branch working set).
        blocks_per_fn_mean: mean basic blocks per function.
        block_instrs_mean: mean non-branch instructions per basic block.
        n_regions: address-space regions; >= 3 (glue, utilities, modules).
        functions_per_page_mean: packing density -- small values make the
            address space sparse, as the paper observes.
        page_stride_max: max page gap between consecutive code pages in a
            region (spatial clustering inside a region).

    Branch-mix knobs (block terminator distribution):
        loop_fraction / cond_fraction / jump_fraction / call_fraction /
        ind_call_fraction / ind_jump_fraction: relative weights of each
        terminator kind.
        mean_trip_count: geometric mean loop trip count.
        cond_taken_bias: mean taken probability of forward conditionals.
        never_taken_fraction: fraction of forward conditionals that are
            almost never taken (drives the static-taken curve of Fig 3).
        indirect_fanout: distinct targets per indirect branch site (one
            dominant receiver plus a tail).

    Dynamics knobs:
        n_phases: number of hot-set phases the run cycles through.
        phase_calls: root-function calls per phase before drifting.
        hot_functions_per_phase: size of each phase's hot root set; the
            primary footprint (BTB pressure) control.
        zipf_s: skew of the non-sweep root draws.
        utility_zipf_s: skew of shared-utility call-target popularity.
        sweep_fraction: fraction of root picks that follow the
            round-robin sweep (the capacity-pressure generator).
        max_call_depth: call-stack cap (deeper calls are flattened).
        tree_activation_budget / tree_event_budget: per-root call-tree
            size caps; with the sweep they set the sweep period.
    """

    name: str
    category: str
    seed: int
    n_events: int = 100_000
    n_functions: int = 3000
    blocks_per_fn_mean: float = 12.0
    block_instrs_mean: float = 5.0
    n_regions: int = 4
    functions_per_page_mean: float = 4.5
    page_stride_max: int = 24
    loop_fraction: float = 0.25
    cond_fraction: float = 0.42
    jump_fraction: float = 0.07
    call_fraction: float = 0.12
    ind_call_fraction: float = 0.04
    ind_jump_fraction: float = 0.03
    mean_trip_count: float = 7.0
    cond_taken_bias: float = 0.45
    never_taken_fraction: float = 0.40
    indirect_fanout: int = 4
    n_phases: int = 6
    phase_calls: int = 4000
    hot_functions_per_phase: int = 700
    zipf_s: float = 0.45
    utility_zipf_s: float = 1.3
    sweep_fraction: float = 0.8
    max_call_depth: int = 48
    tree_activation_budget: int = 6
    tree_event_budget: int = 20

    def with_events(self, n_events: int) -> "WorkloadSpec":
        """Copy of this spec with a different trace length."""
        return replace(self, n_events=n_events)

    def replace(self, **changes) -> "WorkloadSpec":
        return replace(self, **changes)


#: Category-level parameter templates.  Per-app variation is applied on
#: top of these in :func:`repro.workloads.suite.build_suite`.
CATEGORY_TEMPLATES: dict[str, WorkloadSpec] = {
    # Web-scale server code: biggest footprints, many libraries, deep
    # call chains; hot sets well past the 4K-entry baseline BTB.
    "Server": WorkloadSpec(
        name="server-template",
        category="Server",
        seed=0,
        n_functions=4400,
        n_regions=4,
        hot_functions_per_phase=850,
        phase_calls=4000,
        call_fraction=0.13,
        ind_call_fraction=0.05,
        n_phases=8,
    ),
    # JITed / interpreted engines: large code, good intra-page locality.
    "Browser": WorkloadSpec(
        name="browser-template",
        category="Browser",
        seed=0,
        n_functions=3200,
        n_regions=4,
        hot_functions_per_phase=650,
        phase_calls=3500,
        blocks_per_fn_mean=13.0,
        ind_jump_fraction=0.04,
        n_phases=6,
    ),
    # Office-style apps: moderate footprints, loopier code.
    "BP": WorkloadSpec(
        name="bp-template",
        category="BP",
        seed=0,
        n_functions=2200,
        n_regions=4,
        hot_functions_per_phase=480,
        phase_calls=3000,
        loop_fraction=0.28,
        call_fraction=0.10,
        ind_call_fraction=0.03,
        functions_per_page_mean=5.0,
        n_phases=5,
    ),
    # Client apps: smallest of the frontend-bound set.
    "Personal": WorkloadSpec(
        name="personal-template",
        category="Personal",
        seed=0,
        n_functions=1800,
        n_regions=4,
        hot_functions_per_phase=400,
        phase_calls=2500,
        loop_fraction=0.28,
        call_fraction=0.10,
        ind_call_fraction=0.03,
        functions_per_page_mean=5.0,
        n_phases=5,
    ),
}

#: Paper Table 1 application counts per category.
CATEGORY_COUNTS: dict[str, int] = {
    "Server": 61,
    "Browser": 20,
    "BP": 11,
    "Personal": 10,
}
