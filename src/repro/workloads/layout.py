"""Static code layout: regions, pages, functions, basic blocks.

This builds the *program* a synthetic workload executes.  The layout
choices encode the paper's Section 3 observations structurally:

* code lives in a handful of *regions* (library clusters separated by
  tens of thousands of pages -- Figure 5), each internally clustered;
* pages are sparsely occupied (a page holds ~2 small functions, giving
  the ~18 branch targets per page of Figure 6);
* intra-function branches (loops, forward conditionals, joins) keep the
  target in the branch's own page when the function is small -- the
  same-page population of Figure 8;
* calls concentrate on a Zipf-popular set of utility functions, so many
  call sites share one target (the ~30% duplicate targets of Figure 7).

The layout is purely static; :mod:`repro.workloads.generator` walks it.
"""

from __future__ import annotations

import bisect
import math
import random

from repro.branch.address import OFFSET_BITS, REGION_BITS, PAGE_IN_REGION_BITS
from repro.workloads.spec import WorkloadSpec

# Internal block-terminator kinds (mapped to BranchKind by the generator).
LOOP = 0
COND = 1
JUMP = 2
CALL = 3
IND_CALL = 4
IND_JUMP = 5
RET = 6

_INSTR_BYTES = 4
_PAGE_BYTES = 1 << OFFSET_BITS


class CodeLayout:
    """Deterministic static program built from a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        rng = random.Random(spec.seed)
        self._rng = rng
        # Per-function data.
        self.fn_entry_block: list[int] = []
        self.fn_entry_addr: list[int] = []
        self.fn_region: list[int] = []
        # Per-block data (global arrays across all functions).
        self.block_start: list[int] = []
        self.block_branch_pc: list[int] = []
        self.block_gap: list[int] = []
        self.block_kind: list[int] = []
        self.block_target: list[int] = []  # block idx / fn idx / list idx / -1
        self.block_param: list[float] = []  # cond prob or mean trip count
        self.block_next: list[int] = []
        # Indirect-branch target lists: (candidates, cumulative weights).
        self.indirect_lists: list[tuple[list[int], list[float]]] = []
        # Phase -> (root function ids, cumulative Zipf weights).
        self.phase_roots: list[tuple[list[int], list[float]]] = []

        self._build_regions()
        self._build_functions()
        self._assign_addresses()
        self._build_phases()
        self._build_dispatcher()

    # -- regions ---------------------------------------------------------------

    def _build_regions(self) -> None:
        """Pick sparse region ids and the function-to-region map.

        Region semantics mirror a real process image, which is what keeps
        the *dynamically live* region count at <= 3 and lets the paper's
        4-entry Region-BTB work:

        * region 0 -- dispatcher / runtime glue (a few branches only);
        * region 1 -- the shared utility library (the Zipf-popular top
          30% of the function index space: every phase calls into it);
        * regions 2..n -- application modules, each a contiguous chunk
          of the root function index space.  A phase executes roots of
          (mostly) one module, so phase changes -- not individual calls
          -- are what move execution across regions (Figure 5).
        """
        rng = self._rng
        spec = self.spec
        if spec.n_regions < 3:
            raise ValueError("n_regions must be >= 3 (glue, utilities, modules)")
        ids = set()
        while len(ids) < spec.n_regions:
            ids.add(rng.getrandbits(REGION_BITS - 1) | 1)
        self.region_ids = sorted(ids)
        self.utilities_start = int(spec.n_functions * 0.7)
        self.n_modules = spec.n_regions - 2
        self._module_chunk = max(1, -(-self.utilities_start // self.n_modules))

    def _region_of_function(self, fn_index: int) -> int:
        if fn_index >= self.utilities_start:
            return 1
        return min(2 + fn_index // self._module_chunk, self.spec.n_regions - 1)

    # -- function/block structure ----------------------------------------------

    def _build_functions(self) -> None:
        rng = self._rng
        spec = self.spec
        n_functions = spec.n_functions
        utilities_start = self.utilities_start
        # Zipf popularity over utility functions (shared call targets).
        utility_ids = list(range(utilities_start, n_functions))
        utility_cum: list[float] = []
        acc = 0.0
        for rank in range(len(utility_ids)):
            acc += 1.0 / ((rank + 1) ** spec.utility_zipf_s)
            utility_cum.append(acc)
        self._utility_ids = utility_ids
        self._utility_cum = utility_cum

        kinds, kind_cum = self._terminator_distribution()
        for fn_index in range(n_functions):
            self.fn_region.append(self._region_of_function(fn_index))
            self.fn_entry_block.append(len(self.block_start))
            self.fn_entry_addr.append(0)  # patched by _assign_addresses
            n_blocks = max(2, int(rng.expovariate(1.0 / spec.blocks_per_fn_mean)) + 2)
            first = len(self.block_start)
            # Join blocks: a small pool of forward-branch targets so that
            # several conditionals share one target (dedup!).
            join_pool = sorted(
                rng.sample(range(1, n_blocks), k=max(1, n_blocks // 8))
            )
            for local in range(n_blocks):
                block = first + local
                gap = max(1, int(rng.expovariate(1.0 / spec.block_instrs_mean)) + 1)
                self.block_start.append(0)
                self.block_branch_pc.append(0)
                self.block_gap.append(gap)
                self.block_next.append(block + 1 if local + 1 < n_blocks else -1)
                if local + 1 == n_blocks:
                    self._emit_return(block)
                    continue
                kind = kinds[
                    bisect.bisect_left(kind_cum, rng.random() * kind_cum[-1])
                ]
                self._emit_terminator(
                    block, local, n_blocks, first, fn_index, kind, join_pool, rng
                )

    def _terminator_distribution(self) -> tuple[list[int], list[float]]:
        spec = self.spec
        kinds = [LOOP, COND, JUMP, CALL, IND_CALL, IND_JUMP]
        weights = [
            spec.loop_fraction,
            spec.cond_fraction,
            spec.jump_fraction,
            spec.call_fraction,
            spec.ind_call_fraction,
            spec.ind_jump_fraction,
        ]
        cumulative: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight
            cumulative.append(acc)
        return kinds, cumulative

    def _emit_return(self, block: int) -> None:
        self.block_kind.append(RET)
        self.block_target.append(-1)
        self.block_param.append(0.0)

    def _emit_terminator(
        self,
        block: int,
        local: int,
        n_blocks: int,
        first: int,
        fn_index: int,
        kind: int,
        join_pool: list[int],
        rng: random.Random,
    ) -> None:
        spec = self.spec
        if kind == LOOP and local > 0:
            # Backward edge to a recent block: a small inner loop.
            span = min(local, 3)
            target = block - rng.randint(1, span)
            self.block_kind.append(LOOP)
            self.block_target.append(target)
            self.block_param.append(max(1.5, rng.gauss(spec.mean_trip_count, 1.5)))
            return
        if kind in (COND, LOOP):
            # Forward conditional to one of the function's join blocks.
            candidates = [first + j for j in join_pool if first + j > block]
            target = candidates[0] if candidates else self.block_next[block]
            self.block_kind.append(COND)
            self.block_target.append(target)
            self.block_param.append(self._cond_probability(rng))
            return
        if kind == JUMP:
            candidates = [first + j for j in join_pool if first + j > block]
            target = rng.choice(candidates) if candidates else self.block_next[block]
            self.block_kind.append(JUMP)
            self.block_target.append(target)
            self.block_param.append(0.0)
            return
        if kind == CALL:
            self.block_kind.append(CALL)
            self.block_target.append(self._pick_callee(fn_index, rng))
            self.block_param.append(0.0)
            return
        if kind == IND_CALL:
            fanout = rng.randint(2, max(2, spec.indirect_fanout))
            callees = [self._pick_callee(fn_index, rng) for _ in range(fanout)]
            self.block_kind.append(IND_CALL)
            self.block_target.append(self._intern_indirect(callees, rng))
            self.block_param.append(0.0)
            return
        # IND_JUMP: a switch over later blocks of this function.
        candidates = list(range(block + 1, first + n_blocks - 1))
        if not candidates:
            self.block_kind.append(COND)
            self.block_target.append(self.block_next[block])
            self.block_param.append(self._cond_probability(rng))
            return
        fanout = min(len(candidates), max(2, spec.indirect_fanout))
        cases = rng.sample(candidates, k=fanout) if len(candidates) >= fanout else candidates
        self.block_kind.append(IND_JUMP)
        self.block_target.append(self._intern_indirect(cases, rng))
        self.block_param.append(0.0)

    def _cond_probability(self, rng: random.Random) -> float:
        """Per-site taken probability; mostly strongly biased sites.

        The remaining mass after ``never_taken_fraction`` is split 55%
        strongly-taken / 15% strongly-not-taken / 30% mixed, which keeps
        conditionals realistically predictable while leaving enough
        never-taken sites to shape the static-taken curve of Figure 3.
        """
        spec = self.spec
        roll = rng.random()
        if roll < spec.never_taken_fraction:
            return rng.uniform(0.002, 0.02)
        rest = (roll - spec.never_taken_fraction) / (1.0 - spec.never_taken_fraction)
        if rest < 0.62:
            return rng.uniform(0.97, 0.998)
        if rest < 0.80:
            return rng.uniform(0.002, 0.03)
        if rest < 0.97:
            # Leaning-but-noisy sites (~8/92): hard yet learnable, unlike
            # an i.i.d. coin flip that no real predictor could beat.
            return rng.uniform(0.88, 0.95) if rng.random() < 0.5 else rng.uniform(0.05, 0.12)
        return rng.uniform(0.4, 0.6)  # the rare genuinely hard branches

    def _pick_callee(self, caller: int, rng: random.Random) -> int:
        """Acyclic callee choice: module-local or Zipf-popular utility."""
        n_functions = self.spec.n_functions
        if caller + 1 >= n_functions:
            return caller  # degenerate; generator treats self-call as no-op
        if rng.random() < 0.65:
            # Module-local call: a *tight* neighbourhood, so each root's
            # call subtree is mostly disjoint from other roots' subtrees
            # (that disjointness is what makes the hot working set scale
            # with the number of hot roots).
            return rng.randint(min(caller + 1, n_functions - 1), min(caller + 12, n_functions - 1))
        # Popular shared utility -- the duplicate-target driver.
        position = bisect.bisect_left(
            self._utility_cum, rng.random() * self._utility_cum[-1]
        )
        callee = self._utility_ids[position]
        if callee <= caller:
            callee = rng.randint(caller + 1, n_functions - 1)
        return callee

    def _intern_indirect(self, candidates: list[int], rng: random.Random) -> int:
        # Indirect sites are mostly monomorphic-in-practice: one dominant
        # receiver (~80%+) plus a tail, as in real virtual-call profiles.
        # (A BTB predicts the dominant target; the tail is the genuinely
        # hard part that ITTAGE exists for.)
        weights = [10.0] + [1.0 / (index + 1) for index in range(1, len(candidates))]
        cumulative: list[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight
            cumulative.append(acc)
        self.indirect_lists.append((candidates, cumulative))
        return len(self.indirect_lists) - 1

    # -- address assignment -------------------------------------------------------

    def _assign_addresses(self) -> None:
        """Place functions into sparse pages grouped by region."""
        rng = self._rng
        spec = self.spec
        page_cursor = [0] * spec.n_regions  # page-in-region cursor
        cursor_addr: dict[int, int] = {}
        functions_on_page: dict[int, int] = {}
        per_region: dict[int, list[int]] = {}
        for fn_index, region in enumerate(self.fn_region):
            per_region.setdefault(region, []).append(fn_index)
        for region, fn_list in per_region.items():
            base = self.region_ids[region] << (OFFSET_BITS + PAGE_IN_REGION_BITS)
            page_cursor[region] = rng.randint(0, 1 << 8)
            cursor_addr[region] = base + page_cursor[region] * _PAGE_BYTES
            functions_on_page[region] = 0
            budget = max(
                1, int(math.ceil(spec.functions_per_page_mean))
            )
            for fn_index in fn_list:
                if functions_on_page[region] >= budget:
                    # Move to a fresh page a short stride away (spatial
                    # clustering within the region), wrapping inside the
                    # region's 2**16-page span.
                    stride = rng.randint(1, spec.page_stride_max)
                    page_cursor[region] = (page_cursor[region] + stride) % (
                        (1 << PAGE_IN_REGION_BITS) - 4
                    )
                    cursor_addr[region] = base + page_cursor[region] * _PAGE_BYTES
                    functions_on_page[region] = 0
                    budget = max(1, int(rng.gauss(spec.functions_per_page_mean, 1.0)))
                self._place_function(fn_index, cursor_addr[region])
                fn_bytes = self._function_bytes(fn_index)
                cursor_addr[region] += fn_bytes + rng.randint(2, 8) * _INSTR_BYTES
                page_cursor[region] = (cursor_addr[region] - base) // _PAGE_BYTES
                functions_on_page[region] += 1

    def _function_blocks(self, fn_index: int) -> range:
        first = self.fn_entry_block[fn_index]
        last = (
            self.fn_entry_block[fn_index + 1]
            if fn_index + 1 < len(self.fn_entry_block)
            else len(self.block_start)
        )
        return range(first, last)

    def _function_bytes(self, fn_index: int) -> int:
        return sum(
            (self.block_gap[block] + 1) * _INSTR_BYTES
            for block in self._function_blocks(fn_index)
        )

    def _place_function(self, fn_index: int, start_addr: int) -> None:
        self.fn_entry_addr[fn_index] = start_addr
        cursor = start_addr
        for block in self._function_blocks(fn_index):
            self.block_start[block] = cursor
            cursor += (self.block_gap[block] + 1) * _INSTR_BYTES
            self.block_branch_pc[block] = cursor - _INSTR_BYTES

    # -- phases ------------------------------------------------------------------

    def _build_phases(self) -> None:
        rng = self._rng
        spec = self.spec
        root_limit = max(2, int(spec.n_functions * 0.6))
        for phase in range(spec.n_phases):
            # A phase concentrates on one application module (= one
            # region), sliding its window within the module across the
            # phase cycle; live regions stay at ~3 (glue + utilities +
            # the module), and phase changes hop regions (Figure 5).
            module = phase % self.n_modules
            module_start = module * self._module_chunk
            module_end = min(module_start + self._module_chunk, root_limit)
            if module_start >= root_limit:
                module_start, module_end = 0, min(self._module_chunk, root_limit)
            span = max(1, module_end - module_start)
            count = min(spec.hot_functions_per_phase, span)
            stride = max(1, span // count)
            offset0 = (phase * 131) % span
            # Stride-spread the hot roots across the module so their
            # (tight) call subtrees do not overlap each other.
            window = [
                module_start + (offset0 + offset * stride) % span
                for offset in range(count)
            ]
            rng.shuffle(window)
            cumulative: list[float] = []
            acc = 0.0
            for rank in range(len(window)):
                acc += 1.0 / ((rank + 1) ** spec.zipf_s)
                cumulative.append(acc)
            self.phase_roots.append((window, cumulative))

    # -- dispatcher ----------------------------------------------------------------

    def _build_dispatcher(self) -> None:
        """Top-level driver: a loop branch plus per-root direct call sites.

        The driver models unrolled dispatch code (a command table / event
        loop body): each root function is invoked from its *own* direct
        call site, so dispatch is predictable once learned -- unlike a
        single indirect call site, whose target would change on every
        iteration and drown the trace in irreducible mispredictions.
        The call sites live in region 0 (runtime glue) and are part of
        the sweeping working set themselves.
        """
        base = self.region_ids[0] << (OFFSET_BITS + PAGE_IN_REGION_BITS)
        self.dispatch_loop_pc = base + 0x40
        self._dispatch_sites_base = base + 0x100
        self.dispatch_gap = 3

    def dispatch_call_site(self, root: int) -> int:
        """Direct call-site PC of the driver entry for ``root``."""
        return self._dispatch_sites_base + root * 8

    # -- summary helpers --------------------------------------------------------------

    @property
    def n_blocks(self) -> int:
        return len(self.block_start)

    def static_branch_pcs(self) -> list[int]:
        return list(self.block_branch_pc)

    def unique_pages(self) -> int:
        return len({pc >> OFFSET_BITS for pc in self.block_branch_pc})
