"""Trace container: the dynamic branch stream a simulation consumes.

A trace is a sequence of :class:`~repro.branch.types.BranchEvent` items
plus the instruction counts between them.  For speed and compactness the
events are stored as parallel arrays (column-major); ``events()`` yields
light-weight tuples and ``branch_events()`` yields full ``BranchEvent``
objects when the richer API is wanted.

Traces can be persisted to ``.npz`` so characterisation and simulation
runs share identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.branch.types import BranchEvent, BranchKind


@dataclass
class Trace:
    """Column-major dynamic branch trace.

    Attributes:
        name: workload name the trace was generated from.
        category: workload category label (Server / Browser / BP / Personal).
        pcs / kinds / takens / targets / gaps: parallel event columns.
    """

    name: str = "trace"
    category: str = "uncategorised"
    pcs: list[int] = field(default_factory=list)
    kinds: list[int] = field(default_factory=list)
    takens: list[bool] = field(default_factory=list)
    targets: list[int] = field(default_factory=list)
    gaps: list[int] = field(default_factory=list)

    # -- construction -------------------------------------------------------

    def append(self, pc: int, kind: BranchKind, taken: bool, target: int, gap: int) -> None:
        self.pcs.append(pc)
        self.kinds.append(int(kind))
        self.takens.append(taken)
        self.targets.append(target)
        self.gaps.append(gap)

    def truncate(self, length: int) -> None:
        """Trim the trace to at most ``length`` events."""
        if length < 0:
            raise ValueError("length must be non-negative")
        del self.pcs[length:]
        del self.kinds[length:]
        del self.takens[length:]
        del self.targets[length:]
        del self.gaps[length:]

    # -- iteration ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.pcs)

    def events(self) -> Iterator[tuple[int, int, bool, int, int]]:
        """Yield raw ``(pc, kind, taken, target, gap)`` tuples (fast path)."""
        return zip(self.pcs, self.kinds, self.takens, self.targets, self.gaps)

    def branch_events(self) -> Iterator[BranchEvent]:
        """Yield full :class:`BranchEvent` objects (convenient path)."""
        for pc, kind, taken, target, gap in self.events():
            yield BranchEvent(pc, BranchKind(kind), taken, target, gap)

    # -- aggregate statistics -----------------------------------------------------

    @property
    def instruction_count(self) -> int:
        """Total retired instructions: branches plus the gaps between them."""
        return len(self.pcs) + sum(self.gaps)

    @property
    def taken_count(self) -> int:
        return sum(self.takens)

    def dynamic_taken_fraction(self) -> float:
        """Fraction of dynamic branch instances that are taken (Fig 3)."""
        if not self.pcs:
            return 0.0
        return self.taken_count / len(self.pcs)

    def static_taken_fraction(self) -> float:
        """Fraction of static branch PCs that are ever taken (Fig 3)."""
        seen: set[int] = set()
        taken: set[int] = set()
        for pc, _, was_taken, _, _ in self.events():
            seen.add(pc)
            if was_taken:
                taken.add(pc)
        if not seen:
            return 0.0
        return len(taken) / len(seen)

    def static_branch_count(self) -> int:
        return len(set(self.pcs))

    # -- persistence -----------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialise to a compressed ``.npz`` file."""
        np.savez_compressed(
            Path(path),
            name=np.array(self.name),
            category=np.array(self.category),
            pcs=np.array(self.pcs, dtype=np.uint64),
            kinds=np.array(self.kinds, dtype=np.uint8),
            takens=np.array(self.takens, dtype=np.bool_),
            targets=np.array(self.targets, dtype=np.uint64),
            gaps=np.array(self.gaps, dtype=np.uint32),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls(
                name=str(data["name"]),
                category=str(data["category"]),
                pcs=[int(x) for x in data["pcs"]],
                kinds=[int(x) for x in data["kinds"]],
                takens=[bool(x) for x in data["takens"]],
                targets=[int(x) for x in data["targets"]],
                gaps=[int(x) for x in data["gaps"]],
            )
