"""Trace container: the dynamic branch stream a simulation consumes.

A trace is a sequence of :class:`~repro.branch.types.BranchEvent` items
plus the instruction counts between them.  For speed and compactness the
events are stored as parallel arrays (column-major); ``events()`` yields
light-weight tuples and ``branch_events()`` yields full ``BranchEvent``
objects when the richer API is wanted.

Traces can be persisted to ``.npz`` so characterisation and simulation
runs share identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.branch.types import BranchEvent, BranchKind

if TYPE_CHECKING:
    from repro.workloads.decoded import DecodedTrace


@dataclass
class Trace:
    """Column-major dynamic branch trace.

    Attributes:
        name: workload name the trace was generated from.
        category: workload category label (Server / Browser / BP / Personal).
        pcs / kinds / takens / targets / gaps: parallel event columns.
    """

    name: str = "trace"
    category: str = "uncategorised"
    pcs: list[int] = field(default_factory=list)
    kinds: list[int] = field(default_factory=list)
    takens: list[bool] = field(default_factory=list)
    targets: list[int] = field(default_factory=list)
    gaps: list[int] = field(default_factory=list)

    # -- construction -------------------------------------------------------

    def append(self, pc: int, kind: BranchKind, taken: bool, target: int, gap: int) -> None:
        self.pcs.append(pc)
        self.kinds.append(int(kind))
        self.takens.append(taken)
        self.targets.append(target)
        self.gaps.append(gap)
        self._columns = None
        self._decoded = None

    def truncate(self, length: int) -> None:
        """Trim the trace to at most ``length`` events."""
        if length < 0:
            raise ValueError("length must be non-negative")
        del self.pcs[length:]
        del self.kinds[length:]
        del self.takens[length:]
        del self.targets[length:]
        del self.gaps[length:]
        self._columns = None
        self._decoded = None

    @classmethod
    def from_arrays(
        cls,
        name: str,
        category: str,
        pcs: np.ndarray,
        kinds: np.ndarray,
        takens: np.ndarray,
        targets: np.ndarray,
        gaps: np.ndarray,
    ) -> "Trace":
        """Build a trace from numpy columns without per-element conversion.

        The event lists come from bulk ``.tolist()`` (native ints/bools in
        one C pass) and the arrays themselves are kept for vectorised
        consumers (:meth:`columns` / :meth:`decoded`), so loading a trace
        never round-trips through ``int(x)`` per event.
        """
        trace = cls(
            name=name,
            category=category,
            pcs=pcs.tolist(),
            kinds=kinds.tolist(),
            takens=takens.tolist(),
            targets=targets.tolist(),
            gaps=gaps.tolist(),
        )
        trace._columns = (
            np.ascontiguousarray(pcs, dtype=np.uint64),
            np.ascontiguousarray(kinds, dtype=np.uint8),
            np.ascontiguousarray(takens, dtype=np.bool_),
            np.ascontiguousarray(targets, dtype=np.uint64),
            np.ascontiguousarray(gaps, dtype=np.uint32),
        )
        return trace

    # -- derived columns -----------------------------------------------------

    def columns(self) -> tuple[np.ndarray, ...]:
        """Numpy views of the event columns ``(pcs, kinds, takens, targets,
        gaps)``, built once and cached (invalidated by mutation)."""
        cached = getattr(self, "_columns", None)
        if cached is not None and len(cached[0]) == len(self.pcs):
            return cached
        columns = (
            np.array(self.pcs, dtype=np.uint64),
            np.array(self.kinds, dtype=np.uint8),
            np.array(self.takens, dtype=np.bool_),
            np.array(self.targets, dtype=np.uint64),
            np.array(self.gaps, dtype=np.uint32),
        )
        self._columns = columns
        return columns

    @property
    def is_decoded(self) -> bool:
        """Whether :meth:`decoded` would return a cached decode.

        The serving layer's micro-batcher uses this to account decodes
        (one per batch of requests sharing a trace) without forcing one.
        """
        cached = getattr(self, "_decoded", None)
        return cached is not None and cached.n_events == len(self.pcs)

    def decoded(self) -> "DecodedTrace":
        """The one-time :class:`DecodedTrace` for this trace, cached.

        Derived per-event columns (block geometry, target page bits,
        address hashes) plus lazily-built replay columns; see
        :mod:`repro.workloads.decoded`.
        """
        from repro.workloads.decoded import DecodedTrace

        cached = getattr(self, "_decoded", None)
        if cached is not None and cached.n_events == len(self.pcs):
            return cached
        decoded = DecodedTrace.from_trace(self)
        self._decoded = decoded
        return decoded

    # -- iteration ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.pcs)

    def events(self) -> Iterator[tuple[int, int, bool, int, int]]:
        """Yield raw ``(pc, kind, taken, target, gap)`` tuples (fast path)."""
        return zip(self.pcs, self.kinds, self.takens, self.targets, self.gaps)

    def branch_events(self) -> Iterator[BranchEvent]:
        """Yield full :class:`BranchEvent` objects (convenient path)."""
        for pc, kind, taken, target, gap in self.events():
            yield BranchEvent(pc, BranchKind(kind), taken, target, gap)

    # -- aggregate statistics -----------------------------------------------------

    @property
    def instruction_count(self) -> int:
        """Total retired instructions: branches plus the gaps between them."""
        return len(self.pcs) + sum(self.gaps)

    @property
    def taken_count(self) -> int:
        return sum(self.takens)

    def dynamic_taken_fraction(self) -> float:
        """Fraction of dynamic branch instances that are taken (Fig 3)."""
        if not self.pcs:
            return 0.0
        return self.taken_count / len(self.pcs)

    def static_taken_fraction(self) -> float:
        """Fraction of static branch PCs that are ever taken (Fig 3)."""
        seen: set[int] = set()
        taken: set[int] = set()
        for pc, _, was_taken, _, _ in self.events():
            seen.add(pc)
            if was_taken:
                taken.add(pc)
        if not seen:
            return 0.0
        return len(taken) / len(seen)

    def static_branch_count(self) -> int:
        return len(set(self.pcs))

    # -- persistence -----------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialise to a compressed ``.npz`` file."""
        pcs, kinds, takens, targets, gaps = self.columns()
        np.savez_compressed(
            Path(path),
            name=np.array(self.name),
            category=np.array(self.category),
            pcs=pcs,
            kinds=kinds,
            takens=takens,
            targets=targets,
            gaps=gaps,
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls.from_arrays(
                name=str(data["name"]),
                category=str(data["category"]),
                pcs=data["pcs"],
                kinds=data["kinds"],
                takens=data["takens"],
                targets=data["targets"],
                gaps=data["gaps"],
            )
