"""Synthetic workload substrate.

The paper's 102 proprietary traces are substituted by a seeded synthetic
program model (see DESIGN.md for the calibration targets):

* :class:`WorkloadSpec` -- all knobs of one application;
* :class:`CodeLayout` -- the static program (regions / pages / functions);
* :func:`generate_trace` -- the dynamic branch trace for a spec;
* :func:`build_suite` / :func:`suite_traces` -- the 102-app suite,
  scaled by the ``REPRO_SCALE`` environment variable.
"""

from repro.workloads.spec import CATEGORY_COUNTS, CATEGORY_TEMPLATES, WorkloadSpec
from repro.workloads.layout import CodeLayout
from repro.workloads.generator import generate_trace
from repro.workloads.trace import Trace
from repro.workloads.suite import (
    SCALES,
    build_suite,
    current_scale,
    get_trace,
    suite_traces,
)
from repro.workloads.textformat import TraceFormatError, dump_trace, load_trace
from repro.workloads.mixing import interleave_traces, working_set_overlap

__all__ = [
    "CATEGORY_COUNTS",
    "CATEGORY_TEMPLATES",
    "WorkloadSpec",
    "CodeLayout",
    "generate_trace",
    "Trace",
    "SCALES",
    "build_suite",
    "current_scale",
    "get_trace",
    "suite_traces",
    "TraceFormatError",
    "dump_trace",
    "load_trace",
    "interleave_traces",
    "working_set_overlap",
]
