"""Dynamic trace generation: walking a :class:`CodeLayout`.

The generator is a small interpreter over the static program: it keeps a
call stack of activation frames, samples loop trip counts and
conditional outcomes from the per-site parameters, resolves indirect
branches from their weighted target lists, and emits one
``(pc, kind, taken, target, gap)`` event per executed branch -- exactly
the stream a hardware BTB would observe.

A top-level dispatcher (one loop branch + one indirect call site) picks
root functions from the current *phase*'s Zipf-weighted hot set; phases
rotate every ``phase_calls`` root invocations, producing the working-set
drift and region-to-region travel of Figure 5.
"""

from __future__ import annotations

import bisect
import math
import random

from repro.branch.types import BranchKind
from repro.workloads.layout import (
    CALL,
    COND,
    IND_CALL,
    IND_JUMP,
    JUMP,
    LOOP,
    RET,
    CodeLayout,
)
from repro.workloads.spec import WorkloadSpec
from repro.workloads.trace import Trace

#: Generation-algorithm version: any change to the generator (or the
#: layout model it walks) that alters emitted traces must bump this, so
#: disk-cached traces keyed on it (repro.experiments.diskcache) are
#: orphaned rather than silently replayed.
GENERATOR_VERSION = 1

_KIND_MAP = {
    LOOP: int(BranchKind.COND_DIRECT),
    COND: int(BranchKind.COND_DIRECT),
    JUMP: int(BranchKind.UNCOND_DIRECT),
    CALL: int(BranchKind.CALL_DIRECT),
    IND_CALL: int(BranchKind.CALL_INDIRECT),
    IND_JUMP: int(BranchKind.UNCOND_INDIRECT),
    RET: int(BranchKind.RETURN),
}


def generate_trace(spec: WorkloadSpec, layout: CodeLayout | None = None) -> Trace:
    """Generate the deterministic dynamic trace for ``spec``.

    Args:
        spec: the workload description (its seed fixes both the layout
            and the dynamic walk).
        layout: pass a pre-built layout to skip rebuilding it (the suite
            caches layouts when generating multiple trace lengths).
    """
    layout = layout or CodeLayout(spec)
    rng = random.Random(spec.seed ^ 0xD1E5E1)
    trace = Trace(name=spec.name, category=spec.category)

    block_kind = layout.block_kind
    block_target = layout.block_target
    block_param = layout.block_param
    block_next = layout.block_next
    block_gap = layout.block_gap
    branch_pc = layout.block_branch_pc
    block_start = layout.block_start
    fn_entry_block = layout.fn_entry_block
    fn_entry_addr = layout.fn_entry_addr
    indirect_lists = layout.indirect_lists
    phase_roots = layout.phase_roots
    if not phase_roots or not all(roots for roots, _ in phase_roots):
        raise ValueError(f"{spec.name}: layout has an empty phase root set")
    append = trace.append

    n_events = spec.n_events
    max_depth = spec.max_call_depth
    tree_budget = spec.tree_activation_budget
    event_budget = spec.tree_event_budget
    trip_cap = max(2, int(spec.mean_trip_count * 4))
    tree_activations = 0
    tree_events = 0
    sweep_position = 0
    sweep_fraction = spec.sweep_fraction

    # Call stack of frames: (function index, resume block, loop counters).
    stack: list[tuple[int, int, dict[int, int]]] = []
    current_block = -1
    loop_counts: dict[int, int] = {}
    pending_gap = 0
    calls_dispatched = 0
    events = 0
    # Per-site visit counters: conditional outcomes are *periodic* rather
    # than i.i.d. -- real branch noise is patterned (every k-th element,
    # every k-th iteration), which is exactly what history-based
    # predictors exploit; i.i.d. coin flips would be unlearnable noise.
    visit_counts = [0] * len(block_kind)

    def emit(pc: int, kind: int, taken: bool, target: int, gap: int) -> None:
        nonlocal events, tree_events
        append(pc, _KIND_MAP[kind], taken, target, gap)
        events += 1
        tree_events += 1

    while events < n_events:
        if current_block < 0:
            # Dispatcher: loop branch, then an indirect call to a root
            # function from the current phase's hot set.
            phase = (calls_dispatched // spec.phase_calls) % len(phase_roots)
            roots, cumulative = phase_roots[phase]
            if rng.random() < sweep_fraction:
                # Round-robin sweep: periodic revisits at a reuse
                # distance of one full hot working set.
                root = roots[sweep_position % len(roots)]
                sweep_position += 1
            else:
                position = bisect.bisect_left(
                    cumulative, rng.random() * cumulative[-1]
                )
                root = roots[position]
            calls_dispatched += 1
            call_site = layout.dispatch_call_site(root)
            emit(
                layout.dispatch_loop_pc,
                LOOP,
                True,
                layout.dispatch_loop_pc - 8,
                layout.dispatch_gap + pending_gap,
            )
            emit(call_site, CALL, True, fn_entry_addr[root], 1)
            pending_gap = 0
            stack.append((-1, call_site, {}))  # dispatcher frame sentinel
            current_block = fn_entry_block[root]
            loop_counts = {}
            tree_activations = 1
            tree_events = 0
            continue

        kind = block_kind[current_block]
        gap = block_gap[current_block] + pending_gap
        pending_gap = 0
        pc = branch_pc[current_block]

        if kind == RET:
            frame = stack.pop()
            if frame[0] < 0:
                # Back to the dispatcher: return targets its call site +4.
                emit(pc, RET, True, frame[1] + 4, gap)
                current_block = -1
                loop_counts = {}
                continue
            _, resume, saved_counts = frame
            emit(pc, RET, True, block_start[resume], gap)
            current_block = resume
            loop_counts = saved_counts
            continue

        if kind == LOOP:
            remaining = loop_counts.get(current_block)
            if remaining is None:
                if current_block & 1:
                    # Half the loop sites have a fixed (learnable) trip
                    # count; the rest vary per activation, as real inner
                    # loops split between constant and data-dependent
                    # bounds.
                    remaining = max(1, round(block_param[current_block]))
                else:
                    remaining = _sample_trip(rng, block_param[current_block], trip_cap)
            if tree_events >= event_budget:
                remaining = 0  # drain: the tree has used up its quantum
            if remaining > 0:
                loop_counts[current_block] = remaining - 1
                target = block_target[current_block]
                emit(pc, LOOP, True, block_start[target], gap)
                current_block = target
            else:
                loop_counts.pop(current_block, None)
                emit(pc, LOOP, False, pc + 4, gap)
                current_block = block_next[current_block]
            continue

        if kind == COND:
            target = block_target[current_block]
            probability = block_param[current_block]
            visit = visit_counts[current_block]
            visit_counts[current_block] = visit + 1
            if probability >= 0.5:
                period = min(64, max(2, round(1.0 / max(1.0 - probability, 0.02))))
                taken = (visit % period) != period - 1
            else:
                period = min(64, max(2, round(1.0 / max(probability, 0.02))))
                taken = (visit % period) == period - 1
            if taken and target != current_block:
                emit(pc, COND, True, block_start[target], gap)
                current_block = target
            else:
                emit(pc, COND, False, pc + 4, gap)
                current_block = block_next[current_block]
            continue

        if kind == JUMP:
            target = block_target[current_block]
            emit(pc, JUMP, True, block_start[target], gap)
            current_block = target
            continue

        if kind == CALL or kind == IND_CALL:
            if kind == CALL:
                callee = block_target[current_block]
            else:
                candidates, cumulative = indirect_lists[block_target[current_block]]
                position = bisect.bisect_left(
                    cumulative, rng.random() * cumulative[-1]
                )
                callee = candidates[position]
            caller_fn = _owning_function(fn_entry_block, current_block)
            resume = block_next[current_block]
            if (
                callee <= caller_fn
                or resume < 0
                or len(stack) >= max_depth
                or tree_activations >= tree_budget
                or tree_events >= event_budget
            ):
                # Degenerate call (self-call / stack cap / exhausted tree
                # budget): execute the would-be call block as
                # straight-line code so the tree winds down.
                pending_gap = gap + 1
                current_block = resume if resume >= 0 else -1
                continue
            emit(pc, kind, True, fn_entry_addr[callee], gap)
            stack.append((caller_fn, resume, loop_counts))
            current_block = fn_entry_block[callee]
            loop_counts = {}
            tree_activations += 1
            continue

        # IND_JUMP: switch over later blocks of the same function.
        candidates, cumulative = indirect_lists[block_target[current_block]]
        position = bisect.bisect_left(cumulative, rng.random() * cumulative[-1])
        target = candidates[position]
        emit(pc, IND_JUMP, True, block_start[target], gap)
        current_block = target

    # The dispatcher emits two events per step, so the loop may overshoot
    # the requested length by one.
    trace.truncate(n_events)
    return trace


def _sample_trip(rng: random.Random, mean_trip: float, cap: int) -> int:
    """Geometric trip count with the requested mean, capped."""
    probability = 1.0 / max(1.5, mean_trip)
    value = rng.random()
    trips = int(math.log(max(value, 1e-12)) / math.log(1.0 - probability)) + 1
    return min(trips, cap)


def _owning_function(fn_entry_block: list[int], block: int) -> int:
    """Binary-search the function that owns ``block``."""
    return bisect.bisect_right(fn_entry_block, block) - 1
