"""The 102-application evaluation suite and scale control.

The paper's suite is anonymised; ours is a seeded synthetic equivalent
with the same category composition (61 Server / 20 Browser / 11 BP / 10
Personal, Table 1) plus named members reproducing the applications the
evaluation narrates individually:

* ``browser_js_static_analyzer`` -- hot branch working set just above
  the 4K baseline BTB but inside PDede's reach (the 76% IPC / 99.8% MPKI
  headline app);
* ``personal_animation`` -- hot set far beyond PDede's resources (the
  limited-gain app, 2.3x the page footprint of the JS analyzer);
* ``server_data_analytics`` -- 90% same-page branches (multi-target's
  best case);
* ``server_oltp_00`` / ``server_microservice_00`` -- only ~50% same-page
  branches, exercising the Region/Page-BTB path;
* ``browser_html5_render`` -- dense targets per page/region (the dedup
  showcase).

Trace length and suite size are controlled by the ``REPRO_SCALE``
environment variable: ``smoke`` (8 apps), ``default`` (16 apps),
``full`` (all 102).  Seeds are fixed, so any subset is reproducible.
"""

from __future__ import annotations

import os
import zlib
from functools import lru_cache

from repro.workloads.generator import generate_trace
from repro.workloads.spec import CATEGORY_COUNTS, CATEGORY_TEMPLATES, WorkloadSpec
from repro.workloads.trace import Trace

#: (apps per category, events per trace) for each scale.  Trace lengths
#: must cover a few full sweeps of the hot working set (see spec.py) --
#: shorter traces never reach the capacity-pressure regime under study.
SCALES: dict[str, tuple[dict[str, int], int]] = {
    "tiny": ({"Server": 1, "Browser": 1, "BP": 1, "Personal": 1}, 8_000),
    "smoke": ({"Server": 3, "Browser": 2, "BP": 2, "Personal": 1}, 60_000),
    "default": ({"Server": 7, "Browser": 4, "BP": 3, "Personal": 2}, 80_000),
    "full": (dict(CATEGORY_COUNTS), 250_000),
}

_BASE_SEED = 0x9DEDE


def current_scale() -> str:
    """Read the active scale from ``REPRO_SCALE`` (default ``default``)."""
    scale = os.environ.get("REPRO_SCALE", "default")
    if scale not in SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(SCALES)}, got {scale!r}")
    return scale


def _vary(template: WorkloadSpec, name: str, index: int, seed: int) -> WorkloadSpec:
    """Deterministic per-app variation around a category template.

    The hot-set variation is deliberately wide: it spreads per-app
    footprints across the BTB capacity ladder, which is what produces
    the 3%..76% per-application gain spread of Figure 10c.
    """
    import random

    rng = random.Random(seed)
    footprint_scale = rng.uniform(0.75, 1.45)
    return template.replace(
        name=name,
        seed=seed,
        n_functions=int(template.n_functions * max(1.0, footprint_scale)),
        blocks_per_fn_mean=template.blocks_per_fn_mean * rng.uniform(0.85, 1.2),
        n_regions=max(4, template.n_regions + rng.randint(0, 2)),
        call_fraction=min(0.30, template.call_fraction * rng.uniform(0.8, 1.25)),
        ind_call_fraction=template.ind_call_fraction * rng.uniform(0.6, 1.4),
        mean_trip_count=template.mean_trip_count * rng.uniform(0.8, 1.4),
        hot_functions_per_phase=int(
            template.hot_functions_per_phase * footprint_scale
        ),
        phase_calls=int(template.phase_calls * footprint_scale),
        n_phases=max(3, template.n_phases + rng.randint(-1, 2)),
        zipf_s=template.zipf_s * rng.uniform(0.9, 1.15),
    )


def _named_specials() -> dict[tuple[str, int], WorkloadSpec]:
    """Apps the paper's evaluation discusses by name (see module doc)."""
    server = CATEGORY_TEMPLATES["Server"]
    browser = CATEGORY_TEMPLATES["Browser"]
    personal = CATEGORY_TEMPLATES["Personal"]
    return {
        ("Browser", 0): browser.replace(
            name="browser_js_static_analyzer",
            seed=_BASE_SEED + 9001,
            # Hot working set just past the 4K baseline BTB but well
            # inside PDede multi-entry's 8K monitor, and a single steady
            # phase: the 76%-IPC / 99.8%-MPKI-reduction headline app.
            n_functions=1500,
            blocks_per_fn_mean=10.0,
            n_regions=3,
            n_phases=1,
            hot_functions_per_phase=820,
            phase_calls=10_000_000,
            ind_call_fraction=0.01,
            ind_jump_fraction=0.01,
        ),
        ("Browser", 1): browser.replace(
            name="browser_html5_render",
            seed=_BASE_SEED + 9002,
            # Dense targets per page/region: the dedup showcase.
            functions_per_page_mean=6.0,
            n_regions=4,
            n_functions=2600,
            hot_functions_per_phase=560,
        ),
        ("Personal", 0): personal.replace(
            name="personal_animation",
            seed=_BASE_SEED + 9003,
            # Hot set far beyond any BTB studied: limited gains at 4K,
            # the app that keeps 8K/16K capacity points interesting.
            n_functions=8200,
            blocks_per_fn_mean=11.0,
            n_regions=4,
            n_phases=2,
            hot_functions_per_phase=3300,
            phase_calls=9000,
            tree_event_budget=15,
        ),
        ("Server", 0): server.replace(
            name="server_oltp_00",
            seed=_BASE_SEED + 9004,
            # Cross-page control flow: ~50% same-page branches.
            call_fraction=0.24,
            ind_call_fraction=0.06,
            blocks_per_fn_mean=8.0,
            loop_fraction=0.12,
            cond_fraction=0.34,
        ),
        ("Server", 1): server.replace(
            name="server_microservice_00",
            seed=_BASE_SEED + 9005,
            call_fraction=0.22,
            ind_call_fraction=0.07,
            blocks_per_fn_mean=8.5,
            loop_fraction=0.13,
            cond_fraction=0.36,
        ),
        ("Server", 2): server.replace(
            name="server_data_analytics",
            seed=_BASE_SEED + 9006,
            # Tight kernels: ~90% same-page branches (multi-target's
            # best case -- consecutive taken branches share pages).
            call_fraction=0.04,
            ind_call_fraction=0.01,
            ind_jump_fraction=0.02,
            loop_fraction=0.32,
            cond_fraction=0.46,
            blocks_per_fn_mean=14.0,
            n_functions=3800,
            hot_functions_per_phase=1200,
            tree_event_budget=26,
        ),
    }


_CATEGORY_SLUGS = {
    "Server": ("oltp", "webtraffic", "cloud", "microservice", "search", "queue"),
    "Browser": ("js", "html5", "jvm", "wasm", "game", "imaging"),
    "BP": ("compress", "email", "slides", "sheet", "docs"),
    "Personal": ("mail", "imaging", "game", "video"),
}


def build_suite(scale: str | None = None) -> list[WorkloadSpec]:
    """Build the workload list for the requested (or active) scale."""
    scale = scale or current_scale()
    counts, n_events = SCALES[scale]
    specials = _named_specials()
    suite: list[WorkloadSpec] = []
    for category in ("Server", "Browser", "BP", "Personal"):
        template = CATEGORY_TEMPLATES[category]
        slugs = _CATEGORY_SLUGS[category]
        if not slugs:
            raise ValueError(f"no workload slugs defined for category {category!r}")
        for index in range(counts[category]):
            special = specials.get((category, index))
            if special is not None:
                suite.append(special.with_events(n_events))
                continue
            slug = slugs[index % len(slugs)]
            name = f"{category.lower()}_{slug}_{index:02d}"
            # Stable across processes (unlike builtin str hashing).
            seed = _BASE_SEED + zlib.crc32(name.encode()) % (1 << 30)
            suite.append(
                _vary(template, name, index, seed).with_events(n_events)
            )
    return suite


@lru_cache(maxsize=None)
def _cached_trace(name: str, scale: str) -> Trace:
    for spec in build_suite(scale):
        if spec.name == name:
            return _generate_or_load(spec)
    raise KeyError(f"no workload named {name!r} at scale {scale!r}")


def _generate_or_load(spec) -> Trace:
    """Serve a trace from the persistent disk cache, generating on miss.

    Late import: the disk cache lives in the experiments layer and is
    optional here (workloads must stay importable on their own).
    """
    from repro.experiments import diskcache

    cached = diskcache.load_trace(spec)
    if cached is not None:
        return cached
    trace = generate_trace(spec)
    diskcache.store_trace(spec, trace)
    return trace


def get_trace(name: str, scale: str | None = None) -> Trace:
    """Generate (and memoise) the trace for a suite member by name."""
    return _cached_trace(name, scale or current_scale())


def suite_traces(scale: str | None = None) -> list[Trace]:
    """All traces of the active suite, memoised per process."""
    scale = scale or current_scale()
    return [get_trace(spec.name, scale) for spec in build_suite(scale)]
