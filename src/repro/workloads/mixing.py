"""Multiprogrammed trace mixing (the PID bit's reason to exist).

Every BTB entry in the paper carries a 1-bit process ID (Figure 2 /
Section 4.4): data-center cores timeshare, and a context switch must not
let one process consume another's predictions.  This module builds that
scenario: it interleaves complete traces in round-robin scheduling
quanta, producing one merged trace whose BTB pressure is the *union* of
the programs' working sets -- the consolidation workload where extra
effective capacity (PDede's whole point) matters most.

Address spaces of distinct suite workloads are disjoint by construction
(each seed draws its own random region ids), so the merged trace needs
no remapping and the PID is implicit in the region bits.
"""

from __future__ import annotations

from repro.workloads.trace import Trace


def interleave_traces(
    traces: list[Trace],
    quantum_events: int = 2000,
    name: str | None = None,
) -> Trace:
    """Round-robin interleave ``traces`` in quanta of ``quantum_events``.

    Each quantum switches to the next program, resuming where it left
    off; programs that run out are skipped.  The merged trace ends when
    every input is exhausted, so every input event appears exactly once.
    """
    if not traces:
        raise ValueError("need at least one trace")
    if quantum_events <= 0:
        raise ValueError("quantum_events must be positive")
    merged = Trace(
        name=name or ("mix(" + "+".join(trace.name for trace in traces) + ")"),
        category="Mixed",
    )
    cursors = [0] * len(traces)
    live = len(traces)
    current = 0
    while live:
        trace = traces[current]
        cursor = cursors[current]
        if cursor >= len(trace):
            current = (current + 1) % len(traces)
            continue
        end = min(cursor + quantum_events, len(trace))
        merged.pcs.extend(trace.pcs[cursor:end])
        merged.kinds.extend(trace.kinds[cursor:end])
        merged.takens.extend(trace.takens[cursor:end])
        merged.targets.extend(trace.targets[cursor:end])
        merged.gaps.extend(trace.gaps[cursor:end])
        cursors[current] = end
        if end >= len(trace):
            live -= 1
        current = (current + 1) % len(traces)
    return merged


def working_set_overlap(first: Trace, second: Trace) -> float:
    """Fraction of the smaller trace's branch PCs shared with the other.

    Suite traces should report ~0 (disjoint address spaces); use this to
    sanity-check externally imported traces before mixing.
    """
    pcs_first = set(first.pcs)
    pcs_second = set(second.pcs)
    if not pcs_first or not pcs_second:
        return 0.0
    shared = len(pcs_first & pcs_second)
    return shared / min(len(pcs_first), len(pcs_second))
