"""Plain-text branch-trace interchange format.

Lets the library consume traces produced by *other* tools (Pin/DynamoRIO
tools, CBP-style trace converters, other simulators) and export its own
synthetic traces for them.  One line per dynamic branch:

    <pc-hex> <kind> <T|N> <target-hex> <gap-decimal>

where ``kind`` is one of ``COND``, ``JMP``, ``CALL``, ``IJMP``, ``ICALL``,
``RET`` (matching :class:`~repro.branch.types.BranchKind`), ``T``/``N``
is the taken bit, and ``gap`` is the count of non-branch instructions
since the previous branch.  Lines starting with ``#`` are comments; a
``# name:`` / ``# category:`` header is honoured when present.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, TextIO

from repro.branch.types import BranchKind
from repro.workloads.trace import Trace

_KIND_TO_TOKEN = {
    BranchKind.COND_DIRECT: "COND",
    BranchKind.UNCOND_DIRECT: "JMP",
    BranchKind.CALL_DIRECT: "CALL",
    BranchKind.UNCOND_INDIRECT: "IJMP",
    BranchKind.CALL_INDIRECT: "ICALL",
    BranchKind.RETURN: "RET",
}
_TOKEN_TO_KIND = {token: kind for kind, token in _KIND_TO_TOKEN.items()}


class TraceFormatError(ValueError):
    """A malformed line or field in a text trace."""


def dump_trace(trace: Trace, destination: str | Path | TextIO) -> None:
    """Write ``trace`` in the text format (path or open file object)."""
    if hasattr(destination, "write"):
        _write(trace, destination)
        return
    with open(Path(destination), "w") as handle:
        _write(trace, handle)


def _write(trace: Trace, handle: TextIO) -> None:
    handle.write(f"# name: {trace.name}\n")
    handle.write(f"# category: {trace.category}\n")
    handle.write("# pc kind taken target gap\n")
    for pc, kind, taken, target, gap in trace.events():
        token = _KIND_TO_TOKEN[BranchKind(kind)]
        handle.write(
            f"{pc:x} {token} {'T' if taken else 'N'} {target:x} {gap}\n"
        )


def load_trace(source: str | Path | TextIO | Iterable[str]) -> Trace:
    """Parse a text trace from a path, open file, or iterable of lines."""
    if isinstance(source, (str, Path)):
        with open(Path(source)) as handle:
            return _parse(handle)
    return _parse(source)


def _parse(lines: Iterable[str]) -> Trace:
    trace = Trace()
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            _parse_header(trace, line)
            continue
        fields = line.split()
        if len(fields) != 5:
            raise TraceFormatError(
                f"line {line_number}: expected 5 fields, got {len(fields)}"
            )
        pc_text, token, taken_text, target_text, gap_text = fields
        kind = _TOKEN_TO_KIND.get(token.upper())
        if kind is None:
            raise TraceFormatError(
                f"line {line_number}: unknown branch kind {token!r} "
                f"(expected one of {sorted(_TOKEN_TO_KIND)})"
            )
        if taken_text not in ("T", "N", "t", "n"):
            raise TraceFormatError(
                f"line {line_number}: taken flag must be T or N, got {taken_text!r}"
            )
        taken = taken_text in ("T", "t")
        if kind.is_unconditional and not taken:
            raise TraceFormatError(
                f"line {line_number}: {token} branches are always taken"
            )
        try:
            pc = int(pc_text, 16)
            target = int(target_text, 16)
            gap = int(gap_text)
        except ValueError as error:
            raise TraceFormatError(f"line {line_number}: {error}") from None
        if gap < 0:
            raise TraceFormatError(f"line {line_number}: negative gap")
        trace.append(pc, kind, taken, target, gap)
    return trace


def _parse_header(trace: Trace, line: str) -> None:
    body = line.lstrip("#").strip()
    for field in ("name", "category"):
        prefix = f"{field}:"
        if body.startswith(prefix):
            setattr(trace, field, body[len(prefix):].strip())
