"""Precomputed per-event columns for the hot simulation loop.

``FrontendSimulator.run`` used to recompute, for every event of every
design in a sweep, quantities that depend only on the trace: block
geometry, the branch-PC avalanche hash, the ``same_page(pc, target)``
bit, the per-event ICache miss count, and (when the default predictor is
used) the conditional-direction outcome.  A :class:`DecodedTrace`
computes each of these once per trace and caches them on the trace
object (:meth:`repro.workloads.trace.Trace.decoded`), so an N-design
sweep pays the trace-pure work once instead of N times.

Two kinds of columns:

* **vectorised** -- pure element-wise functions of the event columns
  (block instructions/starts, hashes, page bits, kind property bytes),
  computed with numpy and materialised as plain lists (CPython iterates
  lists faster than ndarrays, and the hot loop wants native ints);
* **replayed** -- sequential state machines that are nevertheless
  independent of the BTB under test: the ICache miss count per event
  (the *cost* of a miss depends on resteer proximity, but whether a line
  misses depends only on the reference stream) and the TAGE direction
  outcome per conditional (direction state never observes the BTB).
  Replays reuse the real model classes, so the columns are correct by
  construction, and keep the final state object so a simulator can adopt
  it after a fast run.

Everything here is derived, deterministic data; the equivalence suite
(``tests/test_engine_equivalence.py``) checks the decoded engine against
the frozen seed engine bit for bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.branch.direction import TageLitePredictor
from repro.branch.types import BranchKind
from repro.btb.ras import ReturnAddressStack
from repro.frontend.icache import ICache

if TYPE_CHECKING:
    from repro.workloads.trace import Trace

_INSTR_BYTES = 4
_KIND_COND = int(BranchKind.COND_DIRECT)
_KIND_RETURN = int(BranchKind.RETURN)

_ALL_KINDS = [BranchKind(value) for value in range(len(BranchKind))]
_IS_CALL_BY_KIND = np.array([kind.is_call for kind in _ALL_KINDS], dtype=np.bool_)
_IS_INDIRECT_BY_KIND = np.array([kind.is_indirect for kind in _ALL_KINDS], dtype=np.bool_)

#: mix64 constants (repro.branch.address) as uint64 scalars so the
#: vectorised pipeline stays in wrap-around uint64 arithmetic.
_MIX_SHIFT = np.uint64(33)
_MIX_MUL1 = np.uint64(0xFF51AFD7ED558CCD)
_MIX_MUL2 = np.uint64(0xC4CEB9FE1A85EC53)
_PAGE_SHIFT = np.uint64(12)


def _vector_hash_pc(pcs: np.ndarray) -> np.ndarray:
    """``hash_pc`` (mix64 of pc >> 1) over a whole uint64 column."""
    x = pcs >> np.uint64(1)
    x = x ^ (x >> _MIX_SHIFT)
    x = x * _MIX_MUL1
    x = x ^ (x >> _MIX_SHIFT)
    x = x * _MIX_MUL2
    x = x ^ (x >> _MIX_SHIFT)
    return x


class DecodedTrace:
    """One-time derived columns of a :class:`Trace` (see module docs).

    Vectorised columns are built eagerly in :meth:`from_trace`; replayed
    columns are built lazily per configuration key and memoised, since
    different sweeps may use different core geometries or predictors.
    """

    __slots__ = (
        "n_events",
        "block_instructions",
        "hashes",
        "same_page",
        "is_call",
        "is_indirect",
        "_pcs",
        "_block_starts",
        "_takens",
        "_kinds",
        "_targets",
        "_supply_demand",
        "_icache",
        "_direction",
        "_raw",
        "_vector",
        "_index_tag",
        "_supply_demand_arrays",
        "_icache_arrays",
        "_direction_arrays",
        "_ras",
    )

    def __init__(self) -> None:
        self.n_events = 0
        self.block_instructions: list[int] = []
        self.hashes: list[int] = []
        self.same_page: list[bool] = []
        self.is_call: list[bool] = []
        self.is_indirect: list[bool] = []
        self._pcs: list[int] = []
        self._block_starts: list[int] = []
        self._takens: list[bool] = []
        self._kinds: list[int] = []
        self._targets: list[int] = []
        self._supply_demand: dict[tuple[int, int], tuple[list[int], list[int]]] = {}
        self._icache: dict[tuple[int, int, int], tuple[list[int], ICache]] = {}
        self._direction: dict[str, tuple[list[bool], object]] = {}
        # Vectorised-engine columns (numpy mirrors of the list columns),
        # built lazily because only vector-capable runs need them.
        self._raw: tuple[np.ndarray, ...] | None = None
        self._vector: dict[str, np.ndarray] | None = None
        self._index_tag: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
        self._supply_demand_arrays: dict[
            tuple[int, int], tuple[np.ndarray, np.ndarray]
        ] = {}
        self._icache_arrays: dict[tuple[int, int, int], np.ndarray] = {}
        self._direction_arrays: dict[str, np.ndarray] = {}
        self._ras: dict[tuple[bool, int], tuple[np.ndarray, ReturnAddressStack]] = {}

    @classmethod
    def from_trace(cls, trace: "Trace") -> "DecodedTrace":
        pcs, kinds, takens, targets, gaps = trace.columns()
        decoded = cls()
        decoded.n_events = len(trace)
        with np.errstate(over="ignore"):
            wide_gaps = gaps.astype(np.int64)
            decoded.block_instructions = (wide_gaps + 1).tolist()
            decoded._block_starts = (
                pcs - gaps.astype(np.uint64) * np.uint64(_INSTR_BYTES)
            ).tolist()
            hash_arr = _vector_hash_pc(pcs)
            decoded.hashes = hash_arr.tolist()
            same_page_arr = (pcs >> _PAGE_SHIFT) == (targets >> _PAGE_SHIFT)
            decoded.same_page = same_page_arr.tolist()
        decoded.is_call = _IS_CALL_BY_KIND[kinds].tolist()
        decoded.is_indirect = _IS_INDIRECT_BY_KIND[kinds].tolist()
        decoded._pcs = trace.pcs
        decoded._takens = trace.takens
        decoded._kinds = trace.kinds
        decoded._targets = trace.targets
        decoded._raw = (pcs, kinds, takens, targets, gaps, hash_arr, same_page_arr)
        return decoded

    # -- vectorised-engine columns ------------------------------------------

    def vector_columns(self) -> dict[str, np.ndarray]:
        """Numpy event columns for the chunked vector engine, built once.

        Signed ``int64`` variants of the address columns (addresses are
        57-bit, so the conversion is lossless) plus the boolean kind
        properties; every array is the full trace length and sliced per
        chunk by the engine.
        """
        cached = self._vector
        if cached is None:
            if self._raw is None:
                raise RuntimeError("DecodedTrace built without raw columns")
            pcs, kinds, takens, targets, gaps, hash_arr, same_page_arr = self._raw
            cached = {
                "pcs": pcs.astype(np.int64),
                "targets": targets.astype(np.int64),
                "kinds": kinds,
                "taken": np.ascontiguousarray(takens, dtype=np.bool_),
                "instructions": gaps.astype(np.int64) + 1,
                "hashes": hash_arr,
                "same_page": np.ascontiguousarray(same_page_arr, dtype=np.bool_),
                "is_call": _IS_CALL_BY_KIND[kinds],
                "is_indirect": _IS_INDIRECT_BY_KIND[kinds],
                "is_return": kinds == np.uint8(_KIND_RETURN),
            }
            self._vector = cached
        return cached

    def btb_index_tag(self, sets: int, tag_bits: int) -> tuple[np.ndarray, np.ndarray]:
        """Per-event BTB (set index, partial tag) columns for a geometry.

        Exactly the scalar ``hash & mask`` / ``(hash >> 40) & tag_mask``
        mapping of the flat-storage BTBs, vectorised over the cached
        ``hash_pc`` column and memoised per ``(sets, tag_bits)`` so every
        design sharing a geometry reuses the arrays.
        """
        key = (sets, tag_bits)
        cached = self._index_tag.get(key)
        if cached is None:
            hashes = self.vector_columns()["hashes"]
            if sets & (sets - 1) == 0:
                index = (hashes & np.uint64(sets - 1)).astype(np.int64)
            else:
                index = (hashes % np.uint64(sets)).astype(np.int64)
            tag = (
                (hashes >> np.uint64(40)) & np.uint64((1 << tag_bits) - 1)
            ).astype(np.int64)
            cached = (index, tag)
            self._index_tag[key] = cached
        return cached

    def supply_demand_arrays(
        self, fetch_tick: int, commit_tick: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`supply_demand_ticks` as int64 arrays (vector engine)."""
        key = (fetch_tick, commit_tick)
        cached = self._supply_demand_arrays.get(key)
        if cached is None:
            instructions = self.vector_columns()["instructions"]
            cached = (instructions * fetch_tick, instructions * commit_tick)
            self._supply_demand_arrays[key] = cached
        return cached

    def icache_miss_array(
        self, size_kib: int, line_bytes: int, ways: int
    ) -> tuple[np.ndarray, ICache]:
        """:meth:`icache_misses` with the column as an int64 array."""
        key = (size_kib, line_bytes, ways)
        cached = self._icache_arrays.get(key)
        misses, final = self.icache_misses(size_kib, line_bytes, ways)
        if cached is None:
            cached = np.array(misses, dtype=np.int64)
            self._icache_arrays[key] = cached
        return cached, final

    def direction_array(self, signature: str) -> tuple[np.ndarray, object]:
        """:meth:`direction_outcomes` with the column as a bool array."""
        cached = self._direction_arrays.get(signature)
        outcomes, final = self.direction_outcomes(signature)
        if cached is None:
            cached = np.array(outcomes, dtype=np.bool_)
            self._direction_arrays[signature] = cached
        return cached, final

    def ras_outcomes(
        self, use_ras: bool, depth: int
    ) -> tuple[np.ndarray, ReturnAddressStack]:
        """Per-event RAS-correct bits plus the final stack state.

        The RAS sees only the call/return stream -- never the BTB -- so a
        single replay of the real :class:`ReturnAddressStack` serves
        every design, exactly like the ICache and direction replays.
        With ``use_ras`` False returns flow through the BTB and the stack
        only accumulates pushes (the column stays all-True); either way
        the returned stack is the end-of-trace state for adoption after a
        full vector run.
        """
        key = (bool(use_ras), depth)
        cached = self._ras.get(key)
        if cached is None:
            cols = self.vector_columns()
            if use_ras:
                touched = np.flatnonzero(cols["is_call"] | cols["is_return"])
            else:
                touched = np.flatnonzero(cols["is_call"])
            ok = [True] * self.n_events
            ras = ReturnAddressStack(depth)
            pcs = self._pcs
            targets = self._targets
            kinds = self._kinds
            ras_pop = ras.pop
            ras_push = ras.push
            kind_return = _KIND_RETURN
            for index in touched.tolist():
                if use_ras and kinds[index] == kind_return:
                    ok[index] = ras_pop() == targets[index]
                else:
                    ras_push(pcs[index] + _INSTR_BYTES)
            cached = (np.array(ok, dtype=np.bool_), ras)
            self._ras[key] = cached
        return cached

    # -- replayed / per-configuration columns -------------------------------

    def supply_demand_ticks(
        self, fetch_tick: int, commit_tick: int
    ) -> tuple[list[int], list[int]]:
        """Per-event supply/demand in integer ticks.

        ``fetch_tick``/``commit_tick`` are the per-instruction tick
        weights ``cycle_tick // fetch_width`` and
        ``cycle_tick // commit_width`` (exact by construction of
        :attr:`repro.frontend.params.CoreParams.cycle_tick`), so the
        vectorised int64 multiply is exact -- bit-identical to the
        per-event Python multiply and associative under sharded
        summation.
        """
        key = (fetch_tick, commit_tick)
        cached = self._supply_demand.get(key)
        if cached is None:
            instructions = np.array(self.block_instructions, dtype=np.int64)
            cached = (
                (instructions * fetch_tick).tolist(),
                (instructions * commit_tick).tolist(),
            )
            self._supply_demand[key] = cached
        return cached

    def icache_misses(
        self, size_kib: int, line_bytes: int, ways: int
    ) -> tuple[list[int], ICache]:
        """Per-event L1-I miss counts plus the final cache state.

        The reference stream -- one ``touch_range(block_start, pc)`` per
        event -- does not depend on the BTB under test (only the *charge*
        per miss does), so a single replay of the real :class:`ICache`
        serves every design.  The returned cache is the end-of-trace
        state; a fast run deep-copies it into the simulator so post-run
        inspection matches a live run.
        """
        key = (size_kib, line_bytes, ways)
        cached = self._icache.get(key)
        if cached is None:
            icache = ICache(size_kib, line_bytes, ways)
            touch_range = icache.touch_range
            misses = [
                touch_range(start, pc)
                for start, pc in zip(self._block_starts, self._pcs)
            ]
            cached = (misses, icache)
            self._icache[key] = cached
        return cached

    def direction_outcomes(self, signature: str) -> tuple[list[bool], object]:
        """Per-event direction-correct bits plus the final predictor.

        Only resolvable predictor configurations are replayable:
        ``"tage-default"`` (the predictor ``FrontendSimulator`` builds
        when none is supplied) replays a fresh
        :class:`TageLitePredictor`; the perfect oracle never needs a
        column.  Conditional direction state sees only (pc, outcome)
        pairs, never the BTB, so the replay is design-independent.
        """
        cached = self._direction.get(signature)
        if cached is None:
            if signature != "tage-default":
                raise ValueError(f"unknown direction signature {signature!r}")
            predictor = TageLitePredictor()
            predict_and_update = predictor.predict_and_update
            outcomes = [True] * self.n_events
            cond = _KIND_COND
            for index, kind_value in enumerate(self._kinds):
                if kind_value == cond:
                    taken = self._takens[index]
                    outcomes[index] = (
                        predict_and_update(self._pcs[index], taken) == taken
                    )
            cached = (outcomes, predictor)
            self._direction[signature] = cached
        return cached
