"""Portable branch-trace ingestion: the versioned RBT format family.

The legacy text format (:mod:`repro.workloads.textformat`) is fine for
interchange between tools that already agree on it, but it carries no
version marker, no integrity framing, and balloons to ~40 bytes per
event.  Real traces captured with Pin/DynamoRIO tools or converted from
CBP trace sets arrive through *this* module instead, in one of two
framings that share a version number and a validation pipeline:

**RBT text (version 1)** -- self-describing and diffable::

    %RBT 1
    # name: server_oltp_00
    # category: Server
    7f001234abcd COND T 7f001234ab00 7
    ...

One record per dynamic branch: ``<pc-hex> <kind> <T|N> <target-hex>
<gap-decimal>``, with the kind vocabulary of the legacy format (``COND``
``JMP`` ``CALL`` ``IJMP`` ``ICALL`` ``RET``).  The ``%RBT <version>``
magic line must come first; ``# name:`` / ``# category:`` headers and
``#`` comments may appear anywhere.

**RBT binary (version 1)** -- compact delta framing (echoing the
paper's observation that branch targets cluster near their branch)::

    magic   : the 4 bytes ``52 42 54 01`` ("RBT" + version)
    header  : uvarint name length, name bytes (UTF-8),
              uvarint category length, category bytes (UTF-8),
              uvarint event count
    records : per event --
              flags byte   (bits 0-2: BranchKind, bit 3: taken),
              zigzag uvarint pc delta vs the previous record's pc,
              zigzag uvarint target delta vs this record's pc,
              uvarint gap

Varints are LEB128 (7 payload bits per byte, high bit continues);
zigzag maps signed deltas to unsigned (0, -1, 1, -2 -> 0, 1, 2, 3).
Because most consecutive branches and most targets sit within a few
KiB of each other (Figs 6/8), records average ~5 bytes.

Both loaders stream -- text line-by-line, binary through a bounded
chunk reader -- and reject malformed input with :class:`IngestError`,
which carries a machine-readable ``code`` and the offending line/byte
position so converters can be debugged without a hex editor.

:func:`import_trace` is the front door used by ``repro convert`` and
``repro simulate --trace``: it sniffs the framing, loads the trace, and
(by default) runs the characterization gate of
:mod:`repro.analysis.characterize` so out-of-envelope captures are
refused with actionable diagnostics instead of silently skewing every
downstream experiment.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import TYPE_CHECKING, BinaryIO, Iterable, TextIO

from repro.branch.types import BranchKind
from repro.workloads.textformat import _KIND_TO_TOKEN, _TOKEN_TO_KIND
from repro.workloads.trace import Trace

if TYPE_CHECKING:
    from repro.analysis.characterize import (
        CharacterizationEnvelope,
        CharacterizationProfile,
    )

__all__ = [
    "FORMAT_VERSION",
    "IngestError",
    "detect_format",
    "dump_any",
    "dump_binary",
    "dump_text",
    "import_trace",
    "load_any",
    "load_binary",
    "load_text",
]

#: Version shared by the text and binary framings.
FORMAT_VERSION = 1

#: First token of the text framing's magic line.
TEXT_MAGIC = "%RBT"

#: Leading bytes of the binary framing ("RBT" + version byte).
BINARY_MAGIC = b"RBT" + bytes([FORMAT_VERSION])

#: Addresses must fit the 64-bit model (the simulator masks to 57 bits
#: internally, but the interchange format carries raw capture values).
_MAX_ADDRESS = (1 << 64) - 1

#: Caps that turn corrupt varint streams into structured errors instead
#: of gigabyte allocations.
_MAX_STRING_BYTES = 4096
_MAX_EVENTS = 1 << 32
_MAX_VARINT_BYTES = 10

_KIND_COUNT = len(BranchKind)
_TAKEN_BIT = 1 << 3


class IngestError(ValueError):
    """A malformed or out-of-spec input, with a machine-readable code.

    Attributes:
        code: stable error identifier (``bad-magic``, ``bad-record``,
            ``truncated``, ...) for tests and tooling.
        line: 1-based line number (text framing) when known.
        offset: byte offset (binary framing) when known.
    """

    def __init__(
        self,
        code: str,
        message: str,
        line: int | None = None,
        offset: int | None = None,
    ) -> None:
        location = ""
        if line is not None:
            location = f"line {line}: "
        elif offset is not None:
            location = f"byte {offset}: "
        super().__init__(f"{location}{message} [{code}]")
        self.code = code
        self.message = message
        self.line = line
        self.offset = offset


# -- text framing ------------------------------------------------------------


def dump_text(trace: Trace, destination: str | Path | TextIO) -> None:
    """Write ``trace`` in the RBT text framing (path or open file)."""
    if hasattr(destination, "write"):
        _write_text(trace, destination)
        return
    with open(Path(destination), "w") as handle:
        _write_text(trace, handle)


def _write_text(trace: Trace, handle: TextIO) -> None:
    handle.write(f"{TEXT_MAGIC} {FORMAT_VERSION}\n")
    handle.write(f"# name: {trace.name}\n")
    handle.write(f"# category: {trace.category}\n")
    for pc, kind, taken, target, gap in trace.events():
        token = _KIND_TO_TOKEN[BranchKind(kind)]
        handle.write(f"{pc:x} {token} {'T' if taken else 'N'} {target:x} {gap}\n")


def load_text(source: str | Path | TextIO | Iterable[str]) -> Trace:
    """Parse an RBT text trace, streaming line by line."""
    if isinstance(source, (str, Path)):
        with open(Path(source)) as handle:
            return _parse_text(handle)
    return _parse_text(source)


def _parse_text(lines: Iterable[str]) -> Trace:
    trace = Trace()
    saw_magic = False
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not saw_magic:
            if not line.startswith(TEXT_MAGIC):
                raise IngestError(
                    "bad-magic",
                    f"expected a '{TEXT_MAGIC} {FORMAT_VERSION}' magic line first "
                    f"(got {line[:40]!r}); legacy headerless traces go through "
                    "repro.workloads.textformat",
                    line=line_number,
                )
            fields = line.split()
            if len(fields) != 2 or not fields[1].isdigit():
                raise IngestError(
                    "bad-magic",
                    f"magic line must be '{TEXT_MAGIC} <version>', got {line!r}",
                    line=line_number,
                )
            version = int(fields[1])
            if version != FORMAT_VERSION:
                raise IngestError(
                    "unsupported-version",
                    f"RBT version {version} is not supported "
                    f"(this reader understands version {FORMAT_VERSION})",
                    line=line_number,
                )
            saw_magic = True
            continue
        if not line:
            continue
        if line.startswith("#"):
            _parse_header(trace, line)
            continue
        _parse_record(trace, line, line_number)
    if not saw_magic:
        raise IngestError("bad-magic", "empty input: no magic line", line=1)
    return trace


def _parse_header(trace: Trace, line: str) -> None:
    body = line.lstrip("#").strip()
    for field in ("name", "category"):
        prefix = f"{field}:"
        if body.startswith(prefix):
            setattr(trace, field, body[len(prefix):].strip())


def _parse_record(trace: Trace, line: str, line_number: int) -> None:
    fields = line.split()
    if len(fields) != 5:
        raise IngestError(
            "bad-record",
            f"expected 5 fields '<pc> <kind> <T|N> <target> <gap>', got "
            f"{len(fields)}",
            line=line_number,
        )
    pc_text, token, taken_text, target_text, gap_text = fields
    kind = _TOKEN_TO_KIND.get(token.upper())
    if kind is None:
        raise IngestError(
            "bad-kind",
            f"unknown branch kind {token!r} (expected one of "
            f"{sorted(_TOKEN_TO_KIND)})",
            line=line_number,
        )
    if taken_text not in ("T", "N", "t", "n"):
        raise IngestError(
            "bad-taken",
            f"taken flag must be T or N, got {taken_text!r}",
            line=line_number,
        )
    taken = taken_text in ("T", "t")
    if kind.is_unconditional and not taken:
        raise IngestError(
            "bad-taken",
            f"{token} branches are always taken; refusing a not-taken record",
            line=line_number,
        )
    try:
        pc = int(pc_text, 16)
        target = int(target_text, 16)
        gap = int(gap_text)
    except ValueError as error:
        raise IngestError("bad-record", str(error), line=line_number) from None
    _validate_values(pc, target, gap, line=line_number)
    trace.append(pc, kind, taken, target, gap)


def _validate_values(
    pc: int, target: int, gap: int, line: int | None = None, offset: int | None = None
) -> None:
    if not 0 <= pc <= _MAX_ADDRESS:
        raise IngestError(
            "bad-address", f"pc {pc:#x} outside the 64-bit model", line=line,
            offset=offset,
        )
    if not 0 <= target <= _MAX_ADDRESS:
        raise IngestError(
            "bad-address", f"target {target:#x} outside the 64-bit model",
            line=line, offset=offset,
        )
    if gap < 0:
        raise IngestError("bad-gap", f"negative gap {gap}", line=line, offset=offset)


# -- binary framing ----------------------------------------------------------


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not (value & 1) else -((value + 1) >> 1)


def _append_uvarint(out: bytearray, value: int) -> None:
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


class _ByteReader:
    """Bounded, offset-tracking chunk reader over a binary stream."""

    def __init__(self, stream: BinaryIO, chunk_size: int = 1 << 16) -> None:
        self._stream = stream
        self._chunk_size = chunk_size
        self._buffer = b""
        self._position = 0
        #: Bytes consumed so far (for error locations).
        self.offset = 0

    def _fill(self) -> bool:
        chunk = self._stream.read(self._chunk_size)
        if not chunk:
            return False
        self._buffer = self._buffer[self._position:] + chunk
        self._position = 0
        return True

    def read_byte(self) -> int:
        if self._position >= len(self._buffer) and not self._fill():
            raise IngestError(
                "truncated", "unexpected end of input", offset=self.offset
            )
        byte = self._buffer[self._position]
        self._position += 1
        self.offset += 1
        return byte

    def read_exact(self, count: int) -> bytes:
        parts = []
        remaining = count
        while remaining:
            if self._position >= len(self._buffer) and not self._fill():
                raise IngestError(
                    "truncated",
                    f"unexpected end of input ({remaining} byte(s) short)",
                    offset=self.offset,
                )
            take = min(remaining, len(self._buffer) - self._position)
            parts.append(self._buffer[self._position:self._position + take])
            self._position += take
            self.offset += take
            remaining -= take
        return b"".join(parts)

    def read_uvarint(self) -> int:
        result = 0
        shift = 0
        for _ in range(_MAX_VARINT_BYTES):
            byte = self.read_byte()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
        raise IngestError(
            "bad-varint",
            f"varint longer than {_MAX_VARINT_BYTES} bytes (corrupt stream?)",
            offset=self.offset,
        )

    def at_eof(self) -> bool:
        return self._position >= len(self._buffer) and not self._fill()


def dump_binary(trace: Trace, destination: str | Path | BinaryIO) -> None:
    """Write ``trace`` in the RBT binary framing (path or open file)."""
    if hasattr(destination, "write"):
        destination.write(_encode_binary(trace))
        return
    with open(Path(destination), "wb") as handle:
        handle.write(_encode_binary(trace))


def _encode_binary(trace: Trace) -> bytes:
    out = bytearray(BINARY_MAGIC)
    name = trace.name.encode("utf-8")
    category = trace.category.encode("utf-8")
    _append_uvarint(out, len(name))
    out.extend(name)
    _append_uvarint(out, len(category))
    out.extend(category)
    _append_uvarint(out, len(trace))
    previous_pc = 0
    for pc, kind, taken, target, gap in trace.events():
        out.append(int(kind) | (_TAKEN_BIT if taken else 0))
        _append_uvarint(out, _zigzag(pc - previous_pc))
        _append_uvarint(out, _zigzag(target - pc))
        _append_uvarint(out, gap)
        previous_pc = pc
    return bytes(out)


def load_binary(source: str | Path | BinaryIO | bytes) -> Trace:
    """Parse an RBT binary trace through a streaming chunk reader."""
    if isinstance(source, bytes):
        return _parse_binary(_ByteReader(io.BytesIO(source)))
    if isinstance(source, (str, Path)):
        with open(Path(source), "rb") as handle:
            return _parse_binary(_ByteReader(handle))
    return _parse_binary(_ByteReader(source))


def _read_string(reader: _ByteReader, what: str) -> str:
    length = reader.read_uvarint()
    if length > _MAX_STRING_BYTES:
        raise IngestError(
            "bad-header",
            f"{what} length {length} exceeds the {_MAX_STRING_BYTES}-byte cap",
            offset=reader.offset,
        )
    raw = reader.read_exact(length)
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as error:
        raise IngestError(
            "bad-header", f"{what} is not valid UTF-8: {error}", offset=reader.offset
        ) from None


def _parse_binary(reader: _ByteReader) -> Trace:
    magic = reader.read_exact(len(BINARY_MAGIC))
    if magic[:3] != BINARY_MAGIC[:3]:
        raise IngestError(
            "bad-magic",
            f"not an RBT binary stream (leading bytes {magic[:3]!r})",
            offset=0,
        )
    if magic[3] != FORMAT_VERSION:
        raise IngestError(
            "unsupported-version",
            f"RBT binary version {magic[3]} is not supported "
            f"(this reader understands version {FORMAT_VERSION})",
            offset=3,
        )
    trace = Trace()
    trace.name = _read_string(reader, "name")
    trace.category = _read_string(reader, "category")
    n_events = reader.read_uvarint()
    if n_events > _MAX_EVENTS:
        raise IngestError(
            "bad-header",
            f"event count {n_events} exceeds the {_MAX_EVENTS} cap",
            offset=reader.offset,
        )
    previous_pc = 0
    for index in range(n_events):
        record_offset = reader.offset
        flags = reader.read_byte()
        kind_value = flags & 0x7
        if kind_value >= _KIND_COUNT or flags & ~(_TAKEN_BIT | 0x7):
            raise IngestError(
                "bad-record",
                f"record {index}: invalid flags byte {flags:#04x}",
                offset=record_offset,
            )
        kind = BranchKind(kind_value)
        taken = bool(flags & _TAKEN_BIT)
        if kind.is_unconditional and not taken:
            raise IngestError(
                "bad-taken",
                f"record {index}: {kind.name} branches are always taken",
                offset=record_offset,
            )
        pc = previous_pc + _unzigzag(reader.read_uvarint())
        target = pc + _unzigzag(reader.read_uvarint())
        gap = reader.read_uvarint()
        _validate_values(pc, target, gap, offset=record_offset)
        trace.append(pc, kind, taken, target, gap)
        previous_pc = pc
    if not reader.at_eof():
        raise IngestError(
            "trailing-data",
            f"{n_events} event(s) decoded but input continues",
            offset=reader.offset,
        )
    return trace


# -- sniffing and the front door ---------------------------------------------

#: Output framing by file suffix (``dump_any`` / ``repro convert``).
FORMAT_BY_SUFFIX = {
    ".rbt": "rbt-text",
    ".rbtb": "rbt-binary",
    ".npz": "npz",
    ".trace": "legacy-text",
    ".txt": "legacy-text",
}


def detect_format(path: str | Path) -> str:
    """Sniff the framing of ``path`` from its leading bytes.

    Returns one of ``rbt-text``, ``rbt-binary``, ``npz`` (the library's
    own container), or ``legacy-text`` (the headerless
    :mod:`repro.workloads.textformat`).
    """
    with open(Path(path), "rb") as handle:
        head = handle.read(8)
    if head[:3] == BINARY_MAGIC[:3] and len(head) >= 4 and head[3] < 0x20:
        return "rbt-binary"
    if head[:2] == b"PK":
        return "npz"
    if head[: len(TEXT_MAGIC)] == TEXT_MAGIC.encode():
        return "rbt-text"
    return "legacy-text"


def load_any(path: str | Path) -> Trace:
    """Load a trace in whatever supported framing ``path`` carries."""
    from repro.workloads.textformat import load_trace as load_legacy

    fmt = detect_format(path)
    if fmt == "rbt-binary":
        return load_binary(path)
    if fmt == "rbt-text":
        return load_text(path)
    if fmt == "npz":
        return Trace.load(path)
    return load_legacy(path)


def dump_any(trace: Trace, path: str | Path, fmt: str | None = None) -> str:
    """Write ``trace`` to ``path``; framing from ``fmt`` or the suffix.

    Returns the framing actually used.  Unknown suffixes default to the
    RBT text framing.
    """
    from repro.workloads.textformat import dump_trace as dump_legacy

    if fmt is None:
        fmt = FORMAT_BY_SUFFIX.get(Path(path).suffix, "rbt-text")
    if fmt == "rbt-binary":
        dump_binary(trace, path)
    elif fmt == "rbt-text":
        dump_text(trace, path)
    elif fmt == "npz":
        trace.save(path)
    elif fmt == "legacy-text":
        dump_legacy(trace, path)
    else:
        raise ValueError(
            f"unknown trace format {fmt!r}; options: "
            f"{sorted({*FORMAT_BY_SUFFIX.values()})}"
        )
    return fmt


def import_trace(
    path: str | Path,
    gate: bool = True,
    envelope: "CharacterizationEnvelope | None" = None,
) -> "tuple[Trace, CharacterizationProfile]":
    """Load ``path`` and validate it through the characterization gate.

    This is the canonical entry point for real traces: every import is
    profiled (:func:`repro.analysis.characterize.characterize`) and, by
    default, checked against the paper envelope -- a trace whose
    branch-kind mix, footprint, or locality falls outside what the
    Figs 3-8 characterization establishes is rejected with
    :class:`repro.analysis.characterize.EnvelopeError` naming each
    violated bound.  ``gate=False`` still profiles but never rejects.
    """
    from repro.analysis.characterize import characterize, paper_envelope

    trace = load_any(path)
    profile = characterize(trace)
    if gate:
        (envelope or paper_envelope()).check(profile)
    return trace, profile
