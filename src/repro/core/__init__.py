"""PDede: the paper's primary contribution.

Public surface:

* :class:`PDedeBTB` -- the partitioned, deduplicated, delta BTB.
* :class:`PDedeConfig` / :class:`PDedeMode` / :func:`paper_config` --
  geometry, feature knobs, and the iso-storage Table 2 configurations.
* :class:`DedupOnlyBTB` / :func:`partition_only_config` -- the Figure 11a
  ablation designs.
"""

from repro.core.config import PDedeConfig, PDedeMode, default_config, paper_config
from repro.core.pdede import PDedeBTB
from repro.core.ablations import DedupOnlyBTB, partition_only_config
from repro.core.multitag import MultiTagPartitionedBTB
from repro.core.tables import DedupValueTable

__all__ = [
    "PDedeBTB",
    "PDedeConfig",
    "PDedeMode",
    "default_config",
    "paper_config",
    "DedupOnlyBTB",
    "partition_only_config",
    "MultiTagPartitionedBTB",
    "DedupValueTable",
]
