"""PDede configuration and bit-level storage accounting (Table 2).

The defaults reproduce the architecturally feasible configuration of
Section 4.4.3: a 4K-entry BTBM, a 1K-entry Page-BTB and a 4-entry
Region-BTB, sized so that the multi-entry variant lands at iso-storage
with the 37.5 KiB baseline BTB.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.branch.address import OFFSET_BITS, PAGE_IN_REGION_BITS, REGION_BITS


class PDedeMode(enum.Enum):
    """The three PDede designs evaluated in Figure 10."""

    #: BTBM + Region-/Page-BTB + delta encoding (Section 4.1-4.3).
    DEFAULT = "default"
    #: Opportunistically packs the next taken same-page target into the
    #: unused pointer fields of a same-page entry (Section 4.3.1).
    MULTI_TARGET = "multi_target"
    #: Half of each set's ways drop the pointer fields; the savings double
    #: the BTBM entry count at iso-storage (Section 4.3.1).
    MULTI_ENTRY = "multi_entry"


@dataclass(frozen=True)
class PDedeConfig:
    """Geometry and feature knobs for a :class:`~repro.core.pdede.PDedeBTB`.

    Attributes:
        btbm_entries: BTB-Monitor entries.  With ``MULTI_ENTRY`` this is
            the *doubled* count (half the ways are short entries).
        btbm_ways: BTBM set associativity.
        page_entries / page_ways: Page-BTB geometry (value-indexed,
            pointer-addressed, tagless).
        region_entries: Region-BTB entries (fully associative).
        tag_bits: hashed partial tag width in the BTBM.
        conf_bits: confidence-counter width per BTBM entry.
        srrip_bits: RRPV width used in BTBM / Page-BTB / Region-BTB.
        pid_bits: process-ID bits per BTBM entry.
        mode: which of the three designs to build.
        delta_encoding: store only the offset for same-page branches;
            disabling this yields the partition+dedup ablation point of
            Figure 11a.
        always_two_cycle: charge 2 cycles on every taken-branch lookup
            (Figure 11b latency study) instead of only on pointer chases.
        invalidate_stale_pointers: eagerly invalidate BTBM entries whose
            Region-/Page-BTB entry was replaced (the paper leaves them
            dangling; Section 4.4.2 measures 0.06% wrong targets).
        next_target_tag_bits: Section 4.3.1's future-work extension --
            guard the Next Target Offset provision with a small tag of
            the next PC so mismatched misses are not served a bogus
            target (0 = the paper's untagged behaviour; multi-target
            mode only).
        replacement: replacement-policy name for all PDede structures.
        allocate_indirect: when False, indirect branches bypass the BTBM
            (the Section 5.6 ITTAGE configuration).
    """

    btbm_entries: int = 4096
    btbm_ways: int = 8
    page_entries: int = 1024
    page_ways: int = 4
    region_entries: int = 4
    tag_bits: int = 12
    conf_bits: int = 2
    srrip_bits: int = 2
    pid_bits: int = 1
    mode: PDedeMode = PDedeMode.DEFAULT
    delta_encoding: bool = True
    always_two_cycle: bool = False
    invalidate_stale_pointers: bool = False
    next_target_tag_bits: int = 0
    replacement: str = "srrip"
    allocate_indirect: bool = True

    def __post_init__(self) -> None:
        for label, value in (
            ("btbm_entries", self.btbm_entries),
            ("page_entries", self.page_entries),
            ("region_entries", self.region_entries),
        ):
            if value <= 0:
                raise ValueError(f"{label} must be positive")
        if self.btbm_entries % self.btbm_ways:
            raise ValueError("btbm_entries must be divisible by btbm_ways")
        if self.page_entries % self.page_ways:
            raise ValueError("page_entries must be divisible by page_ways")
        if self.mode is PDedeMode.MULTI_ENTRY and self.btbm_ways % 2:
            raise ValueError("multi-entry mode needs an even way count")
        if self.mode is not PDedeMode.DEFAULT and not self.delta_encoding:
            raise ValueError(f"{self.mode.value} requires delta encoding")
        if self.next_target_tag_bits and self.mode is not PDedeMode.MULTI_TARGET:
            raise ValueError("next_target_tag_bits requires multi-target mode")

    # -- derived geometry ---------------------------------------------------

    @property
    def btbm_sets(self) -> int:
        return self.btbm_entries // self.btbm_ways

    @property
    def page_sets(self) -> int:
        return self.page_entries // self.page_ways

    @property
    def page_ptr_bits(self) -> int:
        return (self.page_entries - 1).bit_length()

    @property
    def region_ptr_bits(self) -> int:
        return (self.region_entries - 1).bit_length()

    # -- storage accounting (Table 2) -----------------------------------------

    def btbm_long_entry_bits(self) -> int:
        """Bits of a full BTBM entry (pointer fields present)."""
        bits = (
            self.pid_bits
            + self.tag_bits
            + 1  # delta bit
            + self.srrip_bits
            + self.conf_bits
            + OFFSET_BITS
            + self.page_ptr_bits
            + self.region_ptr_bits
        )
        if self.mode is PDedeMode.MULTI_TARGET:
            bits += 1  # Next Target valid bit; the 12-bit next offset
            # re-uses the pointer fields, costing nothing.
            bits += self.next_target_tag_bits  # future-work tag guard
        return bits

    def btbm_short_entry_bits(self) -> int:
        """Bits of a short (same-page-only) multi-entry-mode entry."""
        return self.btbm_long_entry_bits() - self.page_ptr_bits - self.region_ptr_bits

    def btbm_bits(self) -> int:
        if self.mode is PDedeMode.MULTI_ENTRY:
            half = self.btbm_entries // 2
            return half * self.btbm_long_entry_bits() + half * self.btbm_short_entry_bits()
        return self.btbm_entries * self.btbm_long_entry_bits()

    def page_btb_bits(self) -> int:
        # Tagless: the stored page value doubles as the dedup search key.
        return self.page_entries * (PAGE_IN_REGION_BITS + self.srrip_bits)

    def region_btb_bits(self) -> int:
        return self.region_entries * (REGION_BITS + self.srrip_bits)

    def storage_bits(self) -> int:
        return self.btbm_bits() + self.page_btb_bits() + self.region_btb_bits()

    def storage_kib(self) -> float:
        return self.storage_bits() / 8192.0

    # -- convenience constructors ------------------------------------------------

    def replace(self, **changes) -> "PDedeConfig":
        """Copy with the given fields changed."""
        from dataclasses import replace as _dc_replace

        return _dc_replace(self, **changes)

    def scaled(self, factor: int) -> "PDedeConfig":
        """Config with ``factor``x the BTBM/Page-BTB capacity (Section 5.8)."""
        return self.replace(
            btbm_entries=self.btbm_entries * factor,
            page_entries=self.page_entries * factor,
        )


def paper_config(mode: PDedeMode = PDedeMode.MULTI_ENTRY) -> PDedeConfig:
    """The iso-storage Table 2 configuration for each design.

    The baseline BTB spends 37.5 KiB on 4K branches.  Re-investing
    PDede's per-entry savings at (or just under) the same budget yields:

    * ``DEFAULT``: 6K BTBM entries (42 b each) + tables = ~33.8 KiB,
    * ``MULTI_TARGET``: 6K entries (43 b each) = ~34.5 KiB,
    * ``MULTI_ENTRY``: 8K entries (half long at 42 b, half short at
      30 b) = ~36.0 KiB -- twice the baseline's branch count, matching
      "storing targets for twice the number of branches as baseline".
    """
    if mode is PDedeMode.MULTI_ENTRY:
        return PDedeConfig(btbm_entries=8192, mode=mode)
    return PDedeConfig(btbm_entries=6144, mode=mode)


def default_config(mode: PDedeMode = PDedeMode.MULTI_ENTRY) -> PDedeConfig:
    """Alias for :func:`paper_config` (kept for API symmetry)."""
    return paper_config(mode)
