"""Ablation designs for the Figure 11a ladder.

The paper attributes PDede's 14.4% IPC gain to a ladder of techniques:
target deduplication alone (+1.6%), region/page partitioning with
individual deduplication (+5.3%), delta encoding (+2.5%), and the
multi-target (+2%) / multi-entry (+5%) designs.  Two of these rungs need
dedicated models:

* :class:`DedupOnlyBTB` -- full 57-bit targets deduplicated through one
  level of indirection, no partitioning.  Only ~30% of targets are
  duplicates (Figure 7) and the pointer adds overhead, so the iso-storage
  capacity gain is small -- the paper's 1.6%.
* *Partition-only* -- region/page partitioning + dedup without delta
  encoding; built as a plain :class:`~repro.core.pdede.PDedeBTB` with
  ``delta_encoding=False`` via :func:`partition_only_config`.
"""

from __future__ import annotations

from repro.branch.address import ADDRESS_BITS, hash_pc
from repro.branch.types import BranchEvent
from repro.btb.base import BTBLookup, BranchTargetPredictor
from repro.btb.replacement import make_replacement_policy
from repro.core.config import PDedeConfig, PDedeMode, paper_config
from repro.core.tables import DedupValueTable


def partition_only_config(btbm_entries: int = 6144) -> PDedeConfig:
    """Region/page partitioning + dedup, no delta encoding (Fig 11a)."""
    return paper_config(PDedeMode.DEFAULT).replace(
        btbm_entries=btbm_entries, delta_encoding=False
    )


class DedupOnlyBTB(BranchTargetPredictor):
    """Full-target deduplication through a pointer table, no partitioning.

    Each monitor entry stores a hashed tag, a confidence counter, and a
    pointer into a table of unique 57-bit targets.  Every hit chases the
    pointer, costing the same extra cycle as PDede's pointer path.
    Monitor entries whose target-table entry gets evicted are invalidated
    eagerly (one reverse pointer map), so a lost target yields a clean
    miss rather than a wrong-target resteer.

    Args:
        entries / ways: monitor geometry (iso-storage default: 4608
            entries; with the 3072-entry target table ~38 KiB total).
        target_entries / target_ways: unique-target table geometry --
            the design's Achilles heel: unique targets are ~67% of
            branch PCs (Figure 7), so an iso-storage table cannot cover
            large working sets, which is why dedup alone only buys the
            paper ~1.6%.
    """

    def __init__(
        self,
        entries: int = 4608,
        ways: int = 8,
        target_entries: int = 3072,
        target_ways: int = 8,
        tag_bits: int = 12,
        conf_bits: int = 2,
        srrip_bits: int = 2,
        pid_bits: int = 1,
        replacement: str = "srrip",
    ) -> None:
        super().__init__()
        if entries <= 0 or entries % ways:
            raise ValueError("entries must be positive and divisible by ways")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self.tag_bits = tag_bits
        self.conf_bits = conf_bits
        self.srrip_bits = srrip_bits
        self.pid_bits = pid_bits
        self._conf_max = (1 << conf_bits) - 1
        self._sets_pow2 = self.sets & (self.sets - 1) == 0
        self._ptr_users: dict[int, set[tuple[int, int]]] = {}
        self.targets = DedupValueTable(
            target_entries,
            target_ways,
            ADDRESS_BITS,
            replacement=replacement,
            srrip_bits=srrip_bits,
            name="target-table",
            on_evict=self._invalidate_pointer,
        )
        repl_kwargs = {"m": srrip_bits} if replacement == "srrip" else {}
        self._policies = [
            make_replacement_policy(replacement, ways, **repl_kwargs)
            for _ in range(self.sets)
        ]
        self._valid = [[False] * ways for _ in range(self.sets)]
        self._tags = [[0] * ways for _ in range(self.sets)]
        self._ptr = [[0] * ways for _ in range(self.sets)]
        self._gen = [[0] * ways for _ in range(self.sets)]
        self._conf = [[0] * ways for _ in range(self.sets)]
        self.stale_pointer_reads = 0

    def _invalidate_pointer(self, pointer: int) -> None:
        """Target-table eviction: drop every monitor entry pointing there."""
        for set_index, way in self._ptr_users.pop(pointer, ()):
            if self._valid[set_index][way] and self._ptr[set_index][way] == pointer:
                self._valid[set_index][way] = False

    def _link(self, set_index: int, way: int, pointer: int) -> None:
        self._ptr_users.setdefault(pointer, set()).add((set_index, way))

    def _unlink(self, set_index: int, way: int) -> None:
        if self._valid[set_index][way]:
            users = self._ptr_users.get(self._ptr[set_index][way])
            if users is not None:
                users.discard((set_index, way))

    def _index(self, pc: int) -> int:
        hashed = hash_pc(pc)
        if self._sets_pow2:
            return hashed & (self.sets - 1)
        return hashed % self.sets

    def _tag(self, pc: int) -> int:
        return (hash_pc(pc) >> 40) & ((1 << self.tag_bits) - 1)

    def _find_way(self, set_index: int, tag: int) -> int | None:
        valid = self._valid[set_index]
        tags = self._tags[set_index]
        for way in range(self.ways):
            if valid[way] and tags[way] == tag:
                return way
        return None

    def lookup(self, pc: int) -> BTBLookup:
        set_index = self._index(pc)
        way = self._find_way(set_index, self._tag(pc))
        if way is None:
            return BTBLookup(hit=False, target=None, latency=1, provider="miss")
        pointer = self._ptr[set_index][way]
        if self.targets.is_stale(pointer, self._gen[set_index][way]):
            self.stale_pointer_reads += 1
        target = self.targets.read(pointer)
        self.targets.touch(pointer)
        self._policies[set_index].on_hit(way)
        # The indirection always costs the extra pointer-chase cycle.
        return BTBLookup(hit=True, target=target, latency=2, provider="dedup")

    def update(self, event: BranchEvent) -> None:
        self.stats.updates += 1
        if not event.taken:
            return
        set_index = self._index(event.pc)
        tag = self._tag(event.pc)
        way = self._find_way(set_index, tag)
        if way is not None:
            self._train_existing(set_index, way, event.target)
            return
        pointer, generation = self.targets.allocate(event.target)
        policy = self._policies[set_index]
        way = policy.victim(self._valid[set_index])
        if self._valid[set_index][way]:
            self.stats.evictions += 1
            self._unlink(set_index, way)
        self._valid[set_index][way] = True
        self._tags[set_index][way] = tag
        self._ptr[set_index][way] = pointer
        self._gen[set_index][way] = generation
        self._conf[set_index][way] = 0
        self._link(set_index, way, pointer)
        policy.on_insert(way)
        self.stats.allocations += 1

    def _train_existing(self, set_index: int, way: int, target: int) -> None:
        pointer = self._ptr[set_index][way]
        stored = self.targets.read(pointer)
        conf = self._conf[set_index]
        if stored == target and not self.targets.is_stale(
            pointer, self._gen[set_index][way]
        ):
            if conf[way] < self._conf_max:
                conf[way] += 1
        elif conf[way] > 0:
            conf[way] -= 1
        else:
            self._unlink(set_index, way)
            new_pointer, generation = self.targets.allocate(target)
            self._ptr[set_index][way] = new_pointer
            self._gen[set_index][way] = generation
            self._link(set_index, way, new_pointer)
        self._policies[set_index].on_hit(way)

    def storage_bits(self) -> int:
        pointer_bits = (self.targets.entries - 1).bit_length()
        per_entry = (
            self.pid_bits + self.tag_bits + pointer_bits + self.conf_bits + self.srrip_bits
        )
        return self.entries * per_entry + self.targets.storage_bits()

    @property
    def name(self) -> str:
        return "DedupOnlyBTB"
