"""The multi-tag partitioned BTB: the alternative PDede rejected.

Section 4.2 considers (and rejects) a design without the BTB-Monitor:
the Page- and Region-BTBs are extended to store *multiple PC tags per
entry*, so a single page/region entry can be re-used across several
branch PCs directly.  The paper names two disadvantages, and this model
exhibits both:

1. **tag overhead** -- every shared entry pays ``slots x tag_bits``
   extra storage, visible in :meth:`MultiTagPartitionedBTB.storage_bits`;
2. **statically limited sharing** -- at most ``slots`` branches can
   share one target page; the ``sharing_overflows`` counter measures how
   often an additional would-be sharer is turned away (forcing a
   duplicate entry or an eviction).

The design exists for the DESIGN.md ablation bench: quantifying why the
BTBM indirection is the better trade.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.address import (
    PAGE_IN_REGION_BITS,
    REGION_BITS,
    hash_pc,
    join_target,
    page_in_region,
    page_offset,
    region_id,
)
from repro.branch.types import BranchEvent
from repro.btb.base import BTBLookup, BranchTargetPredictor
from repro.btb.replacement import make_replacement_policy


@dataclass
class _SharedEntry:
    """A value entry shareable by up to ``slots`` PC tags."""

    valid: bool = False
    value: int = 0
    tags: tuple = ()


class _MultiTagTable:
    """Set-associative table of shared value entries with k PC tags."""

    def __init__(self, entries: int, ways: int, value_bits: int, slots: int,
                 tag_bits: int, replacement: str = "srrip") -> None:
        if entries <= 0 or entries % ways:
            raise ValueError("entries must be positive and divisible by ways")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self.value_bits = value_bits
        self.slots = slots
        self.tag_bits = tag_bits
        self._pow2 = self.sets & (self.sets - 1) == 0
        self._table = [[_SharedEntry() for _ in range(ways)] for _ in range(self.sets)]
        repl_kwargs = {"m": 2} if replacement == "srrip" else {}
        self._policies = [
            make_replacement_policy(replacement, ways, **repl_kwargs)
            for _ in range(self.sets)
        ]
        self.sharing_overflows = 0

    def _set_of(self, pc: int) -> int:
        hashed = hash_pc(pc)
        return hashed & (self.sets - 1) if self._pow2 else hashed % self.sets

    def _tag_of(self, pc: int) -> int:
        return ((hash_pc(pc) >> 40) & ((1 << self.tag_bits) - 1)) or 1

    def lookup(self, pc: int) -> int | None:
        """Associative lookup by PC tag; returns the shared value."""
        row = self._table[self._set_of(pc)]
        tag = self._tag_of(pc)
        for way, entry in enumerate(row):
            if entry.valid and tag in entry.tags:
                self._policies[self._set_of(pc)].on_hit(way)
                return entry.value
        return None

    def insert(self, pc: int, value: int) -> None:
        """Attach ``pc`` to an entry holding ``value`` (sharing-limited)."""
        set_index = self._set_of(pc)
        row = self._table[set_index]
        tag = self._tag_of(pc)
        policy = self._policies[set_index]
        # Already attached somewhere? Retarget if the value changed.
        for way, entry in enumerate(row):
            if entry.valid and tag in entry.tags:
                if entry.value == value:
                    policy.on_hit(way)
                    return
                entry.tags = tuple(t for t in entry.tags if t != tag)
        # Attach to an existing entry with the same value and a free slot.
        for way, entry in enumerate(row):
            if entry.valid and entry.value == value:
                if len(entry.tags) < self.slots:
                    entry.tags = entry.tags + (tag,)
                    policy.on_hit(way)
                    return
                # The static sharing limit bites: a would-be sharer is
                # turned away and must burn a whole new entry.
                self.sharing_overflows += 1
                break
        victim = policy.victim([entry.valid for entry in row])
        row[victim] = _SharedEntry(valid=True, value=value, tags=(tag,))
        policy.on_insert(victim)

    def storage_bits(self) -> int:
        per_entry = self.value_bits + self.slots * self.tag_bits + 2  # + SRRIP
        return self.entries * per_entry


class MultiTagPartitionedBTB(BranchTargetPredictor):
    """Partitioned BTB using multi-tag sharing instead of a BTB-Monitor.

    Per-branch state (offset + delta bit) lives in an offset table; the
    page and region components come from multi-tag shared tables looked
    up associatively by the branch PC.

    Args:
        offset_entries / offset_ways: per-branch offset-table geometry.
        page_entries / page_ways / page_slots: shared page table.
        region_entries / region_slots: shared region table.
        tag_bits: PC tag width used in all three structures.
    """

    def __init__(
        self,
        offset_entries: int = 4096,
        offset_ways: int = 8,
        page_entries: int = 1024,
        page_ways: int = 4,
        page_slots: int = 4,
        region_entries: int = 4,
        region_slots: int = 16,
        tag_bits: int = 12,
        delta_encoding: bool = True,
        replacement: str = "srrip",
    ) -> None:
        super().__init__()
        if offset_entries <= 0 or offset_entries % offset_ways:
            raise ValueError("offset_entries must be positive and divisible by ways")
        self.offset_entries = offset_entries
        self.offset_ways = offset_ways
        self.offset_sets = offset_entries // offset_ways
        self.tag_bits = tag_bits
        self.delta_encoding = delta_encoding
        self._pow2 = self.offset_sets & (self.offset_sets - 1) == 0
        self._valid = [[False] * offset_ways for _ in range(self.offset_sets)]
        self._tags = [[0] * offset_ways for _ in range(self.offset_sets)]
        self._offsets = [[0] * offset_ways for _ in range(self.offset_sets)]
        self._delta = [[False] * offset_ways for _ in range(self.offset_sets)]
        repl_kwargs = {"m": 2} if replacement == "srrip" else {}
        self._policies = [
            make_replacement_policy(replacement, offset_ways, **repl_kwargs)
            for _ in range(self.offset_sets)
        ]
        self.pages = _MultiTagTable(
            page_entries, page_ways, PAGE_IN_REGION_BITS, page_slots, tag_bits,
            replacement,
        )
        self.regions = _MultiTagTable(
            region_entries, region_entries, REGION_BITS, region_slots, tag_bits,
            replacement,
        )

    # -- offset-table addressing -------------------------------------------

    def _index(self, pc: int) -> int:
        hashed = hash_pc(pc)
        return hashed & (self.offset_sets - 1) if self._pow2 else hashed % self.offset_sets

    def _tag(self, pc: int) -> int:
        return (hash_pc(pc) >> 40) & ((1 << self.tag_bits) - 1)

    def _find_way(self, set_index: int, tag: int) -> int | None:
        for way in range(self.offset_ways):
            if self._valid[set_index][way] and self._tags[set_index][way] == tag:
                return way
        return None

    # -- BranchTargetPredictor ------------------------------------------------

    def lookup(self, pc: int) -> BTBLookup:
        set_index = self._index(pc)
        way = self._find_way(set_index, self._tag(pc))
        if way is None:
            return BTBLookup(hit=False, target=None, latency=1, provider="miss")
        self._policies[set_index].on_hit(way)
        offset = self._offsets[set_index][way]
        if self._delta[set_index][way]:
            return BTBLookup(
                hit=True,
                target=(pc & ~0xFFF) | offset,
                latency=1,
                provider="multitag-delta",
            )
        page_value = self.pages.lookup(pc)
        region_value = self.regions.lookup(pc)
        if page_value is None or region_value is None:
            # Component entry lost (evicted or sharing-limited): miss.
            return BTBLookup(hit=False, target=None, latency=2, provider="component-miss")
        return BTBLookup(
            hit=True,
            target=join_target(region_value, page_value, offset),
            latency=2,
            provider="multitag-ptr",
        )

    def update(self, event: BranchEvent) -> None:
        self.stats.updates += 1
        if not event.taken:
            return
        pc, target = event.pc, event.target
        use_delta = self.delta_encoding and (pc >> 12) == (target >> 12)
        set_index = self._index(pc)
        tag = self._tag(pc)
        way = self._find_way(set_index, tag)
        if way is None:
            policy = self._policies[set_index]
            way = policy.victim(self._valid[set_index])
            if self._valid[set_index][way]:
                self.stats.evictions += 1
            self._valid[set_index][way] = True
            self._tags[set_index][way] = tag
            policy.on_insert(way)
            self.stats.allocations += 1
        self._offsets[set_index][way] = page_offset(target)
        self._delta[set_index][way] = use_delta
        if not use_delta:
            self.pages.insert(pc, page_in_region(target))
            self.regions.insert(pc, region_id(target))

    def storage_bits(self) -> int:
        offset_entry = 1 + self.tag_bits + 1 + 12 + 2  # pid+tag+delta+offset+srrip
        return (
            self.offset_entries * offset_entry
            + self.pages.storage_bits()
            + self.regions.storage_bits()
        )

    @property
    def sharing_overflows(self) -> int:
        return self.pages.sharing_overflows + self.regions.sharing_overflows

    @property
    def name(self) -> str:
        return "MultiTagPartitionedBTB"
