"""Region-BTB and Page-BTB: the deduplicated target-component tables.

Both tables store *values* (a 29-bit region id, a 16-bit page-in-region
index) exactly once and hand out stable small pointers for the BTBM to
keep (Section 4.2).  Reads are plain memory addressing -- no tags, no
associative match -- because the BTBM pointer names the slot directly.
Allocation, however, is value-indexed so that an already-present value is
found and shared (that *is* the deduplication), with SRRIP choosing
victims when a set is full (Section 4.4.2).

Replacing a value leaves any BTBM entries that pointed at the slot
*dangling*: they now read the new value and predict a wrong target.  The
paper measures this at 0.06% and accepts it; we count these stale reads
via per-slot generation numbers so the experiment can report the rate.
"""

from __future__ import annotations

from repro.branch.address import mix64
from repro.btb.replacement import make_replacement_policy
from repro.checks.sanitizer import sanitizer_step


class DedupValueTable:
    """Set-associative, value-indexed, pointer-addressed dedup table.

    Pointers are ``set * ways + way`` and remain meaningful for the
    lifetime of the slot's current value; generations disambiguate reuse.
    """

    def __init__(
        self,
        entries: int,
        ways: int,
        value_bits: int,
        replacement: str = "srrip",
        srrip_bits: int = 2,
        name: str = "dedup-table",
        on_evict=None,
    ) -> None:
        if entries <= 0:
            raise ValueError("entries must be positive")
        if entries % ways:
            raise ValueError("entries must be divisible by ways")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self.value_bits = value_bits
        self.srrip_bits = srrip_bits
        self.name = name
        self._set_mask = self.sets - 1
        repl_kwargs = {"m": srrip_bits} if replacement == "srrip" else {}
        self._policies = [
            make_replacement_policy(replacement, ways, **repl_kwargs)
            for _ in range(self.sets)
        ]
        self._valid = [[False] * ways for _ in range(self.sets)]
        self._values = [[0] * ways for _ in range(self.sets)]
        self._generations = [[0] * ways for _ in range(self.sets)]
        self.allocations = 0
        self.dedup_hits = 0
        self.evictions = 0
        #: Optional callback fired with the evicted slot's pointer before
        #: reuse; the invalidating-BTBM mode hooks this.
        self.on_evict = on_evict
        #: Mutation journal for the vector engine's value/generation
        #: mirrors: inserts append the written pointer while active.
        self._vec_journal: list[int] | None = None

    def _set_of(self, value: int) -> int:
        if self.sets == 1:
            return 0
        hashed = mix64(value)
        if self.sets & (self.sets - 1) == 0:
            return hashed & self._set_mask
        return hashed % self.sets

    # -- allocation (value-indexed) -----------------------------------------

    def allocate(self, value: int) -> tuple[int, int]:
        """Find-or-insert ``value``; returns ``(pointer, generation)``.

        A find counts as a *dedup hit* -- the value is shared rather than
        stored twice.  An insert may evict, bumping the slot generation so
        dangling pointers are detectable.
        """
        if value >> self.value_bits:
            raise ValueError(
                f"value {value:#x} exceeds {self.value_bits} bits ({self.name})"
            )
        sanitizer_step(self)
        set_index = self._set_of(value)
        valid = self._valid[set_index]
        values = self._values[set_index]
        policy = self._policies[set_index]
        for way in range(self.ways):
            if valid[way] and values[way] == value:
                policy.on_hit(way)
                self.dedup_hits += 1
                return set_index * self.ways + way, self._generations[set_index][way]
        way = policy.victim(valid)
        if valid[way]:
            self.evictions += 1
            self._generations[set_index][way] += 1
            if self.on_evict is not None:
                self.on_evict(set_index * self.ways + way)
        valid[way] = True
        values[way] = value
        policy.on_insert(way)
        self.allocations += 1
        if self._vec_journal is not None:
            self._vec_journal.append(set_index * self.ways + way)
        return set_index * self.ways + way, self._generations[set_index][way]

    # -- reads (pointer-addressed) ----------------------------------------------

    def read(self, pointer: int) -> int:
        """Direct slot read -- the hardware's tagless RAM access."""
        set_index, way = divmod(pointer, self.ways)
        return self._values[set_index][way]

    def generation(self, pointer: int) -> int:
        set_index, way = divmod(pointer, self.ways)
        return self._generations[set_index][way]

    def is_stale(self, pointer: int, generation: int) -> bool:
        """True when the slot was re-allocated since ``generation``."""
        return self.generation(pointer) != generation

    def touch(self, pointer: int) -> None:
        """Promote the slot in its set's replacement order.

        Called on every pointer-chasing lookup: a popular shared entry is
        continuously referenced and therefore never chosen as a victim
        (the paper's argument for leaving pointers dangling).
        """
        set_index, way = divmod(pointer, self.ways)
        self._policies[set_index].on_hit(way)

    def occupancy(self) -> int:
        return sum(sum(valid) for valid in self._valid)

    def metrics(self, prefix: str | None = None) -> dict:
        """Flat metric snapshot, keyed ``<prefix>_*`` (README scheme)."""
        p = prefix or self.name.replace("-", "_")
        return {
            f"{p}_entries": self.entries,
            f"{p}_occupancy": self.occupancy(),
            f"{p}_unique_values": len(self.unique_values()),
            f"{p}_allocations_total": self.allocations,
            f"{p}_dedup_hits_total": self.dedup_hits,
            f"{p}_evictions_total": self.evictions,
        }

    def unique_values(self) -> set[int]:
        present = set()
        for set_index in range(self.sets):
            for way in range(self.ways):
                if self._valid[set_index][way]:
                    present.add(self._values[set_index][way])
        return present

    def storage_bits(self) -> int:
        return self.entries * (self.value_bits + self.srrip_bits)
