"""PDede: the Partitioned, Deduplicated, Delta BTB (Section 4).

Structure (Figure 9A):

* **BTB-Monitor (BTBM)** -- set-associative, indexed and tagged by the
  branch PC.  Each entry carries the 12-bit target page offset directly
  (offsets are dense and do not deduplicate), a delta bit, and pointers
  into the Page-/Region-BTBs for different-page branches.
* **Page-BTB / Region-BTB** -- tagless dedup tables storing each distinct
  target page / region exactly once (:mod:`repro.core.tables`).

Lookup (Section 4.4.1): index+tag-match the BTBM.  With the delta bit
set the target is the branch PC's own page concatenated with the stored
offset -- one cycle.  Otherwise the page and region pointers are chased
(Region-BTB reads in parallel with the Page-BTB once the pointer is
known), costing one extra cycle (Figure 9D).

The two storage-recycling designs of Section 4.3.1 are selected by
:class:`~repro.core.config.PDedeMode`:

* ``MULTI_TARGET`` re-uses the pointer fields of same-page entries to
  hold the *next taken branch's* target offset, staged through a global
  Next Target Offset register at lookup time.
* ``MULTI_ENTRY`` reserves half the ways of every set for short
  (pointer-less, same-page-only) entries and doubles the entry count.

Storage layout: every per-entry field is one flat list indexed by
``set_index * ways + way``.  Tag match is a single ``list.index`` over
the set's slice -- invalid slots hold the ``_NO_TAG`` sentinel (-1),
which no real tag (non-negative) can equal, so the first index hit is
exactly the seed implementation's first valid-and-matching way.  The
invariant that makes this sound: **every** path that clears ``_valid``
must store ``_NO_TAG`` into ``_tags`` (the sanitizer's tag-sentinel
invariant guards it).  Short ways sit above ``_short_base``
(``ways // 2`` in multi-entry mode, else ``ways``), so way-class tests
are an integer compare instead of a list membership scan.
"""

from __future__ import annotations

from repro.branch.address import (
    REGION_BITS,
    PAGE_IN_REGION_BITS,
    fold_bits,
    hash_pc,
    join_target,
    page_base,
    page_in_region,
    page_offset,
    region_id,
    same_page,
)
from repro.branch.types import BranchEvent
from repro.btb.base import BTBLookup, BranchTargetPredictor
from repro.btb.replacement import make_replacement_policy
from repro.checks.sanitizer import sanitizer_step
from repro.core.config import PDedeConfig, PDedeMode
from repro.core.tables import DedupValueTable

_NO_PTR = -1
#: Tag sentinel stored in invalid slots; real tags are non-negative.
_NO_TAG = -1


class PDedeBTB(BranchTargetPredictor):
    """The PDede branch target buffer.

    Args:
        config: geometry and feature selection; see
            :class:`~repro.core.config.PDedeConfig`.
    """

    #: The flat-storage fast hooks (``observe_fast`` and friends) are
    #: exact replications of lookup/update; the simulator's fast engine
    #: keys off this.
    supports_fast_path = True

    def __init__(self, config: PDedeConfig | None = None) -> None:
        super().__init__()
        self.config = config or PDedeConfig()
        cfg = self.config
        self._sets = cfg.btbm_sets
        self._ways = cfg.btbm_ways
        self._sets_pow2 = self._sets & (self._sets - 1) == 0
        self._index_mask = self._sets - 1
        self._tag_mask = (1 << cfg.tag_bits) - 1
        self._conf_max = (1 << cfg.conf_bits) - 1
        on_evict_page = self._invalidate_page_ptr if cfg.invalidate_stale_pointers else None
        on_evict_region = (
            self._invalidate_region_ptr if cfg.invalidate_stale_pointers else None
        )
        self.page_btb = DedupValueTable(
            cfg.page_entries,
            cfg.page_ways,
            PAGE_IN_REGION_BITS,
            replacement=cfg.replacement,
            srrip_bits=cfg.srrip_bits,
            name="page-btb",
            on_evict=on_evict_page,
        )
        self.region_btb = DedupValueTable(
            cfg.region_entries,
            cfg.region_entries,  # fully associative
            REGION_BITS,
            replacement=cfg.replacement,
            srrip_bits=cfg.srrip_bits,
            name="region-btb",
            on_evict=on_evict_region,
        )
        sets, ways = self._sets, self._ways
        size = sets * ways
        self._valid = [False] * size
        self._tags = [_NO_TAG] * size
        self._delta = [False] * size
        self._offsets = [0] * size
        self._page_ptr = [_NO_PTR] * size
        self._region_ptr = [_NO_PTR] * size
        self._page_gen = [0] * size
        self._region_gen = [0] * size
        self._conf = [0] * size
        # Multi-target per-entry state (physically the re-used ptr fields).
        self._next_valid = [False] * size
        self._next_offset = [0] * size
        # Future-work extension: small tag of the next PC (Section 4.3.1).
        self._next_tag = [0] * size
        repl_kwargs = {"m": cfg.srrip_bits} if cfg.replacement == "srrip" else {}
        if cfg.mode is PDedeMode.MULTI_ENTRY:
            half = ways // 2
            self._short_base = half
            self._long_ways = list(range(half))
            self._short_ways = list(range(half, ways))
            self._long_policies = [
                make_replacement_policy(cfg.replacement, half, **repl_kwargs)
                for _ in range(sets)
            ]
            self._short_policies = [
                make_replacement_policy(cfg.replacement, half, **repl_kwargs)
                for _ in range(sets)
            ]
            self._policies = None
        else:
            self._short_base = ways
            self._long_ways = list(range(ways))
            self._short_ways = []
            self._long_policies = self._short_policies = None
            self._policies = [
                make_replacement_policy(cfg.replacement, ways, **repl_kwargs)
                for _ in range(sets)
            ]
        # Multi-target global registers (Section 4.3.1 / 4.4.2).
        self._pending_next_offset: int | None = None
        self._pending_next_tag: int = 0
        self._last_btbm_slot: tuple[int, int] | None = None
        # Reverse pointer maps, maintained only in invalidating mode.
        self._page_ptr_users: dict[int, set[tuple[int, int]]] = {}
        self._region_ptr_users: dict[int, set[tuple[int, int]]] = {}
        #: Mutation journal for the vector engine's struct-of-arrays
        #: mirrors: every write to lookup-visible BTBM state appends its
        #: flat slot here while a vector run is active.
        self._vec_journal: list[int] | None = None
        # Extra observability.
        self.stale_pointer_reads = 0
        self.delta_hits = 0
        self.pointer_hits = 0
        self.next_target_provisions = 0
        self.next_target_correct = 0

    # -- address mapping -----------------------------------------------------

    def _index(self, pc: int) -> int:
        hashed = hash_pc(pc)
        if self._sets_pow2:
            return hashed & self._index_mask
        return hashed % self._sets

    def _tag(self, pc: int) -> int:
        return (hash_pc(pc) >> 40) & self._tag_mask

    def _slot(self, pc: int) -> tuple[int, int]:
        """(set index, tag) from a single hash (hot path)."""
        hashed = hash_pc(pc)
        index = hashed & self._index_mask if self._sets_pow2 else hashed % self._sets
        return index, (hashed >> 40) & self._tag_mask

    def _find_way(self, set_index: int, tag: int) -> int | None:
        base = set_index * self._ways
        try:
            return self._tags.index(tag, base, base + self._ways) - base
        except ValueError:
            return None

    # -- replacement plumbing ---------------------------------------------------

    def _touch(self, set_index: int, way: int) -> None:
        if self._policies is not None:
            self._policies[set_index].on_hit(way)
        elif way >= self._short_base:
            self._short_policies[set_index].on_hit(way - self._short_base)
        else:
            self._long_policies[set_index].on_hit(way)

    def _choose_victim(self, set_index: int, needs_pointers: bool) -> int:
        """Pick the way to (re)fill, honouring multi-entry way reservation."""
        base = set_index * self._ways
        valid = self._valid[base:base + self._ways]
        if self._policies is not None:
            return self._policies[set_index].victim(valid)
        half = self._short_base
        long_valid = valid[:half]
        short_valid = valid[half:]
        if needs_pointers:
            # Different-page branches cannot use pointer-less short ways.
            return self._long_policies[set_index].victim(long_valid)
        # Same-page branches prefer the reserved short ways, then any
        # invalid long way, then evict from the short half.
        if not all(short_valid):
            return half + self._short_policies[set_index].victim(short_valid)
        if not all(long_valid):
            return self._long_policies[set_index].victim(long_valid)
        return half + self._short_policies[set_index].victim(short_valid)

    def _mark_inserted(self, set_index: int, way: int) -> None:
        if self._policies is not None:
            self._policies[set_index].on_insert(way)
        elif way >= self._short_base:
            self._short_policies[set_index].on_insert(way - self._short_base)
        else:
            self._long_policies[set_index].on_insert(way)

    # -- stale-pointer invalidation (optional mode) --------------------------------

    def _invalidate_page_ptr(self, pointer: int) -> None:
        ways = self._ways
        for set_index, way in self._page_ptr_users.pop(pointer, ()):  # pragma: no branch
            # Unlink the entry's *other* pointer too: an invalidated entry
            # left in the region user map would let a later Region-BTB
            # eviction kill whatever unrelated branch re-allocates this
            # slot (the sanitizer's link-balance invariant catches this).
            self._unlink_pointers(set_index, way)
            slot = set_index * ways + way
            self._valid[slot] = False
            self._tags[slot] = _NO_TAG
            if self._vec_journal is not None:
                self._vec_journal.append(slot)

    def _invalidate_region_ptr(self, pointer: int) -> None:
        ways = self._ways
        for set_index, way in self._region_ptr_users.pop(pointer, ()):
            self._unlink_pointers(set_index, way)
            slot = set_index * ways + way
            self._valid[slot] = False
            self._tags[slot] = _NO_TAG
            if self._vec_journal is not None:
                self._vec_journal.append(slot)

    def _unlink_pointers(self, set_index: int, way: int) -> None:
        if not self.config.invalidate_stale_pointers:
            return
        slot = (set_index, way)
        flat = set_index * self._ways + way
        page_ptr = self._page_ptr[flat]
        if page_ptr != _NO_PTR:
            self._page_ptr_users.get(page_ptr, set()).discard(slot)
        region_ptr = self._region_ptr[flat]
        if region_ptr != _NO_PTR:
            self._region_ptr_users.get(region_ptr, set()).discard(slot)

    def _link_pointers(self, set_index: int, way: int) -> None:
        if not self.config.invalidate_stale_pointers:
            return
        slot = (set_index, way)
        flat = set_index * self._ways + way
        page_ptr = self._page_ptr[flat]
        if page_ptr != _NO_PTR:
            self._page_ptr_users.setdefault(page_ptr, set()).add(slot)
        region_ptr = self._region_ptr[flat]
        if region_ptr != _NO_PTR:
            self._region_ptr_users.setdefault(region_ptr, set()).add(slot)

    # -- target reconstruction -----------------------------------------------------

    def _reconstruct(self, set_index: int, way: int, pc: int) -> tuple[int, int]:
        """Rebuild the predicted target of a valid entry.

        Returns ``(target, latency)``.  Pointer-chasing entries cost the
        extra cycle (Figure 9D) and count stale reads when the pointed-to
        slot was re-allocated under them.
        """
        slot = set_index * self._ways + way
        if self._delta[slot]:
            self.delta_hits += 1
            return page_base(pc) | self._offsets[slot], 1
        page_ptr = self._page_ptr[slot]
        region_ptr = self._region_ptr[slot]
        if self.page_btb.is_stale(page_ptr, self._page_gen[slot]) or (
            self.region_btb.is_stale(region_ptr, self._region_gen[slot])
        ):
            self.stale_pointer_reads += 1
        page_value = self.page_btb.read(page_ptr)
        region_value = self.region_btb.read(region_ptr)
        self.page_btb.touch(page_ptr)
        self.region_btb.touch(region_ptr)
        self.pointer_hits += 1
        target = join_target(region_value, page_value, self._offsets[slot])
        return target, 2

    # -- lookup (Section 4.4.1) ------------------------------------------------------

    def lookup(self, pc: int) -> BTBLookup:
        pending = self._pending_next_offset
        pending_tag = self._pending_next_tag
        self._pending_next_offset = None
        set_index, tag = self._slot(pc)
        way = self._find_way(set_index, tag)
        if way is None:
            if pending is not None and (
                not self.config.next_target_tag_bits
                or pending_tag == fold_bits(pc >> 1, self.config.next_target_tag_bits)
            ):
                # BTBM miss served by the Next Target Offset register: the
                # missing PC is the next taken branch after the entry that
                # staged the register, so its target shares the PC's page.
                self.next_target_provisions += 1
                return BTBLookup(
                    hit=False,
                    target=page_base(pc) | pending,
                    latency=2 if self.config.always_two_cycle else 1,
                    provider="next-target",
                )
            return BTBLookup(hit=False, target=None, latency=1, provider="miss")
        target, latency = self._reconstruct(set_index, way, pc)
        if self.config.always_two_cycle:
            latency = 2
        slot = set_index * self._ways + way
        if (
            self.config.mode is PDedeMode.MULTI_TARGET
            and self._delta[slot]
            and self._next_valid[slot]
        ):
            self._pending_next_offset = self._next_offset[slot]
            self._pending_next_tag = self._next_tag[slot]
        self._touch(set_index, way)
        provider = "btbm-delta" if self._delta[slot] else "btbm-ptr"
        return BTBLookup(hit=True, target=target, latency=latency, provider=provider)

    # -- update / allocation (Section 4.4.2) ---------------------------------------

    def update(self, event: BranchEvent) -> None:
        self.stats.updates += 1
        sanitizer_step(self)
        if not event.taken:
            return
        if event.kind.is_indirect and not self.config.allocate_indirect:
            self._last_btbm_slot = None
            return
        pc, target = event.pc, event.target
        is_same_page = same_page(pc, target)
        use_delta = is_same_page and self.config.delta_encoding
        set_index, tag = self._slot(pc)
        way = self._find_way(set_index, tag)
        if way is not None:
            self._train_existing(set_index, way, pc, target, use_delta)
        else:
            way = self._allocate(set_index, tag, target, use_delta)
        if self.config.mode is PDedeMode.MULTI_TARGET:
            self._chain_next_target(set_index, way, pc, target, use_delta)

    # -- fast hooks (decoded-trace engine) -----------------------------------------

    def lookup_fast(self, pc: int, hashed: int) -> tuple[int | None, bool, int]:
        """`lookup` on a precomputed hash; returns ``(target, hit, latency)``.

        Exact state evolution of :meth:`lookup` minus the BTBLookup
        allocation; the simulator's fast engine (and
        ``TwoLevelBTB.observe_fast``) is the only caller.
        """
        pending = self._pending_next_offset
        pending_tag = self._pending_next_tag
        self._pending_next_offset = None
        cfg = self.config
        set_index = hashed & self._index_mask if self._sets_pow2 else hashed % self._sets
        tag = (hashed >> 40) & self._tag_mask
        ways = self._ways
        base = set_index * ways
        try:
            slot = self._tags.index(tag, base, base + ways)
        except ValueError:
            if pending is not None and (
                not cfg.next_target_tag_bits
                or pending_tag == fold_bits(pc >> 1, cfg.next_target_tag_bits)
            ):
                self.next_target_provisions += 1
                return (
                    page_base(pc) | pending,
                    False,
                    2 if cfg.always_two_cycle else 1,
                )
            return (None, False, 1)
        way = slot - base
        target, latency = self._reconstruct(set_index, way, pc)
        if cfg.always_two_cycle:
            latency = 2
        if (
            cfg.mode is PDedeMode.MULTI_TARGET
            and self._delta[slot]
            and self._next_valid[slot]
        ):
            self._pending_next_offset = self._next_offset[slot]
            self._pending_next_tag = self._next_tag[slot]
        self._touch(set_index, way)
        return (target, True, latency)

    def update_fast(
        self,
        pc: int,
        target: int,
        taken: bool,
        is_indirect: bool,
        hashed: int,
        is_same_page: bool,
    ) -> None:
        """`update` on precomputed hash and page bits (no event object).

        The sanitizer hook is omitted: the fast engine only runs with the
        sanitizer disarmed (the simulator gates on it).
        """
        self.stats.updates += 1
        if not taken:
            return
        cfg = self.config
        if is_indirect and not cfg.allocate_indirect:
            self._last_btbm_slot = None
            return
        use_delta = is_same_page and cfg.delta_encoding
        set_index = hashed & self._index_mask if self._sets_pow2 else hashed % self._sets
        tag = (hashed >> 40) & self._tag_mask
        way = self._find_way(set_index, tag)
        if way is not None:
            self._train_existing(set_index, way, pc, target, use_delta)
        else:
            way = self._allocate(set_index, tag, target, use_delta)
        if cfg.mode is PDedeMode.MULTI_TARGET:
            self._chain_next_target(set_index, way, pc, target, use_delta)

    def observe_fast(
        self,
        pc: int,
        target: int,
        taken: bool,
        is_indirect: bool,
        hashed: int,
        is_same_page: bool,
    ) -> tuple[int | None, bool, int]:
        """Combined lookup+update sharing one tag match.

        Returns the lookup's ``(target, hit, latency)``.  Nothing between
        the seed's ``lookup`` and ``update`` calls can change the tag
        match (lookup touches only replacement/pending/counter state), so
        one ``list.index`` serves both halves; every other state
        transition happens in the seed order.
        """
        cfg = self.config
        pending = self._pending_next_offset
        pending_tag = self._pending_next_tag
        self._pending_next_offset = None
        set_index = hashed & self._index_mask if self._sets_pow2 else hashed % self._sets
        tag = (hashed >> 40) & self._tag_mask
        ways = self._ways
        base = set_index * ways
        try:
            slot = self._tags.index(tag, base, base + ways)
        except ValueError:
            # -- lookup outcome on a tag miss --
            if pending is not None and (
                not cfg.next_target_tag_bits
                or pending_tag == fold_bits(pc >> 1, cfg.next_target_tag_bits)
            ):
                self.next_target_provisions += 1
                ltarget: int | None = page_base(pc) | pending
                latency = 2 if cfg.always_two_cycle else 1
            else:
                ltarget = None
                latency = 1
            # -- update half --
            self.stats.updates += 1
            if not taken:
                return (ltarget, False, latency)
            if is_indirect and not cfg.allocate_indirect:
                self._last_btbm_slot = None
                return (ltarget, False, latency)
            use_delta = is_same_page and cfg.delta_encoding
            way = self._allocate(set_index, tag, target, use_delta)
            if cfg.mode is PDedeMode.MULTI_TARGET:
                self._chain_next_target(set_index, way, pc, target, use_delta)
            return (ltarget, False, latency)
        way = slot - base
        ltarget, latency = self._reconstruct(set_index, way, pc)
        if cfg.always_two_cycle:
            latency = 2
        if (
            cfg.mode is PDedeMode.MULTI_TARGET
            and self._delta[slot]
            and self._next_valid[slot]
        ):
            self._pending_next_offset = self._next_offset[slot]
            self._pending_next_tag = self._next_tag[slot]
        self._touch(set_index, way)
        # -- update half --
        self.stats.updates += 1
        if not taken:
            return (ltarget, True, latency)
        if is_indirect and not cfg.allocate_indirect:
            self._last_btbm_slot = None
            return (ltarget, True, latency)
        use_delta = is_same_page and cfg.delta_encoding
        self._train_existing(set_index, way, pc, target, use_delta)
        if cfg.mode is PDedeMode.MULTI_TARGET:
            self._chain_next_target(set_index, way, pc, target, use_delta)
        return (ltarget, True, latency)

    def _train_existing(
        self, set_index: int, way: int, pc: int, target: int, use_delta: bool
    ) -> None:
        predicted, _ = self._reconstruct(set_index, way, pc)
        slot = set_index * self._ways + way
        if predicted == target:
            if self._conf[slot] < self._conf_max:
                self._conf[slot] += 1
        elif self._conf[slot] > 0:
            self._conf[slot] -= 1
        else:
            self._write_target_fields(set_index, way, target, use_delta)
        self._touch(set_index, way)

    def _write_target_fields(
        self, set_index: int, way: int, target: int, use_delta: bool
    ) -> None:
        """(Re)encode an entry's target, allocating table entries if needed."""
        slot = set_index * self._ways + way
        if not use_delta and way >= self._short_base:
            # A short multi-entry way cannot hold pointers: the entry is
            # abandoned and the branch re-allocates into a long way on its
            # next update (hardware simply invalidates).
            self._unlink_pointers(set_index, way)
            self._valid[slot] = False
            self._tags[slot] = _NO_TAG
            if self._vec_journal is not None:
                self._vec_journal.append(slot)
            return
        self._unlink_pointers(set_index, way)
        self._offsets[slot] = page_offset(target)
        self._delta[slot] = use_delta
        self._next_valid[slot] = False
        if use_delta:
            self._page_ptr[slot] = _NO_PTR
            self._region_ptr[slot] = _NO_PTR
        else:
            region_ptr, region_gen = self.region_btb.allocate(region_id(target))
            page_ptr, page_gen = self.page_btb.allocate(page_in_region(target))
            self._region_ptr[slot] = region_ptr
            self._region_gen[slot] = region_gen
            self._page_ptr[slot] = page_ptr
            self._page_gen[slot] = page_gen
            self._link_pointers(set_index, way)
        if self._vec_journal is not None:
            self._vec_journal.append(slot)

    def _allocate(self, set_index: int, tag: int, target: int, use_delta: bool) -> int:
        # Region/Page-BTB allocations come first: a BTBM entry is created
        # only after both succeed, so the BTBM never holds dangling-new
        # pointers (Section 4.4.2).
        way = self._choose_victim(set_index, needs_pointers=not use_delta)
        slot = set_index * self._ways + way
        if self._valid[slot]:
            self.stats.evictions += 1
            self._unlink_pointers(set_index, way)
        self._valid[slot] = True
        self._tags[slot] = tag
        self._conf[slot] = 0
        self._next_valid[slot] = False
        self._page_ptr[slot] = _NO_PTR
        self._region_ptr[slot] = _NO_PTR
        if self._vec_journal is not None:
            self._vec_journal.append(slot)
        self._write_target_fields(set_index, way, target, use_delta)
        self._mark_inserted(set_index, way)
        self.stats.allocations += 1
        return way

    def _chain_next_target(
        self, set_index: int, way: int, pc: int, target: int, is_same_page: bool
    ) -> None:
        """Multi-target bookkeeping after an update (Section 4.4.2)."""
        ways = self._ways
        if self._last_btbm_slot is not None and is_same_page:
            last_set, last_way = self._last_btbm_slot
            last = last_set * ways + last_way
            if self._valid[last] and self._delta[last]:
                self._next_valid[last] = True
                self._next_offset[last] = page_offset(target)
                if self.config.next_target_tag_bits:
                    self._next_tag[last] = fold_bits(
                        pc >> 1, self.config.next_target_tag_bits
                    )
        if is_same_page and self._valid[set_index * ways + way]:
            self._last_btbm_slot = (set_index, way)
        else:
            self._last_btbm_slot = None

    # -- accounting / introspection ---------------------------------------------------

    def storage_bits(self) -> int:
        return self.config.storage_bits()

    @property
    def name(self) -> str:
        return f"PDede[{self.config.mode.value}]"

    def occupancy(self) -> int:
        return sum(self._valid)

    def delta_entry_count(self) -> int:
        return sum(
            1
            for valid, delta in zip(self._valid, self._delta)
            if valid and delta
        )

    def contains(self, pc: int) -> bool:
        return self._find_way(self._index(pc), self._tag(pc)) is not None

    def metrics(self) -> dict:
        """Per-structure snapshot: BTBM, Page-BTB, Region-BTB internals.

        The delta-vs-pointer hit split and the dedup-table occupancies
        are the numbers Section 4's arguments turn on; exposing them per
        run is the point of the observability layer.
        """
        data = super().metrics()
        data.update(
            btbm_occupancy=self.occupancy(),
            btbm_entries=self._sets * self._ways,
            btbm_delta_entries=self.delta_entry_count(),
            pdede_delta_hits_total=self.delta_hits,
            pdede_pointer_hits_total=self.pointer_hits,
            pdede_stale_pointer_reads_total=self.stale_pointer_reads,
            pdede_next_target_provisions_total=self.next_target_provisions,
            pdede_next_target_correct_total=self.next_target_correct,
        )
        data.update(self.page_btb.metrics("page_btb"))
        data.update(self.region_btb.metrics("region_btb"))
        return data
