"""Suite runner with process-level result caching.

Every figure/table of the paper is (app x design) simulations plus an
aggregation.  Simulations are deterministic, so results are memoised per
``(trace name, scale, design key, core-params, warmup)``: benchmark
files for different figures share the underlying runs, and repeated
pytest-benchmark rounds cost one simulation.

``run_suite(..., workers=N)`` fans the per-application simulations out
over a fork-based process pool -- useful at ``REPRO_SCALE=full`` where a
single design sweep is 102 simulations.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field

from repro.frontend.params import CoreParams, ICELAKE
from repro.frontend.simulator import FrontendSimulator
from repro.frontend.stats import FrontendStats
from repro.workloads.suite import build_suite, current_scale, get_trace
from repro.experiments.designs import Design

#: (trace name, scale, design key, params, warmup) -> FrontendStats
_RESULT_CACHE: dict[tuple, FrontendStats] = {}

#: Designs visible to pool workers (populated pre-fork by run_suite).
_WORKER_DESIGNS: dict[str, Design] = {}


def clear_cache() -> None:
    """Drop all memoised simulation results (tests use this)."""
    _RESULT_CACHE.clear()


def run_design(
    trace_name: str,
    design: Design,
    params: CoreParams = ICELAKE,
    warmup_fraction: float = 0.3,
    scale: str | None = None,
) -> FrontendStats:
    """Simulate one (app, design) pair, memoised."""
    scale = scale or current_scale()
    key = (trace_name, scale, design.key, params, warmup_fraction)
    cached = _RESULT_CACHE.get(key)
    if cached is not None:
        return cached
    trace = get_trace(trace_name, scale)
    btb, simulator_kwargs = design.build()
    simulator = FrontendSimulator(btb, params=params, **simulator_kwargs)
    stats = simulator.run(trace, warmup_fraction=warmup_fraction)
    _RESULT_CACHE[key] = stats
    return stats


@dataclass
class SuiteResult:
    """Results of one design across the suite, against a baseline design."""

    design_key: str
    baseline_key: str
    per_app: dict[str, FrontendStats] = field(default_factory=dict)
    baseline_per_app: dict[str, FrontendStats] = field(default_factory=dict)
    categories: dict[str, str] = field(default_factory=dict)

    # -- aggregates --------------------------------------------------------

    def speedups(self) -> dict[str, float]:
        return {
            name: stats.speedup_over(self.baseline_per_app[name])
            for name, stats in self.per_app.items()
        }

    def mpki_reductions(self) -> dict[str, float]:
        return {
            name: stats.mpki_reduction_vs(self.baseline_per_app[name])
            for name, stats in self.per_app.items()
        }

    def mean_speedup(self) -> float:
        """Geometric-mean IPC speedup over the suite (1.0 = no change)."""
        values = list(self.speedups().values())
        if not values:
            return 1.0
        return math.exp(sum(math.log(max(v, 1e-9)) for v in values) / len(values))

    def mean_mpki_reduction(self) -> float:
        """Arithmetic-mean fractional BTB-MPKI reduction."""
        values = list(self.mpki_reductions().values())
        if not values:
            return 0.0
        return sum(values) / len(values)

    def category_mean_speedup(self) -> dict[str, float]:
        by_category: dict[str, list[float]] = {}
        for name, speedup in self.speedups().items():
            by_category.setdefault(self.categories.get(name, "?"), []).append(speedup)
        return {
            category: math.exp(sum(math.log(max(v, 1e-9)) for v in vals) / len(vals))
            for category, vals in by_category.items()
        }

    def category_mean_mpki_reduction(self) -> dict[str, float]:
        by_category: dict[str, list[float]] = {}
        for name, reduction in self.mpki_reductions().items():
            by_category.setdefault(self.categories.get(name, "?"), []).append(reduction)
        return {
            category: sum(vals) / len(vals) for category, vals in by_category.items()
        }


def _pool_worker(job: tuple) -> tuple[tuple, FrontendStats]:
    """Pool entry point: simulate one (app, design) pair in a child.

    Children are forked, so ``_WORKER_DESIGNS`` (and the parent's trace
    cache) are inherited by reference; only the stats come back.
    """
    trace_name, design_key, params, warmup_fraction, scale = job
    design = _WORKER_DESIGNS[design_key]
    stats = run_design(
        trace_name, design, params=params, warmup_fraction=warmup_fraction, scale=scale
    )
    key = (trace_name, scale, design_key, params, warmup_fraction)
    return key, stats


def run_suite(
    design: Design,
    baseline: Design,
    params: CoreParams = ICELAKE,
    warmup_fraction: float = 0.3,
    scale: str | None = None,
    baseline_params: CoreParams | None = None,
    workers: int | None = None,
) -> SuiteResult:
    """Run ``design`` and ``baseline`` across the active suite.

    Args:
        workers: fan the simulations out over this many forked worker
            processes (default: serial; respects the result cache either
            way).  Ignored on platforms without fork.
    """
    scale = scale or current_scale()
    if workers and workers > 1 and hasattr(os, "fork"):
        _prefill_cache_parallel(
            [design, baseline],
            params={design.key: params, baseline.key: baseline_params or params},
            warmup_fraction=warmup_fraction,
            scale=scale,
            workers=workers,
        )
    result = SuiteResult(design_key=design.key, baseline_key=baseline.key)
    for spec in build_suite(scale):
        result.categories[spec.name] = spec.category
        result.per_app[spec.name] = run_design(
            spec.name, design, params=params, warmup_fraction=warmup_fraction, scale=scale
        )
        result.baseline_per_app[spec.name] = run_design(
            spec.name,
            baseline,
            params=baseline_params or params,
            warmup_fraction=warmup_fraction,
            scale=scale,
        )
    return result


def _prefill_cache_parallel(
    designs: list[Design],
    params: dict[str, CoreParams],
    warmup_fraction: float,
    scale: str,
    workers: int,
) -> None:
    """Populate the result cache for (suite x designs) using a fork pool."""
    import multiprocessing

    jobs = []
    for design in designs:
        _WORKER_DESIGNS[design.key] = design
        for spec in build_suite(scale):
            key = (spec.name, scale, design.key, params[design.key], warmup_fraction)
            if key not in _RESULT_CACHE:
                get_trace(spec.name, scale)  # generate pre-fork, share via COW
                jobs.append((spec.name, design.key, params[design.key],
                             warmup_fraction, scale))
    if not jobs:
        return
    context = multiprocessing.get_context("fork")
    with context.Pool(processes=workers) as pool:
        for key, stats in pool.imap_unordered(_pool_worker, jobs):
            _RESULT_CACHE[key] = stats


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render an ASCII table (the benches print these)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(h for h in headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"
