"""Suite runner with process-level result caching.

Every figure/table of the paper is (app x design) simulations plus an
aggregation.  Simulations are deterministic, so results are memoised per
``(trace name, scale, design key, core-params, warmup)``: benchmark
files for different figures share the underlying runs, and repeated
pytest-benchmark rounds cost one simulation.

``run_suite(..., workers=N)`` fans the per-application simulations out
through the shard scheduler
(:mod:`repro.experiments.scheduler`) -- a work-stealing fork pool with
per-task timeouts, bounded retries, and disk-cache resume -- useful at
``REPRO_SCALE=full`` where a single design sweep is 102 simulations.
A group whose shards exhaust their retries is recorded as a structured
failure (``scheduler.drain_failures``) and falls back to an inline
serial run here, so a flaky worker degrades a sweep instead of
aborting it.
"""

from __future__ import annotations

import math
import os
import threading
import time
from dataclasses import dataclass, field

from repro.frontend.params import CoreParams, ICELAKE
from repro.frontend.simulator import FrontendSimulator
from repro.frontend.stats import FrontendStats
from repro.obs import events as obs_events
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer
from repro.workloads.suite import build_suite, current_scale, get_trace
from repro.experiments import diskcache, resultstore, scheduler
from repro.experiments.designs import Design

#: (trace name, scale, design key, params, warmup) -> FrontendStats
_RESULT_CACHE: dict[tuple, FrontendStats] = {}

#: Memo-cache telemetry (exposed by cache_info / the metrics registry).
_CACHE_HITS = 0
_CACHE_MISSES = 0

#: (trace name, design key) -> wall seconds of the last fresh simulation;
#: the report's telemetry appendix ranks these.
_RUN_SECONDS: dict[tuple[str, str], float] = {}

#: (trace name, design key) -> (engine tier, events/sec) of the last
#: fresh simulation; the report's telemetry appendix aggregates these.
_RUN_ENGINES: dict[tuple[str, str], tuple[str, float]] = {}

#: Memo state is written by serve worker threads while the event loop
#: reads ``cache_info`` on ``/v1/stats`` (REP104).
_CACHE_LOCK = threading.Lock()


def cache_enabled() -> bool:
    """Memoisation knob: ``REPRO_RESULT_CACHE=0`` disables the cache
    (benchmarking the cache's own impact, or forcing fresh runs)."""
    return os.environ.get("REPRO_RESULT_CACHE", "1") != "0"


def cache_info() -> dict:
    """Memo-cache telemetry: hits / misses / size / hit rate."""
    with _CACHE_LOCK:
        hits, misses, size = _CACHE_HITS, _CACHE_MISSES, len(_RESULT_CACHE)
    lookups = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "size": size,
        "hit_rate": hits / lookups if lookups else 0.0,
        "enabled": cache_enabled(),
    }


def clear_cache() -> None:
    """Drop all memoised simulation results and telemetry (tests use this)."""
    global _CACHE_HITS, _CACHE_MISSES
    with _CACHE_LOCK:
        _RESULT_CACHE.clear()
        _RUN_SECONDS.clear()
        _RUN_ENGINES.clear()
        _CACHE_HITS = 0
        _CACHE_MISSES = 0


def slowest_runs(n: int = 5) -> list[tuple[str, str, float]]:
    """The ``n`` slowest fresh simulations seen so far, slowest first."""
    with _CACHE_LOCK:
        ranked = sorted(_RUN_SECONDS.items(), key=lambda item: -item[1])
    return [(app, design, seconds) for (app, design), seconds in ranked[:n]]


def engine_mix() -> dict[str, dict]:
    """Fresh simulations grouped by engine tier, with median throughput.

    Keyed by tier (``vector`` / ``fast`` / ``general``); each value
    carries the run count and the median raw events/sec the tier
    sustained -- the report's telemetry appendix renders this so a
    design accidentally falling off the vector path is visible.
    """
    with _CACHE_LOCK:
        rows = list(_RUN_ENGINES.values())
    mix: dict[str, list[float]] = {}
    for engine, eps in rows:
        mix.setdefault(engine, []).append(eps)
    out = {}
    for engine, rates in sorted(mix.items()):
        rates.sort()
        out[engine] = {
            "runs": len(rates),
            "events_per_sec_median": rates[len(rates) // 2],
        }
    return out


def run_design(
    trace_name: str,
    design: Design,
    params: CoreParams = ICELAKE,
    warmup_fraction: float = 0.3,
    scale: str | None = None,
) -> FrontendStats:
    """Simulate one (app, design) pair, memoised."""
    global _CACHE_HITS, _CACHE_MISSES
    scale = scale or current_scale()
    registry = get_registry()
    use_cache = cache_enabled()
    key = (trace_name, scale, design.key, params, warmup_fraction)
    if use_cache:
        with _CACHE_LOCK:
            cached = _RESULT_CACHE.get(key)
            if cached is not None:
                _CACHE_HITS += 1
        if cached is not None:
            registry.counter(
                "harness_result_cache_total", "memo-cache lookups by outcome"
            ).inc(outcome="hit")
            return cached
    with _CACHE_LOCK:
        _CACHE_MISSES += 1
    # Below the memo: the cross-process disk cache.  A disk hit is still
    # a memo miss for cache_info(), but costs no simulation -- the
    # registry counter's "miss" outcome therefore counts *fresh runs*.
    disk_key = None
    if use_cache and diskcache.disk_cache_enabled():
        disk_key = result_store_key(
            trace_name, design.key, params, warmup_fraction, scale
        )
        stats = diskcache.load_result(disk_key)
        if stats is not None:
            with _CACHE_LOCK:
                _RESULT_CACHE[key] = stats
            registry.counter(
                "harness_result_cache_total", "memo-cache lookups by outcome"
            ).inc(outcome="disk-hit")
            return stats
    # Below the disk: the cluster-shared result store (when one is
    # active) -- a hit here is a simulation some other replica (or an
    # earlier batch run) already paid for.
    store = resultstore.get_active_store() if use_cache else None
    if store is not None:
        store_key = disk_key or result_store_key(
            trace_name, design.key, params, warmup_fraction, scale
        )
        try:
            stats = store.get_result(store_key)
        except resultstore.StoreError as error:
            resultstore.degraded(
                "get_result", error, app=trace_name, design=design.key
            )
            stats = None
        if stats is not None:
            with _CACHE_LOCK:
                _RESULT_CACHE[key] = stats
            registry.counter(
                "harness_result_cache_total", "memo-cache lookups by outcome"
            ).inc(outcome="store-hit")
            return stats
    registry.counter(
        "harness_result_cache_total", "memo-cache lookups by outcome"
    ).inc(outcome="miss")
    tracer = get_tracer()
    started = time.perf_counter()
    with tracer.span("simulate", app=trace_name, design=design.key, scale=scale):
        with tracer.span("trace-gen", app=trace_name, scale=scale):
            trace = get_trace(trace_name, scale)
        btb, simulator_kwargs = design.build()
        simulator = FrontendSimulator(btb, params=params, **simulator_kwargs)
        with tracer.span("warmup+measure", app=trace_name, design=design.key):
            stats = simulator.run(trace, warmup_fraction=warmup_fraction)
    elapsed = time.perf_counter() - started
    engine = getattr(simulator, "last_engine", "none")
    events_per_sec = float(getattr(stats, "events_per_sec", 0.0))
    with _CACHE_LOCK:
        _RUN_SECONDS[(trace_name, design.key)] = elapsed
        _RUN_ENGINES[(trace_name, design.key)] = (engine, events_per_sec)
    registry.histogram(
        "harness_simulation_seconds", "wall seconds per fresh simulation"
    ).observe(elapsed, design=design.key, scale=scale)
    registry.counter(
        "harness_engine_runs_total", "fresh simulations by engine tier"
    ).inc(engine=engine)
    obs_events.emit(
        "harness-run", app=trace_name, design=design.key, scale=scale,
        seconds=round(elapsed, 6), engine=engine,
        events_per_sec=round(events_per_sec),
    )
    if use_cache:
        with _CACHE_LOCK:
            _RESULT_CACHE[key] = stats
        if disk_key is not None:
            diskcache.store_result(disk_key, stats)
        if store is not None:
            try:
                store.put_result(
                    disk_key
                    or result_store_key(
                        trace_name, design.key, params, warmup_fraction, scale
                    ),
                    stats,
                )
            except resultstore.StoreError as error:
                resultstore.degraded(
                    "put_result", error, app=trace_name, design=design.key
                )
    return stats


def run_one(
    trace_name: str,
    design: Design,
    params: CoreParams = ICELAKE,
    warmup_fraction: float = 0.3,
    scale: str | None = None,
) -> FrontendStats:
    """Simulate one (app, design) pair -- the single-request entry point.

    Alias of :func:`run_design`; the serving layer's tests byte-compare
    service responses against this function's results.
    """
    return run_design(
        trace_name,
        design,
        params=params,
        warmup_fraction=warmup_fraction,
        scale=scale,
    )


def lookup_cached(
    trace_name: str,
    design: Design,
    params: CoreParams = ICELAKE,
    warmup_fraction: float = 0.3,
    scale: str | None = None,
) -> tuple[FrontendStats | None, str]:
    """Peek the memo, disk and shared-store caches without simulating.

    Returns ``(stats, outcome)`` where outcome is ``"memo"``, ``"disk"``,
    ``"store"`` (a cluster-shared :mod:`resultstore` hit) or ``"miss"``
    (stats is ``None`` on a miss).  A disk or store hit is promoted
    into the memo so the next peek is a memo hit.  A shared-store
    backend failure is recorded (``store_degraded``) and read as a miss
    -- the caller simulates locally.  Deliberately does not touch
    :func:`cache_info` telemetry -- that surface counts
    :func:`run_design` lookups only; the serving layer publishes its own
    ``serve_cache_outcome_total`` series.
    """
    scale = scale or current_scale()
    if not cache_enabled():
        return None, "miss"
    key = (trace_name, scale, design.key, params, warmup_fraction)
    with _CACHE_LOCK:
        cached = _RESULT_CACHE.get(key)
    if cached is not None:
        obs_events.emit(
            "cache-lookup", layer="memo", app=trace_name,
            design=design.key, hit=True,
        )
        return cached, "memo"
    if diskcache.disk_cache_enabled():
        disk_key = result_store_key(
            trace_name, design.key, params, warmup_fraction, scale
        )
        stats = diskcache.load_result(disk_key)
        if stats is not None:
            with _CACHE_LOCK:
                _RESULT_CACHE[key] = stats
            obs_events.emit(
                "cache-lookup", layer="disk", app=trace_name,
                design=design.key, hit=True,
            )
            return stats, "disk"
    store = resultstore.get_active_store()
    if store is not None:
        try:
            stats = store.get_result(
                result_store_key(
                    trace_name, design.key, params, warmup_fraction, scale
                )
            )
        except resultstore.StoreError as error:
            resultstore.degraded(
                "get_result", error, app=trace_name, design=design.key
            )
            stats = None
        if stats is not None:
            with _CACHE_LOCK:
                _RESULT_CACHE[key] = stats
            obs_events.emit(
                "cache-lookup", layer="store", app=trace_name,
                design=design.key, hit=True,
            )
            return stats, "store"
    obs_events.emit(
        "cache-lookup", layer="all", app=trace_name,
        design=design.key, hit=False,
    )
    return None, "miss"


def adopt_result(
    trace_name: str,
    design: Design,
    stats: FrontendStats,
    params: CoreParams = ICELAKE,
    warmup_fraction: float = 0.3,
    scale: str | None = None,
    publish: bool = False,
) -> None:
    """Install an externally-computed result in the memo cache.

    The serving layer's scheduler bridge computes results through
    :func:`repro.experiments.scheduler.run_grid` (which persists them to
    the disk cache itself) and adopts them here so later ``run_design``
    and :func:`lookup_cached` calls memo-hit.  With ``publish=True`` the
    result is also pushed to the active shared store (idempotent:
    values are content-addressed, so a re-publish writes identical
    bytes), making the adoption visible to every replica.
    """
    if not cache_enabled():
        return
    scale = scale or current_scale()
    with _CACHE_LOCK:
        _RESULT_CACHE[(trace_name, scale, design.key, params, warmup_fraction)] = stats
    if publish:
        store = resultstore.get_active_store()
        if store is not None:
            try:
                store.put_result(
                    result_store_key(
                        trace_name, design.key, params, warmup_fraction, scale
                    ),
                    stats,
                )
            except resultstore.StoreError as error:
                resultstore.degraded(
                    "put_result", error, app=trace_name, design=design.key
                )


def result_store_key(
    trace_name: str,
    design_key: str,
    params: CoreParams,
    warmup_fraction: float,
    scale: str,
) -> str:
    """The content hash a suite (app, design) result is shared under.

    One key function for all three result tiers -- disk cache, shared
    store, and the serving layer's single-flight leases -- so a value
    published anywhere is a hit everywhere.
    """
    return diskcache.result_key(
        trace_name, scale, design_key, params, warmup_fraction,
        spec=_find_spec(trace_name, scale),
    )


def _find_spec(trace_name: str, scale: str):
    """The suite spec behind ``trace_name`` (None for ad-hoc traces)."""
    for spec in build_suite(scale):
        if spec.name == trace_name:
            return spec
    return None


@dataclass
class SuiteResult:
    """Results of one design across the suite, against a baseline design."""

    design_key: str
    baseline_key: str
    per_app: dict[str, FrontendStats] = field(default_factory=dict)
    baseline_per_app: dict[str, FrontendStats] = field(default_factory=dict)
    categories: dict[str, str] = field(default_factory=dict)

    # -- aggregates --------------------------------------------------------

    def speedups(self) -> dict[str, float]:
        return {
            name: stats.speedup_over(self.baseline_per_app[name])
            for name, stats in self.per_app.items()
        }

    def mpki_reductions(self) -> dict[str, float]:
        return {
            name: stats.mpki_reduction_vs(self.baseline_per_app[name])
            for name, stats in self.per_app.items()
        }

    def mean_speedup(self) -> float:
        """Geometric-mean IPC speedup over the suite (1.0 = no change)."""
        values = list(self.speedups().values())
        if not values:
            return 1.0
        return math.exp(sum(math.log(max(v, 1e-9)) for v in values) / len(values))

    def mean_mpki_reduction(self) -> float:
        """Arithmetic-mean fractional BTB-MPKI reduction."""
        values = list(self.mpki_reductions().values())
        if not values:
            return 0.0
        return sum(values) / len(values)

    def category_mean_speedup(self) -> dict[str, float]:
        by_category: dict[str, list[float]] = {}
        for name, speedup in self.speedups().items():
            by_category.setdefault(self.categories.get(name, "?"), []).append(speedup)
        return {
            category: math.exp(sum(math.log(max(v, 1e-9)) for v in vals) / len(vals))
            for category, vals in by_category.items()
            if vals
        }

    def category_mean_mpki_reduction(self) -> dict[str, float]:
        by_category: dict[str, list[float]] = {}
        for name, reduction in self.mpki_reductions().items():
            by_category.setdefault(self.categories.get(name, "?"), []).append(reduction)
        return {
            category: sum(vals) / len(vals)
            for category, vals in by_category.items()
            if vals
        }


def run_suite(
    design: Design,
    baseline: Design,
    params: CoreParams = ICELAKE,
    warmup_fraction: float = 0.3,
    scale: str | None = None,
    baseline_params: CoreParams | None = None,
    workers: int | None = None,
    shards: int | None = None,
    task_timeout: float | None = None,
    max_retries: int | None = None,
) -> SuiteResult:
    """Run ``design`` and ``baseline`` across the active suite.

    Args:
        workers: fan the simulations out through the shard scheduler on
            this many forked worker processes (default: the active
            scheduler config, normally serial).
        shards: split each trace's measured region into this many
            scheduler tasks; per-shard stats are merged exactly, so the
            result is bit-identical to an unsharded run.
        task_timeout: wall-seconds budget per scheduler task.
        max_retries: retry budget per scheduler task.
    """
    scale = scale or current_scale()
    config = scheduler.resolve_config(
        workers=workers,
        shards=shards,
        task_timeout=task_timeout,
        max_retries=max_retries,
    )
    use_scheduler = (
        (config.workers > 1 or config.shards > 1)
        and hasattr(os, "fork")
        and cache_enabled()
    )
    if use_scheduler:
        _prefill_cache_scheduled(
            [design, baseline],
            params={design.key: params, baseline.key: baseline_params or params},
            warmup_fraction=warmup_fraction,
            scale=scale,
            config=config,
        )
    result = SuiteResult(design_key=design.key, baseline_key=baseline.key)
    for spec in build_suite(scale):
        result.categories[spec.name] = spec.category
        result.per_app[spec.name] = run_design(
            spec.name, design, params=params, warmup_fraction=warmup_fraction, scale=scale
        )
        result.baseline_per_app[spec.name] = run_design(
            spec.name,
            baseline,
            params=baseline_params or params,
            warmup_fraction=warmup_fraction,
            scale=scale,
        )
    return result


def _prefill_cache_scheduled(
    designs: list[Design],
    params: dict[str, CoreParams],
    warmup_fraction: float,
    scale: str,
    config: "scheduler.SchedulerConfig",
) -> None:
    """Populate the result cache for (suite x designs) via the scheduler.

    Pairs already memoised are skipped.  Groups that come back merged
    feed the memo (and, through the scheduler, the disk cache); groups
    with a failed shard are simply *absent* -- the serial loop in
    ``run_suite`` re-runs them inline, and the failure stays on record
    for the report's appendix.
    """
    skip = set()
    for design in designs:
        for spec in build_suite(scale):
            key = (spec.name, scale, design.key, params[design.key], warmup_fraction)
            with _CACHE_LOCK:
                present = key in _RESULT_CACHE
            if present:
                skip.add((spec.name, design.key))
    report = scheduler.run_grid(
        designs,
        params_by_design=params,
        warmup_fraction=warmup_fraction,
        scale=scale,
        config=config,
        skip=skip,
    )
    for (trace_name, design_key), stats in report.merged.items():
        key = (trace_name, scale, design_key, params[design_key], warmup_fraction)
        with _CACHE_LOCK:
            _RESULT_CACHE[key] = stats
            _RUN_SECONDS[(trace_name, design_key)] = report.group_seconds.get(
                (trace_name, design_key), 0.0
            )


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render an ASCII table (the benches print these)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string."""
    return f"{value * 100:.{digits}f}%"
