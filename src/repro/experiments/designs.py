"""Named design factories used across the experiment runners.

A *design* is everything the frontend simulator needs besides the
trace: the BTB instance plus simulator options (direction predictor,
ITTAGE, RAS policy).  Factories are registered under stable string
names so the harness can cache results per ``(trace, design)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.branch.direction import PerfectDirectionPredictor
from repro.btb.base import BranchTargetPredictor
from repro.btb.baseline import BaselineBTB
from repro.btb.ittage import ITTagePredictor
from repro.btb.shotgun import ShotgunBTB
from repro.btb.twolevel import TwoLevelBTB
from repro.core.ablations import DedupOnlyBTB, partition_only_config
from repro.core.config import PDedeConfig, PDedeMode, paper_config
from repro.core.multitag import MultiTagPartitionedBTB
from repro.core.pdede import PDedeBTB


@dataclass
class Design:
    """A named, reproducible simulator configuration."""

    key: str
    build_btb: Callable[[], BranchTargetPredictor]
    simulator_kwargs: Callable[[], dict] = field(default=lambda: {})

    def build(self) -> tuple[BranchTargetPredictor, dict]:
        return self.build_btb(), self.simulator_kwargs()


def baseline_design(entries: int = 4096, key: str | None = None, **kwargs) -> Design:
    """The conventional BTB (Section 2), any capacity."""
    key = key or f"baseline-{entries}"
    return Design(key=key, build_btb=lambda: BaselineBTB(entries=entries, **kwargs))


def pdede_design(
    mode: PDedeMode = PDedeMode.MULTI_ENTRY,
    config: PDedeConfig | None = None,
    key: str | None = None,
) -> Design:
    """A PDede design in the requested mode (Table 2 config by default)."""
    resolved = config or paper_config(mode)
    key = key or f"pdede-{mode.value.replace('_', '-')}"
    return Design(key=key, build_btb=lambda: PDedeBTB(resolved))


def dedup_only_design(key: str = "dedup-only", **kwargs) -> Design:
    """Figure 11a rung 1: full-target dedup, no partitioning."""
    return Design(key=key, build_btb=lambda: DedupOnlyBTB(**kwargs))


def partition_only_design(key: str = "partition-only") -> Design:
    """Figure 11a rung 2: region/page partition + dedup, no delta."""
    config = partition_only_config()
    return Design(key=key, build_btb=lambda: PDedeBTB(config))


def shotgun_design(key: str = "shotgun", **kwargs) -> Design:
    """The Section 5.10 comparator."""
    return Design(key=key, build_btb=lambda: ShotgunBTB(**kwargs))


def multitag_design(key: str = "multitag", **kwargs) -> Design:
    """The Section 4.2 alternative PDede rejected (multi-tag sharing)."""
    return Design(key=key, build_btb=lambda: MultiTagPartitionedBTB(**kwargs))


def ghrp_design(entries: int = 4096, key: str | None = None, **kwargs) -> Design:
    """Predictive-replacement baseline (GHRP, cited as orthogonal work)."""
    from repro.btb.ghrp import GhrpBTB

    key = key or f"ghrp-{entries}"
    return Design(key=key, build_btb=lambda: GhrpBTB(entries=entries, **kwargs))


def micro_btb_design(key: str = "micro-btb", **kwargs) -> Design:
    """Two-tier last-level BTB hierarchy (Micro BTB, Gupta & Panda).

    General engine only (the class opts out of the fast/vector tiers).
    """
    from repro.btb.microbtb import MicroBTB

    return Design(key=key, build_btb=lambda: MicroBTB(**kwargs))


def shadow_design(
    inner: str = "baseline", key: str | None = None, **kwargs
) -> Design:
    """Decode-assisted shadow-branch fill (Pepi et al.) over Baseline/PDede.

    ``inner`` selects the main predictor the shadow table backs.
    General engine only (the class opts out of the fast/vector tiers).
    """
    from repro.btb.shadow import ShadowBTB

    if inner not in ("baseline", "pdede"):
        raise ValueError(f"inner must be 'baseline' or 'pdede', got {inner!r}")
    key = key or f"shadow-{inner}"

    def build() -> BranchTargetPredictor:
        if inner == "baseline":
            core: BranchTargetPredictor = BaselineBTB()
        else:
            core = PDedeBTB(paper_config(PDedeMode.MULTI_ENTRY))
        return ShadowBTB(core, **kwargs)

    return Design(key=key, build_btb=build)


def with_temporal_prefetch(design: Design, **kwargs) -> Design:
    """Wrap a design with Twig/Phantom-style temporal BTB prefetching.

    Measures the paper's closing §5.10 claim that PDede *complements*
    BTB prefetching techniques.
    """
    from repro.btb.prefetch import TemporalPrefetchBTB

    def build() -> BranchTargetPredictor:
        inner, _ = design.build()
        return TemporalPrefetchBTB(inner, **kwargs)

    return Design(
        key=design.key + "+prefetch",
        build_btb=build,
        simulator_kwargs=design.simulator_kwargs,
    )


def two_level_design(
    l0_entries: int,
    l1_design: Design,
    key: str | None = None,
) -> Design:
    """Section 5.9: small L0 + large L1 (conventional or PDede)."""
    key = key or f"twolevel-{l0_entries}-{l1_design.key}"

    def build() -> BranchTargetPredictor:
        level0 = BaselineBTB(entries=l0_entries, ways=min(4, max(1, l0_entries // 64)))
        level1, _ = l1_design.build()
        return TwoLevelBTB(level0, level1)

    return Design(key=key, build_btb=build)


def with_perfect_direction(design: Design) -> Design:
    """Section 5.5 variant: oracle conditional direction prediction."""
    return Design(
        key=design.key + "+perfect-dir",
        build_btb=design.build_btb,
        simulator_kwargs=lambda: {"direction": PerfectDirectionPredictor()},
    )


def with_ittage(design: Design, indirect_in_btb: bool = False) -> Design:
    """Section 5.6 variant: 64KB-class ITTAGE owns indirect branches.

    The wrapped BTB should be built with ``allocate_indirect=False`` by
    the caller when ``indirect_in_btb`` is False (the paper's setup).
    """
    return Design(
        key=design.key + "+ittage",
        build_btb=design.build_btb,
        simulator_kwargs=lambda: {"ittage": ITTagePredictor()},
    )


def with_returns_in_btb(design: Design) -> Design:
    """Section 5.7 variant: no RAS; returns stored in the BTB."""
    return Design(
        key=design.key + "+ret-in-btb",
        build_btb=design.build_btb,
        simulator_kwargs=lambda: {"returns_use_ras": False},
    )


def standard_designs() -> dict[str, Design]:
    """The Figure 10 line-up: baseline and the three PDede designs."""
    return {
        "baseline": baseline_design(),
        "pdede-default": pdede_design(PDedeMode.DEFAULT),
        "pdede-multi-target": pdede_design(PDedeMode.MULTI_TARGET),
        "pdede-multi-entry": pdede_design(PDedeMode.MULTI_ENTRY),
    }


def design_registry() -> dict[str, Design]:
    """Every stably-named design a request may ask for by key.

    Shared by the CLI (``simulate DESIGN`` / ``--design``) and the
    serving layer, which validates incoming requests against exactly
    this mapping.  Note the ``"baseline"`` registry name maps to the
    4096-entry design whose internal key is ``baseline-4096``.
    """
    return {
        "baseline": baseline_design(),
        "baseline-6144": baseline_design(entries=6144, key="baseline-6144"),
        "baseline-8192": baseline_design(entries=8192),
        "pdede-default": pdede_design(PDedeMode.DEFAULT),
        "pdede-multi-target": pdede_design(PDedeMode.MULTI_TARGET),
        "pdede-multi-entry": pdede_design(PDedeMode.MULTI_ENTRY),
        "dedup-only": dedup_only_design(),
        "partition-only": partition_only_design(),
        "shotgun": shotgun_design(),
        "micro-btb": micro_btb_design(),
        "shadow-baseline": shadow_design("baseline"),
        "shadow-pdede": shadow_design("pdede"),
    }
