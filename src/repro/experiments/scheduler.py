"""Work-stealing, shard-aware scheduler for experiment sweeps.

``run_suite`` used to fan simulations over a bare fork pool: no
sharding (one task per (app, design), however long it runs), no
timeouts, and no recovery -- one hung or crashed worker lost the whole
sweep.  This module decomposes an experiment grid into
``(trace shard x design x params)`` tasks and runs them on a
process-per-worker pool with:

* **sharding** -- each task replays the trace prefix ``[0, start)`` for
  state warmup and measures ``[start, stop)``
  (``FrontendSimulator.run(measure_range=...)``).  Per-shard
  ``FrontendStats`` merge exactly (:meth:`FrontendStats.merge`, integer
  ticks), so the merged result is bit-identical to an unsharded run.
  Intra-trace sharding deliberately trades total CPU (the prefix replay)
  for bounded per-task runtime -- which is what makes per-task timeouts
  meaningful and crash/resume granular;
* **work stealing** -- tasks are dealt round-robin into per-worker
  ownership deques; an idle worker drains its own deque from the front
  and steals from the *back* of the longest other deque;
* **per-task timeouts** -- a worker past its deadline is terminated and
  respawned, the task requeued;
* **bounded retries with exponential backoff** -- a failed attempt
  (exception, timeout, worker death) is retried up to ``max_retries``
  times with deterministic ``base * 2**(attempt-1)`` delays (no jitter:
  reproducibility beats thundering-herd lore at this scale);
* **graceful degradation** -- a task that exhausts its retries becomes a
  structured :class:`TaskFailure` in the report instead of aborting the
  sweep;
* **crash-safe resume** -- every finished shard is stored in the disk
  cache under :func:`repro.experiments.diskcache.shard_result_key`;
  re-running a killed sweep loads finished shards and simulates only the
  missing ones.  Fully-merged results are additionally stored under the
  ordinary unsharded result key, so later unsharded runs disk-hit too.

Observability: ``scheduler_tasks_total{outcome}``,
``scheduler_retries_total``, ``scheduler_timeouts_total``,
``scheduler_steals_total`` counters and a ``scheduler_shard_seconds``
histogram in the metrics registry, plus an optional JSONL task log
(``log_path`` / ``--scheduler-log``) that CI uploads as an artifact.

Failures accumulate in a module-level session list; the evaluation
report drains them into its failure appendix
(:func:`drain_failures`).
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import IO, Any

from repro.experiments import diskcache
from repro.experiments.designs import Design
from repro.frontend.params import CoreParams, ICELAKE
from repro.frontend.simulator import FrontendSimulator
from repro.frontend.stats import FrontendStats
from repro.obs import events as obs_events
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer
from repro.workloads.suite import build_suite, current_scale, get_trace

__all__ = [
    "SchedulerConfig",
    "ShardTask",
    "TaskFailure",
    "ScheduleReport",
    "config_from_env",
    "configure",
    "resolve_config",
    "drain_failures",
    "peek_failures",
    "session_counters",
    "reset_session_counters",
    "shard_bounds",
    "build_shard_tasks",
    "run_grid",
]


# -- configuration -----------------------------------------------------------


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of one scheduled sweep (CLI flags / ``REPRO_SCHED_*`` env).

    Attributes:
        workers: forked worker processes (``<= 1`` or a fork-less
            platform runs tasks serially in-process).
        shards: measured-region shards per (app, design) pair.
        task_timeout: wall-seconds budget per task; ``None`` disables.
            Only enforceable with forked workers (a serial run cannot
            interrupt itself).
        max_retries: retry budget per task after its first attempt.
        backoff_base: first retry delay, seconds; attempt ``k`` waits
            ``backoff_base * 2**(k-1)``, capped at ``backoff_max``.
        log_path: append one JSONL record per task outcome here.
    """

    workers: int = 1
    shards: int = 1
    task_timeout: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    log_path: str | None = None


def config_from_env() -> SchedulerConfig:
    """Build the default config from ``REPRO_SCHED_*`` variables."""

    def _int(name: str, default: int) -> int:
        raw = os.environ.get(name, "")
        return int(raw) if raw else default

    def _float(name: str) -> float | None:
        raw = os.environ.get(name, "")
        return float(raw) if raw else None

    timeout = _float("REPRO_SCHED_TASK_TIMEOUT")
    return SchedulerConfig(
        workers=_int("REPRO_SCHED_WORKERS", 1),
        shards=_int("REPRO_SCHED_SHARDS", 1),
        task_timeout=timeout,
        max_retries=_int("REPRO_SCHED_MAX_RETRIES", 2),
        log_path=os.environ.get("REPRO_SCHED_LOG") or None,
    )


#: Process-wide config override (the CLI's scheduler flags set this);
#: ``None`` falls back to the environment.
_ACTIVE_CONFIG: SchedulerConfig | None = None


def configure(config: SchedulerConfig | None) -> None:
    """Install (or with ``None``, clear) the process-wide config."""
    global _ACTIVE_CONFIG
    _ACTIVE_CONFIG = config


def resolve_config(
    workers: int | None = None,
    shards: int | None = None,
    task_timeout: float | None = None,
    max_retries: int | None = None,
    log_path: str | None = None,
) -> SchedulerConfig:
    """The active config with any explicitly-passed fields overridden."""
    config = _ACTIVE_CONFIG if _ACTIVE_CONFIG is not None else config_from_env()
    overrides: dict[str, Any] = {}
    if workers is not None:
        overrides["workers"] = workers
    if shards is not None:
        overrides["shards"] = shards
    if task_timeout is not None:
        overrides["task_timeout"] = task_timeout
    if max_retries is not None:
        overrides["max_retries"] = max_retries
    if log_path is not None:
        overrides["log_path"] = log_path
    return replace(config, **overrides) if overrides else config


# -- tasks -------------------------------------------------------------------


@dataclass(frozen=True)
class ShardTask:
    """One unit of work: measure shard ``[start, stop)`` of one run."""

    trace_name: str
    scale: str
    design_key: str
    params: CoreParams
    warmup_fraction: float
    shard_index: int
    n_shards: int
    start: int
    stop: int
    n_events: int
    #: Disk-cache key of this shard's result (None when uncacheable,
    #: e.g. an ad-hoc trace with no suite spec).
    disk_key: str | None = None

    @property
    def task_id(self) -> str:
        return (
            f"{self.trace_name}:{self.design_key}"
            f":{self.shard_index + 1}/{self.n_shards}"
        )

    @property
    def group(self) -> tuple[str, str]:
        """Tasks of one (app, design) run merge into one result."""
        return (self.trace_name, self.design_key)


def shard_bounds(
    n_events: int, warmup_fraction: float, n_shards: int
) -> list[tuple[int, int]]:
    """Partition the measured region ``[warm_limit, n_events)``.

    The warmup prefix is never split -- every shard replays it (and its
    predecessors' measured events) unmeasured, so state at each shard's
    start is exactly the unsharded run's state.  Remainders go to the
    leading shards; at most ``n_shards`` non-empty bounds are returned
    (fewer when the measured region is shorter than the shard count).
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    warm_limit = int(n_events * warmup_fraction)
    measured = n_events - warm_limit
    bounds = []
    start = warm_limit
    for index in range(n_shards):
        size = measured // n_shards + (1 if index < measured % n_shards else 0)
        if size == 0 and index > 0:
            break
        bounds.append((start, start + size))
        start += size
    return bounds


@dataclass(frozen=True)
class TaskFailure:
    """A task that exhausted its retries (the sweep still completed)."""

    task_id: str
    trace_name: str
    design_key: str
    shard_index: int
    n_shards: int
    kind: str  #: "exception" | "timeout" | "crash"
    message: str
    attempts: int

    def to_dict(self) -> dict:
        return {
            "task": self.task_id,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
        }


@dataclass
class ScheduleReport:
    """Everything a sweep produced, including what went wrong."""

    #: (app, design) -> exactly-merged stats; groups with a failed shard
    #: are absent (the caller decides whether to fall back or surface).
    merged: dict[tuple[str, str], FrontendStats] = field(default_factory=dict)
    #: (app, design, shard index) -> that shard's stats.
    shard_results: dict[tuple[str, str, int], FrontendStats] = field(
        default_factory=dict
    )
    failures: list[TaskFailure] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    #: (app, design) -> summed worker wall-seconds across its shards.
    group_seconds: dict[tuple[str, str], float] = field(default_factory=dict)


#: Failures accumulated across every sweep of this process; the report's
#: failure appendix drains these.
_SESSION_FAILURES: list[TaskFailure] = []

#: Task counters accumulated across every sweep of this process.  The
#: serving layer's warm-cache tests pin ``session_counters()["fresh"]``
#: at zero to prove a request storm against a warm cache never
#: simulates; ``/v1/stats`` republishes them.
_SESSION_COUNTERS: dict[str, int] = {}

#: Counters/failures are written by serve worker threads running sweeps
#: while the event loop republishes them on ``/v1/stats`` (REP104).
_SESSION_LOCK = threading.Lock()


def session_counters() -> dict[str, int]:
    """Task counters summed over every ``run_grid`` call so far."""
    with _SESSION_LOCK:
        return dict(_SESSION_COUNTERS)


def reset_session_counters() -> None:
    with _SESSION_LOCK:
        _SESSION_COUNTERS.clear()


def _accumulate_session_counters(counters: dict[str, int]) -> None:
    with _SESSION_LOCK:
        for name, value in counters.items():
            _SESSION_COUNTERS[name] = _SESSION_COUNTERS.get(name, 0) + value


def drain_failures() -> list[TaskFailure]:
    """Return-and-clear the session's accumulated failures."""
    with _SESSION_LOCK:
        failures = list(_SESSION_FAILURES)
        _SESSION_FAILURES.clear()
    return failures


def peek_failures() -> list[TaskFailure]:
    with _SESSION_LOCK:
        return list(_SESSION_FAILURES)


# -- workers -----------------------------------------------------------------

#: Designs visible to forked workers and the serial path, keyed by
#: design key; populated pre-fork (Design holds closures, which do not
#: pickle -- fork inheritance is the transport, as in the old pool).
_TASK_DESIGNS: dict[str, Design] = {}


def _default_runner(task: ShardTask, attempt: int) -> FrontendStats:
    """Simulate one shard (or load it from the disk cache)."""
    del attempt  # the default runner does not vary; fault injectors do
    if task.disk_key is not None:
        cached = diskcache.load_result(task.disk_key)
        if cached is not None:
            return cached
    trace = get_trace(task.trace_name, task.scale)
    design = _TASK_DESIGNS[task.design_key]
    btb, simulator_kwargs = design.build()
    simulator = FrontendSimulator(btb, params=task.params, **simulator_kwargs)
    stats = simulator.run(
        trace,
        warmup_fraction=task.warmup_fraction,
        measure_range=(task.start, task.stop),
    )
    if task.disk_key is not None:
        diskcache.store_result(task.disk_key, stats)
    return stats


def _worker_main(conn, runner) -> None:
    """Forked worker loop: receive a task, reply with stats or an error."""
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                return
            _, task, attempt = message
            started = time.perf_counter()
            try:
                stats = runner(task, attempt)
            except Exception as exc:  # noqa: BLE001 - reported to the parent
                conn.send(
                    (
                        "fail",
                        f"{type(exc).__name__}: {exc}",
                        time.perf_counter() - started,
                    )
                )
            else:
                conn.send(("done", stats, time.perf_counter() - started))
    except (EOFError, OSError, KeyboardInterrupt):
        return


class _Worker:
    """Parent-side handle of one forked worker process."""

    __slots__ = ("index", "process", "conn", "task", "attempt", "deadline")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Any = None
        self.conn: Any = None
        self.task: ShardTask | None = None
        self.attempt = 0
        self.deadline: float | None = None

    def spawn(self, context, runner) -> None:
        parent_conn, child_conn = context.Pipe(duplex=True)
        process = context.Process(
            target=_worker_main, args=(child_conn, runner), daemon=True
        )
        process.start()
        child_conn.close()
        self.process = process
        self.conn = parent_conn

    def assign(self, task: ShardTask, attempt: int, timeout: float | None) -> None:
        self.task = task
        self.attempt = attempt
        self.deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        self.conn.send(("task", task, attempt))

    def clear(self) -> None:
        self.task = None
        self.attempt = 0
        self.deadline = None

    def terminate(self) -> None:
        if self.process is not None and self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
        if self.conn is not None:
            self.conn.close()
        self.process = None
        self.conn = None

    def shutdown(self) -> None:
        """Polite stop for an idle worker (falls back to terminate)."""
        try:
            if self.conn is not None:
                self.conn.send(("stop",))
            if self.process is not None:
                self.process.join(timeout=5.0)
        except (OSError, ValueError):
            pass
        self.terminate()


# -- the scheduling loop -----------------------------------------------------


class _Sweep:
    """One sweep's mutable state: queues, retries, results, counters."""

    def __init__(self, tasks: list[ShardTask], config: SchedulerConfig) -> None:
        self.config = config
        self.total = len(tasks)
        n_queues = max(1, min(config.workers, self.total) or 1)
        #: Per-worker ownership deques, dealt round-robin.
        self.queues: list[deque[ShardTask]] = [deque() for _ in range(n_queues)]
        for index, task in enumerate(tasks):
            self.queues[index % n_queues].append(task)
        #: (eligible_at, seq, task, next_attempt) retry entries.
        self.retry_heap: list[tuple[float, int, ShardTask, int]] = []
        self._seq = itertools.count()
        self.attempts: dict[str, int] = {}
        self.results: dict[tuple[str, str, int], FrontendStats] = {}
        self.task_seconds: dict[str, float] = {}
        self.failures: list[TaskFailure] = []
        self.counters = {
            "tasks": self.total,
            "completed": 0,
            "fresh": 0,
            "disk_hits": 0,
            "retries": 0,
            "timeouts": 0,
            "crashes": 0,
            "steals": 0,
            "failed": 0,
        }
        self._log_handle: IO[str] | None = None
        if config.log_path:
            os.makedirs(os.path.dirname(config.log_path) or ".", exist_ok=True)
            self._log_handle = open(config.log_path, "a", encoding="utf-8")

    # -- logging / accounting ------------------------------------------------

    def log(self, record: dict) -> None:
        if self._log_handle is not None:
            self._log_handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._log_handle.flush()

    def close(self) -> None:
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None

    def done(self) -> bool:
        return self.counters["completed"] + self.counters["failed"] >= self.total

    def record_success(
        self, task: ShardTask, stats: FrontendStats, seconds: float, worker: int,
        outcome: str = "ok",
    ) -> None:
        key = (task.trace_name, task.design_key, task.shard_index)
        self.results[key] = stats
        self.task_seconds[task.task_id] = seconds
        self.counters["completed"] += 1
        if outcome == "disk-hit":
            self.counters["disk_hits"] += 1
        else:
            self.counters["fresh"] += 1
        registry = get_registry()
        registry.counter(
            "scheduler_tasks_total", "scheduler task terminations by outcome"
        ).inc(outcome=outcome)
        registry.histogram(
            "scheduler_shard_seconds", "wall seconds per shard task"
        ).observe(seconds, design=task.design_key, app=task.trace_name)
        self.log(
            {
                "event": "task",
                "task": task.task_id,
                "outcome": outcome,
                "attempt": self.attempts.get(task.task_id, 0) + 1,
                "seconds": round(seconds, 6),
                "worker": worker,
            }
        )

    def record_attempt_failure(
        self, task: ShardTask, kind: str, message: str, worker: int
    ) -> None:
        """A failed attempt: schedule a retry or record a final failure."""
        attempts = self.attempts.get(task.task_id, 0) + 1
        self.attempts[task.task_id] = attempts
        registry = get_registry()
        if kind == "timeout":
            self.counters["timeouts"] += 1
            registry.counter(
                "scheduler_timeouts_total", "tasks killed at their deadline"
            ).inc()
        elif kind == "crash":
            self.counters["crashes"] += 1
        config = self.config
        if attempts <= config.max_retries:
            delay = min(
                config.backoff_base * (2 ** (attempts - 1)), config.backoff_max
            )
            self.counters["retries"] += 1
            registry.counter(
                "scheduler_retries_total", "task attempts retried after a failure"
            ).inc(kind=kind)
            heapq.heappush(
                self.retry_heap,
                (time.monotonic() + delay, next(self._seq), task, attempts + 1),
            )
            self.log(
                {
                    "event": "retry",
                    "task": task.task_id,
                    "kind": kind,
                    "message": message,
                    "attempt": attempts,
                    "delay": round(delay, 6),
                    "worker": worker,
                }
            )
            return
        self.counters["failed"] += 1
        registry.counter(
            "scheduler_tasks_total", "scheduler task terminations by outcome"
        ).inc(outcome="failed")
        failure = TaskFailure(
            task_id=task.task_id,
            trace_name=task.trace_name,
            design_key=task.design_key,
            shard_index=task.shard_index,
            n_shards=task.n_shards,
            kind=kind,
            message=message,
            attempts=attempts,
        )
        self.failures.append(failure)
        with _SESSION_LOCK:
            _SESSION_FAILURES.append(failure)
        self.log(
            {
                "event": "task",
                "task": task.task_id,
                "outcome": "failed",
                "kind": kind,
                "message": message,
                "attempt": attempts,
                "worker": worker,
            }
        )

    # -- task selection ------------------------------------------------------

    def next_assignment(self, worker_index: int) -> tuple[ShardTask, int] | None:
        """Own deque first, then steal, then an eligible retry."""
        if not self.queues:
            return None
        own = self.queues[worker_index % len(self.queues)]
        if own:
            return own.popleft(), 1
        victim = None
        for queue in self.queues:
            if queue and (victim is None or len(queue) > len(victim)):
                victim = queue
        if victim is not None:
            self.counters["steals"] += 1
            get_registry().counter(
                "scheduler_steals_total", "tasks stolen from another worker's deque"
            ).inc()
            return victim.pop(), 1
        if self.retry_heap and self.retry_heap[0][0] <= time.monotonic():
            _, _, task, attempt = heapq.heappop(self.retry_heap)
            return task, attempt
        return None

    def next_wake_delay(self) -> float | None:
        """Seconds until the next retry becomes eligible (None: no retry)."""
        if not self.retry_heap:
            return None
        return max(0.0, self.retry_heap[0][0] - time.monotonic())


def _execute_serial(
    tasks: list[ShardTask], config: SchedulerConfig, runner
) -> _Sweep:
    """In-process fallback (workers <= 1 or no fork): retries, no timeout."""
    sweep = _Sweep(tasks, config)
    pending: deque[tuple[ShardTask, int]] = deque(
        (task, 1) for queue in sweep.queues for task in queue
    )
    for queue in sweep.queues:
        queue.clear()
    while pending:
        task, attempt = pending.popleft()
        if attempt > 1:
            delay = min(
                config.backoff_base * (2 ** (attempt - 2)), config.backoff_max
            )
            time.sleep(delay)
        started = time.perf_counter()
        try:
            stats = runner(task, attempt)
        except Exception as exc:  # noqa: BLE001 - structured failure path
            sweep.record_attempt_failure(
                task, "exception", f"{type(exc).__name__}: {exc}", os.getpid()
            )
            if sweep.retry_heap:
                _, _, retry_task, retry_attempt = heapq.heappop(sweep.retry_heap)
                pending.append((retry_task, retry_attempt))
        else:
            sweep.record_success(
                task, stats, time.perf_counter() - started, os.getpid()
            )
    return sweep


def _execute_parallel(
    tasks: list[ShardTask], config: SchedulerConfig, runner
) -> _Sweep:
    """The fork-pool event loop: assign, wait, reap, retry, respawn."""
    import multiprocessing
    from multiprocessing.connection import wait as connection_wait

    context = multiprocessing.get_context("fork")
    sweep = _Sweep(tasks, config)
    n_workers = max(1, min(config.workers, len(tasks)))
    workers = [_Worker(index) for index in range(n_workers)]
    try:
        for worker in workers:
            worker.spawn(context, runner)
        while not sweep.done():
            for worker in workers:
                if worker.task is None:
                    assignment = sweep.next_assignment(worker.index)
                    if assignment is not None:
                        task, attempt = assignment
                        worker.assign(task, attempt, config.task_timeout)
            busy = [worker for worker in workers if worker.task is not None]
            if not busy:
                delay = sweep.next_wake_delay()
                if delay is None:
                    break  # nothing queued, nothing running: done or stuck
                time.sleep(min(delay, 0.05) if delay else 0.001)
                continue
            now = time.monotonic()
            timeout = 0.5
            for worker in busy:
                if worker.deadline is not None:
                    timeout = min(timeout, max(0.0, worker.deadline - now))
            retry_delay = sweep.next_wake_delay()
            if retry_delay is not None:
                timeout = min(timeout, retry_delay)
            ready = connection_wait([worker.conn for worker in busy], timeout)
            conn_to_worker = {worker.conn: worker for worker in busy}
            for conn in ready:
                worker = conn_to_worker[conn]
                task = worker.task
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    # The worker died mid-task (hard crash): respawn it
                    # and treat the attempt like any other failure.
                    worker.terminate()
                    worker.clear()
                    worker.spawn(context, runner)
                    sweep.record_attempt_failure(
                        task, "crash", "worker process died", worker.index
                    )
                    continue
                worker.clear()
                if message[0] == "done":
                    _, stats, seconds = message
                    sweep.record_success(task, stats, seconds, worker.index)
                    sweep.attempts.pop(task.task_id, None)
                else:
                    _, error, _seconds = message
                    sweep.record_attempt_failure(
                        task, "exception", error, worker.index
                    )
            now = time.monotonic()
            for worker in workers:
                if (
                    worker.task is not None
                    and worker.deadline is not None
                    and now >= worker.deadline
                ):
                    task = worker.task
                    worker.terminate()
                    worker.clear()
                    worker.spawn(context, runner)
                    sweep.record_attempt_failure(
                        task,
                        "timeout",
                        f"exceeded task timeout of {config.task_timeout}s",
                        worker.index,
                    )
    finally:
        for worker in workers:
            worker.shutdown()
    return sweep


# -- the grid entry point ----------------------------------------------------


def _find_spec(trace_name: str, scale: str):
    for spec in build_suite(scale):
        if spec.name == trace_name:
            return spec
    return None


def build_shard_tasks(
    designs: list[Design],
    params_by_design: dict[str, CoreParams],
    warmup_fraction: float,
    scale: str,
    shards: int,
    specs=None,
    skip: set[tuple[str, str]] | None = None,
) -> list[ShardTask]:
    """The full (spec x design x shard) task list for a sweep."""
    specs = list(build_suite(scale) if specs is None else specs)
    skip = skip or set()
    use_disk = diskcache.disk_cache_enabled()
    tasks = []
    for design in designs:
        params = params_by_design.get(design.key, ICELAKE)
        for spec in specs:
            if (spec.name, design.key) in skip:
                continue
            for shard_index, (start, stop) in enumerate(
                shard_bounds(spec.n_events, warmup_fraction, shards)
            ):
                disk_key = None
                if use_disk:
                    disk_key = diskcache.shard_result_key(
                        spec.name,
                        scale,
                        design.key,
                        params,
                        warmup_fraction,
                        start,
                        stop,
                        spec.n_events,
                        spec=spec,
                    )
                tasks.append(
                    ShardTask(
                        trace_name=spec.name,
                        scale=scale,
                        design_key=design.key,
                        params=params,
                        warmup_fraction=warmup_fraction,
                        shard_index=shard_index,
                        n_shards=shards,
                        start=start,
                        stop=stop,
                        n_events=spec.n_events,
                        disk_key=disk_key,
                    )
                )
    return tasks


def run_grid(
    designs: list[Design],
    params_by_design: dict[str, CoreParams] | None = None,
    warmup_fraction: float = 0.3,
    scale: str | None = None,
    config: SchedulerConfig | None = None,
    specs=None,
    skip: set[tuple[str, str]] | None = None,
    runner=None,
) -> ScheduleReport:
    """Run a (specs x designs) grid through the shard scheduler.

    Args:
        designs: the designs to sweep (must have distinct keys).
        params_by_design: per-design core parameters (default ICELAKE).
        specs: workload specs (default: the active suite at ``scale``).
        skip: (app, design key) pairs to leave out (already memoised).
        runner: override the per-task runner -- the fault-injection
            tests pass runners that raise, sleep, or count executions.
            Signature ``runner(task, attempt) -> FrontendStats``.

    Returns a :class:`ScheduleReport`; failed groups are absent from
    ``report.merged`` and listed in ``report.failures``.
    """
    scale = scale or current_scale()
    config = config or resolve_config()
    params_by_design = params_by_design or {}
    runner = runner or _default_runner
    for design in designs:
        _TASK_DESIGNS[design.key] = design
    tasks = build_shard_tasks(
        designs,
        params_by_design,
        warmup_fraction,
        scale,
        max(1, config.shards),
        specs=specs,
        skip=skip,
    )
    report = ScheduleReport()
    if not tasks:
        report.counters = {"tasks": 0}
        _accumulate_session_counters(report.counters)
        return report

    # Pre-generate every trace in the parent so forked workers share the
    # columns via copy-on-write instead of regenerating per process.
    for name in dict.fromkeys(task.trace_name for task in tasks):
        get_trace(name, scale)

    # Resume: shards already in the disk cache never reach a worker.
    pending = []
    preloaded: list[tuple[ShardTask, FrontendStats]] = []
    for task in tasks:
        cached = (
            diskcache.load_result(task.disk_key)
            if task.disk_key is not None
            else None
        )
        if cached is not None:
            preloaded.append((task, cached))
        else:
            pending.append(task)

    tracer = get_tracer()
    use_fork = config.workers > 1 and hasattr(os, "fork")
    with tracer.span(
        "scheduler-sweep",
        tasks=len(tasks),
        resumed=len(preloaded),
        workers=config.workers if use_fork else 1,
        shards=config.shards,
        scale=scale,
    ):
        if use_fork and pending:
            sweep = _execute_parallel(pending, config, runner)
        else:
            sweep = _execute_serial(pending, config, runner)
        for task, stats in preloaded:
            sweep.record_success(task, stats, 0.0, os.getpid(), outcome="disk-hit")
        sweep.counters["tasks"] = len(tasks)
        sweep.log({"event": "summary", **sweep.counters})
        sweep.close()
    _accumulate_session_counters(sweep.counters)
    obs_events.emit(
        "scheduler-grid",
        tasks=len(tasks),
        resumed=len(preloaded),
        workers=config.workers if use_fork else 1,
        shards=config.shards,
        scale=scale,
        failures=len(sweep.failures),
    )

    report.shard_results = sweep.results
    report.failures = sweep.failures
    report.counters = sweep.counters

    # Merge complete groups and persist them under the unsharded key so
    # a future unsharded run of the same grid disk-hits immediately.
    groups: dict[tuple[str, str], list[ShardTask]] = {}
    for task in tasks:
        groups.setdefault(task.group, []).append(task)
    for group_key, group_tasks in groups.items():
        parts: list[FrontendStats] = []
        complete = True
        seconds = 0.0
        for task in sorted(group_tasks, key=lambda t: t.shard_index):
            stats = sweep.results.get(
                (task.trace_name, task.design_key, task.shard_index)
            )
            if stats is None:
                complete = False
                break
            parts.append(stats)
            seconds += sweep.task_seconds.get(task.task_id, 0.0)
        if not complete:
            continue
        merged = FrontendStats.merge(parts)
        report.merged[group_key] = merged
        report.group_seconds[group_key] = seconds
        if diskcache.disk_cache_enabled():
            trace_name, design_key = group_key
            spec = _find_spec(trace_name, scale)
            params = params_by_design.get(design_key, ICELAKE)
            diskcache.store_result(
                diskcache.result_key(
                    trace_name, scale, design_key, params, warmup_fraction,
                    spec=spec,
                ),
                merged,
            )
    return report
