"""Persistent cross-process cache for traces and simulation results.

The in-process memo cache (:mod:`repro.experiments.harness`) dies with
the interpreter; every fresh ``python -m repro experiment`` regenerates
every trace and re-simulates every (app, design) pair even though both
are deterministic functions of their inputs.  This module persists the
two expensive artifacts:

* **generated traces** as uncompressed ``.npz`` under
  ``<root>/v<N>/traces/<sha256>.npz``, loaded back through a zip-member
  ``np.memmap`` so a warm start never copies the column data;
* **FrontendStats results** as JSON under
  ``<root>/v<N>/results/<sha256>.json``.

Keys are content hashes: a trace key digests the full
:class:`~repro.workloads.spec.WorkloadSpec` (plus the generator-
algorithm version), a result key digests the spec digest, design key,
core parameters and warmup.  Changing any input -- or bumping
``GENERATOR_VERSION`` / ``RESULT_VERSION`` after an algorithm change --
changes the key, so stale entries are never *read*; they are merely
orphaned and garbage-collected by deleting old ``v<N>`` directories.

Concurrency follows the classic lock-free recipe: writers create a
unique temp file in the destination directory and ``os.replace`` it
into place (atomic on POSIX), readers open whatever name is present.
Two racing writers compute identical bytes, so last-write-wins is
correct.  A file that fails to parse (torn write from a crash, disk
corruption) is quarantined -- renamed aside with a ``corrupt`` suffix --
and treated as a miss, so one bad file can never wedge the run.

Knobs:

* ``REPRO_DISK_CACHE=0`` disables the cache entirely (CI and the test
  suite default to this via ``tests/conftest.py``).
* ``REPRO_DISK_CACHE_DIR`` overrides the cache root (default:
  ``$XDG_CACHE_HOME/repro-pdede`` or ``~/.cache/repro-pdede``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import threading
import zipfile
from pathlib import Path

import numpy as np

from repro.frontend.params import CoreParams
from repro.frontend.stats import FrontendStats
from repro.obs import events as obs_events
from repro.workloads.spec import WorkloadSpec
from repro.workloads.trace import Trace

__all__ = [
    "CACHE_VERSION",
    "RESULT_VERSION",
    "cache_root",
    "clear_disk_cache",
    "disk_cache_enabled",
    "disk_cache_info",
    "has_result",
    "load_result",
    "load_trace",
    "reset_disk_telemetry",
    "result_key",
    "shard_result_key",
    "spec_digest",
    "store_result",
    "store_trace",
]

#: On-disk layout version; bump to orphan every existing entry at once.
CACHE_VERSION = 1

#: Result-encoding version; bump when FrontendStats fields or the
#: simulation semantics change in a way the result key cannot see.
#: v2: integer-tick cycle accounting (tick fields on FrontendStats;
#: cycle buckets shift by ulps relative to v1's sequential float sums).
RESULT_VERSION = 2

#: Unique-temp-name counter (combined with the pid, collision-free).
_COUNTER = itertools.count()

#: Disk-cache telemetry, deliberately a *separate* surface from the memo
#: cache's ``cache_info()`` (tests pin that dict's exact shape).
_TELEMETRY = {
    "trace_hits": 0,
    "trace_misses": 0,
    "result_hits": 0,
    "result_misses": 0,
    "stores": 0,
    "quarantined": 0,
}

#: Telemetry is bumped from serve worker threads and scheduler workers
#: while the event loop reads it via ``disk_cache_info`` (REP104).
_TELEMETRY_LOCK = threading.Lock()


def _count(key: str) -> None:
    with _TELEMETRY_LOCK:
        _TELEMETRY[key] += 1


def disk_cache_enabled() -> bool:
    """Persistence knob: ``REPRO_DISK_CACHE=0`` disables the disk cache."""
    return os.environ.get("REPRO_DISK_CACHE", "1") != "0"


def cache_root() -> Path:
    """Resolved cache root (not created until the first store)."""
    override = os.environ.get("REPRO_DISK_CACHE_DIR")
    if override:
        base = Path(override)
    else:
        xdg = os.environ.get("XDG_CACHE_HOME")
        base = Path(xdg) if xdg else Path.home() / ".cache"
        base = base / "repro-pdede"
    return base / f"v{CACHE_VERSION}"


def disk_cache_info() -> dict:
    """Disk-cache telemetry (hits / misses / stores / quarantines)."""
    with _TELEMETRY_LOCK:
        info = dict(_TELEMETRY)
    info["enabled"] = disk_cache_enabled()
    info["root"] = str(cache_root())
    return info


def reset_disk_telemetry() -> None:
    with _TELEMETRY_LOCK:
        for key in _TELEMETRY:
            _TELEMETRY[key] = 0


def clear_disk_cache() -> int:
    """Delete every cached file under the current version root.

    Returns the number of files removed (tests and ``--clear-cache``
    use this; concurrent readers simply miss afterwards).
    """
    root = cache_root()
    removed = 0
    if not root.exists():
        return 0
    for path in sorted(root.rglob("*"), reverse=True):
        if path.is_file():
            path.unlink()
            removed += 1
        else:
            path.rmdir()
    root.rmdir()
    return removed


# -- keys --------------------------------------------------------------------


def _digest(payload: dict) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def spec_digest(spec: WorkloadSpec) -> str:
    """Content hash of a workload spec plus the generator version."""
    from repro.workloads.generator import GENERATOR_VERSION

    return _digest(
        {
            "spec": dataclasses.asdict(spec),
            "generator_version": GENERATOR_VERSION,
        }
    )


def result_key(
    trace_name: str,
    scale: str,
    design_key: str,
    params: CoreParams,
    warmup_fraction: float,
    spec: WorkloadSpec | None = None,
) -> str:
    """Content hash identifying one (app, design) simulation result."""
    return _digest(
        {
            "trace": trace_name,
            "scale": scale,
            "design": design_key,
            "params": dataclasses.asdict(params),
            "warmup": warmup_fraction,
            "spec": spec_digest(spec) if spec is not None else None,
            "result_version": RESULT_VERSION,
        }
    )


def shard_result_key(
    trace_name: str,
    scale: str,
    design_key: str,
    params: CoreParams,
    warmup_fraction: float,
    start: int,
    stop: int,
    n_events: int,
    spec: WorkloadSpec | None = None,
) -> str:
    """Content hash for one measured shard ``[start, stop)`` of a run.

    The scheduler stores every finished shard under this key, which is
    what makes a killed sweep resumable: a re-run re-simulates only the
    shards whose entries are missing.  ``n_events`` is part of the key
    so a scale change (different trace length, same name) can never
    alias a stale shard boundary.
    """
    return _digest(
        {
            "trace": trace_name,
            "scale": scale,
            "design": design_key,
            "params": dataclasses.asdict(params),
            "warmup": warmup_fraction,
            "shard": [start, stop, n_events],
            "spec": spec_digest(spec) if spec is not None else None,
            "result_version": RESULT_VERSION,
        }
    )


# -- atomic write / quarantine ----------------------------------------------


def _atomic_write(path: Path, write) -> None:
    """Write via a unique temp file + ``os.replace`` (atomic publish)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f"{path.name}.tmp-{os.getpid()}-{next(_COUNTER)}"
    try:
        write(tmp)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def _quarantine(path: Path) -> None:
    """Move a corrupt file aside so it stops shadowing the slot."""
    _count("quarantined")
    target = path.parent / f"{path.name}.corrupt-{os.getpid()}-{next(_COUNTER)}"
    try:
        os.replace(path, target)
    except OSError:
        pass  # a concurrent process already moved or replaced it


# -- traces ------------------------------------------------------------------

_TRACE_COLUMNS = ("pcs", "kinds", "takens", "targets", "gaps")


def _trace_path(spec: WorkloadSpec) -> Path:
    return cache_root() / "traces" / f"{spec_digest(spec)}.npz"


def _mmap_npz_columns(path: Path) -> dict[str, np.ndarray]:
    """Memory-map the column arrays of an *uncompressed* ``.npz``.

    ``np.load(path, mmap_mode="r")`` does not memmap npz members (only
    bare ``.npy`` files), so parse each zip member's local header to
    find its data offset and map the array in place.  Raises on any
    structural surprise; the caller falls back to a plain load.
    """
    arrays: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as archive, open(path, "rb") as raw:
        for info in archive.infolist():
            name = info.filename.removesuffix(".npy")
            if name not in _TRACE_COLUMNS:
                continue
            if info.compress_type != zipfile.ZIP_STORED:
                raise ValueError(f"{info.filename} is compressed; cannot mmap")
            # Local file header: 30 fixed bytes, then filename + extra
            # whose lengths live at offsets 26/28 of the header itself.
            raw.seek(info.header_offset + 26)
            name_len, extra_len = np.frombuffer(raw.read(4), dtype="<u2")
            data_offset = info.header_offset + 30 + int(name_len) + int(extra_len)
            raw.seek(data_offset)
            version = np.lib.format.read_magic(raw)
            if version == (1, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(raw)
            elif version == (2, 0):
                shape, fortran, dtype = np.lib.format.read_array_header_2_0(raw)
            else:
                raise ValueError(f"unsupported npy format version {version}")
            if fortran:
                raise ValueError(f"{info.filename} is Fortran-ordered")
            arrays[name] = np.memmap(
                path, dtype=dtype, mode="r", offset=raw.tell(), shape=shape
            )
    missing = set(_TRACE_COLUMNS) - set(arrays)
    if missing:
        raise ValueError(f"npz missing columns: {sorted(missing)}")
    return arrays


def load_trace(spec: WorkloadSpec) -> Trace | None:
    """Load the cached trace for ``spec``, or ``None`` on a miss."""
    if not disk_cache_enabled():
        return None
    path = _trace_path(spec)
    if not path.exists():
        _count("trace_misses")
        return None
    try:
        try:
            columns = _mmap_npz_columns(path)
        except (ValueError, KeyError):
            # Un-mappable but possibly still readable (e.g. a foreign
            # compressed npz): fall back to a plain load.
            with np.load(path, allow_pickle=False) as data:
                columns = {name: data[name] for name in _TRACE_COLUMNS}
        if len({len(columns[name]) for name in _TRACE_COLUMNS}) != 1:
            raise ValueError("ragged trace columns")
        trace = Trace.from_arrays(
            name=spec.name,
            category=spec.category,
            pcs=columns["pcs"],
            kinds=columns["kinds"],
            takens=columns["takens"],
            targets=columns["targets"],
            gaps=columns["gaps"],
        )
    except Exception:
        _quarantine(path)
        _count("trace_misses")
        return None
    _count("trace_hits")
    return trace


def store_trace(spec: WorkloadSpec, trace: Trace) -> None:
    """Persist a generated trace (uncompressed, for mmap loading)."""
    if not disk_cache_enabled():
        return
    pcs, kinds, takens, targets, gaps = trace.columns()

    def write(tmp: Path) -> None:
        with open(tmp, "wb") as handle:
            np.savez(
                handle, pcs=pcs, kinds=kinds, takens=takens, targets=targets, gaps=gaps
            )

    _atomic_write(_trace_path(spec), write)
    _count("stores")


# -- results -----------------------------------------------------------------


def _result_path(key: str) -> Path:
    return cache_root() / "results" / f"{key}.json"


def has_result(key: str) -> bool:
    """Whether a result entry exists, without loading it or touching the
    hit/miss telemetry (the serving layer's cache probes use this)."""
    return disk_cache_enabled() and _result_path(key).exists()


def load_result(key: str) -> FrontendStats | None:
    """Load a cached :class:`FrontendStats`, or ``None`` on a miss."""
    if not disk_cache_enabled():
        return None
    path = _result_path(key)
    if not path.exists():
        _count("result_misses")
        obs_events.emit("disk-result", key=key, hit=False)
        return None
    try:
        payload = json.loads(path.read_text())
        if payload.get("result_version") != RESULT_VERSION:
            raise ValueError("result version mismatch")
        stats = FrontendStats(**payload["stats"])
    except Exception:
        _quarantine(path)
        _count("result_misses")
        obs_events.emit("disk-result", key=key, hit=False)
        return None
    _count("result_hits")
    obs_events.emit("disk-result", key=key, hit=True)
    return stats


def store_result(key: str, stats: FrontendStats) -> None:
    """Persist one simulation result as JSON."""
    if not disk_cache_enabled():
        return
    payload = {
        "result_version": RESULT_VERSION,
        "stats": stats.to_dict(derived=False),
    }

    def write(tmp: Path) -> None:
        tmp.write_text(json.dumps(payload, sort_keys=True))

    _atomic_write(_result_path(key), write)
    _count("stores")
