"""Table 2 (storage) and Table 4 (access latency) runners."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PDedeMode, paper_config
from repro.experiments.harness import format_table
from repro.storage.bits import StorageRow, storage_table
from repro.storage.cacti import access_time_ns, serial_access_time_ns


@dataclass
class Table2Result:
    rows: list[StorageRow] = field(default_factory=list)

    def render(self) -> str:
        body = []
        for row in self.rows:
            breakdown = ", ".join(f"{k}={v}" for k, v in row.components.items())
            body.append([row.name, f"{row.total_kib:.2f} KiB", breakdown])
        return format_table(
            ["design", "total storage", "component bits"],
            body,
            title="Table 2: storage requirements",
        )


def run_table2() -> Table2Result:
    return Table2Result(rows=storage_table())


@dataclass
class Table4Result:
    """Access latencies of the baseline BTB vs the PDede chain."""

    entries: dict[str, dict[int, float]] = field(default_factory=dict)

    def render(self) -> str:
        body = [
            [name, f"{ports[1]:.2f}", f"{ports[6]:.2f}"]
            for name, ports in self.entries.items()
        ]
        return format_table(
            ["structure", "1 RW port (ns)", "6 RW ports (ns)"],
            body,
            title="Table 4: access latency at 22nm (analytical CACTI fit)",
        )


def run_table4() -> Table4Result:
    """Reproduce the Table 4 latency comparison."""
    from repro.storage.bits import baseline_storage_row

    config = paper_config(PDedeMode.DEFAULT)
    baseline_bits = baseline_storage_row().total_bits
    btbm_bits = config.btbm_bits()
    page_bits = config.page_btb_bits()
    result = Table4Result()
    for name, bits in (
        ("Baseline BTB", baseline_bits),
        ("BTBM", btbm_bits),
        ("Page-BTB (PBTB)", page_bits),
    ):
        result.entries[name] = {
            ports: access_time_ns(bits, ports) for ports in (1, 6)
        }
    result.entries["PDede (BTBM+PBTB)"] = {
        ports: serial_access_time_ns([btbm_bits, page_bits], ports) for ports in (1, 6)
    }
    return result
