"""Figure 12: Shotgun comparison, larger BTBs, iso-MPKI storage savings."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PDedeMode, paper_config
from repro.experiments.designs import baseline_design, pdede_design, shotgun_design
from repro.experiments.harness import format_table, percent, run_suite
from repro.frontend.params import CoreParams, ICELAKE


@dataclass
class Fig12aResult:
    """Shotgun vs PDede at (near-)iso storage."""

    shotgun_iso_gain: float = 0.0
    shotgun_45k_gain: float = 0.0
    pdede_gain: float = 0.0
    storages_kib: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            ["Shotgun (iso ~37.5KB)", percent(self.shotgun_iso_gain),
             f"{self.storages_kib.get('shotgun-iso', 0):.1f} KiB"],
            ["Shotgun (45KB)", percent(self.shotgun_45k_gain),
             f"{self.storages_kib.get('shotgun-45k', 0):.1f} KiB"],
            ["PDede-Multi-Entry", percent(self.pdede_gain),
             f"{self.storages_kib.get('pdede', 0):.1f} KiB"],
        ]
        return format_table(
            ["design", "IPC gain over baseline", "storage"],
            rows,
            title="Figure 12a: comparison to Shotgun",
        )


def run_fig12a(scale: str | None = None, params: CoreParams = ICELAKE) -> Fig12aResult:
    baseline = baseline_design()
    result = Fig12aResult()
    # ~37.8 KiB (iso with the baseline's 37.5 KiB).
    iso = shotgun_design(key="shotgun-iso", footprint_slots=1)
    # The paper's second, 45KB-class point (defaults land at ~43 KiB).
    large = shotgun_design(key="shotgun-45k")
    me = pdede_design(PDedeMode.MULTI_ENTRY)
    result.shotgun_iso_gain = run_suite(iso, baseline, params=params, scale=scale).mean_speedup() - 1.0
    result.shotgun_45k_gain = run_suite(large, baseline, params=params, scale=scale).mean_speedup() - 1.0
    result.pdede_gain = run_suite(me, baseline, params=params, scale=scale).mean_speedup() - 1.0
    result.storages_kib = {
        "shotgun-iso": iso.build()[0].storage_kib(),
        "shotgun-45k": large.build()[0].storage_kib(),
        "pdede": me.build()[0].storage_kib(),
    }
    return result


@dataclass
class Fig12bResult:
    """PDede gains at larger BTB capacities (Section 5.8 / Figure 12b)."""

    gains_by_size: dict[int, float] = field(default_factory=dict)
    storages_kib: dict[int, tuple[float, float]] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            [
                f"{entries} baseline entries",
                percent(self.gains_by_size[entries]),
                f"{self.storages_kib[entries][0]:.1f} / {self.storages_kib[entries][1]:.1f} KiB",
            ]
            for entries in sorted(self.gains_by_size)
        ]
        return format_table(
            ["capacity point", "PDede IPC gain", "baseline / PDede storage"],
            rows,
            title="Figure 12b: iso-storage PDede gains at larger BTB sizes",
        )


def run_fig12b(
    scale: str | None = None,
    params: CoreParams = ICELAKE,
    baseline_sizes: tuple[int, ...] = (4096, 8192, 16384),
) -> Fig12bResult:
    result = Fig12bResult()
    for entries in baseline_sizes:
        factor = entries // 4096
        base = baseline_design(entries=entries)
        config = paper_config(PDedeMode.MULTI_ENTRY).scaled(factor)
        pdede = pdede_design(
            PDedeMode.MULTI_ENTRY, config=config, key=f"pdede-me-x{factor}"
        )
        suite = run_suite(pdede, base, params=params, scale=scale)
        result.gains_by_size[entries] = suite.mean_speedup() - 1.0
        result.storages_kib[entries] = (
            base.build()[0].storage_kib(),
            config.storage_kib(),
        )
    return result


@dataclass
class Fig12cResult:
    """Smallest PDede that is iso-MPKI with the 37.5 KiB baseline."""

    baseline_mpki: float = 0.0
    candidates: list[tuple[str, float, float]] = field(default_factory=list)
    chosen: str = ""
    chosen_kib: float = 0.0
    saving_fraction: float = 0.0

    def render(self) -> str:
        rows = [
            [key, f"{kib:.1f} KiB", f"{mpki:.2f}"]
            for key, kib, mpki in self.candidates
        ]
        table = format_table(
            ["candidate", "storage", "suite-mean MPKI"],
            rows,
            title=f"Figure 12c: iso-MPKI search (baseline MPKI {self.baseline_mpki:.2f})",
        )
        return (
            table
            + f"\nchosen: {self.chosen} at {self.chosen_kib:.1f} KiB "
            + f"({percent(self.saving_fraction)} below the 37.5 KiB baseline)"
        )


def run_fig12c(scale: str | None = None, params: CoreParams = ICELAKE) -> Fig12cResult:
    """Search the smallest multi-entry PDede matching baseline MPKI."""
    baseline = baseline_design()
    result = Fig12cResult()
    reference = run_suite(baseline, baseline, params=params, scale=scale)
    baseline_mpki = _suite_mean_mpki(reference)
    result.baseline_mpki = baseline_mpki

    candidates = []
    for btbm_entries, page_entries in ((2048, 256), (3072, 512), (4096, 512), (6144, 1024), (8192, 1024)):
        config = paper_config(PDedeMode.MULTI_ENTRY).replace(
            btbm_entries=btbm_entries, page_entries=page_entries
        )
        key = f"pdede-me-{btbm_entries}"
        candidates.append((key, config))
    chosen = None
    for key, config in candidates:
        design = pdede_design(PDedeMode.MULTI_ENTRY, config=config, key=key)
        suite = run_suite(design, baseline, params=params, scale=scale)
        mpki = _suite_mean_mpki(suite)
        result.candidates.append((key, config.storage_kib(), mpki))
        if chosen is None and mpki <= baseline_mpki:
            chosen = (key, config)
    if chosen is None:
        chosen = candidates[-1]
    result.chosen = chosen[0]
    result.chosen_kib = chosen[1].storage_kib()
    baseline_kib = baseline.build()[0].storage_kib()
    result.saving_fraction = 1.0 - result.chosen_kib / baseline_kib
    return result


def _suite_mean_mpki(suite) -> float:
    values = [stats.btb_mpki for stats in suite.per_app.values()]
    return sum(values) / len(values) if values else 0.0
