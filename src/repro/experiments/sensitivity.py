"""Sensitivity studies: Sections 5.5, 5.6, 5.7, 5.11 and DESIGN.md ablations."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PDedeMode, paper_config
from repro.experiments.designs import (
    baseline_design,
    ghrp_design,
    multitag_design,
    pdede_design,
    with_ittage,
    with_perfect_direction,
    with_returns_in_btb,
    with_temporal_prefetch,
)
from repro.experiments.harness import format_table, percent, run_suite
from repro.frontend.params import CoreParams, ICELAKE


@dataclass
class SensitivityResult:
    """Generic single-axis sensitivity outcome."""

    title: str
    gains: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        rows = [[label, percent(gain)] for label, gain in self.gains.items()]
        return format_table(["configuration", "PDede-ME IPC gain"], rows, title=self.title)


def run_perfect_direction(scale: str | None = None, params: CoreParams = ICELAKE) -> SensitivityResult:
    """Section 5.5: PDede under a perfect direction predictor."""
    result = SensitivityResult(title="Section 5.5: perfect direction predictor")
    baseline = baseline_design()
    me = pdede_design(PDedeMode.MULTI_ENTRY)
    result.gains["default predictor"] = (
        run_suite(me, baseline, params=params, scale=scale).mean_speedup() - 1.0
    )
    result.gains["perfect predictor"] = (
        run_suite(
            with_perfect_direction(me),
            with_perfect_direction(baseline),
            params=params,
            scale=scale,
        ).mean_speedup()
        - 1.0
    )
    return result


def run_ittage(scale: str | None = None, params: CoreParams = ICELAKE) -> SensitivityResult:
    """Section 5.6: +64KB ITTAGE; indirects bypass the BTB entirely."""
    result = SensitivityResult(title="Section 5.6: impact of an ITTAGE indirect predictor")
    baseline = baseline_design()
    me = pdede_design(PDedeMode.MULTI_ENTRY)
    result.gains["no ITTAGE"] = (
        run_suite(me, baseline, params=params, scale=scale).mean_speedup() - 1.0
    )
    baseline_no_indirect = baseline_design(key="baseline-no-ind", allocate_indirect=False)
    me_no_indirect_config = paper_config(PDedeMode.MULTI_ENTRY).replace(
        allocate_indirect=False
    )
    me_no_indirect = pdede_design(
        PDedeMode.MULTI_ENTRY, config=me_no_indirect_config, key="pdede-me-no-ind"
    )
    result.gains["with ITTAGE"] = (
        run_suite(
            with_ittage(me_no_indirect),
            with_ittage(baseline_no_indirect),
            params=params,
            scale=scale,
        ).mean_speedup()
        - 1.0
    )
    return result


def run_returns_in_btb(scale: str | None = None, params: CoreParams = ICELAKE) -> SensitivityResult:
    """Section 5.7: returns stored in the BTB instead of a RAS."""
    result = SensitivityResult(title="Section 5.7: storing return targets in the BTB")
    baseline = baseline_design()
    me = pdede_design(PDedeMode.MULTI_ENTRY)
    result.gains["returns via RAS"] = (
        run_suite(me, baseline, params=params, scale=scale).mean_speedup() - 1.0
    )
    result.gains["returns in BTB"] = (
        run_suite(
            with_returns_in_btb(me),
            with_returns_in_btb(baseline),
            params=params,
            scale=scale,
        ).mean_speedup()
        - 1.0
    )
    return result


def run_future_pipelines(
    scale: str | None = None,
    params: CoreParams = ICELAKE,
    factors: tuple[float, ...] = (1.0, 1.5, 2.0),
) -> SensitivityResult:
    """Section 5.11: wider/deeper future cores amplify PDede's gains."""
    result = SensitivityResult(title="Section 5.11: PDede on deeper future pipelines")
    baseline = baseline_design()
    me = pdede_design(PDedeMode.MULTI_ENTRY)
    for factor in factors:
        scaled = params.scaled_pipeline(factor)
        gain = run_suite(me, baseline, params=scaled, scale=scale).mean_speedup() - 1.0
        result.gains[f"{factor:.1f}x pipeline"] = gain
    return result


def run_replacement_ablation(
    scale: str | None = None, params: CoreParams = ICELAKE
) -> SensitivityResult:
    """DESIGN.md ablation: SRRIP vs LRU vs random in the PDede tables."""
    result = SensitivityResult(title="Ablation: replacement policy in PDede structures")
    baseline = baseline_design()
    for policy in ("srrip", "lru", "random", "fifo"):
        config = paper_config(PDedeMode.MULTI_ENTRY).replace(replacement=policy)
        design = pdede_design(
            PDedeMode.MULTI_ENTRY, config=config, key=f"pdede-me-{policy}"
        )
        gain = run_suite(design, baseline, params=params, scale=scale).mean_speedup() - 1.0
        result.gains[policy] = gain
    return result


def run_stale_pointer_ablation(
    scale: str | None = None, params: CoreParams = ICELAKE
) -> SensitivityResult:
    """DESIGN.md ablation: dangling pointers vs eager BTBM invalidation."""
    result = SensitivityResult(title="Ablation: stale Region/Page pointer handling")
    baseline = baseline_design()
    dangling = pdede_design(PDedeMode.MULTI_ENTRY)
    invalidating_config = paper_config(PDedeMode.MULTI_ENTRY).replace(
        invalidate_stale_pointers=True
    )
    invalidating = pdede_design(
        PDedeMode.MULTI_ENTRY, config=invalidating_config, key="pdede-me-invalidate"
    )
    result.gains["dangling pointers (paper)"] = (
        run_suite(dangling, baseline, params=params, scale=scale).mean_speedup() - 1.0
    )
    result.gains["eager invalidation"] = (
        run_suite(invalidating, baseline, params=params, scale=scale).mean_speedup() - 1.0
    )
    return result


def run_multitag_alternative(
    scale: str | None = None, params: CoreParams = ICELAKE
) -> SensitivityResult:
    """Section 4.2's rejected alternative: multi-tag Page/Region sharing.

    The paper chose the BTBM indirection over per-entry tag lists; this
    quantifies the choice at comparable storage.
    """
    result = SensitivityResult(title="Ablation: BTBM indirection vs multi-tag sharing")
    baseline = baseline_design()
    result.gains["pdede (BTBM indirection)"] = (
        run_suite(pdede_design(PDedeMode.DEFAULT), baseline, params=params, scale=scale)
        .mean_speedup() - 1.0
    )
    result.gains["multi-tag alternative"] = (
        run_suite(multitag_design(), baseline, params=params, scale=scale)
        .mean_speedup() - 1.0
    )
    return result


def run_next_target_tag_extension(
    scale: str | None = None, params: CoreParams = ICELAKE
) -> SensitivityResult:
    """Section 4.3.1 future work: tag-guarded Next Target provisions."""
    result = SensitivityResult(title="Extension: tagged next-target provisions")
    baseline = baseline_design()
    result.gains["untagged (paper)"] = (
        run_suite(pdede_design(PDedeMode.MULTI_TARGET), baseline, params=params, scale=scale)
        .mean_speedup() - 1.0
    )
    tagged_config = paper_config(PDedeMode.MULTI_TARGET).replace(next_target_tag_bits=4)
    tagged = pdede_design(
        PDedeMode.MULTI_TARGET, config=tagged_config, key="pdede-mt-tagged"
    )
    result.gains["4-bit next tag"] = (
        run_suite(tagged, baseline, params=params, scale=scale).mean_speedup() - 1.0
    )
    return result


def run_prefetch_complement(
    scale: str | None = None, params: CoreParams = ICELAKE
) -> SensitivityResult:
    """Section 5.10's closing claim: PDede complements BTB prefetching.

    Compares the baseline and PDede-ME with and without a temporal
    (Twig/Phantom-style) prefetcher layered on top; every gain is
    relative to the plain baseline BTB.
    """
    result = SensitivityResult(title="Extension: PDede + temporal BTB prefetching")
    baseline = baseline_design()
    me = pdede_design(PDedeMode.MULTI_ENTRY)
    result.gains["baseline + prefetch"] = (
        run_suite(with_temporal_prefetch(baseline), baseline, params=params, scale=scale)
        .mean_speedup() - 1.0
    )
    result.gains["pdede-me"] = (
        run_suite(me, baseline, params=params, scale=scale).mean_speedup() - 1.0
    )
    result.gains["pdede-me + prefetch"] = (
        run_suite(with_temporal_prefetch(me), baseline, params=params, scale=scale)
        .mean_speedup() - 1.0
    )
    return result


def run_ghrp_combination(
    scale: str | None = None, params: CoreParams = ICELAKE
) -> SensitivityResult:
    """Related-work claim: predictive replacement (GHRP) is orthogonal.

    GHRP attacks the same storage-efficiency problem from the replacement
    side; PDede from the encoding side.  Both gains are reported relative
    to the plain baseline.
    """
    result = SensitivityResult(title="Extension: GHRP predictive replacement vs PDede")
    baseline = baseline_design()
    result.gains["ghrp baseline"] = (
        run_suite(ghrp_design(), baseline, params=params, scale=scale).mean_speedup()
        - 1.0
    )
    result.gains["pdede-me"] = (
        run_suite(pdede_design(PDedeMode.MULTI_ENTRY), baseline, params=params,
                  scale=scale).mean_speedup() - 1.0
    )
    return result


def run_multiprogramming(
    scale: str | None = None,
    params: CoreParams = ICELAKE,
    quantum_events: int = 2000,
) -> SensitivityResult:
    """Consolidation study: two programs timesharing one core.

    Interleaves pairs of suite traces in scheduling quanta (the scenario
    the per-entry PID bit exists for) and measures PDede's gain on the
    union working set -- capacity pressure at its worst.
    """
    from repro.frontend.simulator import FrontendSimulator
    from repro.workloads.mixing import interleave_traces
    from repro.workloads.suite import build_suite, current_scale, get_trace

    scale = scale or current_scale()
    specs = build_suite(scale)
    by_category: dict[str, str] = {}
    for spec in specs:
        by_category.setdefault(spec.category, spec.name)
    pairs = []
    names = [by_category[c] for c in ("Server", "Browser", "BP", "Personal")
             if c in by_category]
    for first, second in zip(names, names[1:]):
        pairs.append((first, second))
    result = SensitivityResult(title="Extension: PDede under multiprogramming")
    for first, second in pairs:
        mixed = interleave_traces(
            [get_trace(first, scale), get_trace(second, scale)],
            quantum_events=quantum_events,
        )
        base_stats = FrontendSimulator(
            baseline_design().build()[0], params=params
        ).run(mixed, warmup_fraction=0.3)
        pdede_stats = FrontendSimulator(
            pdede_design(PDedeMode.MULTI_ENTRY).build()[0], params=params
        ).run(mixed, warmup_fraction=0.3)
        result.gains[mixed.name] = pdede_stats.speedup_over(base_stats) - 1.0
    return result


def run_tag_width_ablation(
    scale: str | None = None, params: CoreParams = ICELAKE
) -> SensitivityResult:
    """DESIGN.md ablation: BTBM partial-tag width vs aliasing resteers."""
    result = SensitivityResult(title="Ablation: BTBM tag width")
    baseline = baseline_design()
    for tag_bits in (8, 10, 12, 14):
        config = paper_config(PDedeMode.MULTI_ENTRY).replace(tag_bits=tag_bits)
        design = pdede_design(
            PDedeMode.MULTI_ENTRY, config=config, key=f"pdede-me-tag{tag_bits}"
        )
        gain = run_suite(design, baseline, params=params, scale=scale).mean_speedup() - 1.0
        result.gains[f"{tag_bits}-bit tags"] = gain
    return result
