"""Experiment runners: one function per paper figure/table.

See DESIGN.md for the experiment index.  Every runner returns a result
object with a ``render()`` method producing the same rows/series the
paper reports; the ``benchmarks/`` tree wraps these in pytest-benchmark
targets and ``EXPERIMENTS.md`` records paper-vs-measured values.
"""

from repro.experiments.designs import (
    Design,
    baseline_design,
    dedup_only_design,
    ghrp_design,
    multitag_design,
    partition_only_design,
    pdede_design,
    shotgun_design,
    standard_designs,
    two_level_design,
    with_ittage,
    with_perfect_direction,
    with_returns_in_btb,
    with_temporal_prefetch,
)
from repro.experiments.harness import (
    SuiteResult,
    cache_enabled,
    cache_info,
    clear_cache,
    format_table,
    percent,
    run_design,
    run_suite,
    slowest_runs,
)
from repro.experiments.characterization import (
    run_fig1,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
)
from repro.experiments.fig10 import Fig10Result, run_fig10
from repro.experiments.fig11 import run_fig11a, run_fig11b, run_fig11c
from repro.experiments.fig12 import run_fig12a, run_fig12b, run_fig12c
from repro.experiments.sensitivity import (
    run_future_pipelines,
    run_ghrp_combination,
    run_ittage,
    run_multiprogramming,
    run_multitag_alternative,
    run_next_target_tag_extension,
    run_perfect_direction,
    run_prefetch_complement,
    run_replacement_ablation,
    run_returns_in_btb,
    run_stale_pointer_ablation,
    run_tag_width_ablation,
)
from repro.experiments.tables import run_table2, run_table4

__all__ = [
    "Design",
    "baseline_design",
    "dedup_only_design",
    "ghrp_design",
    "multitag_design",
    "partition_only_design",
    "pdede_design",
    "shotgun_design",
    "standard_designs",
    "two_level_design",
    "with_ittage",
    "with_perfect_direction",
    "with_returns_in_btb",
    "with_temporal_prefetch",
    "SuiteResult",
    "cache_enabled",
    "cache_info",
    "clear_cache",
    "format_table",
    "percent",
    "run_design",
    "run_suite",
    "slowest_runs",
    "Fig10Result",
    "run_fig1",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig10",
    "run_fig11a",
    "run_fig11b",
    "run_fig11c",
    "run_fig12a",
    "run_fig12b",
    "run_fig12c",
    "run_future_pipelines",
    "run_ghrp_combination",
    "run_ittage",
    "run_multiprogramming",
    "run_multitag_alternative",
    "run_next_target_tag_extension",
    "run_perfect_direction",
    "run_prefetch_complement",
    "run_replacement_ablation",
    "run_returns_in_btb",
    "run_stale_pointer_ablation",
    "run_tag_width_ablation",
    "run_table2",
    "run_table4",
]
