"""Experiment runners for Figure 1 and the Section 3 figures (3-8)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis import (
    aggregate_mean,
    branch_type_mix,
    density_stats,
    distance_stats,
    runtime_series,
    taken_stats,
    topdown_report,
    uniqueness_stats,
)
from repro.analysis.topdown import TopDownReport
from repro.experiments.harness import format_table, percent
from repro.workloads.suite import build_suite, current_scale, get_trace


def _suite_traces(scale: str | None):
    scale = scale or current_scale()
    return [get_trace(spec.name, scale) for spec in build_suite(scale)]


@dataclass
class Fig1Result:
    """Figure 1: frontend stalls and the BTB-resteer share."""

    report: TopDownReport

    def render(self) -> str:
        rows = [
            [
                row.name,
                row.category,
                percent(row.frontend_bound_fraction),
                percent(row.bad_speculation_fraction),
                percent(row.btb_resteer_share_of_frontend),
            ]
            for row in self.report.rows
        ]
        rows.append(
            [
                "MEAN",
                "",
                percent(self.report.mean_frontend_bound),
                "",
                percent(self.report.mean_btb_resteer_share),
            ]
        )
        return format_table(
            ["app", "category", "frontend-bound", "bad-spec", "BTB share of FE stalls"],
            rows,
            title="Figure 1: Top-Down frontend stall breakdown (baseline BTB)",
        )


def run_fig1(scale: str | None = None) -> Fig1Result:
    """Reproduce Figure 1 on the active suite."""
    return Fig1Result(report=topdown_report(_suite_traces(scale)))


@dataclass
class Fig3Result:
    rows: list

    @property
    def mean_static(self) -> float:
        return aggregate_mean(r.static_taken_fraction for r in self.rows)

    @property
    def mean_dynamic(self) -> float:
        return aggregate_mean(r.dynamic_taken_fraction for r in self.rows)

    def render(self) -> str:
        body = [
            [r.name, percent(r.static_taken_fraction), percent(r.dynamic_taken_fraction)]
            for r in self.rows
        ]
        body.append(["MEAN", percent(self.mean_static), percent(self.mean_dynamic)])
        return format_table(
            ["app", "static taken", "dynamic taken"],
            body,
            title="Figure 3: taken-branch fractions",
        )


def run_fig3(scale: str | None = None) -> Fig3Result:
    return Fig3Result(rows=[taken_stats(trace) for trace in _suite_traces(scale)])


@dataclass
class Fig4Result:
    rows: list

    def mean_fractions(self) -> dict[str, float]:
        keys = sorted({key for row in self.rows for key in row.fractions})
        return {
            key: aggregate_mean(row.fractions.get(key, 0.0) for row in self.rows)
            for key in keys
        }

    def render(self) -> str:
        means = self.mean_fractions()
        body = [[kind, percent(fraction)] for kind, fraction in means.items()]
        return format_table(
            ["branch kind", "share of taken branches"],
            body,
            title="Figure 4: branch type mix (suite mean)",
        )


def run_fig4(scale: str | None = None) -> Fig4Result:
    return Fig4Result(rows=[branch_type_mix(trace) for trace in _suite_traces(scale)])


@dataclass
class Fig5Result:
    series: object

    def render(self) -> str:
        s = self.series
        return (
            f"Figure 5: runtime target-component series for {s.name}\n"
            f"samples={len(s.sample_indices)} distinct regions={s.distinct_regions()} "
            f"distinct pages={s.distinct_pages()}\n"
            "(regions/pages/offsets series available on the result object)"
        )


def run_fig5(app: str = "browser_js_static_analyzer", scale: str | None = None) -> Fig5Result:
    """Figure 5's runtime plot for one browser application."""
    return Fig5Result(series=runtime_series(get_trace(app, scale or current_scale())))


@dataclass
class Fig6Result:
    rows: list

    @property
    def mean_targets_per_page(self) -> float:
        return aggregate_mean(r.targets_per_page for r in self.rows)

    @property
    def mean_targets_per_region(self) -> float:
        return aggregate_mean(r.targets_per_region for r in self.rows)

    def render(self) -> str:
        body = [
            [r.name, f"{r.targets_per_page:.1f}", f"{r.targets_per_region:.0f}"]
            for r in self.rows
        ]
        body.append(
            ["MEAN", f"{self.mean_targets_per_page:.1f}", f"{self.mean_targets_per_region:.0f}"]
        )
        return format_table(
            ["app", "targets/page", "targets/region"],
            body,
            title="Figure 6: target density per page and region",
        )


def run_fig6(scale: str | None = None) -> Fig6Result:
    return Fig6Result(rows=[density_stats(trace) for trace in _suite_traces(scale)])


@dataclass
class Fig7Result:
    rows: list

    def means(self) -> dict[str, float]:
        return {
            "targets": aggregate_mean(r.target_fraction for r in self.rows),
            "regions": aggregate_mean(r.region_fraction for r in self.rows),
            "pages": aggregate_mean(r.page_fraction for r in self.rows),
            "offsets": aggregate_mean(r.offset_fraction for r in self.rows),
        }

    def render(self) -> str:
        means = self.means()
        body = [[k, percent(v, 2)] for k, v in means.items()]
        return format_table(
            ["component", "unique count / unique branch PCs"],
            body,
            title="Figure 7: uniqueness of targets and their components",
        )


def run_fig7(scale: str | None = None) -> Fig7Result:
    return Fig7Result(rows=[uniqueness_stats(trace) for trace in _suite_traces(scale)])


@dataclass
class Fig8Result:
    rows: list

    @property
    def mean_same_page(self) -> float:
        return aggregate_mean(r.same_page_fraction for r in self.rows)

    def mean_buckets(self) -> dict[str, float]:
        keys = list(self.rows[0].buckets) if self.rows else []
        return {
            key: aggregate_mean(row.buckets.get(key, 0.0) for row in self.rows)
            for key in keys
        }

    def render(self) -> str:
        body = [[k, percent(v)] for k, v in self.mean_buckets().items()]
        return format_table(
            ["PC-to-target distance", "share of taken branches"],
            body,
            title="Figure 8: branch-PC-to-target page distance (suite mean)",
        )


def run_fig8(scale: str | None = None) -> Fig8Result:
    return Fig8Result(rows=[distance_stats(trace) for trace in _suite_traces(scale)])
