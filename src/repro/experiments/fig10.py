"""Figure 10: the headline IPC and MPKI comparison.

Three panels:

* 10a -- mean BTB-MPKI reduction per PDede design (and per category);
* 10b -- mean IPC speedup per PDede design, plus the 50%-larger
  baseline reference the text discusses;
* 10c -- the per-application IPC-gain curve (sorted), highlighting the
  named applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PDedeMode
from repro.experiments.designs import baseline_design, pdede_design, standard_designs
from repro.experiments.harness import SuiteResult, format_table, percent, run_suite
from repro.frontend.params import CoreParams, ICELAKE


@dataclass
class Fig10Result:
    """All three Figure 10 panels."""

    results: dict[str, SuiteResult] = field(default_factory=dict)

    def mean_speedups(self) -> dict[str, float]:
        return {key: result.mean_speedup() for key, result in self.results.items()}

    def mean_mpki_reductions(self) -> dict[str, float]:
        return {key: result.mean_mpki_reduction() for key, result in self.results.items()}

    def per_app_gain_curve(self, design: str = "pdede-multi-entry") -> list[tuple[str, float]]:
        """Figure 10c: sorted per-application IPC gains."""
        speedups = self.results[design].speedups()
        return sorted(((name, value - 1.0) for name, value in speedups.items()),
                      key=lambda item: item[1])

    def render(self) -> str:
        headers = ["design", "mean IPC gain", "mean MPKI reduction"]
        rows = [
            [key, percent(result.mean_speedup() - 1.0), percent(result.mean_mpki_reduction())]
            for key, result in self.results.items()
        ]
        parts = [format_table(headers, rows, title="Figure 10a/b: suite means")]
        category_rows = []
        for key, result in self.results.items():
            for category, speedup in sorted(result.category_mean_speedup().items()):
                reduction = result.category_mean_mpki_reduction()[category]
                category_rows.append([key, category, percent(speedup - 1.0), percent(reduction)])
        parts.append(
            format_table(
                ["design", "category", "IPC gain", "MPKI reduction"],
                category_rows,
                title="Figure 10a/b: per-category breakdown",
            )
        )
        curve = self.per_app_gain_curve()
        curve_rows = [[name, percent(gain)] for name, gain in curve]
        parts.append(
            format_table(
                ["app", "PDede-Multi-Entry IPC gain"],
                curve_rows,
                title="Figure 10c: per-application gain curve",
            )
        )
        return "\n\n".join(parts)


def run_fig10(
    scale: str | None = None,
    params: CoreParams = ICELAKE,
    include_larger_baseline: bool = True,
) -> Fig10Result:
    """Run the Figure 10 design matrix over the active suite."""
    baseline = baseline_design()
    result = Fig10Result()
    for key, design in standard_designs().items():
        if key == "baseline":
            continue
        result.results[key] = run_suite(design, baseline, params=params, scale=scale)
    if include_larger_baseline:
        larger = baseline_design(entries=6144, key="baseline-6144")
        result.results["baseline-150pct"] = run_suite(
            larger, baseline, params=params, scale=scale
        )
    return result
