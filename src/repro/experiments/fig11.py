"""Figure 11: ablation ladder, lookup-latency study, two-level BTBs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import PDedeMode, paper_config
from repro.experiments.designs import (
    Design,
    baseline_design,
    dedup_only_design,
    partition_only_design,
    pdede_design,
    two_level_design,
)
from repro.experiments.harness import SuiteResult, format_table, percent, run_suite
from repro.frontend.params import CoreParams, ICELAKE


@dataclass
class Fig11aResult:
    """The technique ladder: dedup -> +partition -> +delta -> MT / ME."""

    results: dict[str, SuiteResult] = field(default_factory=dict)

    def ladder(self) -> list[tuple[str, float]]:
        order = [
            "dedup-only",
            "partition-only",
            "pdede-default",
            "pdede-multi-target",
            "pdede-multi-entry",
        ]
        return [
            (key, self.results[key].mean_speedup() - 1.0)
            for key in order
            if key in self.results
        ]

    def render(self) -> str:
        rows = [[key, percent(gain)] for key, gain in self.ladder()]
        return format_table(
            ["technique", "IPC gain over baseline"],
            rows,
            title="Figure 11a: contribution of each technique",
        )


def run_fig11a(scale: str | None = None, params: CoreParams = ICELAKE) -> Fig11aResult:
    baseline = baseline_design()
    designs = [
        dedup_only_design(),
        partition_only_design(),
        pdede_design(PDedeMode.DEFAULT),
        pdede_design(PDedeMode.MULTI_TARGET),
        pdede_design(PDedeMode.MULTI_ENTRY),
    ]
    result = Fig11aResult()
    for design in designs:
        result.results[design.key] = run_suite(design, baseline, params=params, scale=scale)
    return result


@dataclass
class Fig11bResult:
    """Latency sensitivity: always-2-cycle BTB and fetch-queue sweep."""

    default_gain: float = 0.0
    always_two_cycle_gain: float = 0.0
    fetch_queue_gains: dict[int, float] = field(default_factory=dict)

    def render(self) -> str:
        rows = [["default (delta bypass)", percent(self.default_gain)],
                ["always 2-cycle lookup", percent(self.always_two_cycle_gain)]]
        rows += [
            [f"fetch queue = {entries}", percent(gain)]
            for entries, gain in sorted(self.fetch_queue_gains.items())
        ]
        return format_table(
            ["configuration", "PDede-ME IPC gain"],
            rows,
            title="Figure 11b: lookup-latency and fetch-queue sensitivity",
        )


def run_fig11b(
    scale: str | None = None,
    params: CoreParams = ICELAKE,
    fetch_queue_sizes: tuple[int, ...] = (32, 64, 128),
) -> Fig11bResult:
    baseline = baseline_design()
    result = Fig11bResult()
    me = pdede_design(PDedeMode.MULTI_ENTRY)
    result.default_gain = run_suite(me, baseline, params=params, scale=scale).mean_speedup() - 1.0

    two_cycle_config = paper_config(PDedeMode.MULTI_ENTRY).replace(always_two_cycle=True)
    two_cycle = pdede_design(
        PDedeMode.MULTI_ENTRY, config=two_cycle_config, key="pdede-multi-entry-2cyc"
    )
    result.always_two_cycle_gain = (
        run_suite(two_cycle, baseline, params=params, scale=scale).mean_speedup() - 1.0
    )

    for entries in fetch_queue_sizes:
        sized = params.with_fetch_queue(entries)
        gain = run_suite(me, baseline, params=sized, scale=scale).mean_speedup() - 1.0
        result.fetch_queue_gains[entries] = gain
    return result


@dataclass
class Fig11cResult:
    """Two-level BTBs: PDede as the L1, across L0 sizes."""

    gains_by_l0: dict[int, float] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            [f"L0 = {entries} entries", percent(gain)]
            for entries, gain in sorted(self.gains_by_l0.items())
        ]
        return format_table(
            ["configuration", "IPC gain (PDede L1 vs conventional L1)"],
            rows,
            title="Figure 11c: two-level BTB with a PDede L1",
        )


def run_fig11c(
    scale: str | None = None,
    params: CoreParams = ICELAKE,
    l0_sizes: tuple[int, ...] = (256, 512, 1024),
) -> Fig11cResult:
    result = Fig11cResult()
    for entries in l0_sizes:
        conventional_l1 = baseline_design(entries=4096, key="l1-baseline", latency=1)
        pdede_l1 = pdede_design(PDedeMode.MULTI_ENTRY, key="l1-pdede")
        baseline_hierarchy = two_level_design(entries, conventional_l1)
        pdede_hierarchy = two_level_design(entries, pdede_l1)
        suite = run_suite(pdede_hierarchy, baseline_hierarchy, params=params, scale=scale)
        result.gains_by_l0[entries] = suite.mean_speedup() - 1.0
    return result
