"""Pluggable shared result store for multi-replica serving.

One ``repro.serve`` process shares warm results through its in-process
memo and the local disk cache (:mod:`repro.experiments.diskcache`).
Neither survives the process or crosses a host boundary, so N serve
replicas would each re-simulate identical cold jobs.  This module adds
the missing tier: a protocol-level **shared backend** every replica
talks to, giving the cluster

* one **content-addressed result space** -- results are keyed by the
  same SHA-256 content hashes the disk cache uses, so two replicas (or
  a replica and a batch run) can never disagree about what a key means,
  and concurrent writers racing on one key write identical bytes
  (last-write-wins is therefore *safe*, see DESIGN.md §14);
* **cross-node single-flight** -- a cold job is claimed by exactly one
  replica cluster-wide through a compare-and-set lease with a TTL,
  heartbeat renewal while the winner computes, and orphan takeover when
  a claimant dies without publishing (:func:`fetch_or_compute`).

Three implementations ship:

``DiskStore``
    Wraps the existing disk-cache layout (same ``results/<key>.json``
    files, same ``RESULT_VERSION`` discipline), adding file-based
    leases -- replicas sharing a filesystem (or a single dev box) get
    the full protocol with zero new infrastructure.
``RedisStore``
    Speaks RESP2 to a Redis server over a stdlib socket (no third-party
    client): ``SET NX PX`` is the lease CAS, key TTLs give orphan
    takeover for free.
``FakeStore``
    A deterministic in-memory fake with an injectable clock and
    fault-injection schedules (fail-next-N, latency spikes,
    partition/heal) that the contract and serve-distributed test suites
    run against.

Every backend failure surfaces as :class:`StoreError`; callers degrade
to local compute (never a wrong answer, never a lost request) and
account the degradation through the ``serve_store_errors_total`` metric
and a ``store_degraded`` event.

Knobs (all flow through :class:`repro.serve.config.ServeConfig`):
``REPRO_SERVE_STORE`` selects the backend by URL (``redis://host:port/0``,
``disk://`` or ``disk:///path``, ``fake://name``); ``REPRO_SERVE_STORE_TTL``
/ ``_WAIT`` / ``_POLL`` tune the lease state machine.  See README
"Shared result store".
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Callable
from urllib.parse import urlsplit

from repro.frontend.stats import FrontendStats
from repro.obs import events as obs_events
from repro.obs.metrics import get_registry
from repro.experiments import diskcache

__all__ = [
    "DiskStore",
    "FakeStore",
    "RedisStore",
    "ResultStore",
    "StoreError",
    "decode_result",
    "default_owner",
    "encode_result",
    "fetch_or_compute",
    "get_active_store",
    "set_active_store",
    "store_from_url",
]


#: Unique-suffix counter for quarantine/temp names (with the pid,
#: collision-free across replicas sharing a filesystem).
_UNIQUE = itertools.count()


class StoreError(RuntimeError):
    """A shared-store backend failure (network, protocol, injected).

    Callers never propagate this to a client: every code path catches
    it, records the degradation, and falls back to local compute.
    """


def default_owner() -> str:
    """A cluster-unique claimant id for leases (host, pid, thread)."""
    return f"{socket.gethostname()}:{os.getpid()}:{threading.get_ident()}"


# -- value encoding ----------------------------------------------------------
#
# The wire/value format is exactly the disk cache's result JSON, so a
# DiskStore entry written by this module is indistinguishable from one
# written by the harness's disk layer, and a Redis value round-trips to
# the same FrontendStats a direct caller would serialise.


def encode_result(stats: FrontendStats) -> bytes:
    """Canonical bytes for one result (sorted keys, versioned)."""
    payload = {
        "result_version": diskcache.RESULT_VERSION,
        "stats": stats.to_dict(derived=False),
    }
    return json.dumps(payload, sort_keys=True).encode()


def decode_result(data: bytes) -> FrontendStats | None:
    """Decode stored bytes; ``None`` marks a corrupt/stale value.

    A ``None`` tells the store to quarantine the value (move it aside /
    drop it) and report a miss -- one bad entry can never wedge a
    replica or serve a wrong answer.
    """
    try:
        payload = json.loads(data)
        if payload.get("result_version") != diskcache.RESULT_VERSION:
            raise ValueError("result version mismatch")
        return FrontendStats(**payload["stats"])
    except Exception:
        return None


# -- the protocol ------------------------------------------------------------


class ResultStore:
    """Shared result space + cross-node lease protocol.

    Results are immutable content-addressed values: ``put_result`` for
    one key always writes the same bytes, so concurrent publishes are
    harmless.  Leases implement cluster-wide single-flight:

    * :meth:`acquire_lease` is a compare-and-set -- it succeeds iff no
      *live* lease exists for the key (an expired lease is taken over);
    * :meth:`renew_lease` is the claimant's heartbeat -- it extends the
      TTL only while the claimant still owns the lease;
    * :meth:`release_lease` drops the claim (owner-checked, so a
      claimant that lost its lease cannot release the new owner's).

    Every method may raise :class:`StoreError` on backend failure.
    """

    kind = "abstract"

    # -- results --

    def get_result(self, key: str) -> FrontendStats | None:
        raise NotImplementedError

    def put_result(self, key: str, stats: FrontendStats) -> None:
        raise NotImplementedError

    def has_result(self, key: str) -> bool:
        raise NotImplementedError

    # -- traces (optional; only backends with cheap bulk storage) --

    def get_trace_bytes(self, key: str) -> bytes | None:
        return None

    def put_trace_bytes(self, key: str, data: bytes) -> None:
        return None

    # -- leases --

    def acquire_lease(self, key: str, owner: str, ttl: float) -> bool:
        raise NotImplementedError

    def renew_lease(self, key: str, owner: str, ttl: float) -> bool:
        raise NotImplementedError

    def release_lease(self, key: str, owner: str) -> None:
        raise NotImplementedError

    def lease_owner(self, key: str) -> str | None:
        """Current live claimant of ``key`` (None: unclaimed/expired)."""
        raise NotImplementedError

    # -- lifecycle / introspection --

    def ping(self) -> bool:
        """Backend liveness probe (False/StoreError: unreachable)."""
        return True

    def describe(self) -> dict:
        """Operator-facing summary for ``/v1/stats``."""
        return {"kind": self.kind}

    def close(self) -> None:
        return None


# -- DiskStore ---------------------------------------------------------------


class DiskStore(ResultStore):
    """Filesystem store sharing the disk cache's content-addressed layout.

    Results live at ``<root>/results/<key>.json`` -- byte-compatible
    with :mod:`repro.experiments.diskcache`, so with the default root a
    result published by one serve replica is a plain disk-cache hit for
    a batch ``repro experiment`` run on the same host, and vice versa.

    Leases are lock files at ``<root>/leases/<key>.json`` created with
    ``O_CREAT | O_EXCL`` (the filesystem's compare-and-set).  Takeover
    of an expired lease renames the stale lock to a unique name first;
    ``os.rename`` hands the stale file to exactly one taker, so two
    replicas racing on the same orphan cannot both win the subsequent
    exclusive create.
    """

    kind = "disk"

    def __init__(self, root: str | Path | None = None) -> None:
        self._root = Path(root) if root is not None else None
        self._counter = threading.Lock()
        self._quarantined = 0

    @property
    def root(self) -> Path:
        return self._root if self._root is not None else diskcache.cache_root()

    def _result_path(self, key: str) -> Path:
        return self.root / "results" / f"{key}.json"

    def _lease_path(self, key: str) -> Path:
        return self.root / "leases" / f"{key}.json"

    def _now(self) -> float:
        return time.time()

    # -- results --

    def get_result(self, key: str) -> FrontendStats | None:
        path = self._result_path(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as error:
            raise StoreError(f"disk read failed: {error}") from error
        stats = decode_result(data)
        if stats is None:
            self._quarantine(path)
            return None
        return stats

    def _quarantine(self, path: Path) -> None:
        with self._counter:
            self._quarantined += 1
        target = path.parent / f"{path.name}.corrupt-{os.getpid()}-{next(_UNIQUE)}"
        try:
            os.replace(path, target)
        except OSError:
            pass  # a concurrent replica already moved or replaced it

    def put_result(self, key: str, stats: FrontendStats) -> None:
        path = self._result_path(key)
        data = encode_result(stats)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / f"{path.name}.tmp-{os.getpid()}-{threading.get_ident()}"
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except OSError as error:
            raise StoreError(f"disk write failed: {error}") from error

    def has_result(self, key: str) -> bool:
        try:
            return self._result_path(key).exists()
        except OSError as error:
            raise StoreError(f"disk stat failed: {error}") from error

    # -- leases --

    def _read_lease(self, path: Path) -> tuple[str, float] | None:
        try:
            payload = json.loads(path.read_bytes())
            return str(payload["owner"]), float(payload["expires"])
        except FileNotFoundError:
            return None
        except Exception:
            # A torn lock write is treated as expired: it can only have
            # come from a crashed claimant mid-publish.
            return "", 0.0

    def acquire_lease(self, key: str, owner: str, ttl: float) -> bool:
        path = self._lease_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise StoreError(f"disk lease mkdir failed: {error}") from error
        lease = self._read_lease(path)
        if lease is not None:
            held_owner, expires = lease
            if expires > self._now():
                return False
            # Expired: rename the orphan aside.  Exactly one taker wins
            # the rename; the loser sees FileNotFoundError and falls
            # through to the exclusive create (which the winner's fresh
            # lock then defeats).
            stale = path.parent / f"{path.name}.stale-{os.getpid()}-{threading.get_ident()}"
            try:
                os.rename(path, stale)
                stale.unlink()
            except OSError:
                pass
        payload = json.dumps({"owner": owner, "expires": self._now() + ttl})
        try:
            handle = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError as error:
            raise StoreError(f"disk lease create failed: {error}") from error
        try:
            os.write(handle, payload.encode())
        finally:
            os.close(handle)
        return True

    def renew_lease(self, key: str, owner: str, ttl: float) -> bool:
        path = self._lease_path(key)
        lease = self._read_lease(path)
        if lease is None or lease[0] != owner or lease[1] <= self._now():
            return False
        payload = json.dumps({"owner": owner, "expires": self._now() + ttl})
        tmp = path.parent / f"{path.name}.renew-{os.getpid()}-{threading.get_ident()}"
        try:
            tmp.write_text(payload)
            os.replace(tmp, path)
        except OSError as error:
            raise StoreError(f"disk lease renew failed: {error}") from error
        return True

    def release_lease(self, key: str, owner: str) -> None:
        path = self._lease_path(key)
        lease = self._read_lease(path)
        if lease is None or lease[0] != owner:
            return
        try:
            path.unlink()
        except OSError:
            pass

    def lease_owner(self, key: str) -> str | None:
        lease = self._read_lease(self._lease_path(key))
        if lease is None or lease[1] <= self._now():
            return None
        return lease[0]

    def ping(self) -> bool:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False
        return True

    def describe(self) -> dict:
        with self._counter:
            quarantined = self._quarantined
        return {"kind": self.kind, "root": str(self.root), "quarantined": quarantined}


# -- RedisStore --------------------------------------------------------------


class RedisStore(ResultStore):
    """RESP2 client over a stdlib socket -- no third-party dependency.

    Key layout: ``repro:result:<key>`` holds result bytes,
    ``repro:lease:<key>`` holds the claimant id with a server-side
    ``PX`` TTL.  ``SET NX PX`` is the lease compare-and-set; an orphan
    lease simply expires on the server, so takeover is the same
    ``SET NX`` retried.  Renewal and release are owner-checked
    (``GET`` == owner, then ``PEXPIRE`` / ``DEL``): the read-check-act
    window is racy only against *expiry*, which the heartbeat cadence
    (renew at TTL/3) keeps comfortably away from.
    """

    kind = "redis"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 6379,
        db: int = 0,
        password: str | None = None,
        timeout: float = 5.0,
        prefix: str = "repro",
    ) -> None:
        self.host = host
        self.port = port
        self.db = db
        self.password = password
        self.timeout = timeout
        self.prefix = prefix
        #: One socket shared by all worker threads (commands serialise
        #: on the lock; the serve hot path is memo/disk-first, so the
        #: store sees misses and publishes, not per-request traffic).
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._file = None

    @classmethod
    def from_url(cls, url: str, timeout: float = 5.0) -> "RedisStore":
        parts = urlsplit(url)
        if parts.scheme != "redis":
            raise StoreError(f"not a redis URL: {url!r}")
        db = 0
        path = (parts.path or "").strip("/")
        if path:
            try:
                db = int(path)
            except ValueError as error:
                raise StoreError(f"bad redis db in {url!r}") from error
        return cls(
            host=parts.hostname or "127.0.0.1",
            port=parts.port or 6379,
            db=db,
            password=parts.password,
            timeout=timeout,
        )

    # -- connection + protocol --

    def _connect_locked(self) -> None:
        try:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        except OSError as error:
            raise StoreError(f"redis connect {self.host}:{self.port}: {error}") from error
        self._sock = sock
        self._file = sock.makefile("rb")
        if self.password:
            self._exchange_locked("AUTH", self.password)
        if self.db:
            self._exchange_locked("SELECT", str(self.db))

    def _close_locked(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._file = None

    def _exchange_locked(self, *args: str | bytes):
        """Send one RESP2 command and read its reply (lock held)."""
        out = [f"*{len(args)}\r\n".encode()]
        for arg in args:
            data = arg if isinstance(arg, bytes) else str(arg).encode()
            out.append(f"${len(data)}\r\n".encode() + data + b"\r\n")
        assert self._sock is not None and self._file is not None
        try:
            self._sock.sendall(b"".join(out))
            return self._read_reply_locked()
        except OSError as error:
            self._close_locked()
            raise StoreError(f"redis io: {error}") from error

    def _read_reply_locked(self):
        line = self._file.readline()
        if not line.endswith(b"\r\n"):
            self._close_locked()
            raise StoreError("redis connection closed mid-reply")
        marker, payload = line[:1], line[1:-2]
        if marker == b"+":
            return payload.decode()
        if marker == b":":
            return int(payload)
        if marker == b"-":
            raise StoreError(f"redis error: {payload.decode()}")
        if marker == b"$":
            length = int(payload)
            if length == -1:
                return None
            data = self._file.read(length + 2)
            if len(data) != length + 2:
                self._close_locked()
                raise StoreError("redis connection closed mid-bulk")
            return data[:-2]
        if marker == b"*":
            count = int(payload)
            if count == -1:
                return None
            return [self._read_reply_locked() for _ in range(count)]
        self._close_locked()
        raise StoreError(f"unexpected RESP marker {marker!r}")

    def command(self, *args: str | bytes):
        """One command against a live connection (reconnect-on-demand)."""
        with self._lock:
            if self._sock is None:
                self._connect_locked()
            return self._exchange_locked(*args)

    # -- results --

    def _result_key(self, key: str) -> str:
        return f"{self.prefix}:result:{key}"

    def _lease_key(self, key: str) -> str:
        return f"{self.prefix}:lease:{key}"

    def get_result(self, key: str) -> FrontendStats | None:
        data = self.command("GET", self._result_key(key))
        if data is None:
            return None
        stats = decode_result(data)
        if stats is None:
            # Quarantine: move the corrupt value aside (keyed uniquely
            # for post-mortems) so the slot reads as a miss.
            try:
                self.command(
                    "RENAME",
                    self._result_key(key),
                    f"{self.prefix}:corrupt:{key}:{os.getpid()}",
                )
            except StoreError:
                pass  # value vanished or was replaced concurrently
            return None
        return stats

    def put_result(self, key: str, stats: FrontendStats) -> None:
        self.command("SET", self._result_key(key), encode_result(stats))

    def has_result(self, key: str) -> bool:
        return bool(self.command("EXISTS", self._result_key(key)))

    # -- leases --

    def acquire_lease(self, key: str, owner: str, ttl: float) -> bool:
        reply = self.command(
            "SET", self._lease_key(key), owner, "NX", "PX", str(max(1, int(ttl * 1000)))
        )
        return reply == "OK"

    def renew_lease(self, key: str, owner: str, ttl: float) -> bool:
        holder = self.command("GET", self._lease_key(key))
        if holder is None or holder.decode() != owner:
            return False
        return bool(
            self.command("PEXPIRE", self._lease_key(key), str(max(1, int(ttl * 1000))))
        )

    def release_lease(self, key: str, owner: str) -> None:
        holder = self.command("GET", self._lease_key(key))
        if holder is not None and holder.decode() == owner:
            self.command("DEL", self._lease_key(key))

    def lease_owner(self, key: str) -> str | None:
        holder = self.command("GET", self._lease_key(key))
        return holder.decode() if holder is not None else None

    def ping(self) -> bool:
        try:
            return self.command("PING") == "PONG"
        except StoreError:
            return False

    def describe(self) -> dict:
        return {
            "kind": self.kind,
            "endpoint": f"{self.host}:{self.port}/{self.db}",
            "connected": self._sock is not None,
        }

    def close(self) -> None:
        with self._lock:
            self._close_locked()


# -- FakeStore ---------------------------------------------------------------


class FakeStore(ResultStore):
    """Deterministic in-memory store with injectable fault schedules.

    The whole distributed test suite runs against this: it implements
    the full protocol under one lock, takes an injectable ``clock`` so
    TTL expiry is advanced by the test instead of wall sleeping, and
    exposes three fault schedules --

    * :meth:`fail_next` -- the next N protocol calls raise
      :class:`StoreError` (optionally only for named ops);
    * :meth:`add_latency` -- the next N calls sleep first (latency
      spikes; sleeps happen outside the lock);
    * :meth:`partition` / :meth:`heal` -- every call fails until healed.

    Per-op call counts (:attr:`calls`) and quarantine/lease telemetry
    let tests assert *how* the cluster coordinated, not just the final
    answers.
    """

    kind = "fake"

    def __init__(self, clock: Callable[[], float] | None = None, name: str = "") -> None:
        self.name = name
        self._clock = clock or time.monotonic
        self._lock = threading.RLock()
        self._results: dict[str, bytes] = {}
        self._leases: dict[str, tuple[str, float]] = {}
        self.quarantined: dict[str, bytes] = {}
        self.calls: dict[str, int] = {}
        self._fail_budget = 0
        self._fail_ops: frozenset[str] | None = None
        self._latency_budget = 0
        self._latency_seconds = 0.0
        self._partitioned = False

    # -- fault schedules --

    def fail_next(self, count: int, ops: tuple[str, ...] | None = None) -> None:
        """Fail the next ``count`` calls (optionally only ``ops``)."""
        with self._lock:
            self._fail_budget = count
            self._fail_ops = frozenset(ops) if ops is not None else None

    def add_latency(self, seconds: float, count: int = 1_000_000) -> None:
        """Sleep ``seconds`` before each of the next ``count`` calls."""
        with self._lock:
            self._latency_seconds = seconds
            self._latency_budget = count

    def partition(self) -> None:
        """Drop the (simulated) network: every call raises StoreError."""
        with self._lock:
            self._partitioned = True

    def heal(self) -> None:
        with self._lock:
            self._partitioned = False

    def _enter(self, op: str) -> None:
        sleep_for = 0.0
        with self._lock:
            self.calls[op] = self.calls.get(op, 0) + 1
            if self._latency_budget > 0:
                self._latency_budget -= 1
                sleep_for = self._latency_seconds
            if self._partitioned:
                raise StoreError(f"fake store partitioned ({op})")
            if self._fail_budget > 0 and (
                self._fail_ops is None or op in self._fail_ops
            ):
                self._fail_budget -= 1
                raise StoreError(f"injected failure ({op})")
        if sleep_for > 0:
            time.sleep(sleep_for)

    # -- results --

    def get_result(self, key: str) -> FrontendStats | None:
        self._enter("get_result")
        with self._lock:
            data = self._results.get(key)
            if data is None:
                return None
            stats = decode_result(data)
            if stats is None:
                self.quarantined[key] = self._results.pop(key)
                return None
            return stats

    def put_result(self, key: str, stats: FrontendStats) -> None:
        self._enter("put_result")
        with self._lock:
            self._results[key] = encode_result(stats)

    def has_result(self, key: str) -> bool:
        self._enter("has_result")
        with self._lock:
            return key in self._results

    def corrupt(self, key: str, data: bytes = b"{not json") -> None:
        """Test hook: replace a stored value with garbage bytes."""
        with self._lock:
            self._results[key] = data

    # -- leases --

    def acquire_lease(self, key: str, owner: str, ttl: float) -> bool:
        self._enter("acquire_lease")
        with self._lock:
            lease = self._leases.get(key)
            if lease is not None and lease[1] > self._clock():
                return False
            self._leases[key] = (owner, self._clock() + ttl)
            return True

    def renew_lease(self, key: str, owner: str, ttl: float) -> bool:
        self._enter("renew_lease")
        with self._lock:
            lease = self._leases.get(key)
            if lease is None or lease[0] != owner or lease[1] <= self._clock():
                return False
            self._leases[key] = (owner, self._clock() + ttl)
            return True

    def release_lease(self, key: str, owner: str) -> None:
        self._enter("release_lease")
        with self._lock:
            lease = self._leases.get(key)
            if lease is not None and lease[0] == owner:
                del self._leases[key]

    def lease_owner(self, key: str) -> str | None:
        self._enter("lease_owner")
        with self._lock:
            lease = self._leases.get(key)
            if lease is None or lease[1] <= self._clock():
                return None
            return lease[0]

    def ping(self) -> bool:
        self._enter("ping")
        return True

    def describe(self) -> dict:
        with self._lock:
            return {
                "kind": self.kind,
                "name": self.name,
                "results": len(self._results),
                "leases": len(self._leases),
                "quarantined": len(self.quarantined),
                "partitioned": self._partitioned,
            }


# -- URL resolution ----------------------------------------------------------

#: Named in-process fakes, so two in-process replicas configured with
#: the same ``fake://name`` URL share one store (tests, CLI smokes).
_FAKES: dict[str, FakeStore] = {}
_FAKES_LOCK = threading.Lock()


def store_from_url(url: str | None, timeout: float = 5.0) -> ResultStore | None:
    """Build a store from a URL (``None``/empty/``"none"``: no store).

    Schemes: ``redis://[:password@]host[:port][/db]``,
    ``disk://`` (the local disk-cache root) or ``disk:///abs/path``,
    and ``fake://name`` (a process-shared in-memory fake -- tests and
    single-process smokes only).
    """
    if not url or url == "none":
        return None
    parts = urlsplit(url)
    if parts.scheme == "redis":
        return RedisStore.from_url(url, timeout=timeout)
    if parts.scheme == "disk":
        path = parts.path or ""
        root = path if path and path != "/" else None
        return DiskStore(root=root)
    if parts.scheme == "fake":
        name = parts.netloc or parts.path.strip("/") or "default"
        with _FAKES_LOCK:
            store = _FAKES.get(name)
            if store is None:
                store = FakeStore(name=name)
                _FAKES[name] = store
            return store
    raise StoreError(f"unknown store URL scheme: {url!r}")


def reset_fakes() -> None:
    """Drop the named-fake registry (tests use this)."""
    with _FAKES_LOCK:
        _FAKES.clear()


# -- the active store --------------------------------------------------------
#
# One process-wide store, installed by the serving layer at boot (or by
# tests), consulted by the harness's cache-lookup path.  Mirrors the
# obs registry/event-log pattern: a None store disables the tier.

_ACTIVE: ResultStore | None = None
_ACTIVE_LOCK = threading.Lock()


def set_active_store(store: ResultStore | None) -> None:
    """Install the process-wide shared store (None: disable the tier)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = store


def get_active_store() -> ResultStore | None:
    with _ACTIVE_LOCK:
        return _ACTIVE


def configure_from_env() -> ResultStore | None:
    """Install the store named by ``REPRO_SERVE_STORE`` (if any)."""
    store = store_from_url(os.environ.get("REPRO_SERVE_STORE"))
    set_active_store(store)
    return store


def degraded(op: str, error: Exception, **context) -> None:
    """Record one backend failure: metric + ``store_degraded`` event.

    Degradation is never fatal -- the caller computes locally -- but it
    must be *visible*: operators alert on ``serve_store_errors_total``
    and the event log says exactly which op failed for which key.
    """
    get_registry().counter(
        "serve_store_errors_total", "shared-store backend failures by op"
    ).inc(op=op)
    obs_events.emit(
        "store_degraded", op=op, error=f"{type(error).__name__}: {error}", **context
    )


# -- cross-node single-flight ------------------------------------------------


class _Heartbeat:
    """Renews a held lease on a background thread while compute runs.

    Cadence is TTL/3: a claimant misses two renewals before its lease
    can expire under it.  A failed renewal (lease lost or backend down)
    stops the heartbeat and marks the lease lost -- compute continues,
    because publishing a content-addressed value twice is harmless.
    """

    def __init__(self, store: ResultStore, key: str, owner: str, ttl: float) -> None:
        self._store = store
        self._key = key
        self._owner = owner
        self._ttl = ttl
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._lost = False
        self._thread = threading.Thread(
            target=self._run, name="repro-store-heartbeat", daemon=True
        )

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join(timeout=self._ttl)

    @property
    def lost(self) -> bool:
        with self._lock:
            return self._lost

    def _run(self) -> None:
        interval = max(self._ttl / 3.0, 0.01)
        while not self._stop.wait(interval):
            try:
                renewed = self._store.renew_lease(self._key, self._owner, self._ttl)
            except StoreError as error:
                degraded("renew_lease", error, key=self._key)
                renewed = False
            if not renewed:
                with self._lock:
                    self._lost = True
                return


def fetch_or_compute(
    store: ResultStore,
    key: str,
    compute: Callable[[], FrontendStats],
    *,
    owner: str | None = None,
    ttl: float = 30.0,
    wait_timeout: float = 120.0,
    poll_interval: float = 0.05,
    context: dict | None = None,
) -> tuple[FrontendStats, str]:
    """Cluster-wide single-flight around one content-addressed result.

    Returns ``(stats, outcome)`` with outcome one of:

    * ``"store"`` -- another replica (now or earlier) published the
      result; we never simulated.
    * ``"fresh"`` -- we won the lease CAS, computed, published.
    * ``"local"`` -- degraded local compute: the backend failed, or the
      publisher outwaited ``wait_timeout``.  The answer is still exact
      (simulation is deterministic); only the dedup was lost.

    The state machine (see DESIGN.md §14): probe result -> try lease ->
    holders compute under a heartbeat and publish before releasing;
    non-holders poll the result slot and retry the lease, which an
    expired (orphaned) claim lets them win -- takeover needs no extra
    protocol, acquire *is* takeover once the TTL lapses.

    ``compute`` failures propagate to the caller unchanged (after the
    lease is released so another replica can claim immediately).
    """
    context = context or {}
    owner = owner or default_owner()
    try:
        cached = store.get_result(key)
        if cached is not None:
            return cached, "store"
    except StoreError as error:
        degraded("get_result", error, key=key, **context)
        return compute(), "local"
    deadline = time.monotonic() + wait_timeout
    while True:
        try:
            acquired = store.acquire_lease(key, owner, ttl)
        except StoreError as error:
            degraded("acquire_lease", error, key=key, **context)
            return compute(), "local"
        if acquired:
            try:
                with _Heartbeat(store, key, owner, ttl):
                    stats = compute()
            except BaseException:
                try:
                    store.release_lease(key, owner)
                except StoreError:
                    pass
                raise
            try:
                store.put_result(key, stats)
                store.release_lease(key, owner)
            except StoreError as error:
                # The result is computed and correct; only the publish
                # failed.  Account it and answer -- the lease will age
                # out and another replica will republish.
                degraded("put_result", error, key=key, **context)
            return stats, "fresh"
        # Someone else holds the claim: wait for their publish.
        time.sleep(poll_interval)
        try:
            cached = store.get_result(key)
        except StoreError as error:
            degraded("get_result", error, key=key, **context)
            return compute(), "local"
        if cached is not None:
            return cached, "store"
        if time.monotonic() >= deadline:
            # Publisher is wedged past any plausible simulation time;
            # protect the request over the dedup.
            degraded(
                "wait_timeout",
                TimeoutError(f"no publish within {wait_timeout}s"),
                key=key,
                **context,
            )
            return compute(), "local"
