"""Decode-assisted shadow-branch BTB fill (after Pepi et al.).

"Exposing Shadow Branches" observes that the fetch pipeline already
holds the raw instruction bytes of every fetched cache line, so *direct*
branches in those lines -- including ones the current fetch stream jumps
over ("shadow" branches) -- can be pre-decoded for free and their
(pc, target) pairs installed into a small shadow BTB before the stream
ever reaches them.  When the main BTB later misses on such a branch, the
shadow table answers instead of paying a decode resteer.

The model layers over any inner predictor (Baseline or PDede here):

* A bounded *line map* stands in for the program image: it remembers the
  direct branches previously observed in each 64-byte fetch line.  (A
  trace carries no raw instruction bytes, so "pre-decode the fetched
  line" becomes "recall the direct branches this line is known to
  contain".)
* Every resolved branch exposes its fetch line (and the next
  ``decode_lines - 1`` sequential lines, modelling the fetch-ahead
  window): remembered shadow branches from those lines are installed
  into a dedicated set-associative shadow table.  The inner BTB is never
  polluted -- predictions it did not earn stay attributable.
* Lookups try the inner BTB first and fall back to the shadow table in
  the same cycle (the paper's U-BTB/SBTB arrangement), tagging the
  result with provider ``"shadow"``.

Only direct branches participate: indirect targets and returns are not
recoverable from instruction bytes.

Engine support: general only (same opt-out as GhrpBTB) -- the fast
hooks cannot see fetch-line adjacency, which is the whole mechanism.
"""

from __future__ import annotations

from repro.branch.address import ADDRESS_BITS, hash_pc
from repro.branch.types import BranchEvent
from repro.btb.base import BTBLookup, BranchTargetPredictor
from repro.btb.replacement import make_replacement_policy
from repro.checks.sanitizer import sanitizer_step

_NO_TAG = -1


class ShadowBTB(BranchTargetPredictor):
    """Shadow-branch decode-assisted fill over an inner BTB.

    Args:
        inner: the main predictor (Baseline, PDede, ...).
        shadow_entries / shadow_ways: geometry of the shadow table.
        tag_bits: hashed partial-tag width of the shadow table.
        line_bytes: fetch-line size the pre-decoder sees (power of two).
        decode_lines: sequential lines exposed per resolved branch
            (1 = only the branch's own line).
        line_map_entries: bound on remembered (line, branch) pairs; the
            oldest line is forgotten first (the line map stands in for
            "instruction bytes still in the I-cache").
    """

    #: General engine only -- fast hooks cannot express fetch-line
    #: adjacency (the same documented opt-out as GhrpBTB).
    supports_fast_path = False

    def __init__(
        self,
        inner: BranchTargetPredictor,
        shadow_entries: int = 2048,
        shadow_ways: int = 4,
        tag_bits: int = 10,
        line_bytes: int = 64,
        decode_lines: int = 2,
        line_map_entries: int = 4096,
        replacement: str = "srrip",
        srrip_bits: int = 3,
    ) -> None:
        super().__init__()
        if shadow_entries <= 0:
            raise ValueError("shadow_entries must be positive")
        if shadow_entries % shadow_ways:
            raise ValueError("shadow_entries must be divisible by shadow_ways")
        if line_bytes & (line_bytes - 1) or line_bytes <= 0:
            raise ValueError("line_bytes must be a power of two")
        if decode_lines < 1:
            raise ValueError("decode_lines must be at least 1")
        if line_map_entries < 1:
            raise ValueError("line_map_entries must be at least 1")
        self.inner = inner
        self.shadow_entries = shadow_entries
        self.shadow_ways = shadow_ways
        self.shadow_sets = shadow_entries // shadow_ways
        self.tag_bits = tag_bits
        self.line_bytes = line_bytes
        self.decode_lines = decode_lines
        self.line_map_entries = line_map_entries
        self.replacement_name = replacement
        self._line_shift = line_bytes.bit_length() - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._sets_pow2 = self.shadow_sets & (self.shadow_sets - 1) == 0
        repl_kwargs = {"m": srrip_bits} if replacement == "srrip" else {}
        self._policies = [
            make_replacement_policy(replacement, shadow_ways, **repl_kwargs)
            for _ in range(self.shadow_sets)
        ]
        size = self.shadow_sets * shadow_ways
        self._valid = [False] * size
        self._tags = [_NO_TAG] * size
        self._targets = [0] * size
        #: line number -> {pc: target} for direct branches seen in that
        #: line.  Insertion-ordered; the oldest line is evicted when the
        #: total pair count exceeds ``line_map_entries``.
        self._line_map: dict[int, dict[int, int]] = {}
        self._line_map_size = 0
        self.shadow_hits = 0
        self.shadow_fills = 0
        self.exposures = 0

    # -- address mapping -----------------------------------------------------

    def _slot(self, pc: int) -> tuple[int, int]:
        hashed = hash_pc(pc)
        index = hashed & (self.shadow_sets - 1) if self._sets_pow2 else hashed % self.shadow_sets
        return index, (hashed >> 40) & self._tag_mask

    def _find_way(self, index: int, tag: int) -> int | None:
        base = index * self.shadow_ways
        try:
            return self._tags.index(tag, base, base + self.shadow_ways) - base
        except ValueError:
            return None

    # -- BranchTargetPredictor API -------------------------------------------

    def lookup(self, pc: int) -> BTBLookup:
        result = self.inner.lookup(pc)
        if result.hit:
            return result
        index, tag = self._slot(pc)
        way = self._find_way(index, tag)
        if way is None:
            return result
        self.shadow_hits += 1
        self._policies[index].on_hit(way)
        return BTBLookup(
            hit=True,
            target=self._targets[index * self.shadow_ways + way],
            latency=result.latency,
            provider="shadow",
        )

    def update(self, event: BranchEvent) -> None:
        self.stats.updates += 1
        sanitizer_step(self)
        self.inner.update(event)
        if event.kind.is_direct and event.taken:
            self._remember(event.pc, event.target)
            # A branch the inner BTB now knows about needs no shadow
            # entry; keep the shadow copy coherent if one exists.
            self._shadow_refresh(event.pc, event.target)
        self._expose(event.pc)

    # -- shadow machinery ----------------------------------------------------

    def _remember(self, pc: int, target: int) -> None:
        line = pc >> self._line_shift
        branches = self._line_map.get(line)
        if branches is None:
            branches = {}
            self._line_map[line] = branches
        if pc not in branches:
            self._line_map_size += 1
        branches[pc] = target
        while self._line_map_size > self.line_map_entries:
            oldest = next(iter(self._line_map))
            self._line_map_size -= len(self._line_map.pop(oldest))

    def _expose(self, pc: int) -> None:
        """Pre-decode the fetched lines: install remembered shadow
        branches (any line branch other than ``pc`` itself)."""
        line = pc >> self._line_shift
        for ahead in range(self.decode_lines):
            branches = self._line_map.get(line + ahead)
            if not branches:
                continue
            for shadow_pc in branches:
                if shadow_pc == pc:
                    continue
                self.exposures += 1
                self._shadow_install(shadow_pc, branches[shadow_pc])

    def _shadow_install(self, pc: int, target: int) -> None:
        index, tag = self._slot(pc)
        way = self._find_way(index, tag)
        if way is not None:
            self._targets[index * self.shadow_ways + way] = target
            return
        policy = self._policies[index]
        base = index * self.shadow_ways
        way = policy.victim(self._valid[base:base + self.shadow_ways])
        slot = base + way
        if self._valid[slot]:
            self.stats.evictions += 1
        self._valid[slot] = True
        self._tags[slot] = tag
        self._targets[slot] = target
        policy.on_insert(way)
        self.shadow_fills += 1
        self.stats.allocations += 1

    def _shadow_refresh(self, pc: int, target: int) -> None:
        index, tag = self._slot(pc)
        way = self._find_way(index, tag)
        if way is not None:
            self._targets[index * self.shadow_ways + way] = target

    # -- storage and introspection -------------------------------------------

    def storage_bits(self) -> int:
        # The line map models bytes already present in the I-cache (the
        # paper's point: shadow decode reuses fetched lines), so only the
        # shadow table itself is charged.
        per_entry = (
            self.tag_bits
            + ADDRESS_BITS
            + self._policies[0].metadata_bits_per_entry()
        )
        return self.inner.storage_bits() + self.shadow_entries * per_entry

    def occupancy(self) -> int:
        """Valid shadow-table entries (inner occupancy not included)."""
        return sum(self._valid)

    def metrics(self) -> dict:
        data = super().metrics()
        data["btb_shadow_hits_total"] = self.shadow_hits
        data["btb_shadow_fills_total"] = self.shadow_fills
        data["btb_shadow_exposures_total"] = self.exposures
        data["btb_shadow_entries"] = self.shadow_entries
        return data

    @property
    def name(self) -> str:
        return f"Shadow({self.inner.name})"
