"""The conventional set-associative BTB the paper compares against.

Section 2 / Figure 2: an 8-way, 4096-entry BTB.  Each entry stores a
1-bit process ID, a 12-bit partial tag (hashed, so aliasing forces a
resteer but never breaks correctness), the full 57-bit target, 3 SRRIP
bits and a 2-bit confidence counter -- 75 bits per entry, 37.5 KiB total.

Confidence counters arbitrate target replacement for branches (mostly
indirect ones) whose target changes: a mispredicted target first drains
confidence before the stored target is overwritten.

Storage is flat (``set * ways + way`` indexing) with a ``-1`` tag
sentinel in invalid slots so the tag match is one ``list.index`` call;
see :mod:`repro.core.pdede` for the layout rationale.  The baseline
never invalidates entries, so only allocation writes tags.
"""

from __future__ import annotations

from repro.branch.address import ADDRESS_BITS, hash_pc
from repro.branch.types import BranchEvent
from repro.btb.base import BTBLookup, BranchTargetPredictor
from repro.btb.replacement import make_replacement_policy
from repro.checks.sanitizer import sanitizer_step

_NO_TAG = -1


class BaselineBTB(BranchTargetPredictor):
    """Set-associative BTB with partial tags and confidence counters.

    Args:
        entries: total entry count (power of two).
        ways: set associativity.
        tag_bits: width of the hashed partial tag.
        target_bits: stored target width (57 for 5-level paging).
        conf_bits: confidence-counter width.
        replacement: replacement policy name (``srrip`` by default).
        srrip_bits: RRPV width when SRRIP is selected.
        pid_bits: process-ID bits per entry.
        latency: lookup latency in cycles.
        store_kinds: when False, ``update`` ignores indirect branches
            (Section 5.6 runs with indirects served by ITTAGE instead).
    """

    supports_fast_path = True

    def __init__(
        self,
        entries: int = 4096,
        ways: int = 8,
        tag_bits: int = 12,
        target_bits: int = ADDRESS_BITS,
        conf_bits: int = 2,
        replacement: str = "srrip",
        srrip_bits: int = 3,
        pid_bits: int = 1,
        latency: int = 1,
        allocate_indirect: bool = True,
    ) -> None:
        super().__init__()
        if entries <= 0:
            raise ValueError("entries must be positive")
        if entries % ways:
            raise ValueError("entries must be divisible by ways")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self.tag_bits = tag_bits
        self.target_bits = target_bits
        self.conf_bits = conf_bits
        self._conf_max = (1 << conf_bits) - 1
        self.srrip_bits = srrip_bits
        self.pid_bits = pid_bits
        self.latency = latency
        self.allocate_indirect = allocate_indirect
        self._sets_pow2 = self.sets & (self.sets - 1) == 0
        self._index_mask = self.sets - 1
        self._tag_mask = (1 << tag_bits) - 1
        self.replacement_name = replacement
        repl_kwargs = {"m": srrip_bits} if replacement == "srrip" else {}
        self._policies = [
            make_replacement_policy(replacement, ways, **repl_kwargs)
            for _ in range(self.sets)
        ]
        size = self.sets * ways
        self._valid = [False] * size
        self._tags = [_NO_TAG] * size
        self._targets = [0] * size
        self._conf = [0] * size
        #: Mutation journal for the vector engine's struct-of-arrays
        #: mirrors: every write to lookup-visible state (tags/targets)
        #: appends its flat slot here while a vector run is active.
        self._vec_journal: list[int] | None = None

    # -- address mapping ---------------------------------------------------

    def _index(self, pc: int) -> int:
        # Index and tag come from disjoint ranges of an avalanche hash,
        # so structured code addresses do not alias systematically.
        hashed = hash_pc(pc)
        if self._sets_pow2:
            return hashed & self._index_mask
        return hashed % self.sets

    def _tag(self, pc: int) -> int:
        return (hash_pc(pc) >> 40) & self._tag_mask

    def _slot(self, pc: int) -> tuple[int, int]:
        """(set index, tag) from a single hash (hot path)."""
        hashed = hash_pc(pc)
        index = hashed & self._index_mask if self._sets_pow2 else hashed % self.sets
        return index, (hashed >> 40) & self._tag_mask

    def _find_way(self, index: int, tag: int) -> int | None:
        base = index * self.ways
        try:
            return self._tags.index(tag, base, base + self.ways) - base
        except ValueError:
            return None

    # -- BranchTargetPredictor API ------------------------------------------

    def lookup(self, pc: int) -> BTBLookup:
        index, tag = self._slot(pc)
        way = self._find_way(index, tag)
        if way is None:
            return BTBLookup(hit=False, target=None, latency=self.latency)
        self._policies[index].on_hit(way)
        return BTBLookup(
            hit=True,
            target=self._targets[index * self.ways + way],
            latency=self.latency,
            provider="btb",
        )

    def update(self, event: BranchEvent) -> None:
        self.stats.updates += 1
        sanitizer_step(self)
        if not event.taken:
            return
        if event.kind.is_indirect and not self.allocate_indirect:
            return
        index, tag = self._slot(event.pc)
        way = self._find_way(index, tag)
        if way is not None:
            self._train_existing(index, way, event.target)
            return
        self._allocate(index, tag, event.target)

    # -- fast hooks (decoded-trace engine) -----------------------------------

    def lookup_fast(self, pc: int, hashed: int) -> tuple[int | None, bool, int]:
        """`lookup` on a precomputed hash; ``(target, hit, latency)``."""
        index = hashed & self._index_mask if self._sets_pow2 else hashed % self.sets
        base = index * self.ways
        try:
            slot = self._tags.index((hashed >> 40) & self._tag_mask, base, base + self.ways)
        except ValueError:
            return (None, False, self.latency)
        self._policies[index].on_hit(slot - base)
        return (self._targets[slot], True, self.latency)

    def update_fast(
        self,
        pc: int,
        target: int,
        taken: bool,
        is_indirect: bool,
        hashed: int,
        is_same_page: bool,
    ) -> None:
        """`update` on a precomputed hash (no event object, no sanitizer)."""
        self.stats.updates += 1
        if not taken:
            return
        if is_indirect and not self.allocate_indirect:
            return
        index = hashed & self._index_mask if self._sets_pow2 else hashed % self.sets
        tag = (hashed >> 40) & self._tag_mask
        way = self._find_way(index, tag)
        if way is not None:
            self._train_existing(index, way, target)
            return
        self._allocate(index, tag, target)

    def observe_fast(
        self,
        pc: int,
        target: int,
        taken: bool,
        is_indirect: bool,
        hashed: int,
        is_same_page: bool,
    ) -> tuple[int | None, bool, int]:
        """Combined lookup+update sharing one tag match.

        Lookup mutates only replacement state, which cannot change the
        tag match, so the update half reuses the found way.
        """
        index = hashed & self._index_mask if self._sets_pow2 else hashed % self.sets
        tag = (hashed >> 40) & self._tag_mask
        base = index * self.ways
        try:
            slot = self._tags.index(tag, base, base + self.ways)
        except ValueError:
            self.stats.updates += 1
            if taken and not (is_indirect and not self.allocate_indirect):
                self._allocate(index, tag, target)
            return (None, False, self.latency)
        way = slot - base
        ltarget = self._targets[slot]
        self._policies[index].on_hit(way)
        self.stats.updates += 1
        if taken and not (is_indirect and not self.allocate_indirect):
            self._train_existing(index, way, target)
        return (ltarget, True, self.latency)

    def _train_existing(self, index: int, way: int, target: int) -> None:
        slot = index * self.ways + way
        if self._targets[slot] == target:
            if self._conf[slot] < self._conf_max:
                self._conf[slot] += 1
        elif self._conf[slot] > 0:
            # Keep the incumbent target until confidence drains.
            self._conf[slot] -= 1
        else:
            self._targets[slot] = target
            if self._vec_journal is not None:
                self._vec_journal.append(slot)
        self._policies[index].on_hit(way)

    def _allocate(self, index: int, tag: int, target: int) -> None:
        policy = self._policies[index]
        base = index * self.ways
        way = policy.victim(self._valid[base:base + self.ways])
        slot = base + way
        if self._valid[slot]:
            self.stats.evictions += 1
        self._valid[slot] = True
        self._tags[slot] = tag
        self._targets[slot] = target
        self._conf[slot] = 0
        if self._vec_journal is not None:
            self._vec_journal.append(slot)
        policy.on_insert(way)
        self.stats.allocations += 1

    def storage_bits(self) -> int:
        per_entry = (
            self.pid_bits
            + self.tag_bits
            + self.target_bits
            + self.conf_bits
            + self._policies[0].metadata_bits_per_entry()
        )
        return self.entries * per_entry

    # -- introspection helpers (tests, characterisation) --------------------

    def occupancy(self) -> int:
        """Number of valid entries currently stored."""
        return sum(self._valid)

    def metrics(self) -> dict:
        data = super().metrics()
        data["btb_entries"] = self.entries
        data["btb_ways"] = self.ways
        return data

    def contains(self, pc: int) -> bool:
        return self._find_way(self._index(pc), self._tag(pc)) is not None
