"""The conventional set-associative BTB the paper compares against.

Section 2 / Figure 2: an 8-way, 4096-entry BTB.  Each entry stores a
1-bit process ID, a 12-bit partial tag (hashed, so aliasing forces a
resteer but never breaks correctness), the full 57-bit target, 3 SRRIP
bits and a 2-bit confidence counter -- 75 bits per entry, 37.5 KiB total.

Confidence counters arbitrate target replacement for branches (mostly
indirect ones) whose target changes: a mispredicted target first drains
confidence before the stored target is overwritten.
"""

from __future__ import annotations

from repro.branch.address import ADDRESS_BITS, hash_pc
from repro.branch.types import BranchEvent
from repro.btb.base import BTBLookup, BranchTargetPredictor
from repro.btb.replacement import make_replacement_policy
from repro.checks.sanitizer import sanitizer_step


class BaselineBTB(BranchTargetPredictor):
    """Set-associative BTB with partial tags and confidence counters.

    Args:
        entries: total entry count (power of two).
        ways: set associativity.
        tag_bits: width of the hashed partial tag.
        target_bits: stored target width (57 for 5-level paging).
        conf_bits: confidence-counter width.
        replacement: replacement policy name (``srrip`` by default).
        srrip_bits: RRPV width when SRRIP is selected.
        pid_bits: process-ID bits per entry.
        latency: lookup latency in cycles.
        store_kinds: when False, ``update`` ignores indirect branches
            (Section 5.6 runs with indirects served by ITTAGE instead).
    """

    def __init__(
        self,
        entries: int = 4096,
        ways: int = 8,
        tag_bits: int = 12,
        target_bits: int = ADDRESS_BITS,
        conf_bits: int = 2,
        replacement: str = "srrip",
        srrip_bits: int = 3,
        pid_bits: int = 1,
        latency: int = 1,
        allocate_indirect: bool = True,
    ) -> None:
        super().__init__()
        if entries <= 0:
            raise ValueError("entries must be positive")
        if entries % ways:
            raise ValueError("entries must be divisible by ways")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self.tag_bits = tag_bits
        self.target_bits = target_bits
        self.conf_bits = conf_bits
        self._conf_max = (1 << conf_bits) - 1
        self.srrip_bits = srrip_bits
        self.pid_bits = pid_bits
        self.latency = latency
        self.allocate_indirect = allocate_indirect
        self._sets_pow2 = self.sets & (self.sets - 1) == 0
        self._index_mask = self.sets - 1
        self.replacement_name = replacement
        repl_kwargs = {"m": srrip_bits} if replacement == "srrip" else {}
        self._policies = [
            make_replacement_policy(replacement, ways, **repl_kwargs)
            for _ in range(self.sets)
        ]
        self._valid = [[False] * ways for _ in range(self.sets)]
        self._tags = [[0] * ways for _ in range(self.sets)]
        self._targets = [[0] * ways for _ in range(self.sets)]
        self._conf = [[0] * ways for _ in range(self.sets)]

    # -- address mapping ---------------------------------------------------

    def _index(self, pc: int) -> int:
        # Index and tag come from disjoint ranges of an avalanche hash,
        # so structured code addresses do not alias systematically.
        hashed = hash_pc(pc)
        if self._sets_pow2:
            return hashed & self._index_mask
        return hashed % self.sets

    def _tag(self, pc: int) -> int:
        return (hash_pc(pc) >> 40) & ((1 << self.tag_bits) - 1)

    def _slot(self, pc: int) -> tuple[int, int]:
        """(set index, tag) from a single hash (hot path)."""
        hashed = hash_pc(pc)
        index = hashed & self._index_mask if self._sets_pow2 else hashed % self.sets
        return index, (hashed >> 40) & ((1 << self.tag_bits) - 1)

    def _find_way(self, index: int, tag: int) -> int | None:
        valid = self._valid[index]
        tags = self._tags[index]
        for way in range(self.ways):
            if valid[way] and tags[way] == tag:
                return way
        return None

    # -- BranchTargetPredictor API ------------------------------------------

    def lookup(self, pc: int) -> BTBLookup:
        index, tag = self._slot(pc)
        way = self._find_way(index, tag)
        if way is None:
            return BTBLookup(hit=False, target=None, latency=self.latency)
        self._policies[index].on_hit(way)
        return BTBLookup(
            hit=True,
            target=self._targets[index][way],
            latency=self.latency,
            provider="btb",
        )

    def update(self, event: BranchEvent) -> None:
        self.stats.updates += 1
        sanitizer_step(self)
        if not event.taken:
            return
        if event.kind.is_indirect and not self.allocate_indirect:
            return
        index, tag = self._slot(event.pc)
        way = self._find_way(index, tag)
        if way is not None:
            self._train_existing(index, way, event.target)
            return
        self._allocate(index, tag, event.target)

    def _train_existing(self, index: int, way: int, target: int) -> None:
        conf = self._conf[index]
        if self._targets[index][way] == target:
            if conf[way] < self._conf_max:
                conf[way] += 1
        elif conf[way] > 0:
            # Keep the incumbent target until confidence drains.
            conf[way] -= 1
        else:
            self._targets[index][way] = target
        self._policies[index].on_hit(way)

    def _allocate(self, index: int, tag: int, target: int) -> None:
        policy = self._policies[index]
        way = policy.victim(self._valid[index])
        if self._valid[index][way]:
            self.stats.evictions += 1
        self._valid[index][way] = True
        self._tags[index][way] = tag
        self._targets[index][way] = target
        self._conf[index][way] = 0
        policy.on_insert(way)
        self.stats.allocations += 1

    def storage_bits(self) -> int:
        per_entry = (
            self.pid_bits
            + self.tag_bits
            + self.target_bits
            + self.conf_bits
            + self._policies[0].metadata_bits_per_entry()
        )
        return self.entries * per_entry

    # -- introspection helpers (tests, characterisation) --------------------

    def occupancy(self) -> int:
        """Number of valid entries currently stored."""
        return sum(sum(valid) for valid in self._valid)

    def metrics(self) -> dict:
        data = super().metrics()
        data["btb_entries"] = self.entries
        data["btb_ways"] = self.ways
        return data

    def contains(self, pc: int) -> bool:
        return self._find_way(self._index(pc), self._tag(pc)) is not None
