"""ITTAGE: indirect-target predictor with tagged geometric history tables.

Section 5.6 evaluates PDede alongside a 64 KB-class ITTAGE (Seznec,
JILP 2011) that takes over indirect branches entirely (indirect targets
are then not allocated in the BTB).  This is a faithful-in-structure,
compact-in-size implementation: a PC-indexed base table plus several
tagged tables indexed by PC folded with geometrically longer slices of a
global path/direction history; the longest-history hit provides the
prediction, with useful-bit guarded allocation on mispredicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.address import ADDRESS_BITS, fold_bits


@dataclass(slots=True)
class _TaggedEntry:
    tag: int = 0
    target: int = 0
    confidence: int = 0  # 2-bit
    useful: int = 0  # 2-bit
    valid: bool = False


class ITTagePredictor:
    """Tagged geometric-history indirect target predictor."""

    def __init__(
        self,
        base_entries: int = 1024,
        table_entries: int = 1024,
        tag_bits: int = 10,
        history_lengths: tuple[int, ...] = (4, 10, 26, 67, 160),
        target_bits: int = ADDRESS_BITS,
    ) -> None:
        if base_entries & (base_entries - 1) or table_entries & (table_entries - 1):
            raise ValueError("table sizes must be powers of two")
        self.base_entries = base_entries
        self.table_entries = table_entries
        self.tag_bits = tag_bits
        self.target_bits = target_bits
        self.history_lengths = history_lengths
        self._base_mask = base_entries - 1
        self._table_mask = table_entries - 1
        self._base_targets = [0] * base_entries
        self._base_valid = [False] * base_entries
        self._base_conf = [0] * base_entries
        self._tables = [
            [_TaggedEntry() for _ in range(table_entries)] for _ in history_lengths
        ]
        self._history = 0
        self._rng_state = 0x2545F4914F6CDD1D
        self.predictions = 0
        self.mispredictions = 0

    # -- history ------------------------------------------------------------

    def record_history(self, pc: int, taken: bool) -> None:
        """Fold every resolved branch into the global path history."""
        bit = (int(taken) ^ (pc >> 2) ^ (pc >> 7)) & 1
        self._history = ((self._history << 1) | bit) & ((1 << 256) - 1)

    def _next_random(self) -> int:
        x = self._rng_state
        x ^= (x << 13) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 7
        x ^= (x << 17) & 0xFFFFFFFFFFFFFFFF
        self._rng_state = x
        return x

    def _index(self, level: int, pc: int) -> int:
        history = self._history & ((1 << self.history_lengths[level]) - 1)
        return ((pc >> 1) ^ fold_bits(history, 14) ^ (level * 0x9E37)) & self._table_mask

    def _tag(self, level: int, pc: int) -> int:
        history = self._history & ((1 << self.history_lengths[level]) - 1)
        return fold_bits((pc >> 1) ^ (history * 5) ^ (level << 7), self.tag_bits) or 1

    def _provider(self, pc: int) -> tuple[int, _TaggedEntry] | None:
        for level in range(len(self._tables) - 1, -1, -1):
            entry = self._tables[level][self._index(level, pc)]
            if entry.valid and entry.tag == self._tag(level, pc):
                return level, entry
        return None

    # -- prediction / training ----------------------------------------------

    def predict(self, pc: int) -> int | None:
        """Predicted indirect target for ``pc``; None when untrained."""
        provider = self._provider(pc)
        if provider is not None:
            return provider[1].target
        base_index = (pc >> 1) & self._base_mask
        if self._base_valid[base_index]:
            return self._base_targets[base_index]
        return None

    def update(self, pc: int, target: int) -> None:
        """Train with the resolved target of the indirect branch at ``pc``."""
        self.predictions += 1
        predicted = self.predict(pc)
        correct = predicted == target
        if not correct:
            self.mispredictions += 1
        provider = self._provider(pc)
        if provider is not None:
            level, entry = provider
            if entry.target == target:
                entry.confidence = min(3, entry.confidence + 1)
                entry.useful = min(3, entry.useful + 1)
            elif entry.confidence > 0:
                entry.confidence -= 1
            else:
                entry.target = target
                entry.confidence = 0
                entry.useful = max(0, entry.useful - 1)
        else:
            base_index = (pc >> 1) & self._base_mask
            if not self._base_valid[base_index]:
                self._base_valid[base_index] = True
                self._base_targets[base_index] = target
                self._base_conf[base_index] = 0
            elif self._base_targets[base_index] == target:
                self._base_conf[base_index] = min(3, self._base_conf[base_index] + 1)
            elif self._base_conf[base_index] > 0:
                self._base_conf[base_index] -= 1
            else:
                self._base_targets[base_index] = target
        if not correct:
            self._allocate(pc, target, provider[0] if provider else -1)

    def _allocate(self, pc: int, target: int, provider_level: int) -> None:
        for level in range(provider_level + 1, len(self._tables)):
            entry = self._tables[level][self._index(level, pc)]
            if not entry.valid or entry.useful == 0:
                entry.valid = True
                entry.tag = self._tag(level, pc)
                entry.target = target
                entry.confidence = 0
                entry.useful = 0
                return
            if self._next_random() & 1:
                entry.useful -= 1

    # -- accounting ----------------------------------------------------------

    def storage_bits(self) -> int:
        base_bits = self.base_entries * (self.target_bits + 2 + 1)
        table_bits = len(self._tables) * self.table_entries * (
            self.target_bits + self.tag_bits + 2 + 2 + 1
        )
        return base_bits + table_bits

    @property
    def misprediction_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions
