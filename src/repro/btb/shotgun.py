"""Shotgun-like BTB (Kumar et al., ASPLOS 2018) -- the §5.10 comparator.

Shotgun splits the BTB by branch type: a U-BTB holds unconditional
branches together with a *spatial footprint* of the code around their
target, and a compact C-BTB holds conditional branches.  On a U-BTB hit
the footprint pre-installs the conditional branches around the target
into the C-BTB.

Modelled properties (the ones the paper says cap Shotgun's gains):

* the C-BTB must capture both taken **and** not-taken conditionals
  (Shotgun's prefetch works at basic-block granularity), so its
  effective reach per entry is lower than a taken-only PC-indexed BTB;
* C-BTB entries are *compact*: they store only a 12-bit same-page target
  offset (Shotgun's premise that conditional displacements are short);
  conditionals with cross-page targets must fall back to the U-BTB;
* prefetching triggers only on a prior unconditional U-BTB hit and only
  covers conditionals within a limited window of its target;
* returns are served by the RAS (the RIB is not modelled, matching the
  paper's own §5.10 methodology).
"""

from __future__ import annotations

from repro.branch.address import hash_pc, page_base, page_offset, same_page
from repro.branch.types import BranchEvent, BranchKind
from repro.btb.base import BTBLookup, BranchTargetPredictor
from repro.btb.baseline import BaselineBTB
from repro.btb.replacement import make_replacement_policy


class _CompactCBTB:
    """Set-associative conditional BTB with 12-bit target offsets."""

    def __init__(self, entries: int, ways: int, tag_bits: int, replacement: str) -> None:
        if entries <= 0 or entries % ways:
            raise ValueError("entries must be positive and divisible by ways")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        self.tag_bits = tag_bits
        self._pow2 = self.sets & (self.sets - 1) == 0
        self._valid = [[False] * ways for _ in range(self.sets)]
        self._tags = [[0] * ways for _ in range(self.sets)]
        self._offsets = [[0] * ways for _ in range(self.sets)]
        repl_kwargs = {"m": 2} if replacement == "srrip" else {}
        self._policies = [
            make_replacement_policy(replacement, ways, **repl_kwargs)
            for _ in range(self.sets)
        ]

    def _index(self, pc: int) -> int:
        hashed = hash_pc(pc)
        return hashed & (self.sets - 1) if self._pow2 else hashed % self.sets

    def _tag(self, pc: int) -> int:
        return (hash_pc(pc) >> 40) & ((1 << self.tag_bits) - 1)

    def lookup(self, pc: int) -> int | None:
        """Return the predicted same-page target, or None on miss."""
        set_index = self._index(pc)
        tag = self._tag(pc)
        for way in range(self.ways):
            if self._valid[set_index][way] and self._tags[set_index][way] == tag:
                self._policies[set_index].on_hit(way)
                return page_base(pc) | self._offsets[set_index][way]
        return None

    def insert(self, pc: int, target: int, overwrite: bool = True) -> None:
        """Install/refresh ``pc``.

        With ``overwrite=False`` (a not-taken occurrence) an existing
        entry's stored *taken-target* offset is preserved -- presence is
        refreshed, the target is not clobbered by the fall-through.
        """
        set_index = self._index(pc)
        tag = self._tag(pc)
        for way in range(self.ways):
            if self._valid[set_index][way] and self._tags[set_index][way] == tag:
                if overwrite:
                    self._offsets[set_index][way] = page_offset(target)
                self._policies[set_index].on_hit(way)
                return
        policy = self._policies[set_index]
        way = policy.victim(self._valid[set_index])
        self._valid[set_index][way] = True
        self._tags[set_index][way] = tag
        self._offsets[set_index][way] = page_offset(target)
        policy.on_insert(way)

    def contains(self, pc: int) -> bool:
        set_index = self._index(pc)
        tag = self._tag(pc)
        return any(
            self._valid[set_index][way] and self._tags[set_index][way] == tag
            for way in range(self.ways)
        )

    def occupancy(self) -> int:
        return sum(sum(valid) for valid in self._valid)

    def storage_bits(self) -> int:
        # tag + offset + SRRIP + valid
        return self.entries * (self.tag_bits + 12 + 2 + 1)


class ShotgunBTB(BranchTargetPredictor):
    """U-BTB + compact C-BTB with footprint-driven pre-installation.

    Args:
        u_entries / u_ways: geometry of the unconditional-branch BTB
            (also hosts the rare cross-page conditionals).
        c_entries / c_ways: geometry of the compact conditional BTB.
        footprint_slots: conditional branches remembered per U-BTB entry.
        footprint_window: byte window around the unconditional's target
            within which conditionals are recorded into the footprint.
    """

    def __init__(
        self,
        u_entries: int = 2048,
        u_ways: int = 4,
        c_entries: int = 4096,
        c_ways: int = 8,
        footprint_slots: int = 2,
        footprint_window: int = 512,
        tag_bits: int = 12,
        latency: int = 1,
        replacement: str = "srrip",
    ) -> None:
        super().__init__()
        self.u_btb = BaselineBTB(
            entries=u_entries, ways=u_ways, tag_bits=tag_bits, latency=latency,
            replacement=replacement,
        )
        self.c_btb = _CompactCBTB(c_entries, c_ways, tag_bits, replacement)
        self.footprint_slots = footprint_slots
        self.footprint_window = footprint_window
        self.latency = latency
        # Footprint memory: unconditional branch PC -> [(cond pc, target)].
        self._footprints: dict[int, list[tuple[int, int]]] = {}
        self._recording_pc: int | None = None
        self._recording_base: int = 0
        self.prefetch_installs = 0

    # -- lookup --------------------------------------------------------------

    def lookup(self, pc: int) -> BTBLookup:
        cond_target = self.c_btb.lookup(pc)
        if cond_target is not None:
            return BTBLookup(True, cond_target, self.latency, "c-btb")
        uncond = self.u_btb.lookup(pc)
        if uncond.hit:
            # A U-BTB hit triggers the footprint prefetch into the C-BTB.
            self._prefetch_footprint(pc)
            return BTBLookup(True, uncond.target, self.latency, "u-btb")
        return BTBLookup(False, None, self.latency, "miss")

    def _prefetch_footprint(self, uncond_pc: int) -> None:
        footprint = self._footprints.get(uncond_pc)
        if not footprint:
            return
        for cond_pc, cond_target in footprint:
            if not self.c_btb.contains(cond_pc):
                self.prefetch_installs += 1
            self.c_btb.insert(cond_pc, cond_target)

    # -- update ----------------------------------------------------------------

    def update(self, event: BranchEvent) -> None:
        self.stats.updates += 1
        if event.kind.is_conditional:
            if event.taken:
                if same_page(event.pc, event.target):
                    self.c_btb.insert(event.pc, event.target)
                else:
                    # Rare cross-page conditional: full-width entry.
                    self.u_btb.update(event)
                self._record_into_footprint(event, event.target)
            else:
                # Not-taken conditionals still occupy C-BTB entries (the
                # basic-block bookkeeping cost the paper highlights) but
                # must not clobber a learned taken target.
                self.c_btb.insert(event.pc, event.fall_through, overwrite=False)
            return
        if event.kind.is_return:
            return  # RAS territory; the RIB is not modelled (per §5.10).
        self.u_btb.update(event)
        # Begin recording this unconditional's spatial footprint.
        self._recording_pc = event.pc
        self._recording_base = event.target

    def _record_into_footprint(self, event: BranchEvent, resolved: int) -> None:
        if self._recording_pc is None:
            return
        if abs(event.pc - self._recording_base) > self.footprint_window:
            self._recording_pc = None
            return
        if not same_page(event.pc, resolved):
            return  # footprints hold compact (same-page) conds only
        footprint = self._footprints.setdefault(self._recording_pc, [])
        record = (event.pc, resolved)
        for slot, (pc, _) in enumerate(footprint):
            if pc == event.pc:
                footprint[slot] = record
                return
        if len(footprint) >= self.footprint_slots:
            footprint.pop(0)
        footprint.append(record)

    def storage_bits(self) -> int:
        # Footprints live inside U-BTB entries as compressed offsets: one
        # slot = a 9-bit block offset + 12-bit target offset + valid bit.
        footprint_bits = self.u_btb.entries * self.footprint_slots * (9 + 12 + 1)
        return self.u_btb.storage_bits() + self.c_btb.storage_bits() + footprint_bits

    @property
    def name(self) -> str:
        return "ShotgunBTB"
