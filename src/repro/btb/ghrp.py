"""GHRP-style predictive BTB replacement (Ajorpaz et al., ISCA 2018).

The paper's related work cites GHRP as an orthogonal BTB improvement
("can be combined with PDede"); this module provides it so the claim is
testable.  The mechanism, simplified to its load-bearing parts:

* every filled entry records a *signature* -- a hash of the branch PC
  and the global history at fill time;
* a table of saturating counters learns, per signature, whether entries
  filled under that signature tend to die unreferenced (evicted without
  a single hit);
* victim selection prefers entries whose signature predicts death,
  falling back to SRRIP order otherwise.

Dead-on-arrival entries (one-shot branches, cold code) stop displacing
useful ones -- the same storage-efficiency goal as PDede, attacked from
the replacement side instead of the encoding side.
"""

from __future__ import annotations

from repro.branch.address import mix64
from repro.branch.types import BranchEvent
from repro.btb.baseline import BaselineBTB


class GhrpBTB(BaselineBTB):
    """A conventional BTB with history-based dead-entry replacement.

    Accepts every :class:`BaselineBTB` argument plus:

    Args:
        predictor_entries: dead-block predictor counters (power of two).
        dead_threshold: counter value at and above which an entry is
            predicted dead.
        history_bits: global branch-history bits mixed into signatures.
    """

    # The inherited fast hooks would skip signature/history training.
    supports_fast_path = False

    def __init__(
        self,
        *args,
        predictor_entries: int = 4096,
        dead_threshold: int = 2,
        history_bits: int = 16,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if predictor_entries <= 0 or predictor_entries & (predictor_entries - 1):
            raise ValueError("predictor_entries must be a positive power of two")
        self._predictor_mask = predictor_entries - 1
        self.predictor_entries = predictor_entries
        self.dead_threshold = dead_threshold
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._dead_counters = [0] * predictor_entries
        self._signatures = [[0] * self.ways for _ in range(self.sets)]
        self._referenced = [[False] * self.ways for _ in range(self.sets)]
        self.dead_predictions_used = 0

    # -- signatures ---------------------------------------------------------

    def _signature(self, pc: int) -> int:
        return mix64((pc >> 1) ^ (self._history << 17)) & self._predictor_mask

    def record_history(self, pc: int, taken: bool) -> None:
        """Fold a resolved branch into the signature history."""
        bit = (int(taken) ^ (pc >> 3)) & 1
        self._history = ((self._history << 1) | bit) & self._history_mask

    # -- BaselineBTB overrides -------------------------------------------------

    def lookup(self, pc: int):
        result = super().lookup(pc)
        if result.hit:
            index, tag = self._slot(pc)
            way = self._find_way(index, tag)
            if way is not None and not self._referenced[index][way]:
                self._referenced[index][way] = True
                # The signature produced a live entry: train toward live.
                signature = self._signatures[index][way]
                if self._dead_counters[signature] > 0:
                    self._dead_counters[signature] -= 1
        return result

    def update(self, event: BranchEvent) -> None:
        super().update(event)
        self.record_history(event.pc, event.taken)

    def _allocate(self, index: int, tag: int, target: int) -> None:
        policy = self._policies[index]
        base = index * self.ways
        way = None
        # Prefer invalid ways, then a predicted-dead entry.
        for candidate in range(self.ways):
            if not self._valid[base + candidate]:
                way = candidate
                break
        if way is None:
            for candidate in range(self.ways):
                signature = self._signatures[index][candidate]
                if (
                    not self._referenced[index][candidate]
                    and self._dead_counters[signature] >= self.dead_threshold
                ):
                    way = candidate
                    self.dead_predictions_used += 1
                    break
        if way is None:
            way = policy.victim(self._valid[base:base + self.ways])
        slot = base + way
        if self._valid[slot]:
            self.stats.evictions += 1
            # Train: entries evicted unreferenced were dead on arrival.
            signature = self._signatures[index][way]
            if not self._referenced[index][way]:
                if self._dead_counters[signature] < 3:
                    self._dead_counters[signature] += 1
        self._valid[slot] = True
        self._tags[slot] = tag
        self._targets[slot] = target
        self._conf[slot] = 0
        self._signatures[index][way] = self._signature(
            tag  # the folded-tag stands in for the PC inside the set
        )
        self._referenced[index][way] = False
        policy.on_insert(way)
        self.stats.allocations += 1

    def storage_bits(self) -> int:
        # Base entries + per-entry signature pointer is not stored in
        # hardware GHRP (signatures index the predictor at fill time);
        # the predictor table itself costs 2 bits per counter.
        return super().storage_bits() + 2 * self.predictor_entries

    @property
    def name(self) -> str:
        return "GhrpBTB"
