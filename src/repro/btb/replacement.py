"""Per-set replacement policies for BTB-like structures.

The paper's BTBs use SRRIP (Static Re-Reference Interval Prediction,
Jaleel et al. ISCA'10) everywhere: the baseline BTB, the BTBM, and the
Region-/Page-BTB allocations (Section 4.4.2).  LRU, FIFO and random are
provided for the replacement-policy ablation called out in DESIGN.md.

A policy instance manages exactly one set of ``ways`` ways.  Structures
instantiate one policy object per set via :func:`make_replacement_policy`.
"""

from __future__ import annotations

import abc
import random


class ReplacementPolicy(abc.ABC):
    """Replacement state for a single set."""

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ValueError("ways must be positive")
        self.ways = ways

    @abc.abstractmethod
    def on_hit(self, way: int) -> None:
        """Record a reference to ``way``."""

    @abc.abstractmethod
    def on_insert(self, way: int) -> None:
        """Record a fresh allocation into ``way``."""

    @abc.abstractmethod
    def victim(self, valid: list[bool]) -> int:
        """Pick the way to evict; invalid ways are always preferred."""

    def _first_invalid(self, valid: list[bool]) -> int | None:
        try:
            return valid.index(False)
        except ValueError:
            return None

    def metadata_bits_per_entry(self) -> int:
        """Replacement metadata cost, in bits per entry."""
        return 0


class LruPolicy(ReplacementPolicy):
    """True LRU via a recency list (most recent last)."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._order = list(range(ways))

    def on_hit(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def on_insert(self, way: int) -> None:
        self.on_hit(way)

    def victim(self, valid: list[bool]) -> int:
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        return self._order[0]

    def metadata_bits_per_entry(self) -> int:
        # log2(ways) bits per entry for a rank encoding.
        return max(1, (self.ways - 1).bit_length())


class FifoPolicy(ReplacementPolicy):
    """Round-robin replacement."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._next = 0

    def on_hit(self, way: int) -> None:
        pass

    def on_insert(self, way: int) -> None:
        self._next = (way + 1) % self.ways

    def victim(self, valid: list[bool]) -> int:
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        return self._next

    def metadata_bits_per_entry(self) -> int:
        # A single pointer per set; amortise over the ways.
        return max(1, (self.ways - 1).bit_length()) // self.ways or 1


class RandomPolicy(ReplacementPolicy):
    """Uniform-random victim selection (seeded, reproducible)."""

    def __init__(self, ways: int, seed: int = 0) -> None:
        super().__init__(ways)
        self._rng = random.Random(seed)

    def on_hit(self, way: int) -> None:
        pass

    def on_insert(self, way: int) -> None:
        pass

    def victim(self, valid: list[bool]) -> int:
        invalid = self._first_invalid(valid)
        if invalid is not None:
            return invalid
        return self._rng.randrange(self.ways)


class SrripPolicy(ReplacementPolicy):
    """Static RRIP with ``m``-bit re-reference prediction values.

    New blocks are inserted with a *long* re-reference interval
    (``2**m - 2``); hits promote to *near-immediate* (0); the victim is
    any way at the *distant* value (``2**m - 1``), ageing all ways until
    one reaches it.  This matches the paper's per-entry 2-3 SRRIP bits.
    """

    def __init__(self, ways: int, m: int = 2) -> None:
        super().__init__(ways)
        if m <= 0:
            raise ValueError("m must be positive")
        self._m = m
        self._max = (1 << m) - 1
        self.rrpv = [self._max] * ways

    def on_hit(self, way: int) -> None:
        self.rrpv[way] = 0

    def on_insert(self, way: int) -> None:
        self.rrpv[way] = self._max - 1

    def victim(self, valid: list[bool]) -> int:
        # list.index runs the scans at C speed; rrpv is aged in place
        # because external mirrors may hold a reference to the list.
        try:
            return valid.index(False)
        except ValueError:
            pass
        rrpv = self.rrpv
        distant = self._max
        while True:
            try:
                return rrpv.index(distant)
            except ValueError:
                for way in range(self.ways):
                    rrpv[way] += 1

    def metadata_bits_per_entry(self) -> int:
        return self._m


_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
    "srrip": SrripPolicy,
}


def make_replacement_policy(name: str, ways: int, **kwargs) -> ReplacementPolicy:
    """Build one per-set replacement-policy instance by name."""
    try:
        factory = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; options: {sorted(_POLICIES)}"
        ) from None
    return factory(ways, **kwargs)
