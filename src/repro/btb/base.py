"""Common interface and statistics for all branch-target predictors.

A BTB model exposes two operations mirroring the hardware (Section 4.4):

* ``lookup(pc)`` -- performed at fetch, returns the predicted target (or
  a miss) and the access latency in cycles.
* ``update(event)`` -- performed when the branch resolves (decode for
  direct, execute for indirect), trains / allocates entries.

A *BTB miss* follows the paper's definition (Section 5.1): the branch PC
has no valid entry, **or** it has one with the wrong target.  Misses are
counted against taken branches only, because not-taken fall-through
addresses are computed trivially.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.branch.types import BranchEvent


@dataclass(slots=True)
class BTBLookup:
    """Result of one BTB lookup.

    Attributes:
        hit: whether a valid entry matched the branch PC.
        target: predicted target address (None on miss, unless a
            speculative provider such as PDede's Next Target Offset
            register supplies one).
        latency: access latency in cycles (baseline: 1; PDede charges 2
            when the Region/Page-BTB pointer chase is needed).
        provider: short label naming the structure that produced the
            prediction, for diagnostics ("btb", "btbm-delta", ...).
    """

    hit: bool
    target: int | None = None
    latency: int = 1
    provider: str = "btb"


@dataclass(slots=True)
class BTBStats:
    """Aggregate counters maintained by every predictor.

    ``misses`` uses the paper's definition (no entry *or* wrong target,
    on taken branches).  ``wrong_target`` counts the subset of misses
    where an entry existed but predicted the wrong address.
    """

    lookups: int = 0
    taken_lookups: int = 0
    hits: int = 0
    misses: int = 0
    wrong_target: int = 0
    allocations: int = 0
    evictions: int = 0
    updates: int = 0
    misses_by_kind: dict = field(default_factory=dict)

    def record_outcome(self, event: BranchEvent, lookup: BTBLookup) -> bool:
        """Score ``lookup`` against the resolved ``event``.

        Returns True when the lookup counts as a BTB miss.  Only taken
        branches are scored, mirroring Section 5.1.
        """
        self.lookups += 1
        if not event.taken:
            return False
        self.taken_lookups += 1
        if lookup.target == event.target:
            self.hits += 1
            return False
        self.misses += 1
        if lookup.hit:
            self.wrong_target += 1
        kind_name = event.kind.name
        self.misses_by_kind[kind_name] = self.misses_by_kind.get(kind_name, 0) + 1
        return True

    @property
    def miss_rate(self) -> float:
        """Miss fraction over taken-branch lookups."""
        if self.taken_lookups == 0:
            return 0.0
        return self.misses / self.taken_lookups

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction given the retired-instruction count."""
        if instructions <= 0:
            return 0.0
        return 1000.0 * self.misses / instructions

    def to_dict(self) -> dict:
        """JSON-serialisable snapshot of the counters."""
        return {
            "lookups": self.lookups,
            "taken_lookups": self.taken_lookups,
            "hits": self.hits,
            "misses": self.misses,
            "wrong_target": self.wrong_target,
            "allocations": self.allocations,
            "evictions": self.evictions,
            "updates": self.updates,
            "miss_rate": self.miss_rate,
            "misses_by_kind": dict(self.misses_by_kind),
        }


class BranchTargetPredictor(abc.ABC):
    """Abstract base class for every BTB design in this library."""

    def __init__(self) -> None:
        self.stats = BTBStats()

    @abc.abstractmethod
    def lookup(self, pc: int) -> BTBLookup:
        """Predict the target of the branch at ``pc`` (fetch time)."""

    @abc.abstractmethod
    def update(self, event: BranchEvent) -> None:
        """Train with the resolved branch ``event``."""

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Total SRAM bits of the design (tags + data + metadata)."""

    @property
    def name(self) -> str:
        return type(self).__name__

    def storage_kib(self) -> float:
        """Storage footprint in KiB."""
        return self.storage_bits() / 8192.0

    def reset_stats(self) -> None:
        self.stats = BTBStats()

    def metrics(self) -> dict:
        """Flat metric snapshot for the observability registry.

        Keys follow the README naming scheme: ``_total`` suffixes mark
        monotonic counts (published as counters), everything else is a
        point-in-time gauge.  ``misses_by_kind`` is excluded -- the
        simulator publishes it separately with a ``kind=`` label.
        Subclasses extend this with per-structure internals (occupancy,
        the delta/pointer hit split, dedup-table state, ...).
        """
        stats = self.stats
        data = {
            "btb_lookups_total": stats.lookups,
            "btb_taken_lookups_total": stats.taken_lookups,
            "btb_hits_total": stats.hits,
            "btb_misses_total": stats.misses,
            "btb_wrong_target_total": stats.wrong_target,
            "btb_allocations_total": stats.allocations,
            "btb_evictions_total": stats.evictions,
            "btb_updates_total": stats.updates,
            "btb_miss_rate": stats.miss_rate,
            "btb_storage_kib": self.storage_kib(),
        }
        occupancy = getattr(self, "occupancy", None)
        if callable(occupancy):
            data["btb_occupancy"] = occupancy()
        return data

    def observe(self, event: BranchEvent) -> tuple[BTBLookup, bool]:
        """Convenience: lookup, score, and update in trace order.

        Returns the lookup result and whether it was a BTB miss.  The
        frontend simulator uses the lower-level calls directly; this
        helper serves the characterisation tools and tests.
        """
        lookup = self.lookup(event.pc)
        missed = self.stats.record_outcome(event, lookup)
        self.update(event)
        return lookup, missed
