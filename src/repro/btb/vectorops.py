"""Struct-of-arrays lookup kernels for the vectorised frontend engine.

The vector engine (:mod:`repro.frontend.vector`) replays a trace in
chunks: one vectorised BTB lookup over a whole chunk, a scan for the
first *boundary* event (one whose update would change lookup-visible
state), bulk replication of the clean prefix's update side effects, and
a scalar ``observe_fast`` replay of the boundary itself.  This module
supplies the per-design machinery that makes that sound:

* **Mirrors** -- numpy copies of exactly the state a lookup *reads*
  (tags, targets / delta-offset-pointer fields, dedup-table values and
  generations).  The Python lists stay authoritative; mirrors are
  patched from the mutation journals the structures keep while a vector
  run is active (``_vec_journal`` on :class:`BaselineBTB`,
  :class:`PDedeBTB` and :class:`DedupValueTable`).
* **Boundary masks** -- conservative per-event predicates.  An event is
  clean only when its ``observe_fast`` provably leaves lookup-visible
  state untouched: a hit whose stored prediction already equals the
  resolved target (training saturates confidence instead of rewriting),
  or an update that does not allocate.  Everything else -- allocations,
  target rewrites, confidence drains (which *may* rewrite), multi-target
  tag misses (which consume the pending next-target register) -- is
  replayed through the real scalar code path.
* **Commit** -- exact replication of the clean events' non-lookup
  side effects (update counters, replacement touches, confidence
  saturation, dedup-table hit statistics, multi-target chaining) in
  trace order, so the authoritative structures never diverge from a
  scalar run.

Equivalence with the frozen seed engine is enforced bit for bit by
``tests/test_engine_equivalence.py`` and ``tests/test_vector_engine.py``.
"""

from __future__ import annotations

import numpy as np

from repro.branch.address import OFFSET_BITS, PAGE_IN_REGION_BITS
from repro.btb.baseline import BaselineBTB
from repro.btb.replacement import LruPolicy, SrripPolicy
from repro.btb.twolevel import TwoLevelBTB
from repro.core.config import PDedeMode
from repro.core.pdede import PDedeBTB

#: ``None`` lookup target as an int64 sentinel (targets are 57-bit
#: non-negative addresses, so -1 never collides with a real target).
NO_TARGET = -1

#: ``page_base`` as an int64 mask (addresses stay below 2**57, so the
#: 57-bit address mask of the scalar helper is redundant in int64).
_PAGE_MASK = ~0xFFF

#: Fused BTB-write keys: ``set_index * stride + tag``.  A BTB write only
#: perturbs a later lookup of the *same tag in the same set* (the -1
#: empty-slot sentinel folds in without colliding -- real tags are at
#: most 40 bits).  Matching fused keys instead of bare set indices keeps
#: blocks alive across almost every replayed boundary.
_KEY_STRIDE = 1 << 41


def vector_supported(btb) -> bool:
    """Whether :func:`make_vector_ops` has an exact kernel for ``btb``.

    Exact types only: a subclass may override update behaviour the
    kernels replicate (``GhrpBTB`` does), so anything unrecognised falls
    back to the fast scalar engine.
    """
    if type(btb) is BaselineBTB or type(btb) is PDedeBTB:
        return True
    if type(btb) is TwoLevelBTB:
        return type(btb.level0) is BaselineBTB and type(btb.level1) in (
            BaselineBTB,
            PDedeBTB,
        )
    return False


def make_vector_ops(btb, trace, returns_use_ras: bool):
    """Build the per-design vector ops for ``btb`` over ``trace``."""
    decoded = trace.decoded()
    cols = decoded.vector_columns()
    if returns_use_ras:
        active = ~cols["is_return"]
    else:
        active = np.ones(decoded.n_events, dtype=np.bool_)
    if type(btb) is BaselineBTB:
        return BaselineOps(btb, trace, decoded, active)
    if type(btb) is PDedeBTB:
        return PDedeOps(btb, trace, decoded, active)
    if type(btb) is TwoLevelBTB:
        return TwoLevelOps(btb, trace, decoded, active)
    raise ValueError(f"no vector ops for {type(btb).__name__}")


# -- replacement-touch fast paths -------------------------------------------


def _policy_touch(policies):
    """A ``touch(set_index, way)`` closure for one policy list (or None).

    The scalar hot path touches replacement state on every hit; SRRIP
    collapses to one list store, LRU keeps the real ``on_hit`` call
    (order matters), FIFO/random need nothing (``on_hit`` is a no-op).
    """
    if not policies:
        return None
    first = policies[0]
    if isinstance(first, SrripPolicy):
        rrpv = [policy.rrpv for policy in policies]

        def touch(set_index, way, _rrpv=rrpv):
            _rrpv[set_index][way] = 0

        return touch
    if isinstance(first, LruPolicy):

        def touch(set_index, way, _policies=policies):
            _policies[set_index].on_hit(way)

        return touch
    return None


def _split_policy_touch(btb):
    """Touch closure for :class:`PDedeBTB` (handles multi-entry splits)."""
    if btb._policies is not None:
        return _policy_touch(btb._policies)
    first = btb._long_policies[0]
    short_base = btb._short_base
    if isinstance(first, SrripPolicy):
        long_rrpv = [policy.rrpv for policy in btb._long_policies]
        short_rrpv = [policy.rrpv for policy in btb._short_policies]

        def touch(set_index, way):
            if way >= short_base:
                short_rrpv[set_index][way - short_base] = 0
            else:
                long_rrpv[set_index][way] = 0

        return touch
    if isinstance(first, LruPolicy):
        longs = btb._long_policies
        shorts = btb._short_policies

        def touch(set_index, way):
            if way >= short_base:
                shorts[set_index].on_hit(way - short_base)
            else:
                longs[set_index].on_hit(way)

        return touch
    return None


def _table_rrpv(table):
    """SRRIP rrpv matrix of a :class:`DedupValueTable` (else ``None``)."""
    if isinstance(table._policies[0], SrripPolicy):
        return [policy.rrpv for policy in table._policies]
    return None


def _table_touch(table):
    """A ``touch(pointer)`` closure for a :class:`DedupValueTable`."""
    policies = table._policies
    first = policies[0]
    ways = table.ways
    if isinstance(first, SrripPolicy):
        rrpv = [policy.rrpv for policy in policies]

        def touch(pointer, _rrpv=rrpv, _ways=ways):
            _rrpv[pointer // _ways][pointer % _ways] = 0

        return touch
    if isinstance(first, LruPolicy):

        def touch(pointer, _policies=policies, _ways=ways):
            _policies[pointer // _ways].on_hit(pointer % _ways)

        return touch
    return None


# -- block container --------------------------------------------------------


class VectorBlock:
    """One chunk's lookup outcomes plus the columns commit needs.

    ``lt``/``lh``/``lat`` are the per-event ``observe_fast`` return
    values (target as int64 with :data:`NO_TARGET` for None), valid at
    every *clean* index; ``bounds`` lists the absolute indices of
    boundary events in ascending order.  ``lists`` materialises a data
    column as a Python list once per block -- the scalar commit loops
    index lists, not ndarrays.
    """

    __slots__ = ("lo", "hi", "lt", "lh", "lat", "bounds", "data", "_lists")

    def __init__(self, lo, hi, lt, lh, lat, bounds, data):
        self.lo = lo
        self.hi = hi
        self.lt = lt
        self.lh = lh
        self.lat = lat
        self.bounds = bounds
        self.data = data
        self._lists = {}

    def lists(self, key):
        cached = self._lists.get(key)
        if cached is None:
            cached = self.data[key].tolist()
            self._lists[key] = cached
        return cached


# -- mirror cores -----------------------------------------------------------


class _BaselineCore:
    """Lookup mirror of one :class:`BaselineBTB` (also a TwoLevel level)."""

    def __init__(self, btb, decoded):
        self.btb = btb
        self.ways = btb.ways
        self.index_col, self.tag_col = decoded.btb_index_tag(btb.sets, btb.tag_bits)
        self.key_col = self.index_col * _KEY_STRIDE + self.tag_col
        self.tags_flat = np.array(btb._tags, dtype=np.int64)
        self.tags2d = self.tags_flat.reshape(btb.sets, btb.ways)
        self.targets_flat = np.array(btb._targets, dtype=np.int64)
        self.touch = _policy_touch(btb._policies)

    def raw_lookup(self, lo, hi):
        index = self.index_col[lo:hi]
        # Invalid slots hold the -1 tag sentinel and real tags are
        # non-negative, so the first boolean match is exactly the
        # scalar ``list.index`` way.
        match = self.tags2d[index] == self.tag_col[lo:hi, None]
        hit = match.any(axis=1)
        way = match.argmax(axis=1)
        slot = index * self.ways + way
        pred = self.targets_flat[slot]
        return index, hit, way, slot, pred

    def patch(self, journal):
        tags = self.btb._tags
        targets = self.btb._targets
        tags_flat = self.tags_flat
        targets_flat = self.targets_flat
        ways = self.ways
        written = set()
        for slot in journal:
            base_key = (slot // ways) * _KEY_STRIDE
            # Both the evicted tag (a lane that would have hit it) and
            # the new tag (a lane that now hits) are perturbed.
            written.add(base_key + int(tags_flat[slot]))
            tags_flat[slot] = tags[slot]
            targets_flat[slot] = targets[slot]
            written.add(base_key + tags[slot])
        return written


class _PDedeCore:
    """Lookup mirror of one :class:`PDedeBTB` (BTBM plus dedup tables)."""

    def __init__(self, btb, decoded):
        cfg = btb.config
        self.btb = btb
        self.ways = btb._ways
        self.index_col, self.tag_col = decoded.btb_index_tag(btb._sets, cfg.tag_bits)
        self.key_col = self.index_col * _KEY_STRIDE + self.tag_col
        self.tags_flat = np.array(btb._tags, dtype=np.int64)
        self.tags2d = self.tags_flat.reshape(btb._sets, btb._ways)
        self.delta_flat = np.array(btb._delta, dtype=np.bool_)
        self.off_flat = np.array(btb._offsets, dtype=np.int64)
        self.pptr_flat = np.array(btb._page_ptr, dtype=np.int64)
        self.rptr_flat = np.array(btb._region_ptr, dtype=np.int64)
        self.pgen_flat = np.array(btb._page_gen, dtype=np.int64)
        self.rgen_flat = np.array(btb._region_gen, dtype=np.int64)
        self.page_vals = np.array(btb.page_btb._values, dtype=np.int64).reshape(-1)
        self.page_gens = np.array(btb.page_btb._generations, dtype=np.int64).reshape(-1)
        self.region_vals = np.array(btb.region_btb._values, dtype=np.int64).reshape(-1)
        self.region_gens = np.array(
            btb.region_btb._generations, dtype=np.int64
        ).reshape(-1)
        self.touch = _split_policy_touch(btb)
        self.page_touch = _table_touch(btb.page_btb)
        self.region_touch = _table_touch(btb.region_btb)
        self.page_rrpv = _table_rrpv(btb.page_btb)
        self.region_rrpv = _table_rrpv(btb.region_btb)
        self.page_ways = btb.page_btb.ways
        self.region_ways = btb.region_btb.ways
        self.always_two_cycle = bool(cfg.always_two_cycle)

    def raw_lookup(self, lo, hi, pcs_col):
        index = self.index_col[lo:hi]
        match = self.tags2d[index] == self.tag_col[lo:hi, None]
        hit = match.any(axis=1)
        way = match.argmax(axis=1)
        slot = index * self.ways + way
        delta = self.delta_flat[slot]
        offset = self.off_flat[slot]
        page_ptr = self.pptr_flat[slot]
        region_ptr = self.rptr_flat[slot]
        # Pointer gathers with the -1 sentinel wrap to the last table
        # slot -- harmless, those lanes are masked by ``delta``/``hit``.
        page_value = self.page_vals[page_ptr]
        region_value = self.region_vals[region_ptr]
        pred = np.where(
            delta,
            (pcs_col[lo:hi] & _PAGE_MASK) | offset,
            (((region_value << PAGE_IN_REGION_BITS) | page_value) << OFFSET_BITS)
            | offset,
        )
        stale = (
            hit
            & ~delta
            & (
                (self.page_gens[page_ptr] != self.pgen_flat[slot])
                | (self.region_gens[region_ptr] != self.rgen_flat[slot])
            )
        )
        if self.always_two_cycle:
            lat = np.where(hit, 2, 1)
        else:
            lat = np.where(hit & ~delta, 2, 1)
        return index, hit, way, slot, pred, delta, stale, page_ptr, region_ptr, lat

    def patch_btbm(self, journal):
        btb = self.btb
        tags, delta, offsets = btb._tags, btb._delta, btb._offsets
        page_ptr, region_ptr = btb._page_ptr, btb._region_ptr
        page_gen, region_gen = btb._page_gen, btb._region_gen
        ways = self.ways
        written = set()
        for slot in journal:
            base_key = (slot // ways) * _KEY_STRIDE
            written.add(base_key + int(self.tags_flat[slot]))
            self.tags_flat[slot] = tags[slot]
            self.delta_flat[slot] = delta[slot]
            self.off_flat[slot] = offsets[slot]
            self.pptr_flat[slot] = page_ptr[slot]
            self.rptr_flat[slot] = region_ptr[slot]
            self.pgen_flat[slot] = page_gen[slot]
            self.rgen_flat[slot] = region_gen[slot]
            written.add(base_key + tags[slot])
        return written

    def patch_page(self, journal):
        table = self.btb.page_btb
        for pointer in journal:
            set_index, way = divmod(pointer, table.ways)
            self.page_vals[pointer] = table._values[set_index][way]
            self.page_gens[pointer] = table._generations[set_index][way]
        return set(journal)

    def patch_region(self, journal):
        table = self.btb.region_btb
        for pointer in journal:
            set_index, way = divmod(pointer, table.ways)
            self.region_vals[pointer] = table._values[set_index][way]
            self.region_gens[pointer] = table._generations[set_index][way]
        return set(journal)


# -- per-design ops ---------------------------------------------------------


class _OpsBase:
    """Journal lifecycle shared by all designs.

    ``begin``/``end`` install and remove the mutation journals on every
    journaled structure; ``absorb`` patches the mirrors from whatever
    the replayed boundary wrote and reports whether anything changed.
    After a mutation, :meth:`first_affected` tells the engine how far
    the current block's precomputed lookups are still valid: a write
    only perturbs events that read the written BTB set (associative
    match) or dedup-table slot (pointer read), so the scan usually keeps
    consuming the same block instead of re-looking everything up.
    """

    _journaled = ()

    def begin(self):
        for obj, _ in self._journaled:
            obj._vec_journal = []
        self._written = [set() for _ in self._journaled]

    def end(self):
        for obj, _ in self._journaled:
            obj._vec_journal = None

    def absorb(self):
        mutated = False
        for k, (obj, patch) in enumerate(self._journaled):
            journal = obj._vec_journal
            if journal:
                self._written[k] |= patch(journal)
                del journal[:]
                mutated = True
        return mutated

    @staticmethod
    def _first_hit(mask, lo, hi):
        # argmax on bool stops at the first True; a zero result is
        # ambiguous, so check the flag it points at.
        k = int(mask.argmax())
        return lo + k if mask[k] else hi

    @staticmethod
    def _match_any(col, written):
        # Written sets are tiny (usually one slot per replay), so a few
        # equality passes beat ``np.isin``'s setup cost by a wide margin.
        values = iter(written)
        mask = col == next(values)
        for value in values:
            mask = mask | (col == value)
        return mask


class BaselineOps(_OpsBase):
    """Vector kernel for :class:`BaselineBTB`."""

    def __init__(self, btb, trace, decoded, active):
        cols = decoded.vector_columns()
        self.btb = btb
        self.core = _BaselineCore(btb, decoded)
        self.active = active
        taken = cols["taken"]
        if btb.allocate_indirect:
            self.trained = taken
        else:
            self.trained = taken & ~cols["is_indirect"]
        self.targets_col = cols["targets"]
        policies = btb._policies
        self.rrpv = (
            [policy.rrpv for policy in policies]
            if policies and isinstance(policies[0], SrripPolicy)
            else None
        )
        self._journaled = [(btb, self.core.patch)]

    def lookup_block(self, lo, hi):
        index, hit, way, slot, pred = self.core.raw_lookup(lo, hi)
        act = self.active[lo:hi]
        trained = self.trained[lo:hi]
        # Training only mutates on an allocation (tag miss) or a target
        # rewrite; a trained hit whose prediction already matches only
        # saturates confidence.  Confidence drains are conservatively
        # boundaries too (pred != target with conf > 0 does not rewrite,
        # but conf is not mirrored -- the replay decides).
        boundary = act & trained & (~hit | (pred != self.targets_col[lo:hi]))
        lt = np.where(hit, pred, NO_TARGET)
        lat = np.full(hi - lo, self.btb.latency, dtype=np.int64)
        bounds = (np.flatnonzero(boundary) + lo).tolist()
        # Commit side effects, precomputed once per block: relative
        # positions (for searchsorted range narrowing) plus the exact
        # set/way/slot the loop bodies need, as plain lists.
        act_hit = act & hit
        touch_mask = act_hit
        conf_mask = act_hit & trained
        pre = (
            np.cumsum(act),
            np.cumsum(touch_mask),
            index[touch_mask].tolist(),
            way[touch_mask].tolist(),
            np.cumsum(conf_mask),
            slot[conf_mask].tolist(),
        )
        data = {"index": index, "pre": pre}
        return VectorBlock(lo, hi, lt, hit, lat, bounds, data)

    def commit(self, blk, start, end):
        btb = self.btb
        lo = blk.lo
        a = start - lo
        last = end - lo - 1
        act_cum, tcnt, tsets, tways, ccnt, cslots = blk.data["pre"]
        if a:
            am1 = a - 1
            btb.stats.updates += int(act_cum[last] - act_cum[am1])
            j0 = int(tcnt[am1])
            c0 = int(ccnt[am1])
        else:
            btb.stats.updates += int(act_cum[last])
            j0 = c0 = 0
        # Touches before confidence bumps: the two streams are disjoint
        # state, and each stream keeps trace order, so splitting the
        # original per-event interleave is observation-equivalent.
        rrpv = self.rrpv
        if rrpv is not None:
            for k in range(j0, int(tcnt[last])):
                rrpv[tsets[k]][tways[k]] = 0
        elif self.core.touch is not None:
            touch = self.core.touch
            for k in range(j0, int(tcnt[last])):
                touch(tsets[k], tways[k])
        conf = btb._conf
        conf_max = btb._conf_max
        for k in range(c0, int(ccnt[last])):
            # Clean + trained implies pred == target: training saturates
            # the confidence counter instead of rewriting.
            s = cslots[k]
            if conf[s] < conf_max:
                conf[s] += 1

    def first_affected(self, blk, lo, hi):
        written = self._written[0]
        if not written or lo >= hi:
            written.clear()
            return hi
        mask = self._match_any(self.core.key_col[lo:hi], written)
        written.clear()
        return self._first_hit(mask, lo, hi)


class PDedeOps(_OpsBase):
    """Vector kernel for :class:`PDedeBTB` (all modes)."""

    def __init__(self, btb, trace, decoded, active):
        cfg = btb.config
        cols = decoded.vector_columns()
        self.btb = btb
        self.core = _PDedeCore(btb, decoded)
        self.active = active
        self.taken = cols["taken"]
        if cfg.allocate_indirect:
            self.trained = self.taken
        else:
            self.trained = self.taken & ~cols["is_indirect"]
        self.pcs_col = cols["pcs"]
        self.targets_col = cols["targets"]
        self.multi_target = cfg.mode is PDedeMode.MULTI_TARGET
        self.pcs_list = trace.pcs
        self.targets_list = trace.targets
        self.same_page_list = decoded.same_page
        # SRRIP touch fast path: direct rrpv stores instead of the
        # closure call.  Multi-entry splits fold into one matrix (long
        # policies first, short policies after, ways rebased).
        if btb._policies is not None:
            self.split = None
            self.rrpv = (
                [policy.rrpv for policy in btb._policies]
                if isinstance(btb._policies[0], SrripPolicy)
                else None
            )
        elif isinstance(btb._long_policies[0], SrripPolicy):
            longs = btb._long_policies
            shorts = btb._short_policies
            self.split = (btb._short_base, len(longs))
            self.rrpv = [policy.rrpv for policy in longs] + [
                policy.rrpv for policy in shorts
            ]
        else:
            self.split = None
            self.rrpv = None
        self._journaled = [
            (btb, self.core.patch_btbm),
            (btb.page_btb, self.core.patch_page),
            (btb.region_btb, self.core.patch_region),
        ]

    def lookup_block(self, lo, hi):
        (
            index,
            hit,
            way,
            slot,
            pred,
            delta,
            stale,
            page_ptr,
            region_ptr,
            lat,
        ) = self.core.raw_lookup(lo, hi, self.pcs_col)
        act = self.active[lo:hi]
        trained = self.trained[lo:hi]
        wrong = trained & (pred != self.targets_col[lo:hi])
        if self.multi_target:
            # A multi-target tag miss consumes (and may provision from)
            # the pending next-target register -- but the register is
            # only ever non-empty right after a delta-hit lookup, so an
            # untrained miss whose previous active event provably could
            # not stage is a no-op and stays clean.  The first active
            # event reads the authoritative register (nothing has run
            # since this block was looked up).
            act_pos = np.flatnonzero(act)
            pend = np.zeros(hi - lo, dtype=np.bool_)
            if act_pos.size:
                staged = hit & delta
                pend[act_pos[0]] = self.btb._pending_next_offset is not None
                pend[act_pos[1:]] = staged[act_pos[:-1]]
            boundary = act & (wrong | (trained & ~hit) | (~hit & pend))
        else:
            boundary = act & trained & (~hit | wrong)
        lt = np.where(hit, pred, NO_TARGET)
        bounds = (np.flatnonzero(boundary) + lo).tolist()
        # Commit side effects, precomputed once per block: cumulative
        # counter weights (a trained clean hit reconstructs twice --
        # lookup half plus training's own reconstruct -- an untrained
        # hit once), and position arrays + plain-list operands for the
        # touch / confidence / chain streams.
        act_hit = act & hit
        weight = act_hit.astype(np.int64) + (act_hit & trained)
        tset_arr = index[act_hit]
        tway_arr = way[act_hit]
        if self.split is not None:
            short_base, n_sets = self.split
            is_short = tway_arr >= short_base
            tset_arr = tset_arr + is_short * n_sets
            tway_arr = tway_arr - is_short * short_base
        table_mask = act_hit & ~delta
        core = self.core
        pp = page_ptr[table_mask]
        rp = region_ptr[table_mask]
        if core.page_rrpv is not None:
            page_a = (pp // core.page_ways).tolist()
            page_b = (pp % core.page_ways).tolist()
        else:
            page_a = pp.tolist()
            page_b = None
        if core.region_rrpv is not None:
            region_a = (rp // core.region_ways).tolist()
            region_b = (rp % core.region_ways).tolist()
        else:
            region_a = rp.tolist()
            region_b = None
        conf_mask = act_hit & trained
        pre = [
            np.cumsum(act),
            np.cumsum(weight * delta),
            np.cumsum(weight * ~delta),
            np.cumsum(weight * stale),
            np.cumsum(act_hit),
            tset_arr.tolist(),
            tway_arr.tolist(),
            np.cumsum(table_mask),
            page_a,
            page_b,
            region_a,
            region_b,
            np.cumsum(conf_mask),
            slot[conf_mask].tolist(),
        ]
        if self.multi_target:
            taken_mask = act & self.taken[lo:hi]
            taken_r = np.flatnonzero(taken_mask)
            pre += [
                act_pos,
                np.cumsum(taken_mask),
                (taken_r + lo).tolist(),
                trained[taken_mask].tolist(),
                index[taken_mask].tolist(),
                way[taken_mask].tolist(),
            ]
        data = {
            "hit": hit,
            "index": index,
            "slot": slot,
            "delta": delta,
            "page_ptr": page_ptr,
            "region_ptr": region_ptr,
            "pre": pre,
        }
        return VectorBlock(lo, hi, lt, hit, lat, bounds, data)

    def commit(self, blk, start, end):
        btb = self.btb
        lo = blk.lo
        a = start - lo
        b = end - lo
        pre = blk.data["pre"]
        (
            act_cum,
            delta_cum,
            pointer_cum,
            stale_cum,
            tcnt,
            tsets,
            tways,
            prcnt,
            page_a,
            page_b,
            region_a,
            region_b,
            ccnt,
            cslots,
        ) = pre[:14]
        last = b - 1
        if a:
            am1 = a - 1
            n0 = int(act_cum[am1])
            btb.stats.updates += int(act_cum[last]) - n0
            btb.delta_hits += int(delta_cum[last] - delta_cum[am1])
            btb.pointer_hits += int(pointer_cum[last] - pointer_cum[am1])
            btb.stale_pointer_reads += int(stale_cum[last] - stale_cum[am1])
            j0 = int(tcnt[am1])
            t0 = int(prcnt[am1])
            c0 = int(ccnt[am1])
        else:
            n0 = 0
            btb.stats.updates += int(act_cum[last])
            btb.delta_hits += int(delta_cum[last])
            btb.pointer_hits += int(pointer_cum[last])
            btb.stale_pointer_reads += int(stale_cum[last])
            j0 = t0 = c0 = 0
        # The per-event interleave splits into independent streams (BTBM
        # touches, table touches, confidence, chain/pending); each keeps
        # trace order, and the streams share no state.
        core = self.core
        rrpv = self.rrpv
        if rrpv is not None:
            for k in range(j0, int(tcnt[last])):
                rrpv[tsets[k]][tways[k]] = 0
        elif core.touch is not None:
            touch = core.touch
            for k in range(j0, int(tcnt[last])):
                touch(tsets[k], tways[k])
        t1 = int(prcnt[last])
        if page_b is not None:
            prr = core.page_rrpv
            for k in range(t0, t1):
                prr[page_a[k]][page_b[k]] = 0
        elif core.page_touch is not None:
            page_touch = core.page_touch
            for k in range(t0, t1):
                page_touch(page_a[k])
        if region_b is not None:
            rrr = core.region_rrpv
            for k in range(t0, t1):
                rrr[region_a[k]][region_b[k]] = 0
        elif core.region_touch is not None:
            region_touch = core.region_touch
            for k in range(t0, t1):
                region_touch(region_a[k])
        conf = btb._conf
        conf_max = btb._conf_max
        for k in range(c0, int(ccnt[last])):
            s = cslots[k]
            if conf[s] < conf_max:
                conf[s] += 1
        if not self.multi_target:
            return
        act_pos, tkcnt, tk_abs, tk_trained, tk_sets, tk_ways = pre[14:]
        n1 = int(act_cum[last])
        if n1 == n0:
            return  # no active events: nothing consumed or staged
        f = int(act_pos[n1 - 1])
        k0 = int(tkcnt[a - 1]) if a else 0
        k1 = int(tkcnt[last])
        kf = int(tkcnt[f - 1]) if f else 0
        chain = btb._chain_next_target
        pcs = self.pcs_list
        targets = self.targets_list
        same_page = self.same_page_list
        for k in range(k0, kf):
            if tk_trained[k]:
                i = tk_abs[k]
                chain(tk_sets[k], tk_ways[k], pcs[i], targets[i], same_page[i])
            else:
                btb._last_btbm_slot = None
        # The pending next-target register ends the segment in the state
        # the *final* active event's lookup left it (each lookup consumes
        # the previous staging, so only the last one is observable).
        # Staged before that event's own chain runs -- the chain may set
        # ``next_valid`` on the very slot the staging reads.
        data = blk.data
        if data["hit"][f]:
            s = int(data["slot"][f])
            if data["delta"][f] and btb._next_valid[s]:
                btb._pending_next_offset = btb._next_offset[s]
                btb._pending_next_tag = btb._next_tag[s]
            else:
                btb._pending_next_offset = None
        else:
            # A clean tag miss: the pending register was provably empty
            # before it, and the consume leaves it empty.
            btb._pending_next_offset = None
        for k in range(kf, k1):
            if tk_trained[k]:
                i = tk_abs[k]
                chain(tk_sets[k], tk_ways[k], pcs[i], targets[i], same_page[i])
            else:
                btb._last_btbm_slot = None

    def first_affected(self, blk, lo, hi):
        written_sets, written_page, written_region = self._written
        if lo >= hi:
            for written in self._written:
                written.clear()
            return hi
        base = blk.lo
        s = slice(lo - base, hi - base)
        mask = None
        if written_sets:
            mask = self._match_any(self.core.key_col[lo:hi], written_sets)
        if written_page or written_region:
            # Only pointer-format hits read the tables; delta entries and
            # misses never see a table write.
            reads = blk.data["hit"][s] & ~blk.data["delta"][s]
            tmask = False
            if written_page:
                tmask = self._match_any(blk.data["page_ptr"][s], written_page)
            if written_region:
                tmask = tmask | self._match_any(
                    blk.data["region_ptr"][s], written_region
                )
            tmask = tmask & reads
            mask = tmask if mask is None else mask | tmask
        for written in self._written:
            written.clear()
        if mask is None:
            return hi
        return self._first_hit(mask, lo, hi)


class TwoLevelOps(_OpsBase):
    """Vector kernel for :class:`TwoLevelBTB` (Baseline L0, either L1).

    Clean events are L0 hits (every L0 miss is replayed: the miss looks
    up -- and on a fill path allocates into -- both levels), so the
    lookup outcome columns come from the L0 mirror alone and commit
    replicates both levels' ``update_fast``.
    """

    def __init__(self, btb, trace, decoded, active):
        cols = decoded.vector_columns()
        self.btb = btb
        level0 = btb.level0
        level1 = btb.level1
        self.l0core = _BaselineCore(level0, decoded)
        self.l1_is_pdede = type(level1) is PDedeBTB
        self.active = active
        self.taken = cols["taken"]
        is_indirect = cols["is_indirect"]
        self.trained0 = (
            self.taken
            if level0.allocate_indirect
            else self.taken & ~is_indirect
        )
        if self.l1_is_pdede:
            self.l1core = _PDedeCore(level1, decoded)
            allocate1 = level1.config.allocate_indirect
            self.l1_multi_target = level1.config.mode is PDedeMode.MULTI_TARGET
            journaled = [
                (level0, self.l0core.patch),
                (level1, self.l1core.patch_btbm),
                (level1.page_btb, self.l1core.patch_page),
                (level1.region_btb, self.l1core.patch_region),
            ]
        else:
            self.l1core = _BaselineCore(level1, decoded)
            allocate1 = level1.allocate_indirect
            self.l1_multi_target = False
            journaled = [(level0, self.l0core.patch), (level1, self.l1core.patch)]
        self.trained1 = self.taken if allocate1 else self.taken & ~is_indirect
        self.pcs_col = cols["pcs"]
        self.targets_col = cols["targets"]
        self.pcs_list = trace.pcs
        self.targets_list = trace.targets
        self.same_page_list = decoded.same_page
        self._journaled = journaled

    def lookup_block(self, lo, hi):
        level0 = self.btb.level0
        extra = self.btb.l1_extra_latency
        index0, hit0, way0, slot0, pred0 = self.l0core.raw_lookup(lo, hi)
        if self.l1_is_pdede:
            (
                index1,
                hit1,
                way1,
                slot1,
                pred1,
                delta1,
                stale1,
                page_ptr1,
                region_ptr1,
                lat1,
            ) = self.l1core.raw_lookup(lo, hi, self.pcs_col)
            lat1 = lat1 + extra
        else:
            index1, hit1, way1, slot1, pred1 = self.l1core.raw_lookup(lo, hi)
            lat1 = np.full(hi - lo, self.btb.level1.latency + extra, dtype=np.int64)
        act = self.active[lo:hi]
        trained0 = self.trained0[lo:hi]
        trained1 = self.trained1[lo:hi]
        target = self.targets_col[lo:hi]
        # Either level mutates only when it would train: an untrained L0
        # miss (the common not-taken case) just reads the L1 and counts.
        mut0 = trained0 & (~hit0 | (pred0 != target))
        mut1 = trained1 & (~hit1 | (pred1 != target))
        boundary = act & (mut0 | mut1)
        if self.l1_multi_target:
            # Multi-target L1 lookups consume/stage the pending register
            # on every L0 miss, so those are always replayed.
            boundary = boundary | (act & ~hit0)
        lt = np.where(hit0, pred0, np.where(hit1, pred1, NO_TARGET))
        lh = hit0 | hit1
        lat = np.where(hit0, level0.latency, lat1)
        bounds = (np.flatnonzero(boundary) + lo).tolist()
        data = {
            "act": act,
            "hit0": hit0,
            "hit1": hit1,
            "trained0": trained0,
            "trained1": trained1,
            "taken": self.taken[lo:hi],
            "index0": index0,
            "way0": way0,
            "slot0": slot0,
            "index1": index1,
            "way1": way1,
            "slot1": slot1,
        }
        if self.l1_is_pdede:
            data["delta1"] = delta1
            data["stale1"] = stale1
            data["page_ptr1"] = page_ptr1
            data["region_ptr1"] = region_ptr1
        return VectorBlock(lo, hi, lt, lh, lat, bounds, data)

    def commit(self, blk, start, end):
        btb = self.btb
        level0 = btb.level0
        level1 = btb.level1
        lo = blk.lo
        a = start - lo
        b = end - lo
        act = blk.lists("act")
        hit0 = blk.lists("hit0")
        hit1 = blk.lists("hit1")
        trained0 = blk.lists("trained0")
        trained1 = blk.lists("trained1")
        taken = blk.lists("taken")
        index0 = blk.lists("index0")
        way0 = blk.lists("way0")
        slot0 = blk.lists("slot0")
        index1 = blk.lists("index1")
        way1 = blk.lists("way1")
        slot1 = blk.lists("slot1")
        touch0 = self.l0core.touch
        touch1 = self.l1core.touch
        conf0 = level0._conf
        conf0_max = level0._conf_max
        conf1 = level1._conf
        conf1_max = level1._conf_max
        pdede1 = self.l1_is_pdede
        if pdede1:
            delta1 = blk.lists("delta1")
            stale1 = blk.lists("stale1")
            page_ptr1 = blk.lists("page_ptr1")
            region_ptr1 = blk.lists("region_ptr1")
            page_touch = self.l1core.page_touch
            region_touch = self.l1core.region_touch
            chain1 = level1._chain_next_target
            multi_target1 = self.l1_multi_target
            pcs = self.pcs_list
            targets = self.targets_list
            same_page = self.same_page_list
            delta_hits = pointer_hits = stale_reads = 0
        count = 0
        l0_hits = 0
        l1_hits = 0
        for r in range(a, b):
            if not act[r]:
                continue
            count += 1
            if hit0[r]:
                # L0 hit: lookup touch plus trained confidence
                # saturation; the L1 is not looked up at all.
                l0_hits += 1
                if touch0 is not None:
                    touch0(index0[r], way0[r])
                if trained0[r]:
                    s = slot0[r]
                    if conf0[s] < conf0_max:
                        conf0[s] += 1
            elif hit1[r]:
                # Clean L0 miss (untrained, or it would have replayed):
                # the L1 lookup runs for real -- hit counter, reconstruct
                # counters, replacement and table touches.
                l1_hits += 1
                if pdede1:
                    if delta1[r]:
                        delta_hits += 1
                    else:
                        pointer_hits += 1
                        if stale1[r]:
                            stale_reads += 1
                        if page_touch is not None:
                            page_touch(page_ptr1[r])
                        if region_touch is not None:
                            region_touch(region_ptr1[r])
                if touch1 is not None:
                    touch1(index1[r], way1[r])
            # The L1 always trains (``update_fast``): clean + trained1
            # implies an L1 tag hit whose prediction matches, so the
            # training saturates confidence without rewriting.
            if pdede1:
                if trained1[r]:
                    if delta1[r]:
                        delta_hits += 1
                    else:
                        pointer_hits += 1
                        if stale1[r]:
                            stale_reads += 1
                        if page_touch is not None:
                            page_touch(page_ptr1[r])
                        if region_touch is not None:
                            region_touch(region_ptr1[r])
                    if touch1 is not None:
                        touch1(index1[r], way1[r])
                    s = slot1[r]
                    if conf1[s] < conf1_max:
                        conf1[s] += 1
                    if multi_target1:
                        i = lo + r
                        chain1(index1[r], way1[r], pcs[i], targets[i], same_page[i])
                elif taken[r]:
                    # Taken but not allocatable (indirect with
                    # allocate_indirect off): ``update_fast`` clears the
                    # multi-target chain anchor.
                    level1._last_btbm_slot = None
            else:
                if trained1[r]:
                    if touch1 is not None:
                        touch1(index1[r], way1[r])
                    s = slot1[r]
                    if conf1[s] < conf1_max:
                        conf1[s] += 1
        btb.l0_hits += l0_hits
        btb.l1_hits += l1_hits
        btb.stats.updates += count
        level0.stats.updates += count
        level1.stats.updates += count
        if pdede1:
            level1.delta_hits += delta_hits
            level1.pointer_hits += pointer_hits
            level1.stale_pointer_reads += stale_reads

    def first_affected(self, blk, lo, hi):
        if lo >= hi:
            for written in self._written:
                written.clear()
            return hi
        base = blk.lo
        s = slice(lo - base, hi - base)
        mask = None
        written0 = self._written[0]
        written1 = self._written[1]
        if written0:
            mask = self._match_any(self.l0core.key_col[lo:hi], written0)
        if written1:
            mask1 = self._match_any(self.l1core.key_col[lo:hi], written1)
            mask = mask1 if mask is None else mask | mask1
        if self.l1_is_pdede:
            written_page = self._written[2]
            written_region = self._written[3]
            if written_page or written_region:
                reads = blk.data["hit1"][s] & ~blk.data["delta1"][s]
                tmask = False
                if written_page:
                    tmask = self._match_any(blk.data["page_ptr1"][s], written_page)
                if written_region:
                    tmask = tmask | self._match_any(
                        blk.data["region_ptr1"][s], written_region
                    )
                tmask = tmask & reads
                mask = tmask if mask is None else mask | tmask
        for written in self._written:
            written.clear()
        if mask is None:
            return hi
        return self._first_hit(mask, lo, hi)
