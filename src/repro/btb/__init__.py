"""BTB substrates: baseline designs, hierarchies, and helpers.

Everything here is the *substrate* the paper compares against or builds
on: the conventional set-associative BTB (Section 2), replacement
policies, the return address stack, the ITTAGE indirect-target predictor
(Section 5.6), a two-level BTB hierarchy (Section 5.9), and a
Shotgun-like prefetching BTB (Section 5.10).  The PDede designs
themselves live in :mod:`repro.core`.
"""

from repro.btb.base import BTBLookup, BranchTargetPredictor, BTBStats
from repro.btb.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    SrripPolicy,
    make_replacement_policy,
)
from repro.btb.baseline import BaselineBTB
from repro.btb.ras import ReturnAddressStack
from repro.btb.ittage import ITTagePredictor
from repro.btb.twolevel import TwoLevelBTB
from repro.btb.shotgun import ShotgunBTB
from repro.btb.prefetch import TemporalPrefetchBTB
from repro.btb.ghrp import GhrpBTB
from repro.btb.microbtb import MicroBTB
from repro.btb.shadow import ShadowBTB

__all__ = [
    "BTBLookup",
    "BTBStats",
    "BranchTargetPredictor",
    "FifoPolicy",
    "LruPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SrripPolicy",
    "make_replacement_policy",
    "BaselineBTB",
    "ReturnAddressStack",
    "ITTagePredictor",
    "TwoLevelBTB",
    "ShotgunBTB",
    "TemporalPrefetchBTB",
    "GhrpBTB",
    "MicroBTB",
    "ShadowBTB",
]
