"""Two-tier last-level BTB hierarchy after Micro BTB (Gupta & Panda).

Servers blow out any single-level BTB; Micro BTB's answer is a small,
fast first-level BTB backed by a *last-level* BTB (LLBTB) whose entries
are cheap because they store branch targets as short signed deltas from
the branch PC rather than full 57-bit addresses -- the same locality
observation PDede's same-page delta encoding exploits (Fig 8).  The
LLBTB is filled either from first-level victims (the default, so the
last level acts as a victim cache over the hot working set) or on every
resolved branch, and first-level misses that hit the last level are
promoted back up.

This model keeps both levels self-contained (unlike
:class:`~repro.btb.twolevel.TwoLevelBTB`, which composes two opaque
predictors) because victim filling needs eviction visibility: the L1
must hand its evicted entry to the LLBTB, which a generic wrapper
cannot see.

Engine support: general only.  The inherited fast hooks cannot express
the promotion/victim-fill traffic between the levels, so the class opts
out of the fast and vector tiers exactly like
:class:`~repro.btb.ghrp.GhrpBTB`; the seed referee passes instances
through unchanged, which is what the differential tests lean on.
"""

from __future__ import annotations

from repro.branch.address import ADDRESS_BITS, hash_pc
from repro.branch.types import BranchEvent
from repro.btb.base import BTBLookup, BranchTargetPredictor
from repro.btb.replacement import make_replacement_policy
from repro.checks.sanitizer import sanitizer_step

_NO_TAG = -1

_FILL_POLICIES = ("victim", "all")


class MicroBTB(BranchTargetPredictor):
    """Small L1 BTB + delta-compressed last-level BTB.

    Args:
        l1_entries / l1_ways: geometry of the fast first level.
        ll_entries / ll_ways: geometry of the last-level BTB.
        tag_bits: hashed partial-tag width (both levels).
        delta_bits: signed target-delta width in the last level; branches
            whose ``target - pc`` does not fit are *uncompressible* and
            never stored there (counted in :meth:`metrics`).
        conf_bits: L1 confidence-counter width (target replacement
            arbitration, as in :class:`~repro.btb.baseline.BaselineBTB`).
        replacement / srrip_bits: per-set replacement policy of both
            levels.
        fill_policy: ``"victim"`` fills the last level only from L1
            evictions; ``"all"`` writes it on every resolved taken
            branch.
        promote_on_hit: install last-level hits into the L1.
        ll_extra_latency: cycles added to a last-level answer on top of
            the L1 latency.
        latency: L1 lookup latency in cycles.
        allocate_indirect: when False, indirect branches are not stored
            (ITTAGE setups).
    """

    #: General engine only -- the decoded-trace fast hooks cannot express
    #: victim-fill/promotion traffic between the levels (same opt-out
    #: pattern as GhrpBTB).
    supports_fast_path = False

    def __init__(
        self,
        l1_entries: int = 1024,
        l1_ways: int = 4,
        ll_entries: int = 16384,
        ll_ways: int = 8,
        tag_bits: int = 12,
        delta_bits: int = 16,
        conf_bits: int = 2,
        replacement: str = "srrip",
        srrip_bits: int = 3,
        fill_policy: str = "victim",
        promote_on_hit: bool = True,
        ll_extra_latency: int = 2,
        latency: int = 1,
        allocate_indirect: bool = True,
    ) -> None:
        super().__init__()
        for label, entries, ways in (("l1", l1_entries, l1_ways),
                                     ("ll", ll_entries, ll_ways)):
            if entries <= 0:
                raise ValueError(f"{label}_entries must be positive")
            if entries % ways:
                raise ValueError(f"{label}_entries must be divisible by {label}_ways")
        if fill_policy not in _FILL_POLICIES:
            raise ValueError(
                f"fill_policy must be one of {_FILL_POLICIES}, got {fill_policy!r}"
            )
        if delta_bits < 2:
            raise ValueError("delta_bits must be at least 2")
        self.l1_entries = l1_entries
        self.l1_ways = l1_ways
        self.l1_sets = l1_entries // l1_ways
        self.ll_entries = ll_entries
        self.ll_ways = ll_ways
        self.ll_sets = ll_entries // ll_ways
        self.tag_bits = tag_bits
        self.delta_bits = delta_bits
        self.conf_bits = conf_bits
        self._conf_max = (1 << conf_bits) - 1
        self.srrip_bits = srrip_bits
        self.fill_policy = fill_policy
        self.promote_on_hit = promote_on_hit
        self.ll_extra_latency = ll_extra_latency
        self.latency = latency
        self.allocate_indirect = allocate_indirect
        self.replacement_name = replacement
        self._delta_max = (1 << (delta_bits - 1)) - 1
        self._delta_min = -(1 << (delta_bits - 1))
        self._tag_mask = (1 << tag_bits) - 1
        self._l1_sets_pow2 = self.l1_sets & (self.l1_sets - 1) == 0
        self._ll_sets_pow2 = self.ll_sets & (self.ll_sets - 1) == 0
        repl_kwargs = {"m": srrip_bits} if replacement == "srrip" else {}
        self._l1_policies = [
            make_replacement_policy(replacement, l1_ways, **repl_kwargs)
            for _ in range(self.l1_sets)
        ]
        self._ll_policies = [
            make_replacement_policy(replacement, ll_ways, **repl_kwargs)
            for _ in range(self.ll_sets)
        ]
        l1_size = self.l1_sets * l1_ways
        self._l1_valid = [False] * l1_size
        self._l1_tags = [_NO_TAG] * l1_size
        self._l1_targets = [0] * l1_size
        self._l1_conf = [0] * l1_size
        #: Model bookkeeping only (not charged in storage_bits): the PC
        #: behind each L1 entry, so a victim fill can recompute the
        #: last-level index/tag and the target delta.  Hardware keeps the
        #: delta alongside the entry instead; the information content is
        #: identical.
        self._l1_pcs = [0] * l1_size
        ll_size = self.ll_sets * ll_ways
        self._ll_valid = [False] * ll_size
        self._ll_tags = [_NO_TAG] * ll_size
        self._ll_deltas = [0] * ll_size
        self.l1_hits = 0
        self.ll_hits = 0
        self.promotions = 0
        self.victim_fills = 0
        self.uncompressible = 0

    # -- address mapping -----------------------------------------------------

    def _l1_slot(self, hashed: int) -> tuple[int, int]:
        index = hashed & (self.l1_sets - 1) if self._l1_sets_pow2 else hashed % self.l1_sets
        return index, (hashed >> 40) & self._tag_mask

    def _ll_slot(self, hashed: int) -> tuple[int, int]:
        # The last level draws its index from a different hash byte so the
        # two levels do not mirror each other's conflict sets.
        shifted = hashed >> 17
        index = shifted & (self.ll_sets - 1) if self._ll_sets_pow2 else shifted % self.ll_sets
        return index, (hashed >> 40) & self._tag_mask

    @staticmethod
    def _find_way(tags: list[int], index: int, ways: int, tag: int) -> int | None:
        base = index * ways
        try:
            return tags.index(tag, base, base + ways) - base
        except ValueError:
            return None

    # -- BranchTargetPredictor API -------------------------------------------

    def lookup(self, pc: int) -> BTBLookup:
        hashed = hash_pc(pc)
        index, tag = self._l1_slot(hashed)
        way = self._find_way(self._l1_tags, index, self.l1_ways, tag)
        if way is not None:
            self.l1_hits += 1
            self._l1_policies[index].on_hit(way)
            return BTBLookup(
                hit=True,
                target=self._l1_targets[index * self.l1_ways + way],
                latency=self.latency,
                provider="l1btb",
            )
        ll_index, ll_tag = self._ll_slot(hashed)
        ll_way = self._find_way(self._ll_tags, ll_index, self.ll_ways, ll_tag)
        if ll_way is None:
            return BTBLookup(
                hit=False, target=None, latency=self.latency, provider="miss"
            )
        self.ll_hits += 1
        self._ll_policies[ll_index].on_hit(ll_way)
        target = pc + self._ll_deltas[ll_index * self.ll_ways + ll_way]
        if self.promote_on_hit:
            self.promotions += 1
            self._l1_allocate(index, tag, pc, target)
        return BTBLookup(
            hit=True,
            target=target,
            latency=self.latency + self.ll_extra_latency,
            provider="llbtb",
        )

    def update(self, event: BranchEvent) -> None:
        self.stats.updates += 1
        sanitizer_step(self)
        if not event.taken:
            return
        if event.kind.is_indirect and not self.allocate_indirect:
            return
        hashed = hash_pc(event.pc)
        index, tag = self._l1_slot(hashed)
        way = self._find_way(self._l1_tags, index, self.l1_ways, tag)
        if way is not None:
            self._l1_train(index, way, event.pc, event.target)
        else:
            self._l1_allocate(index, tag, event.pc, event.target)
        if self.fill_policy == "all":
            self._ll_fill(event.pc, event.target)

    # -- level internals -----------------------------------------------------

    def _l1_train(self, index: int, way: int, pc: int, target: int) -> None:
        slot = index * self.l1_ways + way
        if self._l1_targets[slot] == target:
            if self._l1_conf[slot] < self._conf_max:
                self._l1_conf[slot] += 1
        elif self._l1_conf[slot] > 0:
            # Keep the incumbent target until confidence drains.
            self._l1_conf[slot] -= 1
        else:
            self._l1_targets[slot] = target
            self._l1_pcs[slot] = pc
        self._l1_policies[index].on_hit(way)

    def _l1_allocate(self, index: int, tag: int, pc: int, target: int) -> None:
        policy = self._l1_policies[index]
        base = index * self.l1_ways
        way = policy.victim(self._l1_valid[base:base + self.l1_ways])
        slot = base + way
        if self._l1_valid[slot]:
            self.stats.evictions += 1
            if self.fill_policy == "victim":
                self.victim_fills += 1
                self._ll_fill(self._l1_pcs[slot], self._l1_targets[slot])
        self._l1_valid[slot] = True
        self._l1_tags[slot] = tag
        self._l1_targets[slot] = target
        self._l1_pcs[slot] = pc
        self._l1_conf[slot] = 0
        policy.on_insert(way)
        self.stats.allocations += 1

    def _ll_fill(self, pc: int, target: int) -> None:
        delta = target - pc
        if not self._delta_min <= delta <= self._delta_max:
            self.uncompressible += 1
            return
        hashed = hash_pc(pc)
        index, tag = self._ll_slot(hashed)
        way = self._find_way(self._ll_tags, index, self.ll_ways, tag)
        policy = self._ll_policies[index]
        if way is None:
            base = index * self.ll_ways
            way = policy.victim(self._ll_valid[base:base + self.ll_ways])
            self._ll_valid[base + way] = True
            self._ll_tags[base + way] = tag
            policy.on_insert(way)
        else:
            policy.on_hit(way)
        self._ll_deltas[index * self.ll_ways + way] = delta

    # -- storage and introspection -------------------------------------------

    def storage_bits(self) -> int:
        l1_per_entry = (
            self.tag_bits
            + ADDRESS_BITS
            + self.conf_bits
            + self._l1_policies[0].metadata_bits_per_entry()
        )
        ll_per_entry = (
            self.tag_bits
            + self.delta_bits
            + self._ll_policies[0].metadata_bits_per_entry()
        )
        return self.l1_entries * l1_per_entry + self.ll_entries * ll_per_entry

    def occupancy(self) -> int:
        """Valid entries across both levels."""
        return sum(self._l1_valid) + sum(self._ll_valid)

    def metrics(self) -> dict:
        data = super().metrics()
        data["btb_l1_hits_total"] = self.l1_hits
        data["btb_ll_hits_total"] = self.ll_hits
        data["btb_ll_promotions_total"] = self.promotions
        data["btb_ll_victim_fills_total"] = self.victim_fills
        data["btb_ll_uncompressible_total"] = self.uncompressible
        data["btb_l1_entries"] = self.l1_entries
        data["btb_ll_entries"] = self.ll_entries
        return data

    @property
    def name(self) -> str:
        return f"MicroBTB({self.l1_entries}+{self.ll_entries}x{self.delta_bits}b)"
